//! Memory-controller behaviour model.
//!
//! Real memory controllers serve writes more expensively than reads
//! (read-modify-write turnaround, scheduling stalls): DraMon [Wang et al.,
//! HPCA'14] — which the paper cites as the state of the art in single-node
//! memory throughput modelling — shows effective bandwidth degrades
//! non-linearly with the write share of the stream mix. We fold this into a
//! single *write amplification* coefficient: a write of `r` GB/s consumes
//! `r * write_amplification` of the target controller's capacity while
//! consuming only `r` on interconnect links.

/// Parameters of the controller model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerModel {
    /// How much controller capacity one byte of write traffic consumes
    /// relative to one byte of read traffic. Must be >= 1.
    pub write_amplification: f64,
}

impl Default for ControllerModel {
    fn default() -> Self {
        // 1.25 reproduces the common observation that an all-write stream
        // achieves ~80% of read-stream bandwidth.
        ControllerModel { write_amplification: 1.25 }
    }
}

impl ControllerModel {
    /// A model where writes cost the same as reads (used to ablate the
    /// write penalty).
    pub fn symmetric() -> Self {
        ControllerModel { write_amplification: 1.0 }
    }

    /// Controller capacity consumed by `read` + `write` GB/s of traffic.
    pub fn controller_usage(&self, read: f64, write: f64) -> f64 {
        read + write * self.write_amplification
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.write_amplification.is_finite() && self.write_amplification >= 1.0) {
            return Err(format!(
                "write_amplification must be finite and >= 1, got {}",
                self.write_amplification
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_penalizes_writes() {
        let m = ControllerModel::default();
        assert!(m.controller_usage(0.0, 4.0) > m.controller_usage(4.0, 0.0));
        assert!((m.controller_usage(2.0, 2.0) - (2.0 + 2.5)).abs() < 1e-12);
    }

    #[test]
    fn symmetric_model() {
        let m = ControllerModel::symmetric();
        assert_eq!(m.controller_usage(3.0, 1.0), 4.0);
    }

    #[test]
    fn validation() {
        assert!(ControllerModel::default().validate().is_ok());
        assert!(ControllerModel { write_amplification: 0.5 }.validate().is_err());
        assert!(ControllerModel { write_amplification: f64::NAN }.validate().is_err());
    }
}
