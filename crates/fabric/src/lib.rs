//! Bandwidth-contention fabric for simulated NUMA machines.
//!
//! The fabric answers one question per simulation epoch: *given the memory
//! demand every worker node places on every memory node, how much bandwidth
//! does each one actually get?*
//!
//! The model is a flow network with **weighted, demand-bounded max-min fair
//! allocation** ([`maxmin`]):
//!
//! * Every ordered `(memory node, CPU node)` pair has a calibrated single
//!   flow *path capacity* (the machine's measured bandwidth matrix — for
//!   machine A, the paper's Fig. 1a).
//! * Flows additionally consume the *memory controller* of the memory node
//!   (writes with an amplification factor, see [`controller`]), every
//!   *directed physical link* on their route (so flows crossing the same
//!   interconnect link congest each other), and the CPU node's *ingress*
//!   capacity (a core-side absorption limit).
//! * Flows are grouped into **bundles** that scale in lock-step: a parallel
//!   application that reads pages spread over several nodes advances at the
//!   pace of its *slowest* transfer (the paper's Eq. 1/3), so all its flows
//!   are useful only in the demanded proportion. A bundle's allocation is a
//!   single activity level multiplying its whole demand vector, which is
//!   exactly max-min fairness over composite flows.
//!
//! [`probe::probe_matrix`] reproduces a machine's bandwidth matrix by
//! running one single-flow bundle per node pair — the calibration tests
//! assert it returns Fig. 1a exactly for machine A.

pub mod controller;
pub mod maxmin;
pub mod network;
pub mod probe;
pub mod resource;

pub use controller::ControllerModel;
pub use maxmin::{solve_maxmin, solve_maxmin_set, Allocation, Bundle, BundleSet, MaxminScratch};
pub use network::{
    DemandSet, FlowDemand, GroupId, GroupOutcome, GroupSpec, SolveResult, SolveScratch,
};
pub use probe::probe_matrix;
pub use resource::{ResourceKind, ResourceTable};
