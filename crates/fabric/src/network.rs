//! Assembling application demand into solver bundles.
//!
//! The simulated OS describes each epoch's demand as a set of
//! [`GroupSpec`]s — one per `(process, worker node)` pair — listing the
//! read/write traffic that group directs at each memory node *per unit of
//! activity* (activity 1.0 = the group running unstalled). Solving yields
//! each group's achieved activity `u ∈ [0, 1]`: the lock-step utilization
//! that drives progress and stall accounting in `numasim`.

use crate::controller::ControllerModel;
use crate::maxmin::{solve_maxmin_set, Allocation, BundleSet, MaxminScratch};
use crate::resource::{ResourceKind, ResourceTable};
use bwap_topology::{Direction, LinkId, MachineTopology, NodeId};

/// Caller-chosen identifier to map outcomes back to processes/nodes.
pub type GroupId = u64;

/// Traffic one group sends to one memory node, in GB/s per unit activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDemand {
    /// Memory node holding the pages.
    pub mem: NodeId,
    /// CPU node where the accessing threads run.
    pub cpu: NodeId,
    /// Read traffic (data flows `mem -> cpu`).
    pub read_gbps: f64,
    /// Write traffic (data flows `cpu -> mem`).
    pub write_gbps: f64,
}

/// One lock-step demand group.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Caller identifier, returned in [`GroupOutcome`].
    pub id: GroupId,
    /// Fairness weight (number of hardware threads driving the demand).
    pub weight: f64,
    /// Maximum activity; 1.0 for applications (cannot run faster than
    /// unstalled), `f64::INFINITY` for open-loop probes.
    pub cap: f64,
    /// Per-memory-node traffic at activity 1.0.
    pub flows: Vec<FlowDemand>,
}

/// Outcome for one group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupOutcome {
    /// Caller identifier.
    pub id: GroupId,
    /// Achieved activity (for applications: lock-step utilization in
    /// `[0, 1]`).
    pub activity: f64,
    /// The binding constraint, if the group was frozen by a resource
    /// rather than by its own demand cap.
    pub binding: Option<ResourceKind>,
}

/// A complete epoch demand: all groups competing on the machine, stored
/// flat (group headers + one shared flow arena) so the epoch hot loop can
/// rebuild it every epoch without allocating. Groups are appended either
/// wholesale ([`DemandSet::push`]) or incrementally
/// ([`DemandSet::begin_group`] + [`DemandSet::add_flow`]).
#[derive(Debug, Clone, Default)]
pub struct DemandSet {
    headers: Vec<GroupHeader>,
    flows: Vec<FlowDemand>,
}

#[derive(Debug, Clone, Copy)]
struct GroupHeader {
    id: GroupId,
    weight: f64,
    cap: f64,
    /// Exclusive end of this group's span in `flows` (its start is the
    /// previous header's end).
    flows_end: usize,
}

/// Solver result: per-group outcomes plus the raw allocation for resource
/// utilization diagnostics.
#[derive(Debug, Clone, Default)]
pub struct SolveResult {
    /// One outcome per input group, same order.
    pub outcomes: Vec<GroupOutcome>,
    /// Raw allocation (resource usage vector, bindings by dense index).
    pub allocation: Allocation,
}

impl SolveResult {
    /// The directed per-link bandwidth shares this solve granted, in
    /// GB/s: `(link, direction, share)` for every link direction of the
    /// `resources` table the solve ran against, in dense resource order.
    /// This is the max-min share actually flowing over each hop — the
    /// quantity the run-trace layer records per epoch — not the link's
    /// capacity ([`ResourceTable::capacities`]) or its utilization
    /// fraction ([`Allocation::utilization`]).
    pub fn link_shares<'a>(
        &'a self,
        resources: &'a ResourceTable,
    ) -> impl Iterator<Item = (LinkId, Direction, f64)> + 'a {
        (0..resources.link_count()).flat_map(move |l| {
            [Direction::AtoB, Direction::BtoA].into_iter().map(move |d| {
                let r = resources.link_dir(LinkId(l), d);
                (LinkId(l), d, self.allocation.used.get(r).copied().unwrap_or(0.0))
            })
        })
    }
}

/// Reusable buffers for [`DemandSet::solve_into`]: the dense usage
/// accumulator, the flat bundle set, and the max-min solver scratch.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    dense: Vec<f64>,
    bundles: BundleSet,
    maxmin: MaxminScratch,
}

impl DemandSet {
    /// Build an empty demand set.
    pub fn new() -> Self {
        DemandSet::default()
    }

    /// Drop all groups, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.headers.clear();
        self.flows.clear();
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// Whether the set has no groups.
    pub fn is_empty(&self) -> bool {
        self.headers.is_empty()
    }

    /// Start a new group; follow with [`DemandSet::add_flow`] calls.
    pub fn begin_group(&mut self, id: GroupId, weight: f64, cap: f64) {
        self.headers.push(GroupHeader { id, weight, cap, flows_end: self.flows.len() });
    }

    /// Add one flow to the group opened by the last
    /// [`DemandSet::begin_group`].
    pub fn add_flow(&mut self, f: FlowDemand) {
        debug_assert!(!self.headers.is_empty(), "begin_group first");
        self.flows.push(f);
        self.headers.last_mut().expect("group open").flows_end = self.flows.len();
    }

    /// Add a group wholesale.
    pub fn push(&mut self, g: GroupSpec) {
        self.begin_group(g.id, g.weight, g.cap);
        for f in g.flows {
            self.add_flow(f);
        }
    }

    fn group_flows(&self, i: usize) -> &[FlowDemand] {
        let start = if i == 0 { 0 } else { self.headers[i - 1].flows_end };
        &self.flows[start..self.headers[i].flows_end]
    }

    /// Translate groups into bundles and solve (allocating convenience
    /// form of [`DemandSet::solve_into`]).
    pub fn solve(
        &self,
        machine: &MachineTopology,
        resources: &ResourceTable,
        ctrl_model: &ControllerModel,
    ) -> SolveResult {
        let mut ws = SolveScratch::default();
        let mut out = SolveResult::default();
        self.solve_into(machine, resources, ctrl_model, &mut ws, &mut out);
        out
    }

    /// Translate groups into bundles and solve, reusing `ws` and writing
    /// the result into `out` — the allocation-free epoch-loop entry point.
    /// Identical math (and bitwise-identical results) to
    /// [`DemandSet::solve`].
    pub fn solve_into(
        &self,
        machine: &MachineTopology,
        resources: &ResourceTable,
        ctrl_model: &ControllerModel,
        ws: &mut SolveScratch,
        out: &mut SolveResult,
    ) {
        ws.bundles.clear();
        for i in 0..self.len() {
            let h = self.headers[i];
            accumulate_bundle(
                self.group_flows(i),
                h.cap,
                h.weight,
                machine,
                resources,
                ctrl_model,
                &mut ws.dense,
                &mut ws.bundles,
            );
        }
        solve_maxmin_set(resources.capacities(), &ws.bundles, &mut ws.maxmin, &mut out.allocation);
        out.outcomes.clear();
        out.outcomes.extend(self.headers.iter().enumerate().map(|(i, h)| GroupOutcome {
            id: h.id,
            activity: out.allocation.activity[i],
            binding: out.allocation.binding[i].map(|r| resources.kind(r)),
        }));
    }
}

/// Accumulate a group's flows into one bundle usage vector appended to
/// `bundles`. Dense accumulation then index-order sparsification keeps a
/// resource listed once, in the same order as ever.
#[allow(clippy::too_many_arguments)]
fn accumulate_bundle(
    flows: &[FlowDemand],
    cap: f64,
    weight: f64,
    machine: &MachineTopology,
    resources: &ResourceTable,
    ctrl_model: &ControllerModel,
    dense: &mut Vec<f64>,
    bundles: &mut BundleSet,
) {
    dense.clear();
    dense.resize(resources.len(), 0.0);
    for f in flows {
        debug_assert!(f.read_gbps >= 0.0 && f.write_gbps >= 0.0);
        if f.read_gbps > 0.0 {
            // Data flows mem -> cpu.
            dense[resources.ctrl(f.mem)] += ctrl_model.controller_usage(f.read_gbps, 0.0);
            dense[resources.ingress(f.cpu)] += f.read_gbps;
            if f.mem != f.cpu {
                dense[resources.path_cap(f.mem, f.cpu)] += f.read_gbps;
                for hop in machine.routes().get(f.mem, f.cpu).hops() {
                    dense[resources.link_dir(hop.link, hop.dir)] += f.read_gbps;
                }
            }
        }
        if f.write_gbps > 0.0 {
            // Data flows cpu -> mem; the write lands on mem's controller
            // with amplification, traversing the cpu->mem route.
            dense[resources.ctrl(f.mem)] += ctrl_model.controller_usage(0.0, f.write_gbps);
            if f.mem != f.cpu {
                dense[resources.path_cap(f.cpu, f.mem)] += f.write_gbps;
                for hop in machine.routes().get(f.cpu, f.mem).hops() {
                    dense[resources.link_dir(hop.link, hop.dir)] += f.write_gbps;
                }
            }
        }
    }
    bundles.push_bundle(cap, weight);
    for (r, &c) in dense.iter().enumerate() {
        if c > 0.0 {
            bundles.push_usage(r, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    fn setup() -> (MachineTopology, ResourceTable, ControllerModel) {
        let m = machines::machine_b();
        let rt = ResourceTable::from_machine(&m);
        (m, rt, ControllerModel::default())
    }

    #[test]
    fn local_only_group_bounded_by_cap() {
        let (m, rt, cm) = setup();
        let mut ds = DemandSet::new();
        ds.push(GroupSpec {
            id: 7,
            weight: 7.0,
            cap: 1.0,
            flows: vec![FlowDemand {
                mem: NodeId(0),
                cpu: NodeId(0),
                read_gbps: 10.0,
                write_gbps: 0.0,
            }],
        });
        let r = ds.solve(&m, &rt, &cm);
        assert_eq!(r.outcomes[0].id, 7);
        assert!((r.outcomes[0].activity - 1.0).abs() < 1e-9);
        assert_eq!(r.outcomes[0].binding, None);
    }

    #[test]
    fn link_shares_cover_every_direction_and_follow_traffic() {
        let (m, rt, cm) = setup();
        // Local-only traffic crosses no link: every directed share is 0.
        let mut ds = DemandSet::new();
        ds.push(GroupSpec {
            id: 0,
            weight: 1.0,
            cap: 1.0,
            flows: vec![FlowDemand {
                mem: NodeId(0),
                cpu: NodeId(0),
                read_gbps: 5.0,
                write_gbps: 0.0,
            }],
        });
        let r = ds.solve(&m, &rt, &cm);
        let shares: Vec<_> = r.link_shares(&rt).collect();
        assert_eq!(shares.len(), 2 * rt.link_count());
        assert!(shares.iter().all(|(_, _, s)| *s == 0.0));
        // Directed pairs appear in dense resource order.
        assert_eq!((shares[0].0, shares[0].1), (LinkId(0), Direction::AtoB));
        assert_eq!((shares[1].0, shares[1].1), (LinkId(0), Direction::BtoA));

        // A remote read must put its full rate on some link hop.
        let mut ds = DemandSet::new();
        ds.push(GroupSpec {
            id: 0,
            weight: 1.0,
            cap: 1.0,
            flows: vec![FlowDemand {
                mem: NodeId(1),
                cpu: NodeId(0),
                read_gbps: 5.0,
                write_gbps: 0.0,
            }],
        });
        let r = ds.solve(&m, &rt, &cm);
        let max = r.link_shares(&rt).map(|(_, _, s)| s).fold(0.0, f64::max);
        assert!((max - 5.0).abs() < 1e-9, "remote read share missing: {max}");
    }

    #[test]
    fn local_saturation_binds_at_controller() {
        let (m, rt, cm) = setup();
        let mut ds = DemandSet::new();
        ds.push(GroupSpec {
            id: 0,
            weight: 7.0,
            cap: 1.0,
            flows: vec![FlowDemand {
                mem: NodeId(0),
                cpu: NodeId(0),
                read_gbps: 40.0, // above the 28 GB/s controller
                write_gbps: 0.0,
            }],
        });
        let r = ds.solve(&m, &rt, &cm);
        assert!((r.outcomes[0].activity - 28.0 / 40.0).abs() < 1e-9);
        assert_eq!(r.outcomes[0].binding, Some(ResourceKind::Controller(NodeId(0))));
    }

    #[test]
    fn writes_amplified_at_controller() {
        let (m, rt, cm) = setup();
        let mut ds = DemandSet::new();
        ds.push(GroupSpec {
            id: 0,
            weight: 7.0,
            cap: f64::INFINITY,
            flows: vec![FlowDemand {
                mem: NodeId(0),
                cpu: NodeId(0),
                read_gbps: 0.0,
                write_gbps: 1.0,
            }],
        });
        let r = ds.solve(&m, &rt, &cm);
        // all-write stream achieves 28 / 1.25 = 22.4 GB/s
        assert!((r.outcomes[0].activity - 28.0 / 1.25).abs() < 1e-9);
    }

    #[test]
    fn qpi_congestion_shared_between_cross_socket_readers() {
        let (m, rt, cm) = setup();
        // Both node-2 and node-3 CPUs read from node 0: they share the QPI
        // (16 GB/s) and node 0's controller.
        let mk = |id, cpu| GroupSpec {
            id,
            weight: 7.0,
            cap: f64::INFINITY,
            flows: vec![FlowDemand {
                mem: NodeId(0),
                cpu: NodeId(cpu),
                read_gbps: 1.0,
                write_gbps: 0.0,
            }],
        };
        let mut ds = DemandSet::new();
        ds.push(mk(0, 2));
        ds.push(mk(1, 3));
        let r = ds.solve(&m, &rt, &cm);
        let total = r.outcomes[0].activity + r.outcomes[1].activity;
        // QPI (16) binds before the controller (28) or the path caps
        // (13.5 + 12.6 = 26.1): the pair must split exactly 16 GB/s.
        assert!((total - 16.0).abs() < 1e-6, "total {total}");
        // max-min: equal weights -> equal split
        assert!((r.outcomes[0].activity - 8.0).abs() < 1e-6);
    }

    #[test]
    fn lockstep_group_paced_by_slowest_transfer() {
        let (m, rt, cm) = setup();
        // Node-0 threads read 10 GB/s from node 0 and 10 GB/s from node 1
        // per unit activity; the weakest constraint is... none below cap,
        // so activity reaches 1. Then triple the demand: the intra-socket
        // link (21 GB/s) binds the node-1 leg: activity = 21/30.
        let mut ds = DemandSet::new();
        ds.push(GroupSpec {
            id: 0,
            weight: 7.0,
            cap: 1.0,
            flows: vec![
                FlowDemand { mem: NodeId(0), cpu: NodeId(0), read_gbps: 30.0, write_gbps: 0.0 },
                FlowDemand { mem: NodeId(1), cpu: NodeId(0), read_gbps: 30.0, write_gbps: 0.0 },
            ],
        });
        let r = ds.solve(&m, &rt, &cm);
        // ingress at node 0 is 42: total read 60 per activity -> 0.7 from
        // ingress; node-1 leg limited by link/path 21/30 = 0.7 too; ctrl 0
        // at 28/30... controller 0 is the binding one (28/30 ≈ 0.933 > 0.7).
        // The tightest is min(42/60, 21/30, 28/30, 21(path)/30) = 0.7.
        assert!((r.outcomes[0].activity - 0.7).abs() < 1e-9, "{}", r.outcomes[0].activity);
    }

    #[test]
    fn two_processes_weighted_by_threads() {
        let (m, rt, cm) = setup();
        let mk = |id, weight| GroupSpec {
            id,
            weight,
            cap: f64::INFINITY,
            flows: vec![FlowDemand {
                mem: NodeId(1),
                cpu: NodeId(1),
                read_gbps: 1.0,
                write_gbps: 0.0,
            }],
        };
        let mut ds = DemandSet::new();
        ds.push(mk(0, 6.0));
        ds.push(mk(1, 1.0));
        let r = ds.solve(&m, &rt, &cm);
        // 28 GB/s controller split 6:1
        assert!((r.outcomes[0].activity - 24.0).abs() < 1e-6);
        assert!((r.outcomes[1].activity - 4.0).abs() < 1e-6);
    }

    #[test]
    fn empty_demand_set() {
        let (m, rt, cm) = setup();
        let r = DemandSet::new().solve(&m, &rt, &cm);
        assert!(r.outcomes.is_empty());
        assert!(r.allocation.used.iter().all(|&u| u == 0.0));
    }
}
