//! Assembling application demand into solver bundles.
//!
//! The simulated OS describes each epoch's demand as a set of
//! [`GroupSpec`]s — one per `(process, worker node)` pair — listing the
//! read/write traffic that group directs at each memory node *per unit of
//! activity* (activity 1.0 = the group running unstalled). Solving yields
//! each group's achieved activity `u ∈ [0, 1]`: the lock-step utilization
//! that drives progress and stall accounting in `numasim`.

use crate::controller::ControllerModel;
use crate::maxmin::{solve_maxmin, Allocation, Bundle};
use crate::resource::{ResourceKind, ResourceTable};
use bwap_topology::{MachineTopology, NodeId};

/// Caller-chosen identifier to map outcomes back to processes/nodes.
pub type GroupId = u64;

/// Traffic one group sends to one memory node, in GB/s per unit activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDemand {
    /// Memory node holding the pages.
    pub mem: NodeId,
    /// CPU node where the accessing threads run.
    pub cpu: NodeId,
    /// Read traffic (data flows `mem -> cpu`).
    pub read_gbps: f64,
    /// Write traffic (data flows `cpu -> mem`).
    pub write_gbps: f64,
}

/// One lock-step demand group.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Caller identifier, returned in [`GroupOutcome`].
    pub id: GroupId,
    /// Fairness weight (number of hardware threads driving the demand).
    pub weight: f64,
    /// Maximum activity; 1.0 for applications (cannot run faster than
    /// unstalled), `f64::INFINITY` for open-loop probes.
    pub cap: f64,
    /// Per-memory-node traffic at activity 1.0.
    pub flows: Vec<FlowDemand>,
}

/// Outcome for one group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupOutcome {
    /// Caller identifier.
    pub id: GroupId,
    /// Achieved activity (for applications: lock-step utilization in
    /// `[0, 1]`).
    pub activity: f64,
    /// The binding constraint, if the group was frozen by a resource
    /// rather than by its own demand cap.
    pub binding: Option<ResourceKind>,
}

/// A complete epoch demand: all groups competing on the machine.
#[derive(Debug, Clone, Default)]
pub struct DemandSet {
    /// The competing groups.
    pub groups: Vec<GroupSpec>,
}

/// Solver result: per-group outcomes plus the raw allocation for resource
/// utilization diagnostics.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// One outcome per input group, same order.
    pub outcomes: Vec<GroupOutcome>,
    /// Raw allocation (resource usage vector, bindings by dense index).
    pub allocation: Allocation,
}

impl DemandSet {
    /// Build an empty demand set.
    pub fn new() -> Self {
        DemandSet { groups: Vec::new() }
    }

    /// Add a group.
    pub fn push(&mut self, g: GroupSpec) {
        self.groups.push(g);
    }

    /// Translate groups into bundles and solve.
    pub fn solve(
        &self,
        machine: &MachineTopology,
        resources: &ResourceTable,
        ctrl_model: &ControllerModel,
    ) -> SolveResult {
        let bundles: Vec<Bundle> = self
            .groups
            .iter()
            .map(|g| group_to_bundle(g, machine, resources, ctrl_model))
            .collect();
        let allocation = solve_maxmin(resources.capacities(), &bundles);
        let outcomes = self
            .groups
            .iter()
            .enumerate()
            .map(|(i, g)| GroupOutcome {
                id: g.id,
                activity: allocation.activity[i],
                binding: allocation.binding[i].map(|r| resources.kind(r)),
            })
            .collect();
        SolveResult { outcomes, allocation }
    }
}

/// Accumulate a group's flows into one bundle usage vector.
fn group_to_bundle(
    g: &GroupSpec,
    machine: &MachineTopology,
    resources: &ResourceTable,
    ctrl_model: &ControllerModel,
) -> Bundle {
    // Dense accumulation then sparsification keeps a resource listed once.
    let mut usage = vec![0.0f64; resources.len()];
    for f in &g.flows {
        debug_assert!(f.read_gbps >= 0.0 && f.write_gbps >= 0.0);
        if f.read_gbps > 0.0 {
            // Data flows mem -> cpu.
            usage[resources.ctrl(f.mem)] += ctrl_model.controller_usage(f.read_gbps, 0.0);
            usage[resources.ingress(f.cpu)] += f.read_gbps;
            if f.mem != f.cpu {
                usage[resources.path_cap(f.mem, f.cpu)] += f.read_gbps;
                for hop in machine.routes().get(f.mem, f.cpu).hops() {
                    usage[resources.link_dir(hop.link, hop.dir)] += f.read_gbps;
                }
            }
        }
        if f.write_gbps > 0.0 {
            // Data flows cpu -> mem; the write lands on mem's controller
            // with amplification, traversing the cpu->mem route.
            usage[resources.ctrl(f.mem)] += ctrl_model.controller_usage(0.0, f.write_gbps);
            if f.mem != f.cpu {
                usage[resources.path_cap(f.cpu, f.mem)] += f.write_gbps;
                for hop in machine.routes().get(f.cpu, f.mem).hops() {
                    usage[resources.link_dir(hop.link, hop.dir)] += f.write_gbps;
                }
            }
        }
    }
    let sparse: Vec<(usize, f64)> =
        usage.into_iter().enumerate().filter(|&(_, c)| c > 0.0).collect();
    Bundle::new(sparse, g.cap, g.weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    fn setup() -> (MachineTopology, ResourceTable, ControllerModel) {
        let m = machines::machine_b();
        let rt = ResourceTable::from_machine(&m);
        (m, rt, ControllerModel::default())
    }

    #[test]
    fn local_only_group_bounded_by_cap() {
        let (m, rt, cm) = setup();
        let mut ds = DemandSet::new();
        ds.push(GroupSpec {
            id: 7,
            weight: 7.0,
            cap: 1.0,
            flows: vec![FlowDemand {
                mem: NodeId(0),
                cpu: NodeId(0),
                read_gbps: 10.0,
                write_gbps: 0.0,
            }],
        });
        let r = ds.solve(&m, &rt, &cm);
        assert_eq!(r.outcomes[0].id, 7);
        assert!((r.outcomes[0].activity - 1.0).abs() < 1e-9);
        assert_eq!(r.outcomes[0].binding, None);
    }

    #[test]
    fn local_saturation_binds_at_controller() {
        let (m, rt, cm) = setup();
        let mut ds = DemandSet::new();
        ds.push(GroupSpec {
            id: 0,
            weight: 7.0,
            cap: 1.0,
            flows: vec![FlowDemand {
                mem: NodeId(0),
                cpu: NodeId(0),
                read_gbps: 40.0, // above the 28 GB/s controller
                write_gbps: 0.0,
            }],
        });
        let r = ds.solve(&m, &rt, &cm);
        assert!((r.outcomes[0].activity - 28.0 / 40.0).abs() < 1e-9);
        assert_eq!(r.outcomes[0].binding, Some(ResourceKind::Controller(NodeId(0))));
    }

    #[test]
    fn writes_amplified_at_controller() {
        let (m, rt, cm) = setup();
        let mut ds = DemandSet::new();
        ds.push(GroupSpec {
            id: 0,
            weight: 7.0,
            cap: f64::INFINITY,
            flows: vec![FlowDemand {
                mem: NodeId(0),
                cpu: NodeId(0),
                read_gbps: 0.0,
                write_gbps: 1.0,
            }],
        });
        let r = ds.solve(&m, &rt, &cm);
        // all-write stream achieves 28 / 1.25 = 22.4 GB/s
        assert!((r.outcomes[0].activity - 28.0 / 1.25).abs() < 1e-9);
    }

    #[test]
    fn qpi_congestion_shared_between_cross_socket_readers() {
        let (m, rt, cm) = setup();
        // Both node-2 and node-3 CPUs read from node 0: they share the QPI
        // (16 GB/s) and node 0's controller.
        let mk = |id, cpu| GroupSpec {
            id,
            weight: 7.0,
            cap: f64::INFINITY,
            flows: vec![FlowDemand {
                mem: NodeId(0),
                cpu: NodeId(cpu),
                read_gbps: 1.0,
                write_gbps: 0.0,
            }],
        };
        let mut ds = DemandSet::new();
        ds.push(mk(0, 2));
        ds.push(mk(1, 3));
        let r = ds.solve(&m, &rt, &cm);
        let total = r.outcomes[0].activity + r.outcomes[1].activity;
        // QPI (16) binds before the controller (28) or the path caps
        // (13.5 + 12.6 = 26.1): the pair must split exactly 16 GB/s.
        assert!((total - 16.0).abs() < 1e-6, "total {total}");
        // max-min: equal weights -> equal split
        assert!((r.outcomes[0].activity - 8.0).abs() < 1e-6);
    }

    #[test]
    fn lockstep_group_paced_by_slowest_transfer() {
        let (m, rt, cm) = setup();
        // Node-0 threads read 10 GB/s from node 0 and 10 GB/s from node 1
        // per unit activity; the weakest constraint is... none below cap,
        // so activity reaches 1. Then triple the demand: the intra-socket
        // link (21 GB/s) binds the node-1 leg: activity = 21/30.
        let mut ds = DemandSet::new();
        ds.push(GroupSpec {
            id: 0,
            weight: 7.0,
            cap: 1.0,
            flows: vec![
                FlowDemand { mem: NodeId(0), cpu: NodeId(0), read_gbps: 30.0, write_gbps: 0.0 },
                FlowDemand { mem: NodeId(1), cpu: NodeId(0), read_gbps: 30.0, write_gbps: 0.0 },
            ],
        });
        let r = ds.solve(&m, &rt, &cm);
        // ingress at node 0 is 42: total read 60 per activity -> 0.7 from
        // ingress; node-1 leg limited by link/path 21/30 = 0.7 too; ctrl 0
        // at 28/30... controller 0 is the binding one (28/30 ≈ 0.933 > 0.7).
        // The tightest is min(42/60, 21/30, 28/30, 21(path)/30) = 0.7.
        assert!((r.outcomes[0].activity - 0.7).abs() < 1e-9, "{}", r.outcomes[0].activity);
    }

    #[test]
    fn two_processes_weighted_by_threads() {
        let (m, rt, cm) = setup();
        let mk = |id, weight| GroupSpec {
            id,
            weight,
            cap: f64::INFINITY,
            flows: vec![FlowDemand {
                mem: NodeId(1),
                cpu: NodeId(1),
                read_gbps: 1.0,
                write_gbps: 0.0,
            }],
        };
        let mut ds = DemandSet::new();
        ds.push(mk(0, 6.0));
        ds.push(mk(1, 1.0));
        let r = ds.solve(&m, &rt, &cm);
        // 28 GB/s controller split 6:1
        assert!((r.outcomes[0].activity - 24.0).abs() < 1e-6);
        assert!((r.outcomes[1].activity - 4.0).abs() < 1e-6);
    }

    #[test]
    fn empty_demand_set() {
        let (m, rt, cm) = setup();
        let r = DemandSet::new().solve(&m, &rt, &cm);
        assert!(r.outcomes.is_empty());
        assert!(r.allocation.used.iter().all(|&u| u == 0.0));
    }
}
