//! Single-flow bandwidth probing — the simulated analogue of a
//! `memcpy`-style point-to-point bandwidth benchmark.

use crate::controller::ControllerModel;
use crate::network::{DemandSet, FlowDemand, GroupSpec};
use crate::resource::ResourceTable;
use bwap_topology::{BwMatrix, MachineTopology, NodeId};

/// Measure the machine's node-to-node read bandwidth matrix by running one
/// open-loop flow per ordered pair, one pair at a time (no cross-pair
/// contention). On the reference machines this returns the calibrated
/// matrix exactly — for machine A, the paper's Fig. 1a.
pub fn probe_matrix(machine: &MachineTopology) -> BwMatrix {
    let resources = ResourceTable::from_machine(machine);
    let ctrl_model = ControllerModel::default();
    let n = machine.node_count();
    let mut out = BwMatrix::zeros(n);
    for s in 0..n {
        for d in 0..n {
            let (src, dst) = (NodeId(s as u16), NodeId(d as u16));
            let mut ds = DemandSet::new();
            ds.push(GroupSpec {
                id: 0,
                weight: 1.0,
                cap: f64::INFINITY,
                flows: vec![FlowDemand { mem: src, cpu: dst, read_gbps: 1.0, write_gbps: 0.0 }],
            });
            let r = ds.solve(machine, &resources, &ctrl_model);
            out.set(src, dst, r.outcomes[0].activity);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    #[test]
    fn machine_a_probe_reproduces_fig1a_exactly() {
        let m = machines::machine_a();
        let probed = probe_matrix(&m);
        let err = probed.max_rel_error(&machines::fig1a_matrix()).unwrap();
        assert!(err < 1e-9, "max relative error {err}");
    }

    #[test]
    fn machine_b_probe_reproduces_calibration() {
        let m = machines::machine_b();
        let probed = probe_matrix(&m);
        let err = probed.max_rel_error(m.path_caps()).unwrap();
        assert!(err < 1e-9, "max relative error {err}");
    }

    #[test]
    fn probe_amplitude_matches_paper() {
        assert!((probe_matrix(&machines::machine_a()).amplitude() - 5.83).abs() < 0.01);
        assert!((probe_matrix(&machines::machine_b()).amplitude() - 2.3).abs() < 0.01);
    }

    #[test]
    fn tiered_machine_probe_sees_the_slow_tier() {
        // Single-flow probes on the tiered machine: expander-served rows
        // run at the tier's scaled controller bandwidth. (Columns toward
        // the CPU-less nodes model the migration engine's reach; BWAP's
        // Eq. 5 only ever reads worker columns.)
        let m = machines::machine_tiered();
        let p = probe_matrix(&m);
        for w in [0u16, 1] {
            assert!((p.get(NodeId(2), NodeId(w)) - 9.9).abs() < 1e-9);
            assert!((p.get(NodeId(3), NodeId(w)) - 9.9).abs() < 1e-9);
        }
        assert_eq!(p.get(NodeId(0), NodeId(1)), 15.0);
    }

    #[test]
    fn symmetric_machine_probes_symmetric() {
        let m = machines::symmetric_quad();
        let p = probe_matrix(&m);
        for s in 0..4u16 {
            for d in 0..4u16 {
                assert_eq!(p.get(NodeId(s), NodeId(d)), p.get(NodeId(d), NodeId(s)));
            }
        }
    }
}
