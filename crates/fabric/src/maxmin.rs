//! Weighted, demand-bounded max-min fair allocation by progressive filling.
//!
//! The solver works on [`Bundle`]s: composite flows whose whole usage vector
//! scales with a single *activity* level. Classic per-flow max-min is the
//! special case of one resource usage entry per bundle.
//!
//! Progressive filling: raise every unfrozen bundle's activity at a rate
//! proportional to its weight until either a resource saturates (freezing
//! every bundle using it) or a bundle reaches its demand cap (freezing just
//! that bundle). Repeat until all bundles are frozen. The result is the
//! unique weighted max-min fair allocation.

/// A composite flow. `usage` lists `(resource index, capacity consumed per
/// unit of activity)` pairs; entries must reference valid resources and have
/// positive coefficients. `cap` bounds the activity (use `f64::INFINITY`
/// for unbounded probes); `weight` is the fairness weight (e.g. number of
/// threads behind the bundle).
#[derive(Debug, Clone)]
pub struct Bundle {
    /// `(resource index, usage per unit activity)`; a resource may appear
    /// at most once per bundle.
    pub usage: Vec<(usize, f64)>,
    /// Maximum activity (demand bound).
    pub cap: f64,
    /// Fairness weight; must be positive.
    pub weight: f64,
}

impl Bundle {
    /// Convenience constructor.
    pub fn new(usage: Vec<(usize, f64)>, cap: f64, weight: f64) -> Self {
        Bundle { usage, cap, weight }
    }
}

/// A set of bundles stored flat (headers + one shared usage arena), so the
/// epoch hot loop can rebuild the solver input every epoch without
/// per-bundle allocations. [`solve_maxmin`] is the convenience wrapper
/// over `&[Bundle]`.
#[derive(Debug, Clone, Default)]
pub struct BundleSet {
    /// `(usage_end, cap, weight)` per bundle; usage `i` spans
    /// `usage[headers[i-1].0..headers[i].0]`.
    headers: Vec<(usize, f64, f64)>,
    usage: Vec<(usize, f64)>,
}

impl BundleSet {
    /// Empty set.
    pub fn new() -> Self {
        BundleSet::default()
    }

    /// Drop all bundles, keeping the allocations.
    pub fn clear(&mut self) {
        self.headers.clear();
        self.usage.clear();
    }

    /// Start a new bundle; follow with [`BundleSet::push_usage`] calls.
    pub fn push_bundle(&mut self, cap: f64, weight: f64) {
        self.headers.push((self.usage.len(), cap, weight));
    }

    /// Add one `(resource, usage per unit activity)` entry to the bundle
    /// opened by the last [`BundleSet::push_bundle`].
    pub fn push_usage(&mut self, resource: usize, coeff: f64) {
        debug_assert!(!self.headers.is_empty(), "push_bundle first");
        self.usage.push((resource, coeff));
        self.headers.last_mut().expect("bundle open").0 = self.usage.len();
    }

    /// Number of bundles.
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// Whether the set has no bundles.
    pub fn is_empty(&self) -> bool {
        self.headers.is_empty()
    }

    fn usage_of(&self, i: usize) -> &[(usize, f64)] {
        let start = if i == 0 { 0 } else { self.headers[i - 1].0 };
        &self.usage[start..self.headers[i].0]
    }

    fn cap(&self, i: usize) -> f64 {
        self.headers[i].1
    }

    fn weight(&self, i: usize) -> f64 {
        self.headers[i].2
    }
}

/// Reusable buffers for [`solve_maxmin_set`]: the progressive-filling
/// rounds refill these in place instead of allocating a fresh
/// `vec![0.0; nr]` per round.
#[derive(Debug, Clone, Default)]
pub struct MaxminScratch {
    load: Vec<f64>,
    remaining: Vec<f64>,
    active: Vec<bool>,
    saturated: Vec<usize>,
}

/// Result of [`solve_maxmin`].
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    /// Activity level per bundle (same order as input).
    pub activity: Vec<f64>,
    /// For each bundle, the resource that froze it (`None` if it reached
    /// its demand cap instead) — the *binding constraint*, useful for
    /// diagnosing whether a workload is controller-, link-, path- or
    /// ingress-bound.
    pub binding: Vec<Option<usize>>,
    /// Total usage per resource after allocation.
    pub used: Vec<f64>,
}

impl Allocation {
    /// Utilization (used / capacity) of resource `r`.
    pub fn utilization(&self, caps: &[f64], r: usize) -> f64 {
        if caps[r] == 0.0 {
            0.0
        } else {
            self.used[r] / caps[r]
        }
    }
}

const EPS: f64 = 1e-12;

/// Compute the weighted, demand-bounded max-min fair allocation of
/// `bundles` over resources with the given `capacities`.
///
/// Panics if a bundle references an out-of-range resource, has a
/// non-positive weight, or a non-positive usage coefficient.
///
/// Convenience wrapper over [`solve_maxmin_set`] for callers outside the
/// epoch hot loop.
pub fn solve_maxmin(capacities: &[f64], bundles: &[Bundle]) -> Allocation {
    let mut set = BundleSet::new();
    for b in bundles {
        set.push_bundle(b.cap, b.weight);
        for &(r, c) in &b.usage {
            set.push_usage(r, c);
        }
    }
    let mut ws = MaxminScratch::default();
    let mut out = Allocation { activity: Vec::new(), binding: Vec::new(), used: Vec::new() };
    solve_maxmin_set(capacities, &set, &mut ws, &mut out);
    out
}

/// Allocation-free form of [`solve_maxmin`]: all working state lives in
/// `ws` and the result in `out`, both reused across epochs. The math —
/// including the per-round `load` refill order — is operation-for-
/// operation identical to the historical allocating implementation, so
/// results are bitwise reproducible across the refactor.
pub fn solve_maxmin_set(
    capacities: &[f64],
    set: &BundleSet,
    ws: &mut MaxminScratch,
    out: &mut Allocation,
) {
    for i in 0..set.len() {
        assert!(set.weight(i) > 0.0, "bundle weight must be positive");
        for &(r, c) in set.usage_of(i) {
            assert!(r < capacities.len(), "resource index {r} out of range");
            assert!(c > 0.0, "usage coefficient must be positive");
        }
    }
    let nb = set.len();
    let nr = capacities.len();
    out.activity.clear();
    out.activity.resize(nb, 0.0);
    out.binding.clear();
    out.binding.resize(nb, None);
    ws.remaining.clear();
    ws.remaining.extend_from_slice(capacities);
    ws.active.clear();
    ws.active.extend((0..nb).map(|i| set.cap(i) > EPS && !set.usage_of(i).is_empty()));
    ws.load.clear();
    ws.load.resize(nr, 0.0);
    // Bundles with no usage get their full cap immediately (they consume
    // nothing); bundles with zero cap stay at zero.
    for i in 0..nb {
        if set.usage_of(i).is_empty() {
            out.activity[i] = if set.cap(i).is_finite() { set.cap(i) } else { 0.0 };
        }
    }

    // Each iteration freezes at least one bundle, so at most nb rounds.
    for _round in 0..nb {
        if !ws.active.iter().any(|&a| a) {
            break;
        }
        // Weighted load per resource from active bundles (buffer refilled
        // in place, same accumulation order as ever).
        ws.load.fill(0.0);
        for i in 0..nb {
            if !ws.active[i] {
                continue;
            }
            for &(r, c) in set.usage_of(i) {
                ws.load[r] += set.weight(i) * c;
            }
        }
        // Largest uniform step `delta` (activity increases by weight*delta).
        let mut delta = f64::INFINITY;
        let mut limit_resource: Option<usize> = None;
        for r in 0..nr {
            if ws.load[r] > EPS {
                let d = ws.remaining[r] / ws.load[r];
                if d < delta {
                    delta = d;
                    limit_resource = Some(r);
                }
            }
        }
        let mut limit_bundle: Option<usize> = None;
        for i in 0..nb {
            if ws.active[i] && set.cap(i).is_finite() {
                let d = (set.cap(i) - out.activity[i]) / set.weight(i);
                if d < delta {
                    delta = d;
                    limit_bundle = Some(i);
                    limit_resource = None;
                }
            }
        }
        if !delta.is_finite() {
            // Nothing limits the step: unbounded bundles with no usable
            // resource load (cannot happen with positive coefficients).
            break;
        }
        let delta = delta.max(0.0);
        // Apply the step.
        for i in 0..nb {
            if !ws.active[i] {
                continue;
            }
            out.activity[i] += set.weight(i) * delta;
            for &(r, c) in set.usage_of(i) {
                ws.remaining[r] -= set.weight(i) * c * delta;
            }
        }
        // Freeze: bundle that hit its cap, and bundles using any resource
        // that saturated this round.
        if let Some(i) = limit_bundle {
            ws.active[i] = false;
        }
        // A resource counts as saturated if its remaining capacity is
        // negligible relative to its original capacity.
        ws.saturated.clear();
        ws.saturated.extend(
            (0..nr)
                .filter(|&r| ws.load[r] > EPS && ws.remaining[r] <= 1e-9 * capacities[r].max(1.0)),
        );
        if !ws.saturated.is_empty() {
            for i in 0..nb {
                if !ws.active[i] {
                    continue;
                }
                if let Some(&r) =
                    ws.saturated.iter().find(|&&r| set.usage_of(i).iter().any(|&(br, _)| br == r))
                {
                    ws.active[i] = false;
                    out.binding[i] = Some(r);
                }
            }
        } else if limit_bundle.is_none() && limit_resource.is_some() {
            // Defensive: the limiting resource should have been caught by
            // the saturation scan; freeze its users explicitly.
            let r = limit_resource.unwrap();
            for i in 0..nb {
                if ws.active[i] && set.usage_of(i).iter().any(|&(br, _)| br == r) {
                    ws.active[i] = false;
                    out.binding[i] = Some(r);
                }
            }
        }
    }

    out.used.clear();
    out.used.resize(nr, 0.0);
    for i in 0..nb {
        for &(r, c) in set.usage_of(i) {
            out.used[r] += out.activity[i] * c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn single_bundle_demand_bounded() {
        let alloc = solve_maxmin(&[10.0], &[Bundle::new(vec![(0, 1.0)], 4.0, 1.0)]);
        approx(alloc.activity[0], 4.0);
        assert_eq!(alloc.binding[0], None); // stopped by demand, not resource
        approx(alloc.used[0], 4.0);
    }

    #[test]
    fn single_bundle_resource_bounded() {
        let alloc = solve_maxmin(&[10.0], &[Bundle::new(vec![(0, 1.0)], f64::INFINITY, 1.0)]);
        approx(alloc.activity[0], 10.0);
        assert_eq!(alloc.binding[0], Some(0));
    }

    #[test]
    fn equal_split_between_equal_bundles() {
        let b = Bundle::new(vec![(0, 1.0)], f64::INFINITY, 1.0);
        let alloc = solve_maxmin(&[12.0], &[b.clone(), b]);
        approx(alloc.activity[0], 6.0);
        approx(alloc.activity[1], 6.0);
    }

    #[test]
    fn weighted_split() {
        let b1 = Bundle::new(vec![(0, 1.0)], f64::INFINITY, 3.0);
        let b2 = Bundle::new(vec![(0, 1.0)], f64::INFINITY, 1.0);
        let alloc = solve_maxmin(&[12.0], &[b1, b2]);
        approx(alloc.activity[0], 9.0);
        approx(alloc.activity[1], 3.0);
    }

    #[test]
    fn demand_bounded_releases_to_others() {
        // Bundle 0 only wants 2; bundle 1 takes the rest.
        let b1 = Bundle::new(vec![(0, 1.0)], 2.0, 1.0);
        let b2 = Bundle::new(vec![(0, 1.0)], f64::INFINITY, 1.0);
        let alloc = solve_maxmin(&[12.0], &[b1, b2]);
        approx(alloc.activity[0], 2.0);
        approx(alloc.activity[1], 10.0);
    }

    #[test]
    fn bottleneck_chain() {
        // Bundle 0 crosses resources 0 and 1; bundle 1 only resource 1.
        // Resource 0 is tight (3), resource 1 loose (10): bundle 0 frozen
        // at 3 by resource 0; bundle 1 then takes 7 of resource 1.
        let b0 = Bundle::new(vec![(0, 1.0), (1, 1.0)], f64::INFINITY, 1.0);
        let b1 = Bundle::new(vec![(1, 1.0)], f64::INFINITY, 1.0);
        let alloc = solve_maxmin(&[3.0, 10.0], &[b0, b1]);
        approx(alloc.activity[0], 3.0);
        approx(alloc.activity[1], 7.0);
        assert_eq!(alloc.binding[0], Some(0));
        assert_eq!(alloc.binding[1], Some(1));
    }

    #[test]
    fn composite_usage_scales_together() {
        // Bundle consumes 2x on resource 0 and 1x on resource 1 per unit.
        let b = Bundle::new(vec![(0, 2.0), (1, 1.0)], f64::INFINITY, 1.0);
        let alloc = solve_maxmin(&[10.0, 10.0], &[b]);
        approx(alloc.activity[0], 5.0); // resource 0 binds at activity 5
        assert_eq!(alloc.binding[0], Some(0));
        approx(alloc.used[0], 10.0);
        approx(alloc.used[1], 5.0);
    }

    #[test]
    fn lockstep_semantics_match_paper_eq1() {
        // Paper Eq. 1: a worker reading with weights {0.5, 0.5} from a
        // 10 GB/s local node and a 2 GB/s remote path finishes at the pace
        // of the remote transfer. Bundle demand vector = (0.5, 0.5) per
        // unit activity; activity is total GB/s of useful progress.
        let b = Bundle::new(vec![(0, 0.5), (1, 0.5)], f64::INFINITY, 1.0);
        let alloc = solve_maxmin(&[10.0, 2.0], &[b]);
        approx(alloc.activity[0], 4.0); // 2 GB/s path / 0.5 share
        assert_eq!(alloc.binding[0], Some(1));
        // With bandwidth-proportional weights (Eq. 2: 10/12, 2/12) the same
        // resources support activity 12.
        let b = Bundle::new(vec![(0, 10.0 / 12.0), (1, 2.0 / 12.0)], f64::INFINITY, 1.0);
        let alloc = solve_maxmin(&[10.0, 2.0], &[b]);
        approx(alloc.activity[0], 12.0);
    }

    #[test]
    fn zero_cap_bundle_gets_nothing() {
        let b = Bundle::new(vec![(0, 1.0)], 0.0, 1.0);
        let alloc = solve_maxmin(&[10.0], &[b]);
        approx(alloc.activity[0], 0.0);
        approx(alloc.used[0], 0.0);
    }

    #[test]
    fn empty_inputs() {
        let alloc = solve_maxmin(&[5.0], &[]);
        assert!(alloc.activity.is_empty());
        approx(alloc.used[0], 0.0);
    }

    #[test]
    fn three_way_asymmetric_contention() {
        // Two bundles share resource 0; one also needs tight resource 1.
        let b0 = Bundle::new(vec![(0, 1.0), (1, 1.0)], f64::INFINITY, 1.0);
        let b1 = Bundle::new(vec![(0, 1.0)], f64::INFINITY, 1.0);
        let alloc = solve_maxmin(&[10.0, 2.0], &[b0, b1]);
        approx(alloc.activity[0], 2.0); // frozen by resource 1
        approx(alloc.activity[1], 8.0); // rest of resource 0
    }

    #[test]
    fn bundle_set_reuse_is_bitwise_identical() {
        // The scratch-based entry point must agree bit for bit with the
        // allocating wrapper, including when its buffers carry state from
        // a previous, differently-shaped solve.
        let bundles = [
            Bundle::new(vec![(0, 1.0), (1, 0.7)], 1.0, 3.0),
            Bundle::new(vec![(1, 1.3)], f64::INFINITY, 1.0),
            Bundle::new(vec![(0, 0.2), (2, 1.0)], 2.5, 2.0),
        ];
        let caps = [10.0, 2.0, 4.0];
        let reference = solve_maxmin(&caps, &bundles);
        let mut ws = MaxminScratch::default();
        let mut out = Allocation::default();
        // Dirty the buffers with an unrelated solve first.
        let mut warm = BundleSet::new();
        warm.push_bundle(f64::INFINITY, 1.0);
        warm.push_usage(0, 2.0);
        solve_maxmin_set(&[7.0], &warm, &mut ws, &mut out);
        // Now the real one.
        let mut set = BundleSet::new();
        for b in &bundles {
            set.push_bundle(b.cap, b.weight);
            for &(r, c) in &b.usage {
                set.push_usage(r, c);
            }
        }
        solve_maxmin_set(&caps, &set, &mut ws, &mut out);
        assert_eq!(out.activity, reference.activity);
        assert_eq!(out.binding, reference.binding);
        assert_eq!(out.used, reference.used);
    }

    #[test]
    #[should_panic(expected = "resource index")]
    fn out_of_range_resource_panics() {
        solve_maxmin(&[1.0], &[Bundle::new(vec![(3, 1.0)], 1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_panics() {
        solve_maxmin(&[1.0], &[Bundle::new(vec![(0, 1.0)], 1.0, 0.0)]);
    }
}
