//! Capacity resources of a machine, densely indexed for the solver.

use bwap_topology::{Direction, LinkId, MachineTopology, NodeId};

/// What a resource slot represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// Memory controller of a node (GB/s served from its DRAM).
    Controller(NodeId),
    /// Core-side ingress limit of a node (GB/s its cores can absorb). For
    /// memory-only expander nodes no application flow ever terminates
    /// here; the cap then bounds the write side of page migrations into
    /// the node (the DMA/migration engine).
    Ingress(NodeId),
    /// One direction of a physical link.
    LinkDir(LinkId, Direction),
    /// Calibrated end-to-end cap for an ordered `(src mem, dst cpu)` pair;
    /// shared by every flow moving data from `src` to `dst`.
    PathCap(NodeId, NodeId),
}

/// Dense table of all resources of a machine with their capacities (GB/s).
#[derive(Debug, Clone)]
pub struct ResourceTable {
    kinds: Vec<ResourceKind>,
    caps: Vec<f64>,
    n: usize,
    links: usize,
}

impl ResourceTable {
    /// Build the resource table for a machine.
    pub fn from_machine(m: &MachineTopology) -> Self {
        let n = m.node_count();
        let links = m.links().len();
        let mut kinds = Vec::with_capacity(2 * n + 2 * links + n * n);
        let mut caps = Vec::with_capacity(kinds.capacity());
        for i in 0..n {
            kinds.push(ResourceKind::Controller(NodeId(i as u16)));
            caps.push(m.node(NodeId(i as u16)).ctrl_bw);
        }
        for i in 0..n {
            kinds.push(ResourceKind::Ingress(NodeId(i as u16)));
            caps.push(m.node(NodeId(i as u16)).ingress_bw);
        }
        for (li, link) in m.links().iter().enumerate() {
            kinds.push(ResourceKind::LinkDir(LinkId(li), Direction::AtoB));
            caps.push(link.cap_ab);
            kinds.push(ResourceKind::LinkDir(LinkId(li), Direction::BtoA));
            caps.push(link.cap_ba);
        }
        for s in 0..n {
            for d in 0..n {
                kinds.push(ResourceKind::PathCap(NodeId(s as u16), NodeId(d as u16)));
                caps.push(m.path_caps().get(NodeId(s as u16), NodeId(d as u16)));
            }
        }
        ResourceTable { kinds, caps, n, links }
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// Whether the table is empty (never true for a valid machine).
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// Capacities slice, indexed by resource id.
    pub fn capacities(&self) -> &[f64] {
        &self.caps
    }

    /// Kind of resource `i`.
    pub fn kind(&self, i: usize) -> ResourceKind {
        self.kinds[i]
    }

    /// Resource id of a node's memory controller.
    #[inline]
    pub fn ctrl(&self, n: NodeId) -> usize {
        n.idx()
    }

    /// Resource id of a node's ingress limit.
    #[inline]
    pub fn ingress(&self, n: NodeId) -> usize {
        self.n + n.idx()
    }

    /// Resource id of a directed link.
    #[inline]
    pub fn link_dir(&self, l: LinkId, d: Direction) -> usize {
        2 * self.n
            + 2 * l.0
            + match d {
                Direction::AtoB => 0,
                Direction::BtoA => 1,
            }
    }

    /// Number of (undirected) interconnect links in the table; directed
    /// link resources span ids `link_dir(LinkId(0), AtoB) ..` for
    /// `2 * link_count()` entries.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links
    }

    /// Resource id of the `(src, dst)` path cap.
    #[inline]
    pub fn path_cap(&self, src: NodeId, dst: NodeId) -> usize {
        2 * self.n + 2 * self.links + src.idx() * self.n + dst.idx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    #[test]
    fn indices_are_dense_and_consistent() {
        let m = machines::machine_b();
        let rt = ResourceTable::from_machine(&m);
        assert_eq!(rt.len(), 2 * 4 + 2 * 3 + 16);
        assert_eq!(rt.kind(rt.ctrl(NodeId(2))), ResourceKind::Controller(NodeId(2)));
        assert_eq!(rt.kind(rt.ingress(NodeId(0))), ResourceKind::Ingress(NodeId(0)));
        assert_eq!(
            rt.kind(rt.link_dir(LinkId(1), Direction::BtoA)),
            ResourceKind::LinkDir(LinkId(1), Direction::BtoA)
        );
        assert_eq!(
            rt.kind(rt.path_cap(NodeId(3), NodeId(1))),
            ResourceKind::PathCap(NodeId(3), NodeId(1))
        );
    }

    #[test]
    fn capacities_match_machine() {
        let m = machines::machine_a();
        let rt = ResourceTable::from_machine(&m);
        assert_eq!(rt.capacities()[rt.ctrl(NodeId(4))], 10.5);
        assert!((rt.capacities()[rt.ingress(NodeId(0))] - 9.2 * 1.6).abs() < 1e-9);
        assert_eq!(
            rt.capacities()[rt.path_cap(NodeId(0), NodeId(1))],
            m.path_caps().get(NodeId(0), NodeId(1))
        );
    }

    #[test]
    fn every_resource_positive() {
        for m in [
            machines::machine_a(),
            machines::machine_b(),
            machines::twin(),
            machines::machine_tiered(),
        ] {
            let rt = ResourceTable::from_machine(&m);
            assert!(rt.capacities().iter().all(|&c| c > 0.0));
            assert!(!rt.is_empty());
        }
    }

    #[test]
    fn memory_only_nodes_keep_a_migration_ingress_cap() {
        // CPU-less expanders still get an ingress resource: it bounds
        // migration writes into the tier at the tier's own bandwidth.
        let m = machines::machine_tiered();
        let rt = ResourceTable::from_machine(&m);
        for n in [NodeId(2), NodeId(3)] {
            assert!(m.node(n).is_memory_only());
            let cap = rt.capacities()[rt.ingress(n)];
            assert_eq!(cap, m.node(n).ctrl_bw);
        }
    }
}
