//! Property tests over the allocator: max-min optimality and physical
//! consistency of the demand translation.

use bwap_fabric::{
    solve_maxmin, Bundle, ControllerModel, DemandSet, FlowDemand, GroupSpec, ResourceTable,
};
use bwap_topology::{machines, NodeId};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn random_problem(seed: u64) -> (Vec<f64>, Vec<Bundle>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let nr = rng.gen_range(2..10usize);
    let caps: Vec<f64> = (0..nr).map(|_| rng.gen_range(1.0..20.0)).collect();
    let bundles: Vec<Bundle> = (0..rng.gen_range(1..12usize))
        .map(|_| {
            let mut usage = Vec::new();
            for _ in 0..rng.gen_range(1..=nr) {
                let r = rng.gen_range(0..nr);
                if !usage.iter().any(|&(x, _): &(usize, f64)| x == r) {
                    usage.push((r, rng.gen_range(0.2..2.0)));
                }
            }
            Bundle::new(usage, f64::INFINITY, rng.gen_range(0.5..3.0))
        })
        .collect();
    (caps, bundles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Max-min optimality (water-filling property): no bundle's activity
    /// can be raised without violating a capacity, because each is frozen
    /// by a saturated resource.
    #[test]
    fn allocation_is_pareto_maximal(seed in 0u64..5000) {
        let (caps, bundles) = random_problem(seed);
        let alloc = solve_maxmin(&caps, &bundles);
        for (i, b) in bundles.iter().enumerate() {
            // Raising bundle i by epsilon must overflow some resource.
            let eps = 1e-6;
            let overflows = b.usage.iter().any(|&(r, c)| {
                alloc.used[r] + eps * c > caps[r] * (1.0 + 1e-9)
            });
            prop_assert!(
                overflows,
                "bundle {i} could still grow: activity {}",
                alloc.activity[i]
            );
        }
    }

    /// Scaling all capacities and demands together scales the allocation
    /// (the solver is positively homogeneous).
    #[test]
    fn solver_is_scale_invariant(seed in 0u64..2000, scale in 0.1f64..10.0) {
        let (caps, bundles) = random_problem(seed);
        let a1 = solve_maxmin(&caps, &bundles);
        let caps2: Vec<f64> = caps.iter().map(|c| c * scale).collect();
        let a2 = solve_maxmin(&caps2, &bundles);
        for i in 0..bundles.len() {
            prop_assert!((a2.activity[i] - a1.activity[i] * scale).abs()
                <= 1e-6 * (1.0 + a1.activity[i] * scale));
        }
    }

    /// Translating application demand through the network builder never
    /// exceeds machine resources, for arbitrary placements and demand
    /// levels.
    #[test]
    fn demand_translation_respects_machine(
        demand in 0.5f64..60.0,
        share0 in 0.0f64..1.0,
        cross in any::<bool>(),
    ) {
        let m = machines::machine_a();
        let rt = ResourceTable::from_machine(&m);
        let cm = ControllerModel::default();
        let cpu = if cross { NodeId(4) } else { NodeId(0) };
        let mut ds = DemandSet::new();
        ds.push(GroupSpec {
            id: 1,
            weight: 8.0,
            cap: 1.0,
            flows: vec![
                FlowDemand { mem: NodeId(0), cpu, read_gbps: demand * share0, write_gbps: 0.1 },
                FlowDemand {
                    mem: NodeId(3),
                    cpu,
                    read_gbps: demand * (1.0 - share0),
                    write_gbps: 0.0,
                },
            ],
        });
        let solved = ds.solve(&m, &rt, &cm);
        let u = solved.outcomes[0].activity;
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
        for (r, &used) in solved.allocation.used.iter().enumerate() {
            prop_assert!(used <= rt.capacities()[r] * (1.0 + 1e-6), "resource {r}");
        }
    }
}
