//! Static-DWP sweeps (paper Fig. 4): deploy the application at fixed DWP
//! values, measure execution time and average stall rate, and compare the
//! curve's minimum with what the online tuner picks.

use crate::baselines::PlacementPolicy;
use crate::error::RuntimeError;
use crate::scenario::{run_coscheduled, run_standalone};
use bwap::BwapConfig;
use bwap_topology::{MachineTopology, NodeSet};
use bwap_workloads::WorkloadSpec;

/// One point of the sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The static DWP of this run.
    pub dwp: f64,
    /// Execution time, simulated seconds.
    pub exec_time_s: f64,
    /// Average stall fraction over the run (proportional to the paper's
    /// stalled-cycles-per-second signal).
    pub stall_frac: f64,
}

/// Run `spec` at each static DWP in `dwps`. With `coscheduled`, B shares
/// the machine with Swaptions as in Fig. 4's setup.
pub fn dwp_sweep(
    machine: &MachineTopology,
    spec: &WorkloadSpec,
    workers: NodeSet,
    dwps: &[f64],
    coscheduled: bool,
) -> Result<Vec<SweepPoint>, RuntimeError> {
    dwps.iter()
        .map(|&dwp| {
            let policy = PlacementPolicy::Bwap(BwapConfig::static_dwp(dwp));
            let r = if coscheduled {
                run_coscheduled(machine, spec, workers, &policy)?
            } else {
                run_standalone(machine, spec, workers, &policy)?
            };
            Ok(SweepPoint { dwp, exec_time_s: r.exec_time_s, stall_frac: r.stall_frac })
        })
        .collect()
}

/// The DWP minimizing execution time in a sweep.
pub fn sweep_optimum(points: &[SweepPoint]) -> Option<&SweepPoint> {
    points.iter().min_by(|a, b| a.exec_time_s.partial_cmp(&b.exec_time_s).expect("finite"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    #[test]
    fn sweep_produces_requested_points() {
        let m = machines::machine_b();
        let spec = bwap_workloads::streamcluster().scaled_down(16.0);
        let workers = m.best_worker_set(1);
        let points = dwp_sweep(&m, &spec, workers, &[0.0, 0.5, 1.0], false).unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].dwp, 0.0);
        assert!(points.iter().all(|p| p.exec_time_s > 0.0));
        assert!(sweep_optimum(&points).is_some());
    }

    #[test]
    fn stall_rate_tracks_execution_time() {
        // Paper: "stall rate is effectively correlated to execution time".
        let m = machines::machine_b();
        let spec = bwap_workloads::streamcluster().scaled_down(16.0);
        let workers = m.best_worker_set(1);
        let points = dwp_sweep(&m, &spec, workers, &[0.0, 0.5, 1.0], false).unwrap();
        // Order by time and by stall fraction: ranks must agree.
        let by_time = {
            let mut v: Vec<usize> = (0..points.len()).collect();
            v.sort_by(|&a, &b| points[a].exec_time_s.partial_cmp(&points[b].exec_time_s).unwrap());
            v
        };
        let by_stall = {
            let mut v: Vec<usize> = (0..points.len()).collect();
            v.sort_by(|&a, &b| points[a].stall_frac.partial_cmp(&points[b].stall_frac).unwrap());
            v
        };
        assert_eq!(by_time, by_stall, "{points:?}");
    }
}
