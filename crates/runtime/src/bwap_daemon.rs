//! The BWAP library as a runtime daemon (stand-alone variant).
//!
//! `BWAP-init` (paper §III-B): once the application has allocated its
//! initial shared structures, BWAP places its pages at the canonical
//! distribution (DWP = 0) and starts the online hill climb — every
//! `t = 0.2 s` it samples the stall-rate counter, and each full window of
//! `n = 20` samples decides whether to raise DWP by `x = 10 %` through
//! incremental migration.

use crate::apply::apply_weights;
use crate::error::RuntimeError;
use crate::profiling::ProfileBook;
use bwap::dwp::{DwpTuner, TunerAction};
use bwap::{apply_dwp, BwapConfig, WeightDistribution};
use numasim::{Daemon, ProcessId, ProcessSample, Simulator};
use parking_lot::Mutex;
use std::sync::Arc;

/// Snapshot of a tuner's final state, shared with the scenario runner
/// (the daemon itself is owned by the simulator once registered).
#[derive(Debug, Default)]
pub struct TunerReport {
    /// Current / final DWP.
    pub dwp: f64,
    /// Whether the search completed.
    pub finished: bool,
    /// `(dwp, trimmed stall rate)` per iteration.
    pub history: Vec<(f64, f64)>,
    /// Pages queued for migration by the tuner's placement changes.
    pub pages_applied: u64,
    /// Phase-change re-tunes performed (adaptive daemon only).
    pub retunes: u64,
    /// Simulated time of each re-tune (adaptive daemon only).
    pub retune_times: Vec<f64>,
}

/// Cloneable handle onto a [`TunerReport`].
#[derive(Debug, Clone, Default)]
pub struct TunerHandle {
    inner: Arc<Mutex<TunerReport>>,
}

impl TunerHandle {
    /// Current DWP.
    pub fn dwp(&self) -> f64 {
        self.inner.lock().dwp
    }

    /// Whether the search finished.
    pub fn finished(&self) -> bool {
        self.inner.lock().finished
    }

    /// Iteration history.
    pub fn history(&self) -> Vec<(f64, f64)> {
        self.inner.lock().history.clone()
    }

    /// Total pages the tuner asked to migrate.
    pub fn pages_applied(&self) -> u64 {
        self.inner.lock().pages_applied
    }

    /// Phase-change re-tunes performed so far (always 0 for the one-shot
    /// [`BwapDaemon`]; the adaptive daemon counts its watchdog restarts).
    pub fn retunes(&self) -> u64 {
        self.inner.lock().retunes
    }

    /// Simulated timestamps of the re-tunes, in order.
    pub fn retune_times(&self) -> Vec<f64> {
        self.inner.lock().retune_times.clone()
    }

    pub(crate) fn update(&self, f: impl FnOnce(&mut TunerReport)) {
        f(&mut self.inner.lock());
    }
}

/// The stand-alone BWAP daemon. Create with [`BwapDaemon::init`], then
/// register with [`BwapDaemon::register`].
pub struct BwapDaemon {
    pid: ProcessId,
    cfg: BwapConfig,
    tuner: Option<DwpTuner>,
    prev: Option<ProcessSample>,
    handle: TunerHandle,
    done: bool,
}

impl BwapDaemon {
    /// `BWAP-init`: profile (or fetch) the canonical distribution for the
    /// process's worker set, install the initial placement, and prepare
    /// the online tuner. Returns the daemon and a handle for inspecting
    /// the search afterwards.
    ///
    /// Pass `apply_initial = false` when the process was already launched
    /// under the canonical placement (the common real-world flow: the
    /// paper's `BWAP-init` runs right after allocation, so `mbind` applies
    /// before pages are faulted in and the initial placement is free).
    /// With `apply_initial = true` the existing pages migrate to the
    /// canonical distribution instead.
    pub fn init(
        sim: &mut Simulator,
        pid: ProcessId,
        cfg: &BwapConfig,
        apply_initial: bool,
    ) -> Result<(BwapDaemon, TunerHandle), RuntimeError> {
        let workers = sim.process(pid)?.workers;
        let n = sim.machine().node_count();
        let canonical = if cfg.uniform_canonical {
            WeightDistribution::uniform(n)
        } else {
            ProfileBook::canonical_weights(sim.machine(), workers)
        };
        let initial = apply_dwp(&canonical, workers, cfg.fixed_dwp)?;
        let queued = if apply_initial { apply_weights(sim, pid, &initial, cfg.mode)? } else { 0 };
        let handle = TunerHandle::default();
        handle.update(|r| {
            r.dwp = cfg.fixed_dwp;
            r.pages_applied = queued as u64;
            r.finished = !cfg.online_tuning;
        });
        let tuner = if cfg.online_tuning {
            // The online search always starts at DWP = 0 in the paper; we
            // honour cfg.fixed_dwp = 0 for it and treat nonzero fixed_dwp
            // with online tuning as a configuration error.
            if cfg.fixed_dwp != 0.0 {
                return Err(RuntimeError::Scenario(
                    "online tuning starts at DWP = 0; use static_dwp for fixed placements".into(),
                ));
            }
            Some(DwpTuner::new(canonical, workers, cfg.tuner.clone())?)
        } else {
            None
        };
        Ok((
            BwapDaemon {
                pid,
                cfg: cfg.clone(),
                tuner,
                prev: None,
                handle: handle.clone(),
                done: !cfg.online_tuning,
            },
            handle,
        ))
    }

    /// Register with the simulator at the tuner's sampling cadence.
    pub fn register(self, sim: &mut Simulator) {
        let interval = self.cfg.tuner.sample_interval_s;
        sim.add_daemon(Box::new(self), interval, interval);
    }
}

impl Daemon for BwapDaemon {
    fn name(&self) -> &str {
        "bwap-dwp-tuner"
    }

    fn tick(&mut self, sim: &mut Simulator) {
        if self.done {
            return;
        }
        let Some(tuner) = self.tuner.as_mut() else {
            self.done = true;
            return;
        };
        let Ok(proc_) = sim.process(self.pid) else {
            self.done = true;
            return;
        };
        if !proc_.is_running() {
            self.done = true;
            return;
        }
        let sample = sim.sample(self.pid).expect("process exists");
        let Some(prev) = self.prev.replace(sample) else {
            return; // first tick only seeds the window
        };
        let stall_rate = sample.stall_rate_since(&prev);
        match tuner.on_sample(stall_rate) {
            TunerAction::Continue => {}
            TunerAction::Apply { dwp, weights } => {
                let queued =
                    apply_weights(sim, self.pid, &weights, self.cfg.mode).expect("placement apply");
                self.handle.update(|r| {
                    r.dwp = dwp;
                    r.history = tuner.history().to_vec();
                    r.pages_applied += queued as u64;
                });
            }
            TunerAction::Finished => {
                self.handle.update(|r| {
                    r.finished = true;
                    r.dwp = tuner.dwp();
                    r.history = tuner.history().to_vec();
                });
                self.done = true;
            }
        }
    }

    fn done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::{machines, NodeId, NodeSet};
    use numasim::{MemPolicy, SimConfig};

    fn saturating_app() -> numasim::AppProfile {
        bwap_workloads::streamcluster().scaled_down(8.0).profile_for(&machines::machine_b())
    }

    #[test]
    fn init_applies_canonical_placement() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let pid = sim.spawn(saturating_app(), workers, None, MemPolicy::FirstTouch).unwrap();
        let cfg = BwapConfig::static_dwp(0.0);
        let (daemon, handle) = BwapDaemon::init(&mut sim, pid, &cfg, true).unwrap();
        assert!(daemon.done());
        assert!(handle.finished());
        assert!(handle.pages_applied() > 0);
        sim.run_for(2.0);
        // Placement matches the canonical distribution of this worker set.
        let canonical = ProfileBook::canonical_weights(sim.machine(), workers);
        let d = sim.shared_distribution(pid).unwrap();
        for i in 0..4 {
            assert!(
                (d[i] - canonical.as_slice()[i]).abs() < 0.03,
                "node {i}: placed {d:?} vs canonical {canonical}"
            );
        }
    }

    #[test]
    fn online_tuner_runs_and_finishes() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let mut app = saturating_app();
        app.total_traffic_gb = f64::INFINITY;
        let pid = sim.spawn(app, workers, None, MemPolicy::FirstTouch).unwrap();
        let (daemon, handle) =
            BwapDaemon::init(&mut sim, pid, &BwapConfig::default(), true).unwrap();
        daemon.register(&mut sim);
        sim.run_for(120.0);
        assert!(handle.finished(), "tuner should converge within 120 s");
        assert!(!handle.history().is_empty());
        // SC on machine B is latency-bound: DWP should climb high.
        assert!(handle.dwp() > 0.5, "dwp {}", handle.dwp());
    }

    #[test]
    fn online_with_nonzero_fixed_dwp_rejected() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let pid = sim
            .spawn(saturating_app(), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        let cfg = BwapConfig { fixed_dwp: 0.3, ..BwapConfig::default() };
        assert!(BwapDaemon::init(&mut sim, pid, &cfg, true).is_err());
    }
}
