//! Fleet-scale serving: open-loop job arrivals across many machines.
//!
//! The paper evaluates BWAP one machine at a time; at cluster scale the
//! question changes shape — jobs arrive as an *open-loop stream* (their
//! arrival times do not depend on completions, parsimon's setting), a
//! *cluster scheduler* decides which machine each job lands on, and the
//! metric that matters is the distribution of per-job slowdown versus a
//! solo run, summarized at the tail (p50/p95/p99). This module provides
//! exactly that layer on top of [`numasim`]'s dynamic process arrivals
//! ([`numasim::Simulator::spawn_at`]):
//!
//! * a **fleet** of [`MachineTopology`]s, mixable between the symmetric
//!   machine B and the tiered expander config ([`MachineKind`]);
//! * an **arrival stream**: seeded rate-driven Poisson ([`poisson_jobs`])
//!   over a workload catalog, or an explicit JSON arrival trace
//!   ([`bwap_workloads::arrivals`]) via [`jobs_from_trace`];
//! * pluggable **cluster schedulers** ([`SchedulerKind`]): round-robin,
//!   least-loaded-bandwidth, and tier-aware;
//! * deterministic **tail metrics**: per-job slowdown-vs-solo samples and
//!   nearest-rank p50/p95/p99 summaries ([`percentile`]).
//!
//! Everything is deterministic: the Poisson schedule is a pure function
//! of the seed, scheduler decisions read simulator state that is itself
//! bit-reproducible, and the whole fleet run is byte-identical across
//! reruns, shard counts and both engine modes (pinned by `tests/fleet.rs`
//! and `crates/numasim/tests/arrival_equiv.rs`). A single-machine fleet
//! with a degenerate scheduler reproduces the equivalent co-scheduled
//! scenario bit-for-bit. See `docs/FLEET.md`.

use crate::baselines::PlacementPolicy;
use crate::error::RuntimeError;
use crate::scenario::{launch_measured, run_standalone_with, traffic_counters, MAX_SIM_S};
use bwap_topology::{machines, MachineTopology, NodeSet};
use bwap_workloads::arrivals::ArrivalEvent;
use bwap_workloads::WorkloadSpec;
use numasim::{ProcessId, SimConfig, Simulator, TraceSink};
use std::collections::HashMap;

/// Machine class in a fleet mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// The paper's symmetric 4-node machine B.
    B,
    /// The heterogeneous config with CPU-less expander tiers.
    Tiered,
}

impl MachineKind {
    /// Stable label used in cell keys, CLI flags and reports.
    pub fn label(&self) -> &'static str {
        match self {
            MachineKind::B => "b",
            MachineKind::Tiered => "tiered",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "b" => Some(MachineKind::B),
            "tiered" => Some(MachineKind::Tiered),
            _ => None,
        }
    }

    /// Instantiate the topology.
    pub fn topology(&self) -> MachineTopology {
        match self {
            MachineKind::B => machines::machine_b(),
            MachineKind::Tiered => machines::machine_tiered(),
        }
    }
}

/// Cluster scheduler: which machine does the next job land on?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Jobs cycle through the machines in index order.
    RoundRobin,
    /// The machine with the lowest total controller utilization at the
    /// job's arrival epoch wins (ties go to the lowest index).
    LeastLoaded,
    /// Least-loaded with a fixed penalty on heterogeneous machines, so
    /// jobs prefer symmetric machines until the fleet fills up.
    TierAware,
}

impl SchedulerKind {
    /// Stable label used in cell keys, CLI flags and reports.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::LeastLoaded => "least-loaded",
            SchedulerKind::TierAware => "tier-aware",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "round-robin" => Some(SchedulerKind::RoundRobin),
            "least-loaded" => Some(SchedulerKind::LeastLoaded),
            "tier-aware" => Some(SchedulerKind::TierAware),
            _ => None,
        }
    }

    /// Every scheduler, in label order.
    pub fn all() -> [SchedulerKind; 3] {
        [SchedulerKind::RoundRobin, SchedulerKind::LeastLoaded, SchedulerKind::TierAware]
    }
}

/// One job submitted to the fleet.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Simulated arrival time, seconds.
    pub at_s: f64,
    /// The workload the job runs.
    pub workload: WorkloadSpec,
    /// Forced departure time (strictly after `at_s`), if any.
    pub depart_s: Option<f64>,
    /// Worker-set override (default: the fleet config's worker count,
    /// resolved per machine). The degenerate co-scheduled equivalence
    /// test uses this to pin jobs to explicit node sets.
    pub workers: Option<NodeSet>,
    /// Placement-policy override (default: the fleet config's policy).
    pub policy: Option<PlacementPolicy>,
}

impl FleetJob {
    /// A plain job: arrive at `at_s`, run `workload` under the fleet's
    /// default policy and worker count, never depart early.
    pub fn new(at_s: f64, workload: WorkloadSpec) -> Self {
        FleetJob { at_s, workload, depart_s: None, workers: None, policy: None }
    }
}

/// Fleet-level run configuration (one campaign cell's worth).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The machines, in scheduler index order.
    pub machines: Vec<MachineTopology>,
    /// Cluster scheduler choosing the machine per job.
    pub scheduler: SchedulerKind,
    /// Placement policy applied to every job (within-machine decision).
    pub policy: PlacementPolicy,
    /// Worker-node count per job (resolved via
    /// [`MachineTopology::best_worker_set`] on the chosen machine).
    pub workers: usize,
    /// Engine configuration shared by every simulator in the fleet.
    pub sim_cfg: SimConfig,
}

/// Per-job outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Workload name.
    pub workload: String,
    /// Index of the machine the scheduler chose.
    pub machine: usize,
    /// Arrival time, simulated seconds.
    pub arrival_s: f64,
    /// Simulated completion (or departure) time.
    pub finished_s: f64,
    /// Execution time: `finished_s - arrival_s`.
    pub exec_time_s: f64,
    /// Whether a scheduled departure cut the job short.
    pub departed_early: bool,
    /// Slowdown versus the job's solo run on the same machine type
    /// (completed jobs only; departed jobs carry no sample).
    pub slowdown: Option<f64>,
}

/// Outcome of a whole fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Per-job outcomes, in arrival order.
    pub jobs: Vec<JobOutcome>,
    /// Time the last job left the fleet (0 for an empty stream).
    pub makespan_s: f64,
    /// Pages migrated across all jobs and machines.
    pub migrated_pages: u64,
    /// Aggregate stall fraction over all jobs' cycles.
    pub stall_frac: f64,
    /// Bytes read across all jobs.
    pub read_bytes: f64,
    /// Total memory traffic across all jobs.
    pub traffic_bytes: f64,
    /// Slowdown samples of completed jobs, in arrival order.
    pub slowdowns: Vec<f64>,
    /// Nearest-rank percentiles of `slowdowns` (`None` when no job
    /// completed).
    pub slowdown_p50: Option<f64>,
    /// 95th percentile.
    pub slowdown_p95: Option<f64>,
    /// 99th percentile.
    pub slowdown_p99: Option<f64>,
}

/// SplitMix64: the classic 64-bit mixer, dependency-free and stable
/// across platforms — the arrival schedule must be a pure function of the
/// seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from the top 53 bits.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded open-loop Poisson arrival stream: `count` jobs whose
/// inter-arrival gaps are exponential with rate `rate_hz` (jobs per
/// simulated second), each drawing its workload uniformly from `catalog`.
/// A rate of zero (or below) models a stream that never fires: no jobs.
pub fn poisson_jobs(
    seed: u64,
    rate_hz: f64,
    count: usize,
    catalog: &[WorkloadSpec],
) -> Vec<FleetJob> {
    if rate_hz <= 0.0 || catalog.is_empty() {
        return Vec::new();
    }
    let mut state = seed;
    let mut t = 0.0f64;
    (0..count)
        .map(|_| {
            let u = unit_f64(&mut state);
            t += -(1.0 - u).ln() / rate_hz;
            let w = catalog[(splitmix64(&mut state) % catalog.len() as u64) as usize].clone();
            FleetJob::new(t, w)
        })
        .collect()
}

/// Convert a parsed JSON arrival trace into fleet jobs (already sorted by
/// arrival time by the parser).
pub fn jobs_from_trace(events: &[ArrivalEvent]) -> Vec<FleetJob> {
    events
        .iter()
        .map(|e| FleetJob {
            at_s: e.at_s,
            workload: e.workload.clone(),
            depart_s: e.depart_s,
            workers: None,
            policy: None,
        })
        .collect()
}

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// element with at least `q`% of the mass at or below it. Deterministic —
/// no interpolation, so the result is always an actual sample.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

/// Advance `sim` to the last epoch boundary at or before `t` (no-op when
/// the clock is already past it). Both engine modes advance the same
/// whole number of epochs, so fleet runs are bit-identical across them;
/// the event engine strides across the idle gap in O(1) epochs.
fn advance_to(sim: &mut Simulator, t: f64) {
    let dt = sim.config().epoch_dt;
    let epochs = ((t - sim.clock()) / dt + 1e-9).floor();
    if epochs >= 1.0 {
        // Aim half an epoch short of the nominal target: the clock
        // accumulates one `+= dt` per epoch, so on long streams it sits a
        // few ulps below `epochs * dt` and `run_for`'s boundary test
        // would tip it one epoch past the arrival. The slack makes the
        // advance exactly `epochs` epochs whatever the accumulated dust.
        sim.run_for((epochs - 0.5) * dt);
    }
}

/// Total controller utilization: the load signal the bandwidth-aware
/// schedulers compare across machines.
fn load_of(sim: &Simulator) -> f64 {
    sim.controller_utilization().iter().sum()
}

/// Run an open-loop job stream over a fleet. Jobs are submitted in
/// arrival-time order (stable for ties); for each job every machine is
/// advanced to the arrival's epoch, the scheduler picks a machine from
/// the fleet's current load, and the job is registered with
/// [`numasim::Simulator::spawn_at`] — the engine activates it exactly at
/// its (possibly mid-epoch) arrival time. After the last arrival, every
/// machine runs until all of its jobs have finished or departed.
///
/// When `trace` is `Some`, machine 0's simulator is traced: its jobs get
/// per-process tracks, its arrivals/departures appear as engine instants,
/// and every scheduler decision (for any machine) is recorded as a
/// `"schedule"` instant on the engine track with `job`, `machine` and
/// `at_s` arguments.
pub fn run_fleet(
    cfg: &FleetConfig,
    jobs: &[FleetJob],
    trace: Option<&mut Option<TraceSink>>,
) -> Result<FleetOutcome, RuntimeError> {
    if cfg.machines.is_empty() {
        return Err(RuntimeError::Scenario("fleet has no machines".into()));
    }
    for m in &cfg.machines {
        if cfg.workers == 0 || cfg.workers > m.worker_node_count() {
            return Err(RuntimeError::Scenario(format!(
                "worker count {} out of range for fleet machine {} ({} worker-capable nodes)",
                cfg.workers,
                m.name(),
                m.worker_node_count()
            )));
        }
    }
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| jobs[a].at_s.partial_cmp(&jobs[b].at_s).expect("finite arrivals"));

    let mut sims: Vec<Simulator> =
        cfg.machines.iter().map(|m| Simulator::new(m.clone(), cfg.sim_cfg.clone())).collect();
    if trace.is_some() {
        sims[0].set_trace_sink(TraceSink::default());
    }

    // Placement loop: advance the whole fleet to each arrival, schedule,
    // submit. `placed[j] = (machine, pid)` in original job order.
    let mut placed: Vec<(usize, ProcessId)> = Vec::with_capacity(jobs.len());
    let mut rr_next = 0usize;
    for (seq, &j) in order.iter().enumerate() {
        let job = &jobs[j];
        for sim in sims.iter_mut() {
            advance_to(sim, job.at_s);
        }
        let mi = match cfg.scheduler {
            SchedulerKind::RoundRobin => {
                let mi = rr_next % sims.len();
                rr_next += 1;
                mi
            }
            SchedulerKind::LeastLoaded | SchedulerKind::TierAware => {
                let penalty = |i: usize| {
                    if cfg.scheduler == SchedulerKind::TierAware
                        && cfg.machines[i].is_heterogeneous()
                    {
                        0.5
                    } else {
                        0.0
                    }
                };
                let mut best = 0usize;
                let mut best_score = load_of(&sims[0]) + penalty(0);
                for (i, sim) in sims.iter().enumerate().skip(1) {
                    let score = load_of(sim) + penalty(i);
                    if score < best_score {
                        best = i;
                        best_score = score;
                    }
                }
                best
            }
        };
        sims[0].trace_instant(
            "schedule",
            None,
            &[("job", seq as f64), ("machine", mi as f64), ("at_s", job.at_s)],
        );
        let workers = match job.workers {
            Some(w) => w,
            None => cfg.machines[mi].best_worker_set(cfg.workers),
        };
        let policy = job.policy.as_ref().unwrap_or(&cfg.policy);
        let (pid, _handle) = launch_measured(
            &mut sims[mi],
            &cfg.machines[mi],
            &job.workload,
            None,
            workers,
            policy,
            None,
            Some(job.at_s),
        )?;
        if let Some(d) = job.depart_s {
            sims[mi].depart_at(pid, d)?;
        }
        placed.push((mi, pid));
    }

    // Drain: run every machine until all of its jobs are done.
    for &(mi, pid) in &placed {
        sims[mi].run_until_finished(pid, MAX_SIM_S)?;
    }

    // Solo baselines, memoized per (machine, workload, policy, workers):
    // the denominator of every slowdown sample.
    let mut solo_memo: HashMap<String, f64> = HashMap::new();
    let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());
    let mut slowdowns: Vec<f64> = Vec::new();
    let (mut makespan, mut migrated, mut cycles, mut stalls) = (0.0f64, 0u64, 0.0f64, 0.0f64);
    let (mut read_bytes, mut traffic_bytes) = (0.0f64, 0.0f64);
    for (seq, &j) in order.iter().enumerate() {
        let job = &jobs[j];
        let (mi, pid) = placed[seq];
        let sim = &sims[mi];
        let exec = sim.execution_time(pid).expect("job ran to completion");
        let started = sim.process(pid).map_err(RuntimeError::Sim)?.started_at;
        let finished_s = started + exec;
        let departed_early = job.depart_s.is_some_and(|d| finished_s + 1e-9 >= d);
        let slowdown = if departed_early {
            None
        } else {
            let workers = match job.workers {
                Some(w) => w,
                None => cfg.machines[mi].best_worker_set(cfg.workers),
            };
            let policy = job.policy.clone().unwrap_or_else(|| cfg.policy.clone());
            let memo_key = format!(
                "{}|{}|{}|{}|{:x}",
                cfg.machines[mi].name(),
                workers,
                policy.label(),
                job.workload.name,
                job.workload.total_traffic_gb.to_bits()
            );
            let solo = match solo_memo.get(&memo_key) {
                Some(&t) => t,
                None => {
                    let r = run_standalone_with(
                        &cfg.machines[mi],
                        &job.workload,
                        workers,
                        &policy,
                        cfg.sim_cfg.clone(),
                    )?;
                    solo_memo.insert(memo_key, r.exec_time_s);
                    r.exec_time_s
                }
            };
            Some(exec / solo)
        };
        if let Some(s) = slowdown {
            slowdowns.push(s);
        }
        makespan = makespan.max(finished_s);
        migrated += sim.migrated_pages(pid);
        let pc = sim.counters().process(pid);
        cycles += pc.cycles;
        stalls += pc.stall_cycles;
        let (r, t) = traffic_counters(sim, cfg.machines[mi].node_count(), pid);
        read_bytes += r;
        traffic_bytes += t;
        outcomes.push(JobOutcome {
            workload: job.workload.name.to_string(),
            machine: mi,
            arrival_s: job.at_s,
            finished_s,
            exec_time_s: exec,
            departed_early,
            slowdown,
        });
    }
    if let Some(slot) = trace {
        *slot = sims[0].take_trace_sink();
    }
    let mut sorted = slowdowns.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite slowdowns"));
    Ok(FleetOutcome {
        jobs: outcomes,
        makespan_s: makespan,
        migrated_pages: migrated,
        stall_frac: if cycles <= 0.0 { 0.0 } else { stalls / cycles },
        read_bytes,
        traffic_bytes,
        slowdown_p50: percentile(&sorted, 50.0),
        slowdown_p95: percentile(&sorted, 95.0),
        slowdown_p99: percentile(&sorted, 99.0),
        slowdowns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    fn small_cfg(scheduler: SchedulerKind) -> FleetConfig {
        FleetConfig {
            machines: vec![machines::machine_b(), machines::machine_b()],
            scheduler,
            policy: PlacementPolicy::UniformWorkers,
            workers: 1,
            sim_cfg: SimConfig::default(),
        }
    }

    fn stream(n: usize, gap: f64) -> Vec<FleetJob> {
        (0..n)
            .map(|i| {
                FleetJob::new(i as f64 * gap, bwap_workloads::streamcluster().scaled_down(64.0))
            })
            .collect()
    }

    #[test]
    fn round_robin_alternates_machines() {
        let out = run_fleet(&small_cfg(SchedulerKind::RoundRobin), &stream(4, 0.5), None).unwrap();
        assert_eq!(out.jobs.iter().map(|j| j.machine).collect::<Vec<_>>(), vec![0, 1, 0, 1]);
        assert_eq!(out.slowdowns.len(), 4);
        assert!(out.slowdown_p50.is_some() && out.slowdown_p99.is_some());
        assert!(out.makespan_s > 0.0);
    }

    #[test]
    fn least_loaded_spreads_simultaneous_jobs() {
        // At t=0 both machines are idle and the tie-break sends job 0 to
        // machine 0; a short gap later machine 0 shows bandwidth load, so
        // job 1 must land on machine 1. The gap has to stay well inside
        // job 0's runtime for the load signal to be visible.
        let out =
            run_fleet(&small_cfg(SchedulerKind::LeastLoaded), &stream(2, 0.05), None).unwrap();
        assert_eq!(out.jobs[0].machine, 0);
        assert_eq!(out.jobs[1].machine, 1, "busy machine 0 is skipped");
    }

    #[test]
    fn tier_aware_prefers_symmetric_machines() {
        let cfg = FleetConfig {
            machines: vec![machines::machine_tiered(), machines::machine_b()],
            scheduler: SchedulerKind::TierAware,
            policy: PlacementPolicy::UniformWorkers,
            workers: 1,
            sim_cfg: SimConfig::default(),
        };
        let out = run_fleet(&cfg, &stream(1, 1.0), None).unwrap();
        assert_eq!(out.jobs[0].machine, 1, "idle tiered machine still penalized");
    }

    #[test]
    fn empty_stream_is_fine() {
        let out = run_fleet(&small_cfg(SchedulerKind::RoundRobin), &[], None).unwrap();
        assert!(out.jobs.is_empty());
        assert_eq!(out.makespan_s, 0.0);
        assert_eq!(out.slowdown_p50, None);
        assert!(poisson_jobs(7, 0.0, 10, &[bwap_workloads::streamcluster()]).is_empty());
    }

    #[test]
    fn poisson_stream_is_deterministic_and_rate_scales() {
        let catalog = vec![bwap_workloads::streamcluster(), bwap_workloads::ocean_cp()];
        let a = poisson_jobs(42, 2.0, 50, &catalog);
        let b = poisson_jobs(42, 2.0, 50, &catalog);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_s.to_bits(), y.at_s.to_bits());
            assert_eq!(x.workload.name, y.workload.name);
        }
        let slow = poisson_jobs(42, 0.5, 50, &catalog);
        let last_fast = a.last().unwrap().at_s;
        let last_slow = slow.last().unwrap().at_s;
        assert!(last_slow > last_fast, "lower rate spreads arrivals out");
        assert!(a.windows(2).all(|w| w[0].at_s <= w[1].at_s));
    }

    #[test]
    fn departures_truncate_jobs_and_drop_their_samples() {
        let mut jobs = stream(2, 0.0);
        jobs[0].depart_s = Some(0.1);
        let out = run_fleet(&small_cfg(SchedulerKind::RoundRobin), &jobs, None).unwrap();
        assert!(out.jobs[0].departed_early);
        assert_eq!(out.jobs[0].slowdown, None);
        assert!(out.jobs[0].exec_time_s <= 0.1 + 1e-9);
        assert!(!out.jobs[1].departed_early);
        assert_eq!(out.slowdowns.len(), 1);
    }

    #[test]
    fn solo_job_on_idle_fleet_has_slowdown_one() {
        // One job arriving on an epoch boundary of an otherwise idle
        // fleet evolves exactly like its solo baseline, shifted in time.
        let jobs = vec![FleetJob::new(1.0, bwap_workloads::streamcluster().scaled_down(64.0))];
        let out = run_fleet(&small_cfg(SchedulerKind::RoundRobin), &jobs, None).unwrap();
        let s = out.jobs[0].slowdown.unwrap();
        // Not bit-exact: the fleet clock reaches t=1.0 by accumulating
        // epochs, so the finish interpolation carries float dust.
        assert!((s - 1.0).abs() < 1e-9, "slowdown {s}");
    }

    #[test]
    fn long_sparse_streams_survive_clock_dust() {
        // Regression: on a stream stretching thousands of epochs, the
        // accumulated clock sits a few ulps below the nominal epoch
        // boundary, and an `advance_to` that targeted `epochs * dt`
        // exactly would tip one epoch past a later arrival — making
        // `spawn_at` reject it as in the past. Both engines must place
        // the whole stream and agree on the makespan to the bit.
        let catalog = vec![bwap_workloads::streamcluster().scaled_down(64.0)];
        let jobs = poisson_jobs(11, 0.05, 8, &catalog);
        let cfg = |mode| FleetConfig {
            machines: vec![machines::machine_b()],
            scheduler: SchedulerKind::RoundRobin,
            policy: PlacementPolicy::UniformWorkers,
            workers: 1,
            sim_cfg: SimConfig { mode, ..SimConfig::default() },
        };
        let stepped = run_fleet(&cfg(numasim::EngineMode::Stepped), &jobs, None)
            .expect("sparse stream places every job");
        let event = run_fleet(&cfg(numasim::EngineMode::EventDriven), &jobs, None)
            .expect("sparse stream places every job");
        assert_eq!(stepped.jobs.len(), 8);
        assert_eq!(stepped.makespan_s.to_bits(), event.makespan_s.to_bits());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 50.0), Some(2.0));
        assert_eq!(percentile(&s, 95.0), Some(4.0));
        assert_eq!(percentile(&s, 99.0), Some(4.0));
        assert_eq!(percentile(&s, 0.0), Some(1.0));
        assert_eq!(percentile(&[], 50.0), None);
    }
}
