//! The canonical tuner's profiling procedure (paper §III-A3).
//!
//! "For a fixed set of worker nodes, we deploy a memory-intensive
//! benchmark and uniformly interleave its pages across all nodes. [...]
//! We rely on hardware performance counters to monitor per-node memory
//! throughput. The profiled throughputs between each pair of nodes are
//! used as the values of `bw(src -> dst)`."
//!
//! The profiled matrix is *not* the unloaded single-flow matrix: it is
//! measured under the reference workload's own contention, which is the
//! paper's deliberate approximation (it "neglects the differences in
//! access demand that occur when page placement changes"). Tests verify
//! both that the profile correlates with the calibrated matrix and that it
//! differs from it under contention.

use bwap::{canonical_weights, WeightDistribution};
use bwap_topology::{BwMatrix, MachineTopology, NodeId, NodeSet};
use numasim::{MemPolicy, SimConfig, Simulator};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Warm-up before measuring (seconds of simulated time).
const WARMUP_S: f64 = 0.2;
/// Measurement window (seconds of simulated time).
const WINDOW_S: f64 = 1.0;

/// Run the reference benchmark on `workers` with uniform-all interleaving
/// and return the measured per-path read throughput matrix (GB/s).
/// Columns for non-worker destinations are zero — Eq. 5 never reads them.
pub fn profile_bandwidth(machine: &MachineTopology, workers: NodeSet) -> BwMatrix {
    let mut sim = Simulator::new(machine.clone(), SimConfig::default());
    let probe = bwap_workloads::stream_probe().profile_for(machine);
    let pid = sim
        .spawn(probe, workers, None, MemPolicy::Interleave(machine.memory_nodes()))
        .expect("probe spawn on validated machine");
    sim.run_for(WARMUP_S);
    let n = machine.node_count();
    let before: Vec<f64> =
        (0..n * n).map(|k| sim.counters().flow_read_bytes(pid, k / n, k % n)).collect();
    sim.run_for(WINDOW_S);
    let mut m = BwMatrix::zeros(n);
    for src in 0..n {
        for dst in 0..n {
            let delta = sim.counters().flow_read_bytes(pid, src, dst) - before[src * n + dst];
            m.set(NodeId(src as u16), NodeId(dst as u16), delta / WINDOW_S / 1e9);
        }
    }
    m
}

/// Process-wide cache of canonical weight distributions, keyed by machine
/// name and worker-set mask — the paper's installation-time profile store.
/// Custom machines must use distinct names to avoid collisions.
pub struct ProfileBook;

static BOOK: OnceLock<Mutex<HashMap<(String, u64), WeightDistribution>>> = OnceLock::new();

impl ProfileBook {
    /// Canonical weights for `(machine, workers)`, profiling on first use.
    pub fn canonical_weights(machine: &MachineTopology, workers: NodeSet) -> WeightDistribution {
        let book = BOOK.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (machine.name().to_string(), workers.mask());
        if let Some(hit) = book.lock().get(&key) {
            return hit.clone();
        }
        // Profile outside the lock: it takes a (simulated) second.
        let matrix = profile_bandwidth(machine, workers);
        let weights =
            canonical_weights(&matrix, workers).expect("profiled matrix yields valid weights");
        book.lock().insert(key, weights.clone());
        weights
    }

    /// Number of cached profiles (diagnostics).
    pub fn cached() -> usize {
        BOOK.get_or_init(|| Mutex::new(HashMap::new())).lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    #[test]
    fn profile_covers_worker_columns_positively() {
        let m = machines::machine_b();
        let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let p = profile_bandwidth(&m, workers);
        for src in 0..4u16 {
            for dst in [0u16, 1] {
                assert!(p.get(NodeId(src), NodeId(dst)) > 0.1, "no traffic measured {src}->{dst}");
            }
            // non-worker columns unmeasured
            assert_eq!(p.get(NodeId(src), NodeId(2)), 0.0);
        }
    }

    #[test]
    fn profile_reflects_asymmetry_on_machine_a() {
        let m = machines::machine_a();
        let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let p = profile_bandwidth(&m, workers);
        // Local paths must measure faster than the weak remote paths, as in
        // Fig. 1a.
        assert!(
            p.get(NodeId(0), NodeId(0)) > 2.0 * p.get(NodeId(3), NodeId(0)),
            "local {} vs far {}",
            p.get(NodeId(0), NodeId(0)),
            p.get(NodeId(3), NodeId(0))
        );
    }

    #[test]
    fn canonical_weights_from_profile_close_to_ideal() {
        // The profile is measured under contention, so weights differ from
        // the unloaded-matrix weights — but not wildly.
        let m = machines::machine_a();
        let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let profiled = ProfileBook::canonical_weights(&m, workers);
        let ideal = canonical_weights(m.path_caps(), workers).unwrap();
        assert!(profiled.max_abs_diff(&ideal) < 0.12, "profiled {profiled} vs ideal {ideal}");
        // Workers keep the heaviest weights in both.
        assert!(profiled.get(NodeId(0)) > profiled.get(NodeId(3)));
    }

    #[test]
    fn tiered_profile_weights_cover_but_underweight_the_slow_tier() {
        // The probe runs on the worker nodes with pages interleaved over
        // the whole machine, expanders included: the profiled canonical
        // weights must use the slow tier without over-weighting it.
        let m = machines::machine_tiered();
        let w = ProfileBook::canonical_weights(&m, m.worker_nodes());
        for n in 0..4u16 {
            assert!(w.get(NodeId(n)) > 0.05, "node {n} unused: {w}");
        }
        assert!(
            w.get(NodeId(0)) > w.get(NodeId(2)),
            "fast tier should out-weigh the expander: {w}"
        );
    }

    #[test]
    fn book_caches() {
        let m = machines::machine_b();
        let workers = NodeSet::single(NodeId(3));
        let a = ProfileBook::canonical_weights(&m, workers);
        let before = ProfileBook::cached();
        let b = ProfileBook::canonical_weights(&m, workers);
        assert_eq!(a, b);
        assert_eq!(ProfileBook::cached(), before);
    }
}
