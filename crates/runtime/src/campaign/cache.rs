//! Persistent on-disk cell cache: one file per descriptor hash.
//!
//! The cache is what turns the campaign engine's exact memoization into
//! warm reruns and kill-and-resume: every executed equivalence class
//! stores its outcome under `<cache_dir>/<hash>.cell`; a later campaign
//! (or the same campaign restarted after a kill) replays the stored cells
//! and executes only the remainder. Because the descriptor covers every
//! input of the computation, a hit is *exact* — the fanned-out report is
//! byte-identical to an uninterrupted cold run.
//!
//! Trust model — the cache is an accelerator, never an authority:
//!
//! * Entries embed the **full descriptor text**, verified byte-for-byte
//!   against the locally computed descriptor on load. A 64-bit hash
//!   collision (or a tampered file) costs a re-execution, never a wrong
//!   result.
//! * Any malformed, truncated, or version-skewed entry is a miss.
//!   Corruption is tolerated silently (the cell just runs); it is never
//!   propagated.
//! * Writes go through a temp file + atomic rename, so a campaign killed
//!   mid-write leaves either the old entry or the new one — never a torn
//!   file. An append-only `journal.log` records every store for
//!   post-mortems.
//!
//! Floats round-trip through [`f64::to_bits`] hex, so a cached
//! [`RunResult`] is restored bit-exactly — the report serializer then
//! necessarily produces the same bytes it would for a fresh run.

use super::faults::{FaultKind, FaultPlan};
use crate::scenario::RunResult;
use bwap::descriptor::CellDescriptor;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Version tag of the entry file format (independent of the descriptor
/// format version, which is checked via the embedded descriptor itself).
const ENTRY_MAGIC: &str = "bwap-cell-cache v1";

/// A persistent cell cache rooted at a directory.
#[derive(Debug, Clone)]
pub struct CellCache {
    dir: PathBuf,
    /// Journal appends that failed (filesystem refusals and injected
    /// [`FaultKind::JournalDrop`]s). Shared across clones so the campaign
    /// can surface one aggregate warning + report field.
    journal_errors: Arc<AtomicUsize>,
    /// Chaos schedule for the filesystem trust boundary (torn writes,
    /// bit flips, journal loss). `None` in production.
    faults: Option<FaultPlan>,
}

impl CellCache {
    /// Open (creating if needed) a cache directory. Directory-creation
    /// failure disables the cache rather than failing the campaign: a
    /// read-only filesystem degrades to cold execution.
    pub fn open(dir: &Path) -> Option<CellCache> {
        Self::open_with(dir, None)
    }

    /// [`CellCache::open`] with a fault plan injecting filesystem chaos
    /// (see [`super::faults`]): torn entry writes, entry bit flips, and
    /// journal loss. Every injected corruption is detected on load as a
    /// plain miss, so chaos runs stay byte-identical — they just re-execute.
    pub fn open_with(dir: &Path, faults: Option<FaultPlan>) -> Option<CellCache> {
        std::fs::create_dir_all(dir).ok()?;
        Some(CellCache {
            dir: dir.to_path_buf(),
            journal_errors: Arc::new(AtomicUsize::new(0)),
            faults,
        })
    }

    /// How many journal appends have failed since this cache (or any of
    /// its clones) opened. The campaign surfaces a non-zero count once as
    /// a stderr warning and as the volatile `journal_errors` report field.
    pub fn journal_errors(&self) -> usize {
        self.journal_errors.load(Ordering::Relaxed)
    }

    /// Path of the entry file for a descriptor.
    pub fn entry_path(&self, desc: &CellDescriptor) -> PathBuf {
        self.dir.join(format!("{}.cell", desc.hash_hex()))
    }

    /// Load the outcome stored for `desc`, if a valid, descriptor-exact
    /// entry exists. Every failure mode — missing file, torn write,
    /// version skew, hash collision — is a plain miss.
    pub fn load(&self, desc: &CellDescriptor) -> Option<Result<RunResult, String>> {
        let bytes = std::fs::read(self.entry_path(desc)).ok()?;
        let text = String::from_utf8(bytes).ok()?;
        let (stored_desc, outcome) = decode_entry(&text)?;
        // The hash named the file; the text is the identity.
        (stored_desc == desc.text()).then_some(outcome)
    }

    /// Store an outcome under `desc` via temp file + atomic rename, and
    /// journal the store. Filesystem refusals are swallowed — caching is
    /// best-effort by design (journal failures are counted, see
    /// [`CellCache::journal_errors`]).
    pub fn store(&self, desc: &CellDescriptor, outcome: &Result<RunResult, String>) {
        let text = self.corrupted(desc, encode_entry(desc, outcome));
        let tmp = self.dir.join(format!(".tmp-{}-{}", std::process::id(), desc.hash_hex()));
        if std::fs::write(&tmp, text).is_ok()
            && std::fs::rename(&tmp, self.entry_path(desc)).is_ok()
        {
            self.journal(
                desc.hash_hex().as_str(),
                &format!(
                    "store {} {}\n",
                    desc.hash_hex(),
                    if outcome.is_ok() { "ok" } else { "err" }
                ),
            );
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Apply any scheduled filesystem corruption to an entry about to be
    /// written: a torn write keeps only a prefix, a bit flip toggles one
    /// seed-chosen byte. Either way the next [`CellCache::load`] detects
    /// the damage and misses.
    fn corrupted(&self, desc: &CellDescriptor, mut text: String) -> String {
        let Some(plan) = &self.faults else { return text };
        let key = desc.hash_hex();
        if plan.decide(FaultKind::CacheTorn, &key).is_some() {
            let mut cut = text.len() / 2;
            while cut > 0 && !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text.truncate(cut);
        } else if plan.decide(FaultKind::CacheFlip, &key).is_some() && !text.is_empty() {
            let mut bytes = text.into_bytes();
            let i = plan.roll(FaultKind::CacheFlip, &key, bytes.len() as u64) as usize;
            // Flip within printable ASCII so the file stays valid UTF-8
            // and the corruption is caught by *verification*, not by
            // accident of string decoding.
            bytes[i] ^= 0x04;
            text = String::from_utf8(bytes).unwrap_or_default();
        }
        text
    }

    fn journal(&self, fault_key: &str, line: &str) {
        if let Some(plan) = &self.faults {
            if plan.decide(FaultKind::JournalDrop, fault_key).is_some() {
                self.journal_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join("journal.log"))
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if appended.is_err() {
            self.journal_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Serialize one entry: magic, descriptor (byte length + verbatim bytes),
/// then the outcome with every float as a bit pattern.
pub fn encode_entry(desc: &CellDescriptor, outcome: &Result<RunResult, String>) -> String {
    let mut s = String::with_capacity(desc.text().len() + 512);
    s.push_str(ENTRY_MAGIC);
    s.push('\n');
    s.push_str(&format!("descriptor {}\n", desc.text().len()));
    s.push_str(desc.text());
    match outcome {
        Ok(r) => {
            s.push_str("outcome ok\n");
            s.push_str(&format!("policy {}\n", escape(&r.policy)));
            s.push_str(&format!("workload {}\n", escape(&r.workload)));
            s.push_str(&format!("workers {}\n", r.workers));
            s.push_str(&format!("exec_time_s {:016x}\n", r.exec_time_s.to_bits()));
            s.push_str(&opt_bits("chosen_dwp", r.chosen_dwp));
            s.push_str(&format!("migrated_pages {}\n", r.migrated_pages));
            s.push_str(&format!("stall_frac {:016x}\n", r.stall_frac.to_bits()));
            s.push_str(&opt_bits("a_stall_frac", r.a_stall_frac));
            s.push_str(&format!("read_bytes {:016x}\n", r.read_bytes.to_bits()));
            s.push_str(&format!("traffic_bytes {:016x}\n", r.traffic_bytes.to_bits()));
            match r.retunes {
                Some(n) => s.push_str(&format!("retunes {n}\n")),
                None => s.push_str("retunes none\n"),
            }
            match &r.retune_times_s {
                Some(ts) => {
                    let hex: Vec<String> =
                        ts.iter().map(|t| format!("{:016x}", t.to_bits())).collect();
                    s.push_str(&format!("retune_times_s {}\n", hex.join(",")));
                }
                None => s.push_str("retune_times_s none\n"),
            }
            match r.phase_switches {
                Some(n) => s.push_str(&format!("phase_switches {n}\n")),
                None => s.push_str("phase_switches none\n"),
            }
            match r.jobs {
                Some(n) => s.push_str(&format!("jobs {n}\n")),
                None => s.push_str("jobs none\n"),
            }
            match &r.job_slowdowns {
                Some(ss) => {
                    let hex: Vec<String> =
                        ss.iter().map(|t| format!("{:016x}", t.to_bits())).collect();
                    s.push_str(&format!("job_slowdowns {}\n", hex.join(",")));
                }
                None => s.push_str("job_slowdowns none\n"),
            }
            s.push_str(&opt_bits("slowdown_p50", r.slowdown_p50));
            s.push_str(&opt_bits("slowdown_p95", r.slowdown_p95));
            s.push_str(&opt_bits("slowdown_p99", r.slowdown_p99));
        }
        Err(e) => {
            s.push_str("outcome err\n");
            s.push_str(&format!("error {}\n", escape(e)));
        }
    }
    s
}

/// Parse an entry back into `(descriptor text, outcome)`. `None` on any
/// structural problem — the caller treats that as a miss.
pub fn decode_entry(text: &str) -> Option<(&str, Result<RunResult, String>)> {
    let rest = text.strip_prefix(ENTRY_MAGIC)?.strip_prefix('\n')?;
    let (len_line, rest) = rest.split_once('\n')?;
    let len: usize = len_line.strip_prefix("descriptor ")?.parse().ok()?;
    if !rest.is_char_boundary(len) || rest.len() < len {
        return None;
    }
    let (desc_text, rest) = rest.split_at(len);
    let mut lines = rest.lines();
    match lines.next()? {
        "outcome ok" => {
            let mut next = |name: &str| -> Option<String> {
                lines.next()?.strip_prefix(name)?.strip_prefix(' ').map(str::to_string)
            };
            let policy = unescape(&next("policy")?);
            let workload = unescape(&next("workload")?);
            let workers: usize = next("workers")?.parse().ok()?;
            let exec_time_s = bits(&next("exec_time_s")?)?;
            let chosen_dwp = opt_bits_parse(&next("chosen_dwp")?)?;
            let migrated_pages: u64 = next("migrated_pages")?.parse().ok()?;
            let stall_frac = bits(&next("stall_frac")?)?;
            let a_stall_frac = opt_bits_parse(&next("a_stall_frac")?)?;
            let read_bytes = bits(&next("read_bytes")?)?;
            let traffic_bytes = bits(&next("traffic_bytes")?)?;
            let retunes = match next("retunes")?.as_str() {
                "none" => None,
                v => Some(v.parse().ok()?),
            };
            let retune_times_s = match next("retune_times_s")?.as_str() {
                "none" => None,
                "" => Some(Vec::new()),
                v => Some(v.split(',').map(bits).collect::<Option<Vec<f64>>>()?),
            };
            let phase_switches = match next("phase_switches")?.as_str() {
                "none" => None,
                v => Some(v.parse().ok()?),
            };
            let jobs = match next("jobs")?.as_str() {
                "none" => None,
                v => Some(v.parse().ok()?),
            };
            let job_slowdowns = match next("job_slowdowns")?.as_str() {
                "none" => None,
                "" => Some(Vec::new()),
                v => Some(v.split(',').map(bits).collect::<Option<Vec<f64>>>()?),
            };
            let slowdown_p50 = opt_bits_parse(&next("slowdown_p50")?)?;
            let slowdown_p95 = opt_bits_parse(&next("slowdown_p95")?)?;
            let slowdown_p99 = opt_bits_parse(&next("slowdown_p99")?)?;
            Some((
                desc_text,
                Ok(RunResult {
                    policy,
                    workload,
                    workers,
                    exec_time_s,
                    chosen_dwp,
                    migrated_pages,
                    stall_frac,
                    a_stall_frac,
                    read_bytes,
                    traffic_bytes,
                    retunes,
                    retune_times_s,
                    phase_switches,
                    jobs,
                    job_slowdowns,
                    slowdown_p50,
                    slowdown_p95,
                    slowdown_p99,
                }),
            ))
        }
        "outcome err" => {
            let e = lines.next()?.strip_prefix("error ")?;
            Some((desc_text, Err(unescape(e))))
        }
        _ => None,
    }
}

fn bits(hex: &str) -> Option<f64> {
    u64::from_str_radix(hex, 16).ok().map(f64::from_bits)
}

fn opt_bits(name: &str, v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{name} {:016x}\n", x.to_bits()),
        None => format!("{name} none\n"),
    }
}

fn opt_bits_parse(v: &str) -> Option<Option<f64>> {
    match v {
        "none" => Some(None),
        hex => Some(Some(bits(hex)?)),
    }
}

/// Keep stored strings single-line (policy labels and error messages can
/// in principle carry anything).
fn escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n").replace('\r', "\\r")
}

fn unescape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap::descriptor::DescriptorBuilder;

    fn desc(tag: &str) -> CellDescriptor {
        let mut b = DescriptorBuilder::new("campaign-cell");
        b.field_str("tag", tag);
        b.finish()
    }

    fn result() -> RunResult {
        RunResult {
            policy: "bwap".into(),
            workload: "SC".into(),
            workers: 2,
            exec_time_s: 12.5e-1 + 0.1, // deliberately non-round bits
            chosen_dwp: Some(0.30000000000000004),
            migrated_pages: 42,
            stall_frac: 0.33,
            a_stall_frac: None,
            read_bytes: 1e9,
            traffic_bytes: 1.5e9,
            retunes: Some(2),
            retune_times_s: Some(vec![3.5, 9.25]),
            phase_switches: None,
            jobs: Some(3),
            job_slowdowns: Some(vec![1.0, 1.25, 2.5]),
            slowdown_p50: Some(1.25),
            slowdown_p95: Some(2.5),
            slowdown_p99: Some(2.5),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bwap-cache-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trips_ok_and_err_bit_exactly() {
        let d = desc("rt");
        for outcome in [Ok(result()), Err("boom\nline2".to_string())] {
            let enc = encode_entry(&d, &outcome);
            let (dt, back) = decode_entry(&enc).expect("decodes");
            assert_eq!(dt, d.text());
            match (&outcome, &back) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.policy, b.policy);
                    assert_eq!(a.exec_time_s.to_bits(), b.exec_time_s.to_bits());
                    assert_eq!(a.chosen_dwp.map(f64::to_bits), b.chosen_dwp.map(f64::to_bits));
                    assert_eq!(a.retune_times_s, b.retune_times_s);
                    assert_eq!(a.a_stall_frac, b.a_stall_frac);
                    assert_eq!(a.retunes, b.retunes);
                    assert_eq!(a.phase_switches, b.phase_switches);
                    assert_eq!(a.jobs, b.jobs);
                    assert_eq!(a.job_slowdowns, b.job_slowdowns);
                    assert_eq!(a.slowdown_p50.map(f64::to_bits), b.slowdown_p50.map(f64::to_bits));
                    assert_eq!(a.slowdown_p95.map(f64::to_bits), b.slowdown_p95.map(f64::to_bits));
                    assert_eq!(a.slowdown_p99.map(f64::to_bits), b.slowdown_p99.map(f64::to_bits));
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                _ => panic!("outcome kind flipped"),
            }
        }
    }

    #[test]
    fn store_load_hit_and_cold_miss() {
        let dir = tmp("hit");
        let cache = CellCache::open(&dir).expect("open");
        let d = desc("cell-a");
        assert!(cache.load(&d).is_none(), "cold cache must miss");
        cache.store(&d, &Ok(result()));
        let hit = cache.load(&d).expect("hit").expect("ok outcome");
        assert_eq!(hit.exec_time_s.to_bits(), result().exec_time_s.to_bits());
        // A different descriptor is a different entry.
        assert!(cache.load(&desc("cell-b")).is_none());
        // The journal recorded the store.
        let j = std::fs::read_to_string(dir.join("journal.log")).expect("journal");
        assert!(j.contains(&format!("store {} ok", d.hash_hex())), "{j}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_truncated_and_skewed_entries_are_misses() {
        let dir = tmp("corrupt");
        let cache = CellCache::open(&dir).expect("open");
        let d = desc("cell-c");
        cache.store(&d, &Ok(result()));
        let path = cache.entry_path(&d);
        let full = std::fs::read_to_string(&path).expect("entry");

        // Truncation (torn write survived a rename somehow): miss.
        std::fs::write(&path, &full[..full.len() / 2]).expect("truncate");
        assert!(cache.load(&d).is_none());

        // Garbage: miss.
        std::fs::write(&path, "not an entry").expect("garbage");
        assert!(cache.load(&d).is_none());

        // Version skew in the embedded descriptor: stored text no longer
        // matches the computed descriptor byte-for-byte -> miss.
        std::fs::write(&path, full.replace("tag=scell-c", "tag=scell-X")).expect("skew");
        assert!(cache.load(&d).is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn hash_collision_is_detected_via_descriptor_bytes() {
        let dir = tmp("collision");
        let cache = CellCache::open(&dir).expect("open");
        let (a, b) = (desc("one"), desc("two"));
        // Simulate a collision: drop b's entry where a's hash points.
        std::fs::write(cache.entry_path(&a), encode_entry(&b, &Ok(result()))).expect("plant");
        assert!(cache.load(&a).is_none(), "foreign descriptor must not alias");
        assert!(cache.load(&b).is_none(), "b's entry lives under a's path, not b's");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn injected_torn_and_flipped_stores_are_detected_as_misses() {
        for kind in [FaultKind::CacheTorn, FaultKind::CacheFlip] {
            let dir = tmp(&format!("fault-{}", kind.label()));
            let plan = FaultPlan::new(11).with(kind, 1.0);
            let cache = CellCache::open_with(&dir, Some(plan)).expect("open");
            let d = desc("chaos-cell");
            cache.store(&d, &Ok(result()));
            assert!(
                cache.load(&d).is_none(),
                "a {} store must be caught by verification on load",
                kind.label()
            );
            // A clean cache over the same directory also rejects the entry.
            let clean = CellCache::open(&dir).expect("open clean");
            assert!(clean.load(&d).is_none());
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn injected_corruption_is_deterministic() {
        let plan = FaultPlan::new(13).with(FaultKind::CacheFlip, 1.0);
        let (a, b) = (tmp("det-a"), tmp("det-b"));
        let d = desc("det-cell");
        for dir in [&a, &b] {
            CellCache::open_with(dir, Some(plan.clone())).expect("open").store(&d, &Ok(result()));
        }
        let ea = std::fs::read(a.join(format!("{}.cell", d.hash_hex()))).expect("a");
        let eb = std::fs::read(b.join(format!("{}.cell", d.hash_hex()))).expect("b");
        assert_eq!(ea, eb, "same plan, same corruption bytes");
        let _ = std::fs::remove_dir_all(a);
        let _ = std::fs::remove_dir_all(b);
    }

    #[test]
    fn journal_drops_are_counted_not_written() {
        let dir = tmp("journal-drop");
        let plan = FaultPlan::new(17).with(FaultKind::JournalDrop, 1.0);
        let cache = CellCache::open_with(&dir, Some(plan)).expect("open");
        let d = desc("journal-cell");
        cache.store(&d, &Ok(result()));
        assert_eq!(cache.journal_errors(), 1);
        assert!(!dir.join("journal.log").exists(), "dropped append must not reach disk");
        // The entry itself is intact — journal loss never corrupts data.
        assert!(cache.load(&d).is_some());
        // Clones share the counter.
        let clone = cache.clone();
        clone.store(&desc("journal-cell-2"), &Ok(result()));
        assert_eq!(cache.journal_errors(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn empty_retune_times_round_trip() {
        let d = desc("empty-times");
        let mut r = result();
        r.retune_times_s = Some(Vec::new());
        let (_, back) = decode_entry(&encode_entry(&d, &Ok(r))).expect("decodes");
        assert_eq!(back.expect("ok").retune_times_s, Some(Vec::new()));
    }
}
