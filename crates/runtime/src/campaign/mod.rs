//! Declarative experiment campaigns: the whole evaluation matrix as data.
//!
//! The paper's evaluation is a cartesian product — {workloads} ×
//! {policies} × {stand-alone, co-scheduled} × {worker counts} × {static
//! DWPs}. Instead of each figure binary hand-rolling a serial loop over
//! [`crate::run_standalone`] / [`crate::run_coscheduled`], a
//! [`CampaignSpec`] *declares* the matrix and [`run_campaign`] executes
//! it: cells are enumerated in a deterministic order, each gets a seed
//! derived from the campaign seed and the cell's identity
//! ([`bwap::seed::derive_seed`]), and a sharded executor
//! ([`executor::run_parallel_with`]) fans them out over
//! `std::thread::scope` workers pulling from a work-stealing queue.
//! Results land in a [`CampaignReport`] — machine-readable JSON with a
//! stable, versioned schema (see `docs/RESULTS_SCHEMA.md`).
//!
//! Because every cell builds its own `Simulator` and the simulator is
//! deterministic, a campaign's cell results are identical at any shard
//! count, and two runs of the same spec + seed produce byte-identical
//! reports modulo the volatile provenance fields (wall time, threads).
//! Integration tests at the workspace root pin both properties.
//!
//! Phase-structured workloads ([`bwap_workloads::PhasedWorkload`]) are a
//! first-class axis: declare them with
//! [`CampaignSpec::phased_workloads`], sweep phase durations with the
//! [`CampaignSpec::phase_periods`] axis, and their cells run through the
//! phased scenario runners (the `fig_phases` campaign pits adaptive BWAP
//! against the static policies this way). Classic campaigns declare no
//! phased workloads and enumerate byte-identically to the pre-phase
//! engine.
//!
//! New scenarios (topologies, workloads, co-schedule mixes) plug in by
//! declaring a spec — not by writing another binary.

pub mod cache;
pub mod descriptor;
pub mod executor;
pub mod faults;
pub mod report;

pub use cache::CellCache;
pub use descriptor::{cell_descriptor, effective_policy};
pub use executor::{run_parallel, run_parallel_catch, run_parallel_with};
pub use faults::{Fault, FaultKind, FaultPlan};
pub use report::{results_dir, CampaignReport, CellRecord, NodeTierRecord, SCHEMA_VERSION};

use crate::baselines::PlacementPolicy;
use crate::error::RuntimeError;
use crate::fleet::{
    jobs_from_trace, poisson_jobs, run_fleet, FleetConfig, MachineKind, SchedulerKind,
};
use crate::scenario::{coscheduled_impl, standalone_impl, RunResult};
use bwap::derive_seed;
use bwap_topology::MachineTopology;
use bwap_workloads::arrivals::ArrivalEvent;
use bwap_workloads::{PhasedWorkload, WorkloadSpec};
use numasim::{EngineMode, SimConfig, TraceSink};
use std::path::{Path, PathBuf};

/// The paper's two evaluation scenarios (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// The machine belongs to the measured application alone.
    Standalone,
    /// The measured application shares the machine with the CPU-bound
    /// high-priority Swaptions on the complement of the worker set.
    Coscheduled,
    /// Fleet-scale serving: an open-loop job stream scheduled across many
    /// machines (see [`crate::fleet`]). Cells of this kind exist only
    /// when the spec declares a [`FleetAxis`].
    Fleet,
}

impl ScenarioKind {
    /// Stable label used in cell keys and report JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::Standalone => "standalone",
            ScenarioKind::Coscheduled => "coscheduled",
            ScenarioKind::Fleet => "fleet",
        }
    }
}

/// One point of the static-DWP axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DwpPoint {
    /// Run the policy exactly as declared (for BWAP: the online tuner).
    AsConfigured,
    /// Pin BWAP to this fixed DWP, online search disabled (Fig. 4's
    /// sweep). Cells pairing a static point with a non-BWAP policy are
    /// not generated — the knob does not exist for those policies.
    Static(f64),
}

impl DwpPoint {
    fn label(&self) -> String {
        match self {
            DwpPoint::AsConfigured => "as-configured".into(),
            DwpPoint::Static(d) => format!("dwp={d}"),
        }
    }

    /// The static value, if any (what [`CellRecord::static_dwp`] records).
    pub fn static_value(&self) -> Option<f64> {
        match self {
            DwpPoint::AsConfigured => None,
            DwpPoint::Static(d) => Some(*d),
        }
    }
}

/// A declarative experiment campaign: the full evaluation matrix as data.
///
/// Build one with [`CampaignSpec::new`] plus the chainable axis setters,
/// then hand it to [`run_campaign`]. The cell set is the cartesian
/// product of the four axes (workloads × policies × scenarios × worker
/// counts × DWP grid), minus static-DWP points for policies without a
/// DWP knob.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name: report identity and artifact file stem.
    pub name: String,
    /// Machine every cell runs on.
    pub machine: MachineTopology,
    /// Workload axis.
    pub workloads: Vec<WorkloadSpec>,
    /// Phase-structured workload axis, enumerated after the plain
    /// workloads. Empty for classic campaigns — the cell set (and every
    /// existing report) is unchanged unless phased workloads are declared.
    pub phased_workloads: Vec<PhasedWorkload>,
    /// Phase-period axis, applied to phased workloads only: each point
    /// rescales a workload's timeline so one full phase cycle lasts that
    /// many seconds, phases keeping their relative durations (`None`
    /// keeps the native durations). Defaults to `vec![None]`.
    pub phase_periods: Vec<Option<f64>>,
    /// Policy axis.
    pub policies: Vec<PlacementPolicy>,
    /// Scenario axis (default: stand-alone only).
    pub scenarios: Vec<ScenarioKind>,
    /// Worker-count axis (default: 1). Each count resolves to the
    /// machine's rule-of-thumb worker set, as the figure binaries did.
    pub worker_counts: Vec<usize>,
    /// Static-DWP axis (default: as-configured only).
    pub dwp_grid: Vec<DwpPoint>,
    /// Engine configuration shared by every cell.
    pub sim_cfg: SimConfig,
    /// Root seed; every cell derives its own from this plus its key.
    pub seed: u64,
    /// Also run the installation-time bandwidth probe (Fig. 1a) and
    /// attach the matrix to the report.
    pub probe_bandwidth: bool,
    /// Fleet axis: when set, fleet cells (policies × schedulers ×
    /// arrival rates × worker counts × DWP grid) are enumerated *after*
    /// every machine-local cell, so declaring it never perturbs existing
    /// keys, seeds or report bytes. The spec's plain `workloads` double
    /// as the fleet's job catalog.
    pub fleet: Option<FleetAxis>,
}

/// The fleet axis of a campaign: which cluster configurations to sweep.
#[derive(Debug, Clone)]
pub struct FleetAxis {
    /// Machine mix, in scheduler index order.
    pub machines: Vec<MachineKind>,
    /// Cluster schedulers to sweep.
    pub schedulers: Vec<SchedulerKind>,
    /// Poisson arrival rates (jobs per simulated second) to sweep.
    /// Ignored when an explicit [`FleetAxis::trace`] is set.
    pub arrival_rates: Vec<f64>,
    /// Jobs per Poisson stream.
    pub jobs: usize,
    /// Explicit arrival trace: replaces the Poisson axis with a single
    /// `rate=trace` point replaying exactly these events.
    pub trace: Option<Vec<ArrivalEvent>>,
}

impl CampaignSpec {
    /// A spec with empty workload/policy axes and singleton defaults for
    /// the rest (stand-alone, 1 worker, as-configured DWP, seed 0).
    pub fn new(name: &str, machine: MachineTopology) -> Self {
        CampaignSpec {
            name: name.to_string(),
            machine,
            workloads: Vec::new(),
            phased_workloads: Vec::new(),
            phase_periods: vec![None],
            policies: Vec::new(),
            scenarios: vec![ScenarioKind::Standalone],
            worker_counts: vec![1],
            dwp_grid: vec![DwpPoint::AsConfigured],
            sim_cfg: SimConfig::default(),
            seed: 0,
            probe_bandwidth: false,
            fleet: None,
        }
    }

    /// Set the workload axis.
    pub fn workloads(mut self, workloads: Vec<WorkloadSpec>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Set the phase-structured workload axis.
    pub fn phased_workloads(mut self, workloads: Vec<PhasedWorkload>) -> Self {
        self.phased_workloads = workloads;
        self
    }

    /// Set the phase-period axis (cycle seconds; applied to phased
    /// workloads). An empty list restores the default single
    /// native-durations point — it never empties the axis, which would
    /// silently enumerate zero cells for every phased workload.
    pub fn phase_periods(mut self, periods: Vec<f64>) -> Self {
        self.phase_periods =
            if periods.is_empty() { vec![None] } else { periods.into_iter().map(Some).collect() };
        self
    }

    /// Set the policy axis.
    pub fn policies(mut self, policies: Vec<PlacementPolicy>) -> Self {
        self.policies = policies;
        self
    }

    /// Set the scenario axis.
    pub fn scenarios(mut self, scenarios: Vec<ScenarioKind>) -> Self {
        self.scenarios = scenarios;
        self
    }

    /// Set the worker-count axis.
    pub fn worker_counts(mut self, counts: Vec<usize>) -> Self {
        self.worker_counts = counts;
        self
    }

    /// Set the static-DWP axis.
    pub fn dwp_grid(mut self, grid: Vec<DwpPoint>) -> Self {
        self.dwp_grid = grid;
        self
    }

    /// Set the per-cell engine configuration.
    pub fn sim_cfg(mut self, cfg: SimConfig) -> Self {
        self.sim_cfg = cfg;
        self
    }

    /// Select how every cell's simulator advances time (an axis of the
    /// whole campaign, not of individual cells — results are identical in
    /// both modes, so sweeping it per cell would measure nothing).
    pub fn engine_mode(mut self, mode: EngineMode) -> Self {
        self.sim_cfg.mode = mode;
        self
    }

    /// Set the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Request the installation-time bandwidth probe.
    pub fn probe_bandwidth(mut self, probe: bool) -> Self {
        self.probe_bandwidth = probe;
        self
    }

    /// Declare the fleet axis (see [`FleetAxis`]).
    pub fn fleet(mut self, axis: FleetAxis) -> Self {
        self.fleet = Some(axis);
        self
    }

    /// The workload name at a combined index (plain workloads first, then
    /// phased ones — [`CellSpec::workload_idx`]'s coordinate space).
    /// Fleet cells run the whole catalog and carry the sentinel index
    /// `usize::MAX`, reported as `"mix"`.
    pub fn workload_name(&self, idx: usize) -> &str {
        if idx == usize::MAX {
            "mix"
        } else if idx < self.workloads.len() {
            self.workloads[idx].name
        } else {
            &self.phased_workloads[idx - self.workloads.len()].name
        }
    }

    /// Enumerate the campaign's cells in their deterministic order
    /// (workload-major, DWP-minor; plain workloads before phased ones).
    /// Ids, keys and seeds depend only on the spec — never on thread
    /// count or scheduling. Plain-workload keys carry no phase-period
    /// segment, so classic campaigns enumerate byte-identically to the
    /// pre-phase engine.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for (wi, w) in self.workloads.iter().enumerate() {
            self.push_cells(&mut cells, wi, w.name, &[CellPeriod::NotPhased]);
        }
        let periods: Vec<CellPeriod> =
            self.phase_periods.iter().map(|&p| CellPeriod::Phased(p)).collect();
        for (pj, pw) in self.phased_workloads.iter().enumerate() {
            self.push_cells(&mut cells, self.workloads.len() + pj, &pw.name, &periods);
        }
        self.push_fleet_cells(&mut cells);
        cells
    }

    /// Enumerate fleet cells, after every machine-local cell: policies ×
    /// schedulers × arrival rates (a single `trace` point when an
    /// explicit trace is declared) × worker counts × DWP grid.
    fn push_fleet_cells(&self, cells: &mut Vec<CellSpec>) {
        let Some(axis) = &self.fleet else { return };
        let mix: Vec<&str> = axis.machines.iter().map(|m| m.label()).collect();
        let mix = mix.join("+");
        let rates: Vec<Option<f64>> = if axis.trace.is_some() {
            vec![None]
        } else {
            axis.arrival_rates.iter().map(|&r| Some(r)).collect()
        };
        for (pi, p) in self.policies.iter().enumerate() {
            let has_dwp_knob = matches!(p, PlacementPolicy::Bwap(_));
            for &sched in &axis.schedulers {
                for &rate in &rates {
                    for &k in &self.worker_counts {
                        for &dwp in &self.dwp_grid {
                            if dwp.static_value().is_some() && !has_dwp_knob {
                                continue;
                            }
                            let key = format!(
                                "fleet:{mix}|p{pi}:{}|sched={}|rate={}|{k}w|{}",
                                p.label(),
                                sched.label(),
                                match rate {
                                    Some(r) => format!("{r}"),
                                    None => "trace".into(),
                                },
                                dwp.label()
                            );
                            let seed = derive_seed(self.seed, &key);
                            cells.push(CellSpec {
                                id: cells.len(),
                                workload_idx: usize::MAX,
                                policy_idx: pi,
                                scenario: ScenarioKind::Fleet,
                                workers: k,
                                dwp,
                                phase_period: None,
                                scheduler: Some(sched),
                                arrival_rate: rate,
                                key,
                                seed,
                            });
                        }
                    }
                }
            }
        }
    }

    fn push_cells(
        &self,
        cells: &mut Vec<CellSpec>,
        wi: usize,
        workload_name: &str,
        periods: &[CellPeriod],
    ) {
        for (pi, p) in self.policies.iter().enumerate() {
            let has_dwp_knob = matches!(p, PlacementPolicy::Bwap(_));
            for &scenario in &self.scenarios {
                for &k in &self.worker_counts {
                    for &dwp in &self.dwp_grid {
                        if dwp.static_value().is_some() && !has_dwp_knob {
                            continue;
                        }
                        for period in periods {
                            let mut key = format!(
                                "w{wi}:{workload_name}|p{pi}:{}|{}|{k}w|{}",
                                p.label(),
                                scenario.label(),
                                dwp.label()
                            );
                            if let CellPeriod::Phased(p) = period {
                                key.push('|');
                                key.push_str(&match p {
                                    Some(t) => format!("T={t}s"),
                                    None => "T=native".into(),
                                });
                            }
                            let seed = derive_seed(self.seed, &key);
                            cells.push(CellSpec {
                                id: cells.len(),
                                workload_idx: wi,
                                policy_idx: pi,
                                scenario,
                                workers: k,
                                dwp,
                                phase_period: match period {
                                    CellPeriod::NotPhased => None,
                                    CellPeriod::Phased(p) => *p,
                                },
                                scheduler: None,
                                arrival_rate: None,
                                key,
                                seed,
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Phase-period coordinate during enumeration: plain workloads have no
/// period segment in their key at all (backward-compatible keys), phased
/// workloads carry one per axis point.
#[derive(Debug, Clone, Copy)]
enum CellPeriod {
    NotPhased,
    Phased(Option<f64>),
}

/// One fully-resolved cell of a campaign matrix.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Position in enumeration order.
    pub id: usize,
    /// Combined workload coordinate: indices below
    /// `CampaignSpec::workloads.len()` address the plain workload axis,
    /// the rest address [`CampaignSpec::phased_workloads`].
    pub workload_idx: usize,
    /// Index into [`CampaignSpec::policies`].
    pub policy_idx: usize,
    /// Scenario to run.
    pub scenario: ScenarioKind,
    /// Worker-node count.
    pub workers: usize,
    /// Static-DWP point.
    pub dwp: DwpPoint,
    /// Phase-period override for phased-workload cells (`None` for plain
    /// cells and for the native-duration axis point).
    pub phase_period: Option<f64>,
    /// Cluster scheduler of a fleet cell (`None` for machine-local
    /// cells). Always `Some` when `scenario == ScenarioKind::Fleet`.
    pub scheduler: Option<SchedulerKind>,
    /// Poisson arrival rate of a fleet cell, jobs per simulated second
    /// (`None` for machine-local cells and trace-driven fleet cells).
    pub arrival_rate: Option<f64>,
    /// Stable key: seed-derivation input and report identity.
    pub key: String,
    /// Derived seed.
    pub seed: u64,
}

/// Executor knobs, separate from the spec: the same spec must yield the
/// same results under any executor configuration — dedup on or off,
/// cache warm or cold, any thread count.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Worker threads (`None` = one per available core).
    pub threads: Option<usize>,
    /// When set, every cell runs with a [`TraceSink`] attached and writes
    /// a Chrome-trace file `trace-<sanitized cell key>.json` into this
    /// directory (see `docs/TRACING.md`). Tracing never perturbs results:
    /// the deterministic report is byte-identical with or without it.
    /// Cells that share a deduplicated execution share its trace file;
    /// cells served from the cache carry no trace at all.
    pub trace_dir: Option<PathBuf>,
    /// Exact intra-campaign deduplication (default on): cells are grouped
    /// by canonical descriptor ([`cell_descriptor`]), one representative
    /// per class executes, and the result fans out to every member. Off
    /// exists for A/B measurement, not correctness — reports are
    /// byte-identical either way.
    pub dedup: bool,
    /// Persistent cell cache directory. When set, executed classes store
    /// their outcome under `<dir>/<descriptor hash>.cell` and later runs
    /// replay them (see [`cache::CellCache`]), giving warm reruns
    /// near-zero cost and kill-and-resume for free.
    pub cache_dir: Option<PathBuf>,
    /// Seeded chaos schedule (see [`faults`]): injects cache corruption,
    /// delayed cells and panicking cells into this run. `None` (the
    /// default) in production. Recoverable faults never change the
    /// deterministic report — see `docs/ROBUSTNESS.md`.
    pub faults: Option<FaultPlan>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            threads: None,
            trace_dir: None,
            dedup: true,
            cache_dir: None,
            faults: None,
        }
    }
}

/// Run a campaign with the default executor configuration (all cores).
pub fn run_campaign(spec: &CampaignSpec) -> CampaignReport {
    run_campaign_with(spec, &CampaignConfig::default())
}

/// Run every cell of `spec` across the sharded executor and collect the
/// report. Cell failures (e.g. a co-scheduled cell on a full-machine
/// worker set) are recorded per cell, never aborting the campaign.
///
/// Execution pipeline (the memoization layer, see `docs/ARCHITECTURE.md`):
///
/// 1. **Dedup** — cells are grouped into equivalence classes by canonical
///    descriptor ([`cell_descriptor`]; exact text match, the hash is only
///    an index). One representative per class executes.
/// 2. **Cache** — with [`CampaignConfig::cache_dir`] set, each class
///    first consults the on-disk [`CellCache`]; hits skip execution
///    entirely, fresh executions are stored for the next run. A killed
///    campaign resumes by replaying its stored classes.
/// 3. **Fan-out** — every member cell of a class receives the class
///    outcome under its own key/seed/identity. The volatile provenance
///    fields `dedup_class` and `cache_hit` record the sharing; the
///    deterministic report is byte-identical to a fully cold,
///    dedup-disabled run.
pub fn run_campaign_with(spec: &CampaignSpec, cfg: &CampaignConfig) -> CampaignReport {
    let t0 = std::time::Instant::now();
    let bw_matrix = spec.probe_bandwidth.then(|| bwap_fabric::probe_matrix(&spec.machine));
    // Heterogeneous machines carry their tier axis into the report;
    // symmetric machines omit it so their reports stay byte-stable.
    let node_tiers = spec.machine.is_heterogeneous().then(|| {
        spec.machine
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, n)| NodeTierRecord {
                node: i as u16,
                class: n.mem_class.name.to_string(),
                cores: n.cores,
                ctrl_bw: n.ctrl_bw,
                lat_scale: n.mem_class.lat_scale,
                mem_pages: n.mem_pages,
            })
            .collect()
    });
    let cells = spec.cells();
    let descs: Vec<_> = cells.iter().map(|c| cell_descriptor(spec, c)).collect();

    // Group cells into descriptor-equivalence classes. Representatives
    // are the lowest-id member, so class order (and therefore execution
    // order) is deterministic. Dedup off = singleton classes.
    let mut class_of = vec![0usize; cells.len()];
    let mut reps: Vec<usize> = Vec::new();
    let mut class_size: Vec<usize> = Vec::new();
    if cfg.dedup {
        let mut by_text: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for (i, d) in descs.iter().enumerate() {
            let k = *by_text.entry(d.text()).or_insert_with(|| {
                reps.push(i);
                class_size.push(0);
                reps.len() - 1
            });
            class_of[i] = k;
            class_size[k] += 1;
        }
    } else {
        for (i, k) in class_of.iter_mut().enumerate() {
            *k = i;
            reps.push(i);
            class_size.push(1);
        }
    }

    // Replay whatever the persistent cache already holds, then execute
    // only the remaining classes. `(outcome, trace_path, cache_hit)`.
    type ClassOutcome = (Result<RunResult, String>, Option<String>, bool);
    let cache = cfg.cache_dir.as_deref().and_then(|d| CellCache::open_with(d, cfg.faults.clone()));
    let mut class_outcomes: Vec<Option<ClassOutcome>> = reps
        .iter()
        .map(|&rep| cache.as_ref().and_then(|c| c.load(&descs[rep])).map(|o| (o, None, true)))
        .collect();
    let pending: Vec<usize> = (0..reps.len()).filter(|&k| class_outcomes[k].is_none()).collect();
    let executed_cells = pending.len();
    let threads_used = executor::effective_workers(cfg.threads, executed_cells);
    let jobs: Vec<_> = pending
        .iter()
        .map(|&k| {
            let cell = cells[reps[k]].clone();
            let trace_dir = cfg.trace_dir.clone();
            let faults = cfg.faults.clone();
            move || {
                if let Some(plan) = &faults {
                    if let Some(f) = plan.decide(FaultKind::CellDelay, &cell.key) {
                        std::thread::sleep(std::time::Duration::from_millis(f.param_ms));
                    }
                    if plan.decide(FaultKind::CellPanic, &cell.key).is_some() {
                        panic!("injected cell-panic fault at {}", cell.key);
                    }
                }
                let mut sink = None;
                let outcome = run_cell(spec, &cell, trace_dir.is_some().then_some(&mut sink));
                let trace_path = match (&trace_dir, sink) {
                    (Some(dir), Some(sink)) => write_trace(dir, &cell.key, &sink),
                    _ => None,
                };
                (outcome.map_err(|e| e.to_string()), trace_path)
            }
        })
        .collect();
    // Panic isolation: a poisoned cell becomes an error cell for its
    // whole dedup class instead of killing the campaign. Panicked
    // outcomes are *never* cached — a later warm run must re-execute,
    // not replay an injected failure.
    let fresh = run_parallel_catch(cfg.threads, jobs);
    for (&k, caught) in pending.iter().zip(fresh) {
        class_outcomes[k] = Some(match caught {
            Ok((outcome, trace_path)) => {
                if let Some(c) = &cache {
                    c.store(&descs[reps[k]], &outcome);
                }
                (outcome, trace_path, false)
            }
            Err(panic_msg) => (Err(format!("cell panicked: {panic_msg}")), None, false),
        });
    }
    let journal_errors = cache.as_ref().map_or(0, |c| c.journal_errors());
    if journal_errors > 0 {
        eprintln!(
            "warning: campaign {:?}: {journal_errors} cache journal append(s) failed \
             (cache entries are unaffected; post-mortem journal is incomplete)",
            spec.name
        );
    }

    // Fan each class outcome out to its members. Cloned results are
    // re-labelled with the member's own effective policy/workload/workers
    // so an in-memory consumer cannot tell a shared result from a fresh
    // one; the serialized result fields are bit-identical by the
    // determinism contract.
    let unresolved: ClassOutcome =
        (Err("internal: dedup class never resolved".to_string()), None, false);
    let records = cells
        .into_iter()
        .map(|cell| {
            let k = class_of[cell.id];
            // Defensive: an unresolved class (impossible today, since every
            // pending class gets a slot above) degrades to a per-cell error
            // instead of panicking the whole campaign out.
            let (outcome, trace_path, cache_hit) =
                class_outcomes[k].as_ref().unwrap_or(&unresolved);
            let mut outcome = outcome.clone();
            if let Ok(r) = &mut outcome {
                r.policy = effective_policy(spec, &cell).label();
                r.workload = spec.workload_name(cell.workload_idx).to_string();
                r.workers = cell.workers;
            }
            CellRecord {
                id: cell.id,
                workload: spec.workload_name(cell.workload_idx).to_string(),
                policy: spec.policies[cell.policy_idx].label(),
                scenario: cell.scenario,
                workers: cell.workers,
                static_dwp: cell.dwp.static_value(),
                phase_period: cell.phase_period,
                scheduler: cell.scheduler.map(|s| s.label().to_string()),
                arrival_rate_hz: cell.arrival_rate,
                seed: cell.seed,
                dedup_class: (class_size[k] > 1).then(|| descs[cell.id].hash_hex()),
                cache_hit: *cache_hit,
                key: cell.key,
                outcome,
                trace_path: trace_path.clone(),
            }
        })
        .collect();
    CampaignReport {
        schema_version: SCHEMA_VERSION,
        campaign: spec.name.clone(),
        machine: spec.machine.name().to_string(),
        seed: spec.seed,
        threads: threads_used,
        wall_time_s: t0.elapsed().as_secs_f64(),
        engine_mode: (spec.sim_cfg.mode != EngineMode::default())
            .then(|| spec.sim_cfg.mode.label().to_string()),
        executed_cells,
        journal_errors,
        bw_matrix,
        node_tiers,
        cells: records,
    }
}

/// Run one cell of a spec exactly as [`run_campaign_with`] would, without
/// tracing — the entry point remote `campaign-worker` processes use to
/// serve cells (the `cell` must come from this spec's [`CampaignSpec::cells`]
/// enumeration).
pub fn run_cell_for(spec: &CampaignSpec, cell: &CellSpec) -> Result<RunResult, RuntimeError> {
    run_cell(spec, cell, None)
}

/// Write one cell's Chrome-trace file into `dir`, returning the path
/// written. Tracing is observability, never a reason to fail a cell: a
/// filesystem refusal drops the file (the report then simply carries no
/// `trace_path` for the cell).
fn write_trace(dir: &Path, key: &str, sink: &TraceSink) -> Option<String> {
    let stem: String = key
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || "._-".contains(c) { c } else { '-' })
        .collect();
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("trace-{stem}.json"));
    std::fs::write(&path, sink.to_chrome_json()).ok()?;
    Some(path.display().to_string())
}

/// Run one cell: resolve the worker set, apply the cell's DWP override
/// and seed to the policy, and dispatch to the scenario runner. When
/// `trace` is `Some`, the run is observed by a [`TraceSink`] stored into
/// the slot afterwards.
fn run_cell(
    spec: &CampaignSpec,
    cell: &CellSpec,
    trace: Option<&mut Option<TraceSink>>,
) -> Result<RunResult, RuntimeError> {
    if cell.scenario == ScenarioKind::Fleet {
        return run_fleet_cell(spec, cell, trace);
    }
    // Only worker-capable nodes count: a 4-node tiered machine with two
    // CPU-less expanders supports at most 2 workers.
    let n = spec.machine.worker_node_count();
    if cell.workers == 0 || cell.workers > n {
        return Err(RuntimeError::Scenario(format!(
            "worker count {} out of range for machine with {} worker-capable nodes",
            cell.workers, n
        )));
    }
    // The same override logic the cell's canonical descriptor is built
    // from — extraction keeps the two in lockstep (see `descriptor`).
    let policy = effective_policy(spec, cell);
    let workers = spec.machine.best_worker_set(cell.workers);
    if let Some(phased) =
        cell.workload_idx.checked_sub(spec.workloads.len()).map(|i| &spec.phased_workloads[i])
    {
        let timeline = phased.profiles_for(&spec.machine, cell.phase_period);
        return match cell.scenario {
            ScenarioKind::Standalone => standalone_impl(
                &spec.machine,
                phased.layout_spec(),
                Some(timeline),
                &phased.name,
                workers,
                &policy,
                spec.sim_cfg.clone(),
                trace,
            ),
            ScenarioKind::Coscheduled => coscheduled_impl(
                &spec.machine,
                phased.layout_spec(),
                Some(timeline),
                &phased.name,
                workers,
                &policy,
                spec.sim_cfg.clone(),
                trace,
            ),
            // Dispatched at the top of this function.
            ScenarioKind::Fleet => unreachable!("fleet cells dispatch to run_fleet_cell"),
        };
    }
    let workload = &spec.workloads[cell.workload_idx];
    match cell.scenario {
        ScenarioKind::Standalone => standalone_impl(
            &spec.machine,
            workload,
            None,
            workload.name,
            workers,
            &policy,
            spec.sim_cfg.clone(),
            trace,
        ),
        ScenarioKind::Coscheduled => coscheduled_impl(
            &spec.machine,
            workload,
            None,
            workload.name,
            workers,
            &policy,
            spec.sim_cfg.clone(),
            trace,
        ),
        // Dispatched at the top of this function.
        ScenarioKind::Fleet => unreachable!("fleet cells dispatch to run_fleet_cell"),
    }
}

/// Run one fleet cell: build the [`FleetConfig`] from the spec's fleet
/// axis and the cell's coordinates, materialize the arrival stream (the
/// declared trace, or a Poisson stream seeded by the *cell* seed over the
/// spec's workload catalog), run the fleet, and fold the outcome into a
/// [`RunResult`] — `exec_time_s` holds the makespan and the fleet tail
/// metrics ride in the optional fields.
fn run_fleet_cell(
    spec: &CampaignSpec,
    cell: &CellSpec,
    trace: Option<&mut Option<TraceSink>>,
) -> Result<RunResult, RuntimeError> {
    let axis = spec.fleet.as_ref().ok_or_else(|| {
        RuntimeError::Scenario("fleet cell on a spec without a fleet axis".into())
    })?;
    let policy = effective_policy(spec, cell);
    let cfg = FleetConfig {
        machines: axis.machines.iter().map(|m| m.topology()).collect(),
        scheduler: cell.scheduler.expect("fleet cells carry a scheduler"),
        policy: policy.clone(),
        workers: cell.workers,
        sim_cfg: spec.sim_cfg.clone(),
    };
    let jobs = match &axis.trace {
        Some(events) => jobs_from_trace(events),
        None => {
            poisson_jobs(cell.seed, cell.arrival_rate.unwrap_or(0.0), axis.jobs, &spec.workloads)
        }
    };
    let out = run_fleet(&cfg, &jobs, trace)?;
    Ok(RunResult {
        policy: policy.label(),
        workload: "mix".into(),
        workers: cell.workers,
        exec_time_s: out.makespan_s,
        chosen_dwp: None,
        migrated_pages: out.migrated_pages,
        stall_frac: out.stall_frac,
        a_stall_frac: None,
        read_bytes: out.read_bytes,
        traffic_bytes: out.traffic_bytes,
        retunes: None,
        retune_times_s: None,
        phase_switches: None,
        jobs: Some(out.jobs.len() as u64),
        job_slowdowns: Some(out.slowdowns),
        slowdown_p50: out.slowdown_p50,
        slowdown_p95: out.slowdown_p95,
        slowdown_p99: out.slowdown_p99,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap::BwapConfig;
    use bwap_topology::machines;

    fn small_spec() -> CampaignSpec {
        CampaignSpec::new("unit", machines::machine_b())
            .workloads(vec![bwap_workloads::streamcluster().scaled_down(32.0)])
            .policies(vec![
                PlacementPolicy::UniformWorkers,
                PlacementPolicy::Bwap(BwapConfig::default()),
            ])
            .scenarios(vec![ScenarioKind::Standalone, ScenarioKind::Coscheduled])
            .worker_counts(vec![1, 2])
            .dwp_grid(vec![DwpPoint::AsConfigured, DwpPoint::Static(0.5)])
            .seed(7)
    }

    #[test]
    fn cell_enumeration_is_deterministic_and_skips_static_for_fixed_policies() {
        let spec = small_spec();
        let cells = spec.cells();
        // uniform-workers: 2 scenarios x 2 counts x 1 dwp (static skipped);
        // bwap: 2 x 2 x 2.
        assert_eq!(cells.len(), 4 + 8);
        assert_eq!(cells.iter().map(|c| c.id).collect::<Vec<_>>(), (0..12).collect::<Vec<_>>());
        let again = spec.cells();
        for (a, b) in cells.iter().zip(&again) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.seed, b.seed);
        }
        // Keys are unique, so seeds are decorrelated per cell.
        let keys: std::collections::HashSet<_> = cells.iter().map(|c| c.key.clone()).collect();
        assert_eq!(keys.len(), cells.len());
        assert!(cells.iter().all(
            |c| c.dwp.static_value().is_none() || spec.policies[c.policy_idx].label() == "bwap"
        ));
    }

    #[test]
    fn phased_workloads_extend_the_matrix_without_touching_plain_keys() {
        let plain = small_spec().scenarios(vec![ScenarioKind::Standalone]);
        let with_phases = plain
            .clone()
            .phased_workloads(vec![bwap_workloads::sc_bandwidth_flip().scaled_down(32.0)])
            .phase_periods(vec![2.0, 4.0]);
        let a = plain.cells();
        let b = with_phases.cells();
        // The plain prefix is identical, key for key and seed for seed.
        assert!(b.len() > a.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.seed, y.seed);
            assert_eq!(y.phase_period, None);
        }
        // Phased cells carry the period axis in their keys and specs:
        // 2 policies (uniform-workers has no dwp knob: 1 dwp point;
        // bwap: 2) x 2 counts x 2 periods = (1+2) x 2 x 2 = 12.
        let phased: Vec<_> = b.iter().skip(a.len()).collect();
        assert_eq!(phased.len(), 12);
        assert!(phased.iter().all(|c| c.key.contains("SC.FLIP") && c.key.contains("|T=")));
        assert!(phased.iter().all(|c| matches!(c.phase_period, Some(t) if t == 2.0 || t == 4.0)));
        assert_eq!(with_phases.workload_name(1), "SC.FLIP");
    }

    #[test]
    fn phased_campaign_runs_end_to_end_with_adaptive_policy() {
        let spec = CampaignSpec::new("phased-unit", machines::machine_b())
            .phased_workloads(vec![bwap_workloads::sc_bandwidth_flip().scaled_down(64.0)])
            .phase_periods(vec![1.0])
            .policies(vec![
                PlacementPolicy::FirstTouch,
                PlacementPolicy::AdaptiveBwap(crate::adaptive::AdaptiveConfig::default()),
            ])
            .seed(3);
        let report =
            run_campaign_with(&spec, &CampaignConfig { threads: Some(2), ..Default::default() });
        assert_eq!(report.cells.len(), 2);
        for c in &report.cells {
            let r = c.outcome.as_ref().unwrap_or_else(|e| panic!("{}: {e}", c.key));
            assert!(r.phase_switches.is_some(), "{}", c.key);
            assert_eq!(c.phase_period, Some(1.0));
        }
        let adaptive = report
            .cells
            .iter()
            .find(|c| c.policy == "bwap-adaptive")
            .and_then(|c| c.result())
            .expect("adaptive cell ran");
        assert!(adaptive.retunes.is_some());
        let j = report.deterministic_json();
        assert!(j.contains("\"phase_period_s\": 1"));
        assert!(j.contains("\"phase_switches\""));
    }

    fn fleet_axis() -> FleetAxis {
        FleetAxis {
            machines: vec![MachineKind::B, MachineKind::B],
            schedulers: vec![SchedulerKind::RoundRobin, SchedulerKind::LeastLoaded],
            arrival_rates: vec![0.5, 2.0],
            jobs: 3,
            trace: None,
        }
    }

    #[test]
    fn fleet_axis_extends_the_matrix_without_touching_existing_keys() {
        let plain = small_spec();
        let with_fleet = plain.clone().fleet(fleet_axis());
        let a = plain.cells();
        let b = with_fleet.cells();
        // The machine-local prefix is identical, key for key.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.seed, y.seed);
            assert_eq!(y.scheduler, None);
        }
        // Fleet cells: 2 policies (uniform-workers: 1 dwp point; bwap: 2)
        // x 2 schedulers x 2 rates x 2 counts = (1+2) x 2 x 2 x 2 = 24.
        let fleet: Vec<_> = b.iter().skip(a.len()).collect();
        assert_eq!(fleet.len(), 24);
        for c in &fleet {
            assert_eq!(c.scenario, ScenarioKind::Fleet);
            assert_eq!(c.workload_idx, usize::MAX);
            assert!(c.scheduler.is_some() && c.arrival_rate.is_some());
            assert!(c.key.starts_with("fleet:b+b|"), "{}", c.key);
        }
        assert_eq!(with_fleet.workload_name(usize::MAX), "mix");
    }

    #[test]
    fn fleet_campaign_runs_end_to_end_with_tail_metrics() {
        let spec = CampaignSpec::new("fleet-unit", machines::machine_b())
            .workloads(vec![bwap_workloads::streamcluster().scaled_down(64.0)])
            .policies(vec![PlacementPolicy::UniformWorkers])
            .fleet(FleetAxis {
                machines: vec![MachineKind::B, MachineKind::B],
                schedulers: vec![SchedulerKind::LeastLoaded],
                arrival_rates: vec![2.0],
                jobs: 3,
                trace: None,
            })
            .seed(11);
        let report =
            run_campaign_with(&spec, &CampaignConfig { threads: Some(2), ..Default::default() });
        // One machine-local cell + one fleet cell.
        assert_eq!(report.cells.len(), 2);
        let local = report.cells[0].result().expect("local cell ran");
        assert_eq!(local.jobs, None, "fleet fields stay off machine-local cells");
        let cell = &report.cells[1];
        assert_eq!(cell.workload, "mix");
        assert_eq!(cell.scheduler.as_deref(), Some("least-loaded"));
        assert_eq!(cell.arrival_rate_hz, Some(2.0));
        let r = cell.outcome.as_ref().unwrap_or_else(|e| panic!("{}: {e}", cell.key));
        assert_eq!(r.jobs, Some(3));
        assert_eq!(r.job_slowdowns.as_ref().map(Vec::len), Some(3));
        assert!(r.slowdown_p50.is_some() && r.slowdown_p99.is_some());
        assert!(r.exec_time_s > 0.0, "makespan rides in exec_time_s");
        let j = report.deterministic_json();
        assert!(j.contains("\"scenario\": \"fleet\""));
        assert!(j.contains("\"slowdown_p99\""));
    }

    #[test]
    fn dedup_collapses_equivalent_cells_and_reports_are_byte_identical() {
        // Overlapping axes on purpose: bwap-static(0.5) declared as a
        // policy AND as a grid point — every static(0.5) cell runs once.
        let spec = CampaignSpec::new("dedup-unit", machines::machine_b())
            .workloads(vec![bwap_workloads::streamcluster().scaled_down(32.0)])
            .policies(vec![
                PlacementPolicy::Bwap(BwapConfig::static_dwp(0.5)),
                PlacementPolicy::Bwap(BwapConfig::default()),
            ])
            .dwp_grid(vec![DwpPoint::AsConfigured, DwpPoint::Static(0.5)])
            .seed(7);
        // 2 policies x 2 dwp points = 4 cells; three of them are the same
        // static(0.5) simulation.
        let on = run_campaign_with(&spec, &CampaignConfig::default());
        let off = run_campaign_with(&spec, &CampaignConfig { dedup: false, ..Default::default() });
        assert_eq!(on.cells.len(), 4);
        assert_eq!(on.executed_cells, 2, "three equivalent cells collapse into one class");
        assert_eq!(off.executed_cells, 4);
        assert_eq!(on.deterministic_json(), off.deterministic_json());
        // Sharing is recorded only on the shared cells.
        let shared: Vec<_> = on.cells.iter().filter(|c| c.dedup_class.is_some()).collect();
        assert_eq!(shared.len(), 3);
        assert!(on.cells.iter().all(|c| !c.cache_hit));
        // Fanned-out results are indistinguishable from fresh ones, down
        // to the effective policy label.
        for (a, b) in on.cells.iter().zip(&off.cells) {
            let (ra, rb) = (a.result().unwrap(), b.result().unwrap());
            assert_eq!(ra.policy, rb.policy);
            assert_eq!(ra.exec_time_s.to_bits(), rb.exec_time_s.to_bits());
        }
    }

    #[test]
    fn cache_serves_warm_reruns_and_partial_resumes() {
        let dir =
            std::env::temp_dir().join(format!("bwap-campaign-cache-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec();
        let cfg = CampaignConfig { cache_dir: Some(dir.clone()), ..Default::default() };
        let cold = run_campaign_with(&spec, &cfg);
        assert!(cold.executed_cells > 0);
        assert!(cold.cells.iter().all(|c| !c.cache_hit));
        // Warm rerun: zero executions, every cell a hit, bytes identical.
        let warm = run_campaign_with(&spec, &cfg);
        assert_eq!(warm.executed_cells, 0);
        assert!(warm.cells.iter().all(|c| c.cache_hit));
        assert_eq!(cold.deterministic_json(), warm.deterministic_json());
        // Kill-and-resume: delete some entries (a killed run's missing
        // tail) — the resume executes exactly those and matches again.
        let mut removed = 0;
        for (i, entry) in std::fs::read_dir(&dir).unwrap().flatten().enumerate() {
            if entry.path().extension().is_some_and(|e| e == "cell") && i % 2 == 0 {
                std::fs::remove_file(entry.path()).unwrap();
                removed += 1;
            }
        }
        assert!(removed > 0);
        let resumed = run_campaign_with(&spec, &cfg);
        assert_eq!(resumed.executed_cells, removed);
        assert_eq!(cold.deterministic_json(), resumed.deterministic_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_cell_panics_become_error_cells_and_never_poison_the_cache() {
        let dir =
            std::env::temp_dir().join(format!("bwap-campaign-panic-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec();
        let baseline = run_campaign_with(&spec, &CampaignConfig::default());
        // Panic exactly one representative, deterministically: pick the
        // first cell's key at rate 1.0 via a plan that only knows it.
        let victim = spec.cells()[0].key.clone();
        let plan = FaultPlan::new(spec.seed).with(FaultKind::CellPanic, 1.0);
        let chaos_cfg = CampaignConfig {
            cache_dir: Some(dir.clone()),
            faults: Some(plan.clone()),
            ..Default::default()
        };
        let chaos = run_campaign_with(&spec, &chaos_cfg);
        assert_eq!(chaos.cells.len(), baseline.cells.len());
        let err = chaos.cells[0].outcome.as_ref().unwrap_err();
        assert!(err.contains("cell panicked"), "{err}");
        assert!(err.contains(&victim), "{err}");
        // Every cell whose class representative panicked shares the error;
        // at rate 1.0 that is every cell — nothing escaped, nothing died.
        assert!(chaos.cells.iter().all(|c| c.outcome.is_err()));
        // Panicked outcomes must never reach the cache: a fault-free rerun
        // over the same directory re-executes and matches the baseline.
        let clean_cfg = CampaignConfig { cache_dir: Some(dir.clone()), ..Default::default() };
        let healed = run_campaign_with(&spec, &clean_cfg);
        assert_eq!(healed.executed_cells, baseline.executed_cells, "no poisoned cache entries");
        assert_eq!(healed.deterministic_json(), baseline.deterministic_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delayed_cells_change_nothing_but_wall_time() {
        let spec = small_spec().worker_counts(vec![1]).scenarios(vec![ScenarioKind::Standalone]);
        let baseline = run_campaign_with(&spec, &CampaignConfig::default());
        let plan = FaultPlan::new(spec.seed).with_param(FaultKind::CellDelay, 1.0, 1);
        let delayed =
            run_campaign_with(&spec, &CampaignConfig { faults: Some(plan), ..Default::default() });
        assert_eq!(baseline.deterministic_json(), delayed.deterministic_json());
    }

    #[test]
    fn journal_faults_surface_in_the_report_but_not_its_deterministic_bytes() {
        let dir =
            std::env::temp_dir().join(format!("bwap-campaign-journal-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec().worker_counts(vec![1]).scenarios(vec![ScenarioKind::Standalone]);
        let baseline = run_campaign_with(&spec, &CampaignConfig::default());
        let plan = FaultPlan::new(spec.seed).with(FaultKind::JournalDrop, 1.0);
        let lossy = run_campaign_with(
            &spec,
            &CampaignConfig {
                cache_dir: Some(dir.clone()),
                faults: Some(plan),
                ..Default::default()
            },
        );
        assert!(lossy.journal_errors > 0);
        assert!(lossy.to_json().contains("\"journal_errors\""));
        assert_eq!(baseline.deterministic_json(), lossy.deterministic_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_seeds_depend_on_root_seed() {
        let a = small_spec().cells();
        let b = small_spec().seed(8).cells();
        assert!(a.iter().zip(&b).all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn static_dwp_cells_pin_the_tuner() {
        let m = machines::machine_b();
        let spec = CampaignSpec::new("static", m)
            .workloads(vec![bwap_workloads::streamcluster().scaled_down(32.0)])
            .policies(vec![PlacementPolicy::Bwap(BwapConfig::default())])
            .dwp_grid(vec![DwpPoint::Static(0.3)]);
        let report =
            run_campaign_with(&spec, &CampaignConfig { threads: Some(1), ..Default::default() });
        assert_eq!(report.cells.len(), 1);
        let r = report.cells[0].result().expect("cell ran");
        // Online search disabled: the tuner reports exactly the pinned DWP.
        assert_eq!(r.chosen_dwp, Some(0.3));
        assert_eq!(report.cells[0].static_dwp, Some(0.3));
    }

    #[test]
    fn out_of_range_worker_counts_become_cell_errors() {
        let m = machines::machine_b();
        let spec = CampaignSpec::new("bad-workers", m)
            .workloads(vec![bwap_workloads::streamcluster().scaled_down(32.0)])
            .policies(vec![PlacementPolicy::UniformWorkers])
            .worker_counts(vec![0, 99]);
        let report = run_campaign(&spec);
        assert_eq!(report.cells.len(), 2);
        for c in &report.cells {
            let err = c.outcome.as_ref().unwrap_err();
            assert!(err.contains("out of range"), "{err}");
        }
    }

    #[test]
    fn coscheduled_full_machine_is_an_error_cell_not_a_panic() {
        let m = machines::machine_b();
        let n = m.node_count();
        let spec = CampaignSpec::new("full", m)
            .workloads(vec![bwap_workloads::streamcluster().scaled_down(32.0)])
            .policies(vec![PlacementPolicy::UniformAll])
            .scenarios(vec![ScenarioKind::Coscheduled])
            .worker_counts(vec![n]);
        let report = run_campaign(&spec);
        assert!(report.cells[0].outcome.is_err());
    }

    #[test]
    fn probe_attaches_bandwidth_matrix() {
        let spec = CampaignSpec::new("probe", machines::machine_a()).probe_bandwidth(true);
        let report = run_campaign(&spec);
        let m = report.bw_matrix.expect("probe requested");
        assert_eq!(m.node_count(), 8);
        assert!(report.cells.is_empty());
    }

    #[test]
    fn report_matches_scenario_runner_output() {
        let m = machines::machine_b();
        let spec = CampaignSpec::new("cross-check", m.clone())
            .workloads(vec![bwap_workloads::streamcluster().scaled_down(32.0)])
            .policies(vec![PlacementPolicy::UniformWorkers])
            .worker_counts(vec![2]);
        let report = run_campaign(&spec);
        let cell = report.find("SC", "uniform-workers", ScenarioKind::Standalone, 2, None);
        let got = cell.expect("cell exists").result().expect("ran");
        let direct = crate::scenario::run_standalone(
            &m,
            &bwap_workloads::streamcluster().scaled_down(32.0),
            m.best_worker_set(2),
            &PlacementPolicy::UniformWorkers,
        )
        .unwrap();
        assert_eq!(got.exec_time_s, direct.exec_time_s);
        assert_eq!(got.migrated_pages, direct.migrated_pages);
    }
}
