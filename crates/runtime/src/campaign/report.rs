//! Machine-readable campaign reports.
//!
//! A [`CampaignReport`] collects every cell's [`RunResult`] (or error)
//! plus enough provenance — campaign seed, per-cell seeds, machine,
//! schema version — to replay any cell. It serializes to JSON with a
//! stable schema (documented in `docs/RESULTS_SCHEMA.md`); the workspace
//! is offline-only, so the writer is hand-rolled rather than serde-based.
//!
//! Two serializations exist on purpose:
//! * [`CampaignReport::to_json`] — the full artifact, including volatile
//!   provenance (wall time, thread count).
//! * [`CampaignReport::deterministic_json`] — everything except the
//!   volatile fields. Same spec + same seed ⇒ byte-identical output, at
//!   any shard count; tests pin this.

use super::ScenarioKind;
use crate::scenario::RunResult;
use bwap_topology::{BwMatrix, NodeId};
use std::path::PathBuf;

/// Version tag written into every report. Bump on any breaking change to
/// the JSON layout and document the migration in `docs/RESULTS_SCHEMA.md`.
///
/// v2 added the optional `node_tiers` axis for heterogeneous machines;
/// symmetric-machine reports are byte-identical to v1 apart from this
/// number (pinned by `tests/golden_reports.rs`), and v1 reports still
/// parse under the v2 schema (the new field is simply absent).
pub const SCHEMA_VERSION: u32 = 2;

/// Per-node memory-tier descriptor attached to reports of heterogeneous
/// machines (any CPU-less node or non-DRAM tier). Symmetric machines omit
/// the whole axis so their reports stay byte-stable across the tier
/// refactor.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTierRecord {
    /// Node id (0-based).
    pub node: u16,
    /// Memory-class name (`"dram"`, `"cxl-expander"`, ...).
    pub class: String,
    /// Hardware threads; 0 marks a memory-only expander.
    pub cores: u16,
    /// Local controller bandwidth, GB/s (tier-scaled).
    pub ctrl_bw: f64,
    /// Latency multiplier of the tier relative to DRAM.
    pub lat_scale: f64,
    /// Local capacity in 4 KiB pages.
    pub mem_pages: u64,
}

/// One cell of the campaign matrix: identity, seed, and outcome.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// Position in the spec's deterministic enumeration order.
    pub id: usize,
    /// Stable human-readable cell key (also the seed-derivation input).
    pub key: String,
    /// Workload name.
    pub workload: String,
    /// Declared policy label (static-DWP overrides are reported in
    /// [`CellRecord::static_dwp`], not folded into this label).
    pub policy: String,
    /// Which scenario ran.
    pub scenario: ScenarioKind,
    /// Worker-node count.
    pub workers: usize,
    /// `Some(d)` if the cell pinned BWAP to a static DWP.
    pub static_dwp: Option<f64>,
    /// Phase-period override of a phased-workload cell, seconds. `None`
    /// for plain-workload cells (the field is omitted from their JSON)
    /// and for native-duration phased cells.
    pub phase_period: Option<f64>,
    /// Cluster-scheduler label of a fleet cell (omitted, not null, for
    /// every other cell). Part of the deterministic payload: it is a
    /// spec coordinate, like `workers`.
    pub scheduler: Option<String>,
    /// Poisson arrival rate of a fleet cell, jobs per simulated second
    /// (`None` — omitted — for non-fleet cells and trace-driven fleets).
    pub arrival_rate_hz: Option<f64>,
    /// The cell's derived seed (replay input).
    pub seed: u64,
    /// The run's result, or the error that stopped it.
    pub outcome: Result<RunResult, String>,
    /// Path of the cell's Chrome-trace file, when the campaign ran with a
    /// trace directory. Volatile provenance like `threads`: emitted only
    /// in the full artifact (and omitted, not null, when absent), so
    /// deterministic reports stay byte-identical trace-on vs trace-off.
    /// Cells whose result was shared through dedup point at their
    /// representative's trace; cache-served cells carry none.
    pub trace_path: Option<String>,
    /// Descriptor-hash label of the cell's dedup equivalence class, set
    /// only when the class had more than one member (i.e. the result was
    /// actually shared). Volatile provenance: full artifact only.
    pub dedup_class: Option<String>,
    /// Whether the result was replayed from the persistent cell cache
    /// instead of executing. Volatile provenance: emitted (as `true`)
    /// in the full artifact only, and only when set.
    pub cache_hit: bool,
}

impl CellRecord {
    /// The cell's result, if it ran to completion.
    pub fn result(&self) -> Option<&RunResult> {
        self.outcome.as_ref().ok()
    }
}

/// Everything one campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// JSON schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Campaign name (also the artifact file stem).
    pub campaign: String,
    /// Machine the campaign ran on.
    pub machine: String,
    /// Root seed every cell seed was derived from.
    pub seed: u64,
    /// Executor worker threads used (volatile provenance).
    pub threads: usize,
    /// Wall-clock duration of the whole campaign (volatile provenance).
    pub wall_time_s: f64,
    /// Engine mode label when the campaign ran event-driven (volatile
    /// provenance; omitted — not null — under the default stepped mode).
    /// Both modes produce identical results, so this never belongs in
    /// [`CampaignReport::deterministic_json`] and the schema stays v2.
    pub engine_mode: Option<String>,
    /// How many cells actually executed (after dedup collapsed equivalence
    /// classes and the cache replayed stored ones) — volatile provenance;
    /// a fully warm rerun reports 0 here.
    pub executed_cells: usize,
    /// Cache journal appends that failed during the run (filesystem
    /// refusals or injected faults). Volatile provenance, emitted only
    /// when non-zero (omitted, not null): journal loss never affects
    /// results, so the deterministic report ignores it entirely.
    pub journal_errors: usize,
    /// Probed node-to-node bandwidth matrix, if the spec requested
    /// installation-time profiling (Fig. 1a).
    pub bw_matrix: Option<BwMatrix>,
    /// Memory-tier axis: per-node tier descriptors, present only when the
    /// machine is heterogeneous (schema v2).
    pub node_tiers: Option<Vec<NodeTierRecord>>,
    /// Per-cell records, in spec enumeration order.
    pub cells: Vec<CellRecord>,
}

impl CampaignReport {
    /// Look up a cell by its coordinates. `static_dwp` must match the
    /// spec's grid value exactly (both come from the same code path, so
    /// exact `f64` comparison is well-defined).
    ///
    /// The phase-period axis is *not* a coordinate here: in a campaign
    /// sweeping several phase periods this returns the first matching
    /// cell in enumeration order (the lowest-indexed period point) —
    /// disambiguate with [`CampaignReport::find_phased`].
    pub fn find(
        &self,
        workload: &str,
        policy: &str,
        scenario: ScenarioKind,
        workers: usize,
        static_dwp: Option<f64>,
    ) -> Option<&CellRecord> {
        self.cells.iter().find(|c| {
            c.workload == workload
                && c.policy == policy
                && c.scenario == scenario
                && c.workers == workers
                && c.static_dwp == static_dwp
        })
    }

    /// [`CampaignReport::find`] with the phase-period coordinate pinned
    /// (for phased-workload campaigns sweeping several periods; like
    /// `static_dwp`, the value must match the spec's axis point exactly).
    pub fn find_phased(
        &self,
        workload: &str,
        policy: &str,
        scenario: ScenarioKind,
        workers: usize,
        static_dwp: Option<f64>,
        phase_period: Option<f64>,
    ) -> Option<&CellRecord> {
        self.cells.iter().find(|c| {
            c.workload == workload
                && c.policy == policy
                && c.scenario == scenario
                && c.workers == workers
                && c.static_dwp == static_dwp
                && c.phase_period == phase_period
        })
    }

    /// Iterate over the cells that completed, with their results.
    pub fn ok_results(&self) -> impl Iterator<Item = (&CellRecord, &RunResult)> {
        self.cells.iter().filter_map(|c| c.result().map(|r| (c, r)))
    }

    /// Full JSON artifact, including volatile provenance fields.
    pub fn to_json(&self) -> String {
        self.json(true)
    }

    /// JSON with the volatile fields (`threads`, `wall_time_s`) omitted:
    /// byte-identical across reruns of the same spec + seed, at any shard
    /// count.
    pub fn deterministic_json(&self) -> String {
        self.json(false)
    }

    fn json(&self, volatile: bool) -> String {
        let mut s = String::with_capacity(4096 + self.cells.len() * 512);
        s.push_str("{\n");
        field(&mut s, 1, "schema_version", &self.schema_version.to_string());
        field(&mut s, 1, "campaign", &json_str(&self.campaign));
        field(&mut s, 1, "machine", &json_str(&self.machine));
        field(&mut s, 1, "seed", &self.seed.to_string());
        if volatile {
            field(&mut s, 1, "threads", &self.threads.to_string());
            field(&mut s, 1, "wall_time_s", &json_f64(self.wall_time_s));
            field(&mut s, 1, "executed_cells", &self.executed_cells.to_string());
            if self.journal_errors > 0 {
                field(&mut s, 1, "journal_errors", &self.journal_errors.to_string());
            }
            if let Some(mode) = &self.engine_mode {
                field(&mut s, 1, "engine_mode", &json_str(mode));
            }
        }
        field(&mut s, 1, "bw_matrix_gbps", &bw_matrix_json(self.bw_matrix.as_ref()));
        // Schema v2: the tier axis is emitted only for heterogeneous
        // machines, keeping symmetric-machine reports byte-stable.
        if let Some(tiers) = &self.node_tiers {
            field(&mut s, 1, "node_tiers", &node_tiers_json(tiers));
        }
        s.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            cell_json(&mut s, c, volatile);
        }
        if self.cells.is_empty() {
            s.push_str("]\n");
        } else {
            s.push_str("\n  ]\n");
        }
        s.push('}');
        s.push('\n');
        s
    }

    /// Write the full JSON artifact to `results_dir()/<campaign>.campaign.json`
    /// (non-alphanumeric name characters are sanitized to `-`). Returns
    /// the path written.
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        self.write_json_in(&results_dir())
    }

    /// [`CampaignReport::write_json`] into an explicit directory (the
    /// `campaign` CLI's `--out`; CI artifact collection and parallel local
    /// runs point different campaigns at different directories).
    pub fn write_json_in(&self, dir: &std::path::Path) -> std::io::Result<PathBuf> {
        let stem: String = self
            .campaign
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || "._-".contains(c) { c } else { '-' })
            .collect();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{stem}.campaign.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Directory where campaign artifacts land: `BWAP_RESULTS_DIR` if set,
/// else `results/` relative to the working directory (the harness
/// binaries run from the workspace root via `cargo run`).
pub fn results_dir() -> PathBuf {
    match std::env::var("BWAP_RESULTS_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => PathBuf::from("results"),
    }
}

fn indent(s: &mut String, level: usize) {
    for _ in 0..level {
        s.push_str("  ");
    }
}

/// Append `"name": value,\n` at the given indent level.
fn field(s: &mut String, level: usize, name: &str, value: &str) {
    indent(s, level);
    s.push('"');
    s.push_str(name);
    s.push_str("\": ");
    s.push_str(value);
    s.push_str(",\n");
}

/// JSON string literal with the mandatory escapes.
fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number via Rust's shortest-roundtrip float formatting; non-finite
/// values have no JSON representation and become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) => json_f64(x),
        None => "null".into(),
    }
}

fn f64_array_json(v: &[f64]) -> String {
    let cells: Vec<String> = v.iter().map(|&x| json_f64(x)).collect();
    format!("[{}]", cells.join(", "))
}

fn node_tiers_json(tiers: &[NodeTierRecord]) -> String {
    let rows: Vec<String> = tiers
        .iter()
        .map(|t| {
            format!(
                "{{\"node\": {}, \"class\": {}, \"cores\": {}, \"ctrl_bw_gbps\": {}, \
                 \"lat_scale\": {}, \"mem_pages\": {}}}",
                t.node,
                json_str(&t.class),
                t.cores,
                json_f64(t.ctrl_bw),
                json_f64(t.lat_scale),
                t.mem_pages
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

fn bw_matrix_json(m: Option<&BwMatrix>) -> String {
    let Some(m) = m else {
        return "null".into();
    };
    let n = m.node_count();
    let rows: Vec<String> = (0..n)
        .map(|s| {
            let cells: Vec<String> =
                (0..n).map(|d| json_f64(m.get(NodeId(s as u16), NodeId(d as u16)))).collect();
            format!("[{}]", cells.join(", "))
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

fn cell_json(s: &mut String, c: &CellRecord, volatile: bool) {
    indent(s, 2);
    s.push_str("{\n");
    field(s, 3, "id", &c.id.to_string());
    field(s, 3, "key", &json_str(&c.key));
    field(s, 3, "workload", &json_str(&c.workload));
    field(s, 3, "policy", &json_str(&c.policy));
    field(s, 3, "scenario", &json_str(c.scenario.label()));
    field(s, 3, "workers", &c.workers.to_string());
    field(s, 3, "static_dwp", &json_opt_f64(c.static_dwp));
    // Optional axes are omitted, not null: classic-campaign cells stay
    // byte-identical to their pre-phase serialization.
    if let Some(t) = c.phase_period {
        field(s, 3, "phase_period_s", &json_f64(t));
    }
    // Fleet coordinates, same omitted-not-null discipline: non-fleet
    // cells serialize byte-identically to their pre-fleet form.
    if let Some(sch) = &c.scheduler {
        field(s, 3, "scheduler", &json_str(sch));
    }
    if let Some(r) = c.arrival_rate_hz {
        field(s, 3, "arrival_rate_hz", &json_f64(r));
    }
    field(s, 3, "seed", &c.seed.to_string());
    // Where a trace landed depends on the executor invocation, not the
    // spec: full artifact only, like `threads` and `wall_time_s`.
    if volatile {
        if let Some(p) = &c.trace_path {
            field(s, 3, "trace_path", &json_str(p));
        }
        // Memoization provenance, omitted-not-null like `trace_path`: the
        // deterministic report is byte-identical whether the result was
        // executed, shared through dedup, or replayed from the cache.
        if let Some(class) = &c.dedup_class {
            field(s, 3, "dedup_class", &json_str(class));
        }
        if c.cache_hit {
            field(s, 3, "cache_hit", "true");
        }
    }
    match &c.outcome {
        Ok(r) => {
            indent(s, 3);
            s.push_str("\"result\": {\n");
            field(s, 4, "exec_time_s", &json_f64(r.exec_time_s));
            field(s, 4, "chosen_dwp", &json_opt_f64(r.chosen_dwp));
            field(s, 4, "migrated_pages", &r.migrated_pages.to_string());
            field(s, 4, "stall_frac", &json_f64(r.stall_frac));
            field(s, 4, "a_stall_frac", &json_opt_f64(r.a_stall_frac));
            field(s, 4, "read_bytes", &json_f64(r.read_bytes));
            field(s, 4, "traffic_bytes", &json_f64(r.traffic_bytes));
            // Adaptive/phased observables ride along only where they
            // exist (schema v2 optional fields, like `node_tiers`).
            if let Some(n) = r.retunes {
                field(s, 4, "retunes", &n.to_string());
            }
            if let Some(times) = &r.retune_times_s {
                field(s, 4, "retune_times_s", &f64_array_json(times));
            }
            if let Some(n) = r.phase_switches {
                field(s, 4, "phase_switches", &n.to_string());
            }
            // Fleet tail metrics (schema v2 optional fields): present
            // exactly on fleet cells, omitted everywhere else.
            if let Some(n) = r.jobs {
                field(s, 4, "jobs", &n.to_string());
            }
            if let Some(ss) = &r.job_slowdowns {
                field(s, 4, "job_slowdowns", &f64_array_json(ss));
            }
            if let Some(p) = r.slowdown_p50 {
                field(s, 4, "slowdown_p50", &json_f64(p));
            }
            if let Some(p) = r.slowdown_p95 {
                field(s, 4, "slowdown_p95", &json_f64(p));
            }
            if let Some(p) = r.slowdown_p99 {
                field(s, 4, "slowdown_p99", &json_f64(p));
            }
            pop_trailing_comma(s);
            indent(s, 3);
            s.push_str("},\n");
            field(s, 3, "error", "null");
        }
        Err(e) => {
            field(s, 3, "result", "null");
            field(s, 3, "error", &json_str(e));
        }
    }
    pop_trailing_comma(s);
    indent(s, 2);
    s.push('}');
}

/// Remove the `,\n` the last `field` call appended, re-adding the newline.
fn pop_trailing_comma(s: &mut String) {
    if s.ends_with(",\n") {
        s.truncate(s.len() - 2);
        s.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: usize, outcome: Result<RunResult, String>) -> CellRecord {
        CellRecord {
            id,
            key: format!("w0:SC|p0:bwap|standalone|1w|cell{id}"),
            workload: "SC".into(),
            policy: "bwap".into(),
            scenario: ScenarioKind::Standalone,
            workers: 1,
            static_dwp: None,
            phase_period: None,
            scheduler: None,
            arrival_rate_hz: None,
            seed: 7,
            outcome,
            trace_path: None,
            dedup_class: None,
            cache_hit: false,
        }
    }

    fn result() -> RunResult {
        RunResult {
            policy: "bwap".into(),
            workload: "SC".into(),
            workers: 1,
            exec_time_s: 12.5,
            chosen_dwp: Some(0.2),
            migrated_pages: 42,
            stall_frac: 0.33,
            a_stall_frac: None,
            read_bytes: 1e9,
            traffic_bytes: 1.5e9,
            retunes: None,
            retune_times_s: None,
            phase_switches: None,
            jobs: None,
            job_slowdowns: None,
            slowdown_p50: None,
            slowdown_p95: None,
            slowdown_p99: None,
        }
    }

    fn report(cells: Vec<CellRecord>) -> CampaignReport {
        CampaignReport {
            schema_version: SCHEMA_VERSION,
            campaign: "unit".into(),
            machine: "machine-b".into(),
            seed: 1,
            threads: 4,
            wall_time_s: 0.25,
            engine_mode: None,
            executed_cells: cells.len(),
            journal_errors: 0,
            bw_matrix: None,
            node_tiers: None,
            cells,
        }
    }

    #[test]
    fn engine_mode_is_volatile_and_omitted_when_stepped() {
        let stepped = report(vec![record(0, Ok(result()))]);
        assert!(!stepped.to_json().contains("engine_mode"), "omitted, not null");
        let mut event = stepped.clone();
        event.engine_mode = Some("event-driven".into());
        assert!(event.to_json().contains("\"engine_mode\": \"event-driven\""));
        // Never part of the deterministic artifact: both modes must
        // produce byte-identical reports.
        assert_eq!(stepped.deterministic_json(), event.deterministic_json());
        assert!(event.to_json().contains("\"schema_version\": 2"));
    }

    #[test]
    fn json_has_schema_version_and_cells() {
        let r = report(vec![record(0, Ok(result())), record(1, Err("boom \"quoted\"".into()))]);
        let j = r.to_json();
        assert!(j.contains("\"schema_version\": 2"));
        assert!(j.contains("\"exec_time_s\": 12.5"));
        assert!(j.contains("\"chosen_dwp\": 0.2"));
        assert!(j.contains("\"error\": \"boom \\\"quoted\\\"\""));
        assert!(j.contains("\"wall_time_s\""));
    }

    #[test]
    fn deterministic_json_omits_volatile_fields() {
        let r = report(vec![record(0, Ok(result()))]);
        let j = r.deterministic_json();
        assert!(!j.contains("wall_time_s"));
        assert!(!j.contains("threads"));
        let mut r2 = r.clone();
        r2.wall_time_s = 99.0;
        r2.threads = 1;
        assert_eq!(j, r2.deterministic_json());
    }

    #[test]
    fn empty_report_is_valid() {
        let j = report(Vec::new()).to_json();
        assert!(j.contains("\"cells\": []"));
    }

    #[test]
    fn tier_axis_is_emitted_only_for_heterogeneous_machines() {
        let symmetric = report(Vec::new());
        assert!(!symmetric.to_json().contains("node_tiers"));
        let mut tiered = report(Vec::new());
        tiered.node_tiers = Some(vec![NodeTierRecord {
            node: 2,
            class: "cxl-expander".into(),
            cores: 0,
            ctrl_bw: 9.9,
            lat_scale: 2.0,
            mem_pages: 1024,
        }]);
        let j = tiered.to_json();
        assert!(j.contains("\"node_tiers\": [{\"node\": 2, \"class\": \"cxl-expander\""));
        assert!(j.contains("\"cores\": 0"));
        assert!(j.contains("\"lat_scale\": 2"));
        // The tier axis is part of the deterministic payload.
        assert!(tiered.deterministic_json().contains("node_tiers"));
    }

    #[test]
    fn phase_and_retune_fields_are_emitted_only_when_present() {
        // A classic cell: none of the optional names appear at all.
        let plain = report(vec![record(0, Ok(result()))]).to_json();
        for name in ["phase_period_s", "retunes", "retune_times_s", "phase_switches"] {
            assert!(!plain.contains(name), "{name} leaked into a classic report");
        }
        // An adaptive phased cell: all of them ride along.
        let mut r = result();
        r.retunes = Some(2);
        r.retune_times_s = Some(vec![3.5, 9.25]);
        r.phase_switches = Some(5);
        let mut c = record(0, Ok(r));
        c.phase_period = Some(10.0);
        let j = report(vec![c]).to_json();
        assert!(j.contains("\"phase_period_s\": 10"));
        assert!(j.contains("\"retunes\": 2"));
        assert!(j.contains("\"retune_times_s\": [3.5, 9.25]"));
        assert!(j.contains("\"phase_switches\": 5"));
        // And they are part of the deterministic payload.
        let d = report(vec![{
            let mut r = result();
            r.retunes = Some(1);
            record(0, Ok(r))
        }])
        .deterministic_json();
        assert!(d.contains("\"retunes\": 1"));
    }

    #[test]
    fn fleet_fields_are_emitted_only_when_present() {
        // A non-fleet cell: none of the fleet names appear at all.
        let plain = report(vec![record(0, Ok(result()))]).to_json();
        for name in ["scheduler", "arrival_rate_hz", "\"jobs\"", "job_slowdowns", "slowdown_p50"] {
            assert!(!plain.contains(name), "{name} leaked into a non-fleet report");
        }
        // A fleet cell: coordinates and tail metrics ride along.
        let mut r = result();
        r.jobs = Some(3);
        r.job_slowdowns = Some(vec![1.0, 1.5, 2.0]);
        r.slowdown_p50 = Some(1.5);
        r.slowdown_p95 = Some(2.0);
        r.slowdown_p99 = Some(2.0);
        let mut c = record(0, Ok(r));
        c.scheduler = Some("least-loaded".into());
        c.arrival_rate_hz = Some(0.25);
        let rep = report(vec![c]);
        let j = rep.to_json();
        assert!(j.contains("\"scheduler\": \"least-loaded\""));
        assert!(j.contains("\"arrival_rate_hz\": 0.25"));
        assert!(j.contains("\"jobs\": 3"));
        assert!(j.contains("\"job_slowdowns\": [1, 1.5, 2]"));
        assert!(j.contains("\"slowdown_p95\": 2"));
        // All of them are part of the deterministic payload.
        let d = rep.deterministic_json();
        assert!(d.contains("\"scheduler\"") && d.contains("\"slowdown_p99\""));
    }

    #[test]
    fn trace_path_is_volatile_and_omitted_when_absent() {
        // No trace dir: the name never appears, in either serialization.
        let plain = report(vec![record(0, Ok(result()))]);
        assert!(!plain.to_json().contains("trace_path"));
        // With a trace: full artifact carries the path, the deterministic
        // payload stays byte-identical to the untraced report.
        let mut c = record(0, Ok(result()));
        c.trace_path = Some("results/traces/trace-cell0.json".into());
        let traced = report(vec![c]);
        assert!(traced.to_json().contains("\"trace_path\": \"results/traces/trace-cell0.json\""));
        assert_eq!(plain.deterministic_json(), traced.deterministic_json());
    }

    #[test]
    fn memoization_provenance_is_volatile_and_omitted_when_absent() {
        // A cold, unshared cell: none of the names appear anywhere.
        let cold = report(vec![record(0, Ok(result()))]);
        for name in ["dedup_class", "cache_hit"] {
            assert!(!cold.to_json().contains(name), "{name} leaked into a cold report");
        }
        assert!(cold.to_json().contains("\"executed_cells\": 1"));
        assert!(!cold.deterministic_json().contains("executed_cells"));
        // A shared, cache-served cell: full artifact carries the
        // provenance, deterministic payload is byte-identical to cold.
        let mut c = record(0, Ok(result()));
        c.dedup_class = Some("00interlocking00".into());
        c.cache_hit = true;
        let mut warm = report(vec![c]);
        warm.executed_cells = 0;
        let j = warm.to_json();
        assert!(j.contains("\"dedup_class\": \"00interlocking00\""));
        assert!(j.contains("\"cache_hit\": true"));
        assert!(j.contains("\"executed_cells\": 0"));
        assert_eq!(cold.deterministic_json(), warm.deterministic_json());
    }

    #[test]
    fn journal_errors_are_volatile_and_omitted_when_zero() {
        let clean = report(vec![record(0, Ok(result()))]);
        assert!(!clean.to_json().contains("journal_errors"), "omitted, not null");
        let mut lossy = clean.clone();
        lossy.journal_errors = 3;
        assert!(lossy.to_json().contains("\"journal_errors\": 3"));
        // Journal loss never touches results: deterministic payloads match.
        assert_eq!(clean.deterministic_json(), lossy.deterministic_json());
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.0), "1");
    }

    #[test]
    fn find_matches_coordinates() {
        let r = report(vec![record(0, Ok(result()))]);
        assert!(r.find("SC", "bwap", ScenarioKind::Standalone, 1, None).is_some());
        assert!(r.find("SC", "bwap", ScenarioKind::Coscheduled, 1, None).is_none());
        assert!(r.find("SC", "bwap", ScenarioKind::Standalone, 1, Some(0.5)).is_none());
        assert_eq!(r.ok_results().count(), 1);
    }

    #[test]
    fn find_phased_pins_the_period_coordinate() {
        let mut a = record(0, Ok(result()));
        a.phase_period = Some(12.0);
        let mut b = record(1, Ok(result()));
        b.phase_period = Some(36.0);
        let r = report(vec![a, b]);
        // Plain find is first-match across the period axis...
        assert_eq!(r.find("SC", "bwap", ScenarioKind::Standalone, 1, None).unwrap().id, 0);
        // ...find_phased disambiguates.
        let hit = r.find_phased("SC", "bwap", ScenarioKind::Standalone, 1, None, Some(36.0));
        assert_eq!(hit.unwrap().id, 1);
        assert!(r
            .find_phased("SC", "bwap", ScenarioKind::Standalone, 1, None, Some(9.0))
            .is_none());
    }

    #[test]
    fn write_json_sanitizes_name() {
        let dir = std::env::temp_dir().join("bwap-campaign-report-test");
        std::env::set_var("BWAP_RESULTS_DIR", &dir);
        let mut r = report(Vec::new());
        r.campaign = "a/b c".into();
        let p = r.write_json().unwrap();
        std::env::remove_var("BWAP_RESULTS_DIR");
        assert!(p.ends_with("a-b-c.campaign.json"), "{}", p.display());
        assert!(std::fs::read_to_string(&p).unwrap().contains("\"campaign\": \"a/b c\""));
        let _ = std::fs::remove_dir_all(dir);
    }
}
