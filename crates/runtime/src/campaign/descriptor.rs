//! Canonical descriptors for campaign cells — the memoization key.
//!
//! [`cell_descriptor`] serializes *everything that determines a cell's
//! result* into a [`bwap::descriptor::CellDescriptor`]: the full machine
//! topology (not just its name — custom-built machines may share names),
//! the workload or phase timeline, the **effective** placement policy
//! (the declared policy after the campaign engine's per-cell overrides —
//! see [`effective_policy`]), the scenario, the worker count, the
//! simulation config including the engine mode, and the probe flag.
//!
//! The invariant that makes memoization *exact* rather than approximate:
//! two cells with equal descriptors produce byte-identical
//! `deterministic_json` results. This follows from the determinism
//! contract pinned since PR 4 (a cell's result is a pure function of the
//! inputs above) and is enforced end-to-end by proptest in
//! `crates/runtime/tests/descriptor_props.rs`.
//!
//! Two deliberate normalizations widen the equivalence classes:
//!
//! * **The DWP point is folded into the effective policy**, so
//!   `Bwap(static_dwp(0.5))` at `AsConfigured` and `Bwap(default)` at
//!   `Static(0.5)` — which run the exact same simulation — share one
//!   descriptor.
//! * **The per-cell seed is normalized out** for policies that consume no
//!   randomness. Every current policy is fully deterministic
//!   (`BwapConfig::seed` only *identifies* a run; nothing reads it), and
//!   per-cell seeds are unique by construction — including them verbatim
//!   would make every descriptor unique and dedup vacuous. A future
//!   stochastic policy must report itself seed-consuming in
//!   [`effective_seed`], which re-tightens its classes; the proptest
//!   invariant is the backstop that catches a policy that forgets.

use super::{CampaignSpec, CellSpec, DwpPoint, ScenarioKind};
use crate::adaptive::AdaptiveConfig;
use crate::baselines::PlacementPolicy;
use crate::fleet::{jobs_from_trace, poisson_jobs};
use bwap::descriptor::{CellDescriptor, DescriptorBuilder};
use bwap::{BwapConfig, InterleaveMode};
use bwap_topology::{MachineTopology, NodeId};
use bwap_workloads::WorkloadSpec;

/// The policy a cell actually runs: the declared axis policy with the
/// campaign engine's per-cell overrides applied (the cell seed, and —
/// for a static DWP point — the pinned DWP with online search disabled).
///
/// `run_cell` and [`cell_descriptor`] both go through this function, so
/// the descriptor can never drift from what executes.
pub fn effective_policy(spec: &CampaignSpec, cell: &CellSpec) -> PlacementPolicy {
    let mut policy = spec.policies[cell.policy_idx].clone();
    match &mut policy {
        PlacementPolicy::Bwap(cfg) => {
            cfg.seed = cell.seed;
            if let DwpPoint::Static(d) = cell.dwp {
                cfg.online_tuning = false;
                cfg.fixed_dwp = d;
            }
        }
        PlacementPolicy::AdaptiveBwap(acfg) => acfg.bwap.seed = cell.seed,
        _ => {}
    }
    policy
}

/// The seed value a cell's *computation* consumes. Every current policy
/// is fully deterministic — the configured seed is provenance, never an
/// input — so this is 0 for all of them, which is what lets cells that
/// differ only in their derived seed share a descriptor. A stochastic
/// policy added later must return `cell_seed` here.
pub fn effective_seed(policy: &PlacementPolicy, cell_seed: u64) -> u64 {
    match policy {
        PlacementPolicy::FirstTouch
        | PlacementPolicy::UniformWorkers
        | PlacementPolicy::UniformAll
        | PlacementPolicy::AutoNuma
        | PlacementPolicy::Bwap(_)
        | PlacementPolicy::AdaptiveBwap(_) => {
            let _ = cell_seed;
            0
        }
    }
}

/// Build the canonical content-addressed descriptor of one cell.
pub fn cell_descriptor(spec: &CampaignSpec, cell: &CellSpec) -> CellDescriptor {
    if cell.scenario == ScenarioKind::Fleet {
        return fleet_descriptor(spec, cell);
    }
    let mut b = DescriptorBuilder::new("campaign-cell");
    describe_machine(&mut b, &spec.machine);

    // The workload coordinate: a plain spec, or the full phase timeline
    // plus the cycle-period override (profiles_for rescaling is a pure
    // function of timeline + period + machine, all covered here).
    if let Some(pi) = cell.workload_idx.checked_sub(spec.workloads.len()) {
        let pw = &spec.phased_workloads[pi];
        b.field_str("phased", &pw.name);
        b.field_f64("phased.total_traffic_gb", pw.total_traffic_gb);
        b.section("phases", pw.phases.len());
        for (i, phase) in pw.phases.iter().enumerate() {
            b.field_f64(&format!("phase{i}.duration_s"), phase.duration_s);
            describe_workload(&mut b, &format!("phase{i}."), &phase.spec);
        }
        match cell.phase_period {
            Some(t) => b.field_f64("phase_period_s", t),
            None => b.field_bool("phase_period_native", true),
        }
    } else {
        describe_workload(&mut b, "", &spec.workloads[cell.workload_idx]);
    }

    let policy = effective_policy(spec, cell);
    describe_policy(&mut b, &policy);
    b.field_u64("seed", effective_seed(&policy, cell.seed));

    b.field_str("scenario", cell.scenario.label());
    b.field_u64("workers", cell.workers as u64);

    b.field_f64("sim.epoch_dt", spec.sim_cfg.epoch_dt);
    b.field_f64("sim.migration_gbps", spec.sim_cfg.migration_gbps);
    b.field_f64("sim.write_amplification", spec.sim_cfg.ctrl_model.write_amplification);
    b.field_f64("sim.latency_inflation.a", spec.sim_cfg.latency_inflation.0);
    b.field_f64("sim.latency_inflation.b", spec.sim_cfg.latency_inflation.1);
    b.field_str("sim.engine", spec.sim_cfg.mode.label());

    b.field_bool("probe_bandwidth", spec.probe_bandwidth);
    b.finish()
}

/// Canonical descriptor of a fleet cell. Everything the fleet run reads
/// goes in: the full topology of every machine in the mix, the scheduler,
/// the effective policy, the worker count, the sim config — and the
/// **resolved arrival schedule**, job by job (arrival/departure times as
/// raw bits plus each job's full workload spec).
///
/// The schedule must be resolved here rather than summarized as
/// `(rate, seed)` because the Poisson stream *consumes* the cell seed
/// while [`effective_seed`] normalizes seeds away for deterministic
/// policies: two cells with the same rate under different root seeds run
/// different streams, and only the resolved schedule separates their
/// descriptors. (Conversely, a trace-driven fleet and a Poisson fleet
/// that happen to produce the same schedule genuinely share a result.)
fn fleet_descriptor(spec: &CampaignSpec, cell: &CellSpec) -> CellDescriptor {
    let axis = spec.fleet.as_ref().expect("fleet cells exist only with a fleet axis");
    let mut b = DescriptorBuilder::new("campaign-fleet-cell");
    b.section("fleet.machines", axis.machines.len());
    for (i, kind) in axis.machines.iter().enumerate() {
        // describe_machine uses fixed field names; the index marker keeps
        // the (order-sensitive) descriptor text unambiguous across the mix.
        b.field_u64("fleet.machine_index", i as u64);
        describe_machine(&mut b, &kind.topology());
    }
    b.field_str("fleet.scheduler", cell.scheduler.expect("fleet cell").label());

    let jobs = match &axis.trace {
        Some(events) => jobs_from_trace(events),
        None => {
            poisson_jobs(cell.seed, cell.arrival_rate.unwrap_or(0.0), axis.jobs, &spec.workloads)
        }
    };
    b.section("fleet.jobs", jobs.len());
    for (i, j) in jobs.iter().enumerate() {
        let p = format!("job{i}.");
        b.field_f64(&format!("{p}at_s"), j.at_s);
        if let Some(d) = j.depart_s {
            b.field_f64(&format!("{p}depart_s"), d);
        }
        describe_workload(&mut b, &p, &j.workload);
    }

    let policy = effective_policy(spec, cell);
    describe_policy(&mut b, &policy);
    b.field_u64("seed", effective_seed(&policy, cell.seed));

    b.field_str("scenario", cell.scenario.label());
    b.field_u64("workers", cell.workers as u64);

    b.field_f64("sim.epoch_dt", spec.sim_cfg.epoch_dt);
    b.field_f64("sim.migration_gbps", spec.sim_cfg.migration_gbps);
    b.field_f64("sim.write_amplification", spec.sim_cfg.ctrl_model.write_amplification);
    b.field_f64("sim.latency_inflation.a", spec.sim_cfg.latency_inflation.0);
    b.field_f64("sim.latency_inflation.b", spec.sim_cfg.latency_inflation.1);
    b.field_str("sim.engine", spec.sim_cfg.mode.label());
    b.finish()
}

/// Serialize the full machine: nodes (with tiers), links, routes, path
/// capacities and the latency matrix. Bandwidth/latency values go in as
/// raw bit patterns — a one-ulp topology tweak is a different machine.
fn describe_machine(b: &mut DescriptorBuilder, m: &MachineTopology) {
    b.field_str("machine", m.name());
    b.section("nodes", m.node_count());
    for (i, n) in m.nodes().iter().enumerate() {
        let p = format!("node{i}.");
        b.field_u64(&format!("{p}cores"), u64::from(n.cores));
        b.field_u64(&format!("{p}mem_pages"), n.mem_pages);
        b.field_f64(&format!("{p}ctrl_bw"), n.ctrl_bw);
        b.field_f64(&format!("{p}ingress_bw"), n.ingress_bw);
        b.field_str(&format!("{p}mem_class"), n.mem_class.name);
        b.field_f64(&format!("{p}bw_scale"), n.mem_class.bw_scale);
        b.field_f64(&format!("{p}lat_scale"), n.mem_class.lat_scale);
    }
    b.section("links", m.links().len());
    for (i, l) in m.links().iter().enumerate() {
        let p = format!("link{i}.");
        b.field_u64(&format!("{p}a"), u64::from(l.a.0));
        b.field_u64(&format!("{p}b"), u64::from(l.b.0));
        b.field_f64(&format!("{p}cap_ab"), l.cap_ab);
        b.field_f64(&format!("{p}cap_ba"), l.cap_ba);
    }
    let n = m.node_count();
    b.section("routes", n * n);
    for s in 0..n {
        for d in 0..n {
            let (s, d) = (NodeId(s as u16), NodeId(d as u16));
            let hops: Vec<String> = m
                .routes()
                .get(s, d)
                .hops()
                .iter()
                .map(|h| {
                    format!(
                        "{}{}",
                        h.link.0,
                        match h.dir {
                            bwap_topology::Direction::AtoB => '+',
                            bwap_topology::Direction::BtoA => '-',
                        }
                    )
                })
                .collect();
            b.field_str(&format!("route.{}.{}", s.0, d.0), &hops.join(","));
            b.field_f64(&format!("pathcap.{}.{}", s.0, d.0), m.path_caps().get(s, d));
            b.field_f64(&format!("lat.{}.{}", s.0, d.0), m.latency_ns().get(s, d));
        }
    }
}

/// Serialize one workload spec under a field-name prefix (so plain and
/// per-phase specs reuse one encoding).
fn describe_workload(b: &mut DescriptorBuilder, prefix: &str, w: &WorkloadSpec) {
    b.field_str(&format!("{prefix}workload"), w.name);
    b.field_f64(&format!("{prefix}reads_mbps"), w.reads_mbps);
    b.field_f64(&format!("{prefix}writes_mbps"), w.writes_mbps);
    b.field_f64(&format!("{prefix}private_frac"), w.private_frac);
    b.field_f64(&format!("{prefix}latency_sensitivity"), w.latency_sensitivity);
    b.field_f64(&format!("{prefix}serial_frac"), w.serial_frac);
    b.field_f64(&format!("{prefix}multinode_penalty"), w.multinode_penalty);
    b.field_u64(&format!("{prefix}shared_pages"), w.shared_pages);
    b.field_u64(&format!("{prefix}private_pages_per_thread"), w.private_pages_per_thread);
    b.field_f64(&format!("{prefix}total_traffic_gb"), w.total_traffic_gb);
    b.field_f64(&format!("{prefix}machine_a_scale"), w.machine_a_scale);
    b.field_bool(&format!("{prefix}open_loop"), w.open_loop);
}

/// Serialize the effective policy. The configured seed is *not* written
/// here — [`effective_seed`] decides what (if anything) of it reaches the
/// descriptor.
fn describe_policy(b: &mut DescriptorBuilder, policy: &PlacementPolicy) {
    match policy {
        PlacementPolicy::FirstTouch => b.field_str("policy", "first-touch"),
        PlacementPolicy::UniformWorkers => b.field_str("policy", "uniform-workers"),
        PlacementPolicy::UniformAll => b.field_str("policy", "uniform-all"),
        PlacementPolicy::AutoNuma => b.field_str("policy", "autonuma"),
        PlacementPolicy::Bwap(cfg) => {
            b.field_str("policy", "bwap");
            describe_bwap(b, "bwap.", cfg);
        }
        PlacementPolicy::AdaptiveBwap(acfg) => {
            b.field_str("policy", "bwap-adaptive");
            describe_adaptive(b, acfg);
        }
    }
}

fn describe_bwap(b: &mut DescriptorBuilder, prefix: &str, cfg: &BwapConfig) {
    b.field_str(
        &format!("{prefix}mode"),
        match cfg.mode {
            InterleaveMode::Kernel => "kernel",
            InterleaveMode::UserLevel => "user-level",
        },
    );
    b.field_u64(&format!("{prefix}tuner.samples"), cfg.tuner.samples_per_iteration as u64);
    b.field_u64(&format!("{prefix}tuner.trim"), cfg.tuner.trim as u64);
    b.field_f64(&format!("{prefix}tuner.sample_interval_s"), cfg.tuner.sample_interval_s);
    b.field_f64(&format!("{prefix}tuner.step"), cfg.tuner.step);
    b.field_f64(&format!("{prefix}tuner.min_improvement"), cfg.tuner.min_improvement);
    b.field_f64(&format!("{prefix}tuner.stage1_min_improvement"), cfg.tuner.stage1_min_improvement);
    b.field_bool(&format!("{prefix}online_tuning"), cfg.online_tuning);
    b.field_f64(&format!("{prefix}fixed_dwp"), cfg.fixed_dwp);
    b.field_bool(&format!("{prefix}uniform_canonical"), cfg.uniform_canonical);
}

fn describe_adaptive(b: &mut DescriptorBuilder, cfg: &AdaptiveConfig) {
    describe_bwap(b, "adaptive.bwap.", &cfg.bwap);
    b.field_f64("adaptive.retune_threshold", cfg.retune_threshold);
    b.field_u64("adaptive.max_retunes", cfg.max_retunes as u64);
    b.field_u64("adaptive.settle_windows", cfg.settle_windows as u64);
}

#[cfg(test)]
impl CampaignSpec {
    /// Test helper: the same spec on a different machine.
    fn machine_swap(mut self, m: MachineTopology) -> Self {
        self.machine = m;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::ScenarioKind;
    use bwap_topology::machines;

    fn spec() -> CampaignSpec {
        CampaignSpec::new("desc-unit", machines::machine_b())
            .workloads(vec![bwap_workloads::streamcluster().scaled_down(32.0)])
            .policies(vec![
                PlacementPolicy::UniformWorkers,
                PlacementPolicy::Bwap(BwapConfig::default()),
            ])
            .scenarios(vec![ScenarioKind::Standalone, ScenarioKind::Coscheduled])
            .worker_counts(vec![1, 2])
            .dwp_grid(vec![DwpPoint::AsConfigured, DwpPoint::Static(0.5)])
            .seed(7)
    }

    #[test]
    fn descriptors_are_stable_across_enumerations() {
        let s = spec();
        let a: Vec<_> = s.cells().iter().map(|c| cell_descriptor(&s, c)).collect();
        let b: Vec<_> = s.cells().iter().map(|c| cell_descriptor(&s, c)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_axes_distinct_descriptors() {
        let s = spec();
        let cells = s.cells();
        let descs: Vec<_> = cells.iter().map(|c| cell_descriptor(&s, c)).collect();
        for (i, a) in descs.iter().enumerate() {
            for (j, b) in descs.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "cells {} and {} alias", cells[i].key, cells[j].key);
                }
            }
        }
    }

    #[test]
    fn seed_is_normalized_out_for_deterministic_policies() {
        // Same cell under two root seeds: different derived seeds, same
        // descriptor — the policy consumes no randomness.
        let a = spec();
        let b = spec().seed(8);
        let (ca, cb) = (a.cells(), b.cells());
        assert_ne!(ca[0].seed, cb[0].seed);
        assert_eq!(cell_descriptor(&a, &ca[0]), cell_descriptor(&b, &cb[0]));
    }

    #[test]
    fn static_dwp_folds_into_the_effective_policy() {
        // Declaring static DWP 0.5 in the policy config vs sweeping the
        // grid to Static(0.5): the same simulation, one descriptor.
        let via_policy = CampaignSpec::new("a", machines::machine_b())
            .workloads(vec![bwap_workloads::streamcluster().scaled_down(32.0)])
            .policies(vec![PlacementPolicy::Bwap(BwapConfig::static_dwp(0.5))]);
        let via_grid = CampaignSpec::new("b", machines::machine_b())
            .workloads(vec![bwap_workloads::streamcluster().scaled_down(32.0)])
            .policies(vec![PlacementPolicy::Bwap(BwapConfig::default())])
            .dwp_grid(vec![DwpPoint::Static(0.5)]);
        let (ca, cb) = (via_policy.cells(), via_grid.cells());
        assert_eq!(cell_descriptor(&via_policy, &ca[0]), cell_descriptor(&via_grid, &cb[0]));
    }

    #[test]
    fn machine_engine_and_scenario_reach_the_descriptor() {
        let base = spec();
        let cells = base.cells();
        let d0 = cell_descriptor(&base, &cells[0]);
        let other_machine = spec().machine_swap(machines::machine_a());
        assert_ne!(d0, cell_descriptor(&other_machine, &other_machine.cells()[0]));
        let event = spec().engine_mode(numasim::EngineMode::EventDriven);
        assert_ne!(d0, cell_descriptor(&event, &event.cells()[0]));
        let probe = spec().probe_bandwidth(true);
        assert_ne!(d0, cell_descriptor(&probe, &probe.cells()[0]));
    }

    #[test]
    fn fleet_descriptors_resolve_the_arrival_schedule() {
        use crate::campaign::FleetAxis;
        use crate::fleet::{MachineKind, SchedulerKind};
        let fleet_spec = |seed: u64, trace: Option<Vec<bwap_workloads::arrivals::ArrivalEvent>>| {
            CampaignSpec::new("fleet-desc", machines::machine_b())
                .workloads(vec![bwap_workloads::streamcluster().scaled_down(64.0)])
                .policies(vec![PlacementPolicy::UniformWorkers])
                .fleet(FleetAxis {
                    machines: vec![MachineKind::B],
                    schedulers: vec![SchedulerKind::RoundRobin],
                    arrival_rates: vec![1.0],
                    jobs: 3,
                    trace,
                })
                .seed(seed)
        };
        let fleet_cell = |s: &CampaignSpec| s.cells().into_iter().find(|c| c.scheduler.is_some());
        // Poisson fleets: the schedule consumes the cell seed, so two
        // root seeds must NOT share a descriptor (their streams differ).
        let (a, b) = (fleet_spec(1, None), fleet_spec(2, None));
        let (ca, cb) = (fleet_cell(&a).unwrap(), fleet_cell(&b).unwrap());
        assert_ne!(ca.seed, cb.seed);
        let (da, db) = (cell_descriptor(&a, &ca), cell_descriptor(&b, &cb));
        assert_ne!(da, db, "poisson schedules differ, descriptors must too");
        assert!(da.text().contains("job0.at_s="));
        // Trace-driven fleets: the schedule is explicit, the seed is
        // inert — different root seeds share one descriptor.
        let trace = vec![bwap_workloads::arrivals::ArrivalEvent {
            at_s: 0.5,
            workload: bwap_workloads::streamcluster().scaled_down(64.0),
            depart_s: None,
        }];
        let (ta, tb) = (fleet_spec(1, Some(trace.clone())), fleet_spec(2, Some(trace)));
        let (ca, cb) = (fleet_cell(&ta).unwrap(), fleet_cell(&tb).unwrap());
        assert_eq!(cell_descriptor(&ta, &ca), cell_descriptor(&tb, &cb));
    }

    #[test]
    fn phased_cells_cover_the_timeline_and_period() {
        let s = CampaignSpec::new("phased", machines::machine_b())
            .phased_workloads(vec![bwap_workloads::sc_bandwidth_flip().scaled_down(64.0)])
            .phase_periods(vec![2.0, 4.0])
            .policies(vec![PlacementPolicy::FirstTouch]);
        let cells = s.cells();
        assert_eq!(cells.len(), 2);
        let d: Vec<_> = cells.iter().map(|c| cell_descriptor(&s, c)).collect();
        assert_ne!(d[0], d[1], "phase periods must separate descriptors");
        assert!(d[0].text().contains("phase0.duration_s="));
    }
}
