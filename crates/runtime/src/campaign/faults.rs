//! Deterministic fault injection for chaos-testing the campaign layer.
//!
//! A [`FaultPlan`] is a *seeded schedule* of failures covering the three
//! trust boundaries of a distributed campaign:
//!
//! * the **worker RPC stream** — connect refusals, mid-batch disconnects,
//!   truncated and corrupted frames, injected latency, and outright hangs
//!   (exercising the coordinator's timeouts, retries and salvage paths in
//!   `bwap-bench::worker`);
//! * the **cell-cache filesystem** — torn entry writes, bit flips, and
//!   journal loss ([`super::cache::CellCache`]);
//! * **cell execution itself** — panicking cells (exercising the
//!   executor's `catch_unwind` isolation) and delayed cells.
//!
//! Every injected fault is a pure function of `(plan seed, fault kind,
//! instance key)` via [`bwap::derive_seed`] — never of wall-clock time,
//! scheduling, or thread count — so a chaos run is exactly replayable:
//! the same plan against the same campaign injects the same faults at
//! the same places. The plan's seed defaults to the campaign seed
//! (`--faults` without `seed=` reuses it), making `campaign --seed N
//! --faults SPEC` a single replayable coordinate.
//!
//! The determinism contract (see `docs/ROBUSTNESS.md`): for any plan
//! made of *recoverable* faults (everything except [`FaultKind::CellPanic`]),
//! a campaign that completes produces a deterministic report
//! **byte-identical** to the fault-free run — faults may move cells
//! between remote, cached and local execution, but never change a
//! result. `CellPanic` is the deliberate exception: a panicking cell
//! must surface as an error cell, not kill the campaign.
//!
//! ```
//! use bwap_runtime::campaign::faults::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::parse("disconnect=0.5,cell-delay=1.0:2,seed=9", 42).unwrap();
//! // Decisions are deterministic: same plan, same key, same answer.
//! let a = plan.decide(FaultKind::Disconnect, "worker-0#attempt-0").is_some();
//! let b = plan.decide(FaultKind::Disconnect, "worker-0#attempt-0").is_some();
//! assert_eq!(a, b);
//! // A rate-1.0 rule always fires and carries its parameter.
//! let delay = plan.decide(FaultKind::CellDelay, "cell-key").unwrap();
//! assert_eq!(delay.param_ms, 2);
//! ```

use bwap::derive_seed;

/// One class of injectable failure. The textual labels double as the
/// `--faults` spec vocabulary and as the hash domain separator, so two
/// kinds can never share decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Refuse the TCP connect to a worker outright.
    ConnectRefuse,
    /// Kill the connection mid-batch: after a seed-chosen number of
    /// response frames, the stream dies (the salvage path's bread and
    /// butter).
    Disconnect,
    /// Flip one byte of a seed-chosen response frame (caught by entry
    /// decoding / descriptor verification, never merged).
    CorruptFrame,
    /// Truncate a seed-chosen response frame to half its bytes.
    TruncateFrame,
    /// Sleep `param_ms` before reading a worker's response (tolerated
    /// latency, not a failure — the batch must still succeed within its
    /// deadline).
    Latency,
    /// Connect, then never send the request: the worker sees a silent
    /// peer, the coordinator's read deadline fires.
    Hang,
    /// Tear a cache entry write: only a prefix of the entry reaches disk
    /// (detected as a miss on the next load).
    CacheTorn,
    /// Flip one byte of a cache entry on store (detected as a miss).
    CacheFlip,
    /// Drop a journal append, surfacing as a counted journal write
    /// failure ([`super::cache::CellCache::journal_errors`]).
    JournalDrop,
    /// Panic inside the cell computation (isolated by the executor's
    /// `catch_unwind`; becomes an error cell).
    CellPanic,
    /// Sleep `param_ms` inside the cell computation before running it.
    CellDelay,
}

/// Every kind, in spec order — the parser's vocabulary and the doc table.
pub const ALL_KINDS: [FaultKind; 11] = [
    FaultKind::ConnectRefuse,
    FaultKind::Disconnect,
    FaultKind::CorruptFrame,
    FaultKind::TruncateFrame,
    FaultKind::Latency,
    FaultKind::Hang,
    FaultKind::CacheTorn,
    FaultKind::CacheFlip,
    FaultKind::JournalDrop,
    FaultKind::CellPanic,
    FaultKind::CellDelay,
];

impl FaultKind {
    /// Stable spec label (also the hash domain separator).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ConnectRefuse => "connect",
            FaultKind::Disconnect => "disconnect",
            FaultKind::CorruptFrame => "corrupt",
            FaultKind::TruncateFrame => "truncate",
            FaultKind::Latency => "latency",
            FaultKind::Hang => "hang",
            FaultKind::CacheTorn => "cache-torn",
            FaultKind::CacheFlip => "cache-flip",
            FaultKind::JournalDrop => "journal-drop",
            FaultKind::CellPanic => "cell-panic",
            FaultKind::CellDelay => "cell-delay",
        }
    }

    fn from_label(s: &str) -> Option<FaultKind> {
        ALL_KINDS.iter().copied().find(|k| k.label() == s)
    }

    /// Whether the contract guarantees byte-identical reports under this
    /// kind. Only [`FaultKind::CellPanic`] changes a result (an error
    /// cell instead of a value); everything else is recoverable.
    pub fn recoverable(&self) -> bool {
        !matches!(self, FaultKind::CellPanic)
    }
}

/// One injected fault, as returned by [`FaultPlan::decide`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What to inject.
    pub kind: FaultKind,
    /// The rule's millisecond parameter (latency / delay durations; 0 for
    /// kinds without one).
    pub param_ms: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct FaultRule {
    kind: FaultKind,
    rate: f64,
    param_ms: u64,
}

/// A seeded, replayable fault schedule. Build one with [`FaultPlan::new`]
/// and [`FaultPlan::with`], or parse the `--faults` spec grammar with
/// [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) rooted at `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, rules: Vec::new() }
    }

    /// The plan's seed (recorded for replay).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Add a rule: inject `kind` with probability `rate` (clamped to
    /// `[0, 1]`). Later rules for the same kind replace earlier ones.
    pub fn with(self, kind: FaultKind, rate: f64) -> FaultPlan {
        self.with_param(kind, rate, 0)
    }

    /// [`FaultPlan::with`] plus a millisecond parameter (latency and
    /// delay durations).
    pub fn with_param(mut self, kind: FaultKind, rate: f64, param_ms: u64) -> FaultPlan {
        self.rules.retain(|r| r.kind != kind);
        self.rules.push(FaultRule { kind, rate: rate.clamp(0.0, 1.0), param_ms });
        self
    }

    /// True when no rule can ever fire.
    pub fn is_empty(&self) -> bool {
        self.rules.iter().all(|r| r.rate <= 0.0)
    }

    /// True when every rule is recoverable — the byte-identity contract
    /// applies to the whole plan.
    pub fn recoverable(&self) -> bool {
        self.rules.iter().all(|r| r.rate <= 0.0 || r.kind.recoverable())
    }

    /// Parse the `--faults` spec grammar: comma-separated
    /// `kind=rate[:param_ms]` terms plus an optional `seed=N` term; the
    /// plan seed defaults to `default_seed` (the campaign seed) so chaos
    /// runs are replayable from the campaign coordinates alone.
    ///
    /// Example: `disconnect=0.5,corrupt=0.25,latency=1.0:20,seed=7`.
    pub fn parse(spec: &str, default_seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(default_seed);
        for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (name, value) =
                term.split_once('=').ok_or_else(|| format!("bad fault term {term:?}"))?;
            if name == "seed" {
                plan.seed = value.parse().map_err(|_| format!("bad fault seed {value:?}"))?;
                continue;
            }
            let kind = FaultKind::from_label(name)
                .ok_or_else(|| format!("unknown fault kind {name:?}"))?;
            let (rate_str, param_ms) = match value.split_once(':') {
                Some((r, p)) => (r, p.parse().map_err(|_| format!("bad fault param {p:?} (ms)"))?),
                None => (value, 0),
            };
            let rate: f64 = rate_str
                .parse()
                .ok()
                .filter(|r: &f64| (0.0..=1.0).contains(r))
                .ok_or_else(|| format!("bad fault rate {rate_str:?} (expected [0, 1])"))?;
            plan = plan.with_param(kind, rate, param_ms);
        }
        Ok(plan)
    }

    /// Render the plan back into the `--faults` spec grammar, canonically:
    /// rules in [`ALL_KINDS`] order, `:param_ms` only when non-zero, and an
    /// explicit trailing `seed=` term so the string replays identically
    /// whatever campaign seed it is parsed under. `to_spec` is a fixpoint
    /// of [`FaultPlan::parse`] — parsing the output (under any default
    /// seed) and serializing again returns the same string — which makes
    /// it the replay coordinate to log for a chaos run.
    pub fn to_spec(&self) -> String {
        let mut terms: Vec<String> = ALL_KINDS
            .iter()
            .filter_map(|k| self.rules.iter().find(|r| r.kind == *k))
            .map(|r| {
                if r.param_ms == 0 {
                    format!("{}={}", r.kind.label(), r.rate)
                } else {
                    format!("{}={}:{}", r.kind.label(), r.rate, r.param_ms)
                }
            })
            .collect();
        terms.push(format!("seed={}", self.seed));
        terms.join(",")
    }

    /// Decide whether `kind` fires for the instance named by `key`. Pure:
    /// the answer depends only on `(seed, kind, key)`.
    pub fn decide(&self, kind: FaultKind, key: &str) -> Option<Fault> {
        let rule = self.rules.iter().find(|r| r.kind == kind)?;
        if rule.rate <= 0.0 {
            return None;
        }
        // 53 uniform bits -> [0, 1); rate 1.0 therefore always fires.
        let h = derive_seed(self.seed, &format!("fault:{}:{key}", kind.label()));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        (u < rule.rate).then_some(Fault { kind, param_ms: rule.param_ms })
    }

    /// A deterministic draw in `[0, n)` parameterizing a fired fault
    /// (which frame to corrupt, where to cut a stream, which byte to
    /// flip) — domain-separated from [`FaultPlan::decide`] so the draw
    /// never correlates with whether the fault fires.
    pub fn roll(&self, kind: FaultKind, key: &str, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        derive_seed(self.seed, &format!("roll:{}:{key}", kind.label())) % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_grammar_round_trips_kinds_rates_and_seed() {
        let plan =
            FaultPlan::parse("disconnect=0.5, corrupt=0.25,latency=1:20,seed=7", 42).unwrap();
        assert_eq!(plan.seed(), 7);
        assert!(!plan.is_empty());
        assert!(plan.recoverable());
        assert_eq!(plan.decide(FaultKind::Latency, "x").unwrap().param_ms, 20);
        // Unlisted kinds never fire.
        assert_eq!(plan.decide(FaultKind::CellPanic, "x"), None);
        // The campaign seed is the default.
        assert_eq!(FaultPlan::parse("hang=0.1", 42).unwrap().seed(), 42);
        // An empty spec is the empty plan.
        assert!(FaultPlan::parse("", 0).unwrap().is_empty());
    }

    #[test]
    fn to_spec_is_canonical_and_parse_inverts_it() {
        // Construction order does not matter: serialization is in
        // ALL_KINDS order with an explicit seed, params only when set.
        let plan = FaultPlan::new(7)
            .with_param(FaultKind::Latency, 1.0, 20)
            .with(FaultKind::Disconnect, 0.5);
        assert_eq!(plan.to_spec(), "disconnect=0.5,latency=1:20,seed=7");
        // Parsing under a *different* default seed restores the plan
        // exactly — the explicit seed= term wins.
        let back = FaultPlan::parse(&plan.to_spec(), 999).unwrap();
        assert_eq!(back.seed(), 7);
        assert_eq!(back.to_spec(), plan.to_spec());
        // The empty plan round-trips too (a bare seed term).
        let empty = FaultPlan::new(3);
        assert_eq!(empty.to_spec(), "seed=3");
        assert!(FaultPlan::parse(&empty.to_spec(), 0).unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_terms() {
        for bad in [
            "warp=0.5",
            "disconnect",
            "disconnect=2.0",
            "disconnect=-1",
            "seed=x",
            "latency=0.5:xms",
        ] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_scoped() {
        let a = FaultPlan::new(1).with(FaultKind::Disconnect, 0.5);
        let b = FaultPlan::new(2).with(FaultKind::Disconnect, 0.5);
        let keys: Vec<String> = (0..256).map(|i| format!("k{i}")).collect();
        let fire_a: Vec<bool> =
            keys.iter().map(|k| a.decide(FaultKind::Disconnect, k).is_some()).collect();
        let again: Vec<bool> =
            keys.iter().map(|k| a.decide(FaultKind::Disconnect, k).is_some()).collect();
        assert_eq!(fire_a, again, "same plan, same decisions");
        let fire_b: Vec<bool> =
            keys.iter().map(|k| b.decide(FaultKind::Disconnect, k).is_some()).collect();
        assert_ne!(fire_a, fire_b, "different seeds decorrelate the schedule");
        // Rate 0.5 should fire roughly half the time.
        let hits = fire_a.iter().filter(|&&f| f).count();
        assert!((64..=192).contains(&hits), "rate 0.5 fired {hits}/256 times");
    }

    #[test]
    fn rate_bounds_always_and_never_fire() {
        let always = FaultPlan::new(3).with(FaultKind::CellPanic, 1.0);
        let never = FaultPlan::new(3).with(FaultKind::CellPanic, 0.0);
        for i in 0..64 {
            let k = format!("cell{i}");
            assert!(always.decide(FaultKind::CellPanic, &k).is_some());
            assert!(never.decide(FaultKind::CellPanic, &k).is_none());
        }
        assert!(never.is_empty());
        assert!(!always.recoverable());
    }

    #[test]
    fn kinds_are_domain_separated() {
        let plan =
            FaultPlan::new(9).with(FaultKind::Disconnect, 0.5).with(FaultKind::CorruptFrame, 0.5);
        let keys: Vec<String> = (0..256).map(|i| format!("k{i}")).collect();
        let d: Vec<bool> =
            keys.iter().map(|k| plan.decide(FaultKind::Disconnect, k).is_some()).collect();
        let c: Vec<bool> =
            keys.iter().map(|k| plan.decide(FaultKind::CorruptFrame, k).is_some()).collect();
        assert_ne!(d, c, "two kinds at the same rate must not share decisions");
    }

    #[test]
    fn rolls_are_deterministic_bounded_and_independent_of_decide() {
        let plan = FaultPlan::new(5).with(FaultKind::Disconnect, 1e-9);
        for n in [1u64, 2, 7, 100] {
            let r = plan.roll(FaultKind::Disconnect, "batch", n);
            assert!(r < n);
            assert_eq!(r, plan.roll(FaultKind::Disconnect, "batch", n));
        }
        assert_eq!(plan.roll(FaultKind::Disconnect, "batch", 0), 0);
    }

    #[test]
    fn labels_round_trip() {
        for k in ALL_KINDS {
            assert_eq!(FaultKind::from_label(k.label()), Some(k));
        }
        assert_eq!(FaultKind::from_label("nope"), None);
    }
}
