//! The sharded executor: independent jobs fanned out over scoped threads.
//!
//! Every evaluation run builds its own `Simulator`, so runs are perfectly
//! independent; the executor pulls jobs from a shared work-stealing queue
//! (an atomic cursor over the job list — an idle worker steals the next
//! unclaimed cell regardless of which worker "owned" it) and returns
//! results in submission order, which makes results independent of the
//! worker count and of scheduling order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run all `jobs` in parallel, bounded by the host's cores, and return
/// their results in the original order. A panicking job aborts the whole
/// batch.
pub fn run_parallel<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_parallel_with(None, jobs)
}

/// [`run_parallel`] with an explicit worker count (`None` = all available
/// cores). `Some(1)` degrades to a serial loop on the calling thread's
/// schedule — campaign shard-count invariance tests rely on `Some(1)` and
/// `Some(n)` producing identical results.
pub fn run_parallel_with<T, F>(threads: Option<usize>, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_parallel_catch(threads, jobs)
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("job panicked: {p}")))
        .collect()
}

/// [`run_parallel_with`] with panic *isolation* instead of propagation:
/// each job runs under [`catch_unwind`], and a panicking job becomes
/// `Err(panic message)` in its own result slot while every other job
/// completes normally. This is how one poisoned campaign cell becomes an
/// error cell in the report instead of a dead campaign (see
/// `docs/ROBUSTNESS.md`).
pub fn run_parallel_catch<T, F>(threads: Option<usize>, jobs: Vec<F>) -> Vec<Result<T, String>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n_jobs = jobs.len();
    if n_jobs == 0 {
        return Vec::new();
    }
    let workers = effective_workers(threads, n_jobs);
    // `p.as_ref()`, not `&p`: a `&Box<dyn Any>` unsize-coerces to a
    // `&dyn Any` *of the box itself*, which downcasts to nothing useful.
    let run = |job: F| catch_unwind(AssertUnwindSafe(job)).map_err(|p| panic_message(p.as_ref()));
    if workers == 1 {
        // Serial on the calling thread: no spawn/join overhead for
        // single-candidate batches or single-core hosts.
        return jobs.into_iter().map(run).collect();
    }
    type Slot<T> = Mutex<Option<Result<T, String>>>;
    let job_slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let result_slots: Vec<Slot<T>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                let job = job_slots[i].lock().expect("job lock").take().expect("job runs once");
                let result = run(job);
                *result_slots[i].lock().expect("result lock") = Some(result);
            });
        }
    });
    result_slots
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("job completed"))
        .collect()
}

/// Best-effort text of a panic payload (`panic!` with a string literal or
/// a formatted message covers everything this workspace throws).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Default worker count: one per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
}

/// The thread count [`run_parallel_with`] actually uses for a batch:
/// the request (or core count), clamped to the number of jobs so dedup
/// collapsing a campaign to a handful of distinct cells never spawns
/// idle threads. Reports record this, not the raw request.
pub fn effective_workers(threads: Option<usize>, n_jobs: usize) -> usize {
    threads.unwrap_or_else(default_threads).max(1).min(n_jobs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<_> = (0..64).map(|i| move || i * 2).collect();
        let out = run_parallel(jobs);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch() {
        let out: Vec<i32> = run_parallel(Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let mk = || (0..50).map(|i| move || i * i).collect::<Vec<_>>();
        let serial = run_parallel_with(Some(1), mk());
        let wide = run_parallel_with(Some(8), mk());
        assert_eq!(serial, wide);
    }

    #[test]
    fn catch_isolates_panics_to_their_own_slot() {
        for threads in [Some(1), Some(4)] {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
                .map(|i| {
                    Box::new(move || {
                        if i % 5 == 3 {
                            panic!("injected panic in job {i}");
                        }
                        i * 10
                    }) as Box<dyn FnOnce() -> usize + Send>
                })
                .collect();
            let out = run_parallel_catch(threads, jobs);
            assert_eq!(out.len(), 16);
            for (i, r) in out.iter().enumerate() {
                if i % 5 == 3 {
                    let e = r.as_ref().unwrap_err();
                    assert!(e.contains(&format!("injected panic in job {i}")), "{e}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10);
                }
            }
        }
    }

    #[test]
    fn plain_run_parallel_still_propagates_panics() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| 1), Box::new(|| panic!("boom"))];
        let caught =
            std::panic::catch_unwind(AssertUnwindSafe(|| run_parallel_with(Some(1), jobs)));
        assert!(caught.is_err(), "non-catch API keeps abort-the-batch semantics");
    }

    #[test]
    fn actually_parallel_under_load() {
        // Not a strict timing test — just exercise > worker-count jobs.
        let jobs: Vec<_> = (0..100)
            .map(|i| {
                move || {
                    let mut acc = 0u64;
                    for k in 0..10_000u64 {
                        acc = acc.wrapping_add(k ^ i);
                    }
                    acc
                }
            })
            .collect();
        assert_eq!(run_parallel(jobs).len(), 100);
    }
}
