//! Enforcing a weight distribution on a process's memory.

use crate::error::RuntimeError;
use bwap::{user_level_plan, InterleaveMode, WeightDistribution};
use numasim::{MemPolicy, ProcessId, Simulator};

/// Apply `weights` to every segment of `pid` (shared and private — BWAP
/// "decides the placement of every page similarly", paper §IV-A), queueing
/// migration of non-complying pages. Returns the number of pages queued.
///
/// * [`InterleaveMode::Kernel`]: one `mbind` per segment with the
///   weighted-interleave policy (exact ratios).
/// * [`InterleaveMode::UserLevel`]: the paper's Algorithm 1 — sub-range
///   uniform interleaving over shrinking node sets (portable, slightly
///   approximate).
pub fn apply_weights(
    sim: &mut Simulator,
    pid: ProcessId,
    weights: &WeightDistribution,
    mode: InterleaveMode,
) -> Result<usize, RuntimeError> {
    match mode {
        InterleaveMode::Kernel => {
            let policy = MemPolicy::WeightedInterleave(weights.to_vec());
            Ok(sim.apply_policy_all_segments(pid, &policy, true)?)
        }
        InterleaveMode::UserLevel => {
            let segments: Vec<(numasim::SegmentId, u64)> =
                sim.process(pid)?.aspace.iter().map(|(id, s)| (id, s.len())).collect();
            let mut queued = 0;
            for (seg, len) in segments {
                for call in user_level_plan(len, weights)? {
                    queued += sim.mbind(
                        pid,
                        seg,
                        call.start_page,
                        call.len_pages,
                        MemPolicy::Interleave(call.nodes),
                        true,
                    )?;
                }
            }
            Ok(queued)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::{machines, NodeId, NodeSet};
    use numasim::{AppProfile, SimConfig};

    fn spawn_app(sim: &mut Simulator) -> ProcessId {
        let profile = AppProfile {
            name: "t".into(),
            read_gbps_per_thread: 1.0,
            write_gbps_per_thread: 0.0,
            private_frac: 0.2,
            latency_sensitivity: 0.1,
            serial_frac: 0.0,
            multinode_penalty: 0.0,
            shared_pages: 40_000,
            private_pages_per_thread: 500,
            total_traffic_gb: f64::INFINITY,
            open_loop: false,
        };
        sim.spawn(profile, NodeSet::from_nodes([NodeId(0), NodeId(1)]), None, MemPolicy::FirstTouch)
            .unwrap()
    }

    fn weights() -> WeightDistribution {
        WeightDistribution::from_raw(vec![4.0, 3.0, 2.0, 1.0]).unwrap()
    }

    #[test]
    fn kernel_mode_reaches_exact_ratios() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let pid = spawn_app(&mut sim);
        apply_weights(&mut sim, pid, &weights(), InterleaveMode::Kernel).unwrap();
        sim.run_for(3.0); // drain migrations
        let d = sim.full_distribution(pid).unwrap();
        for (i, &target) in weights().as_slice().iter().enumerate() {
            assert!((d[i] - target).abs() < 0.01, "node {i}: {d:?}");
        }
    }

    #[test]
    fn user_level_mode_approximates_ratios() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let pid = spawn_app(&mut sim);
        let queued = apply_weights(&mut sim, pid, &weights(), InterleaveMode::UserLevel).unwrap();
        assert!(queued > 0);
        sim.run_for(3.0);
        let d = sim.full_distribution(pid).unwrap();
        for (i, &target) in weights().as_slice().iter().enumerate() {
            assert!((d[i] - target).abs() < 0.03, "node {i}: {d:?}");
        }
    }

    #[test]
    fn kernel_and_user_level_agree_within_paper_bound() {
        // The paper reports <= 3% end-to-end difference; at the placement
        // level the two modes should land within a few percent per node.
        let m = machines::machine_b();
        let run = |mode| {
            let mut sim = Simulator::new(m.clone(), SimConfig::default());
            let pid = spawn_app(&mut sim);
            apply_weights(&mut sim, pid, &weights(), mode).unwrap();
            sim.run_for(3.0);
            sim.full_distribution(pid).unwrap()
        };
        let k = run(InterleaveMode::Kernel);
        let u = run(InterleaveMode::UserLevel);
        for i in 0..4 {
            assert!((k[i] - u[i]).abs() < 0.03, "node {i}: kernel {k:?} vs user {u:?}");
        }
    }
}
