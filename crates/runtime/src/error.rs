//! Unified error type for runtime operations.

use std::fmt;

/// Anything that can go wrong while driving a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// OS-level failure.
    Sim(numasim::SimError),
    /// Decision-logic failure.
    Bwap(bwap::BwapError),
    /// Scenario configuration problem.
    Scenario(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Sim(e) => write!(f, "simulator: {e}"),
            RuntimeError::Bwap(e) => write!(f, "bwap: {e}"),
            RuntimeError::Scenario(s) => write!(f, "scenario: {s}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<numasim::SimError> for RuntimeError {
    fn from(e: numasim::SimError) -> Self {
        RuntimeError::Sim(e)
    }
}

impl From<bwap::BwapError> for RuntimeError {
    fn from(e: bwap::BwapError) -> Self {
        RuntimeError::Bwap(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RuntimeError = numasim::SimError::OutOfMemory.into();
        assert!(e.to_string().contains("simulator"));
        let e: RuntimeError = bwap::BwapError::InvalidDwp(2.0).into();
        assert!(e.to_string().contains("bwap"));
    }
}
