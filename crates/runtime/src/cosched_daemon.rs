//! The co-scheduled BWAP variant as a monitor daemon (paper §III-B3).
//!
//! An external monitor samples the stall rates of both the high-priority
//! application A and the best-effort, memory-intensive application B, and
//! drives B's DWP through the two-stage search: first protect A, then
//! optimize B.

use crate::apply::apply_weights;
use crate::bwap_daemon::TunerHandle;
use crate::error::RuntimeError;
use crate::profiling::ProfileBook;
use bwap::dwp::coschedule::CoschedTuner;
use bwap::dwp::TunerAction;
use bwap::{apply_dwp, BwapConfig, WeightDistribution};
use numasim::{Daemon, ProcessId, ProcessSample, Simulator};

/// Monitor daemon coordinating B's placement around A.
pub struct CoschedDaemon {
    pid_a: ProcessId,
    pid_b: ProcessId,
    cfg: BwapConfig,
    tuner: Option<CoschedTuner>,
    prev_a: Option<ProcessSample>,
    prev_b: Option<ProcessSample>,
    handle: TunerHandle,
    done: bool,
}

impl CoschedDaemon {
    /// `BWAP-init` for the co-scheduled scenario: place B canonically and
    /// prepare the two-stage tuner. `pid_a` is the high-priority workload
    /// whose stall rate gates stage 1. See
    /// [`crate::BwapDaemon::init`] for `apply_initial` semantics.
    pub fn init(
        sim: &mut Simulator,
        pid_b: ProcessId,
        pid_a: ProcessId,
        cfg: &BwapConfig,
        apply_initial: bool,
    ) -> Result<(CoschedDaemon, TunerHandle), RuntimeError> {
        let workers = sim.process(pid_b)?.workers;
        let n = sim.machine().node_count();
        let canonical = if cfg.uniform_canonical {
            WeightDistribution::uniform(n)
        } else {
            ProfileBook::canonical_weights(sim.machine(), workers)
        };
        let initial = apply_dwp(&canonical, workers, cfg.fixed_dwp)?;
        let queued = if apply_initial { apply_weights(sim, pid_b, &initial, cfg.mode)? } else { 0 };
        let handle = TunerHandle::default();
        handle.update(|r| {
            r.dwp = cfg.fixed_dwp;
            r.pages_applied = queued as u64;
            r.finished = !cfg.online_tuning;
        });
        let tuner = if cfg.online_tuning {
            if cfg.fixed_dwp != 0.0 {
                return Err(RuntimeError::Scenario(
                    "online tuning starts at DWP = 0; use static_dwp for fixed placements".into(),
                ));
            }
            Some(CoschedTuner::new(canonical, workers, cfg.tuner.clone())?)
        } else {
            None
        };
        Ok((
            CoschedDaemon {
                pid_a,
                pid_b,
                cfg: cfg.clone(),
                tuner,
                prev_a: None,
                prev_b: None,
                handle: handle.clone(),
                done: !cfg.online_tuning,
            },
            handle,
        ))
    }

    /// Register with the simulator at the tuner's sampling cadence.
    pub fn register(self, sim: &mut Simulator) {
        let interval = self.cfg.tuner.sample_interval_s;
        sim.add_daemon(Box::new(self), interval, interval);
    }
}

impl Daemon for CoschedDaemon {
    fn name(&self) -> &str {
        "bwap-cosched-monitor"
    }

    fn tick(&mut self, sim: &mut Simulator) {
        if self.done {
            return;
        }
        let Some(tuner) = self.tuner.as_mut() else {
            self.done = true;
            return;
        };
        let running = sim.process(self.pid_b).map(|p| p.is_running()).unwrap_or(false);
        if !running {
            self.done = true;
            return;
        }
        let sa = sim.sample(self.pid_a).expect("A exists");
        let sb = sim.sample(self.pid_b).expect("B exists");
        let (Some(pa), Some(pb)) = (self.prev_a.replace(sa), self.prev_b.replace(sb)) else {
            return;
        };
        match tuner.on_samples(sa.stall_rate_since(&pa), sb.stall_rate_since(&pb)) {
            TunerAction::Continue => {}
            TunerAction::Apply { dwp, weights } => {
                let queued = apply_weights(sim, self.pid_b, &weights, self.cfg.mode)
                    .expect("placement apply");
                self.handle.update(|r| {
                    r.dwp = dwp;
                    r.pages_applied += queued as u64;
                });
            }
            TunerAction::Finished => {
                self.handle.update(|r| {
                    r.finished = true;
                    r.dwp = tuner.dwp();
                });
                self.done = true;
            }
        }
    }

    fn done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::{machines, NodeId, NodeSet};
    use numasim::{MemPolicy, SimConfig};

    #[test]
    fn cosched_tuner_converges_without_hurting_a() {
        let m = machines::machine_b();
        let mut sim = Simulator::new(m.clone(), SimConfig::default());
        let workers_b = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let workers_a = workers_b.complement(4);
        let a = sim
            .spawn(
                bwap_workloads::swaptions().profile_for(&m),
                workers_a,
                None,
                MemPolicy::FirstTouch,
            )
            .unwrap();
        let mut spec = bwap_workloads::streamcluster().scaled_down(8.0);
        spec.total_traffic_gb = f64::INFINITY;
        let b = sim.spawn(spec.profile_for(&m), workers_b, None, MemPolicy::FirstTouch).unwrap();
        // A's baseline stall rate, alone-with-B-canonical not yet placed.
        let (daemon, handle) =
            CoschedDaemon::init(&mut sim, b, a, &BwapConfig::default(), true).unwrap();
        daemon.register(&mut sim);
        let a0 = sim.sample(a).unwrap();
        sim.run_for(120.0);
        let a1 = sim.sample(a).unwrap();
        assert!(handle.finished(), "cosched search should converge");
        // A is CPU-bound: its stall rate must stay low in absolute terms.
        let a_stall_frac = (a1.stall_cycles - a0.stall_cycles) / (a1.cycles - a0.cycles);
        assert!(a_stall_frac < 0.25, "A stall fraction {a_stall_frac}");
    }
}
