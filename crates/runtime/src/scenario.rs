//! The paper's two evaluation scenarios (§IV-A) as reusable runners.
//!
//! * **Stand-alone**: the machine belongs to one application, deployed on
//!   its (separately tuned) worker set; non-worker nodes are idle memory.
//! * **Co-scheduled**: a CPU-bound high-priority application A (Swaptions)
//!   occupies the remaining nodes while the memory-intensive application B
//!   runs on the worker set; B may place pages on A's nodes but must not
//!   degrade A.
//!
//! Both scenarios also run **phase-structured** workloads
//! ([`bwap_workloads::PhasedWorkload`]): [`run_standalone_phased`] /
//! [`run_coscheduled_phased`] install the workload's cycling demand
//! timeline on the measured process, so the engine swaps its profile at
//! every phase boundary — the setting the adaptive BWAP daemon
//! ([`PlacementPolicy::AdaptiveBwap`]) exists for.

use crate::adaptive::AdaptiveBwapDaemon;
use crate::baselines::PlacementPolicy;
use crate::bwap_daemon::{BwapDaemon, TunerHandle};
use crate::cosched_daemon::CoschedDaemon;
use crate::error::RuntimeError;
use bwap_topology::{MachineTopology, NodeSet};
use bwap_workloads::{PhasedWorkload, WorkloadSpec};
use numasim::{AppProfile, ProcessId, SimConfig, Simulator, TraceSink};

/// Hard ceiling on simulated time per run: generous versus the ~10-60 s
/// workloads, small enough to catch accidental livelock in tests.
pub(crate) const MAX_SIM_S: f64 = 3600.0;

/// Outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Policy label.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Worker count of B.
    pub workers: usize,
    /// Execution time of the measured application, simulated seconds.
    pub exec_time_s: f64,
    /// DWP the tuner settled on (BWAP policies only).
    pub chosen_dwp: Option<f64>,
    /// Pages migrated on behalf of the measured application.
    pub migrated_pages: u64,
    /// Average stall fraction of the measured application over its run.
    pub stall_frac: f64,
    /// Average stall fraction of the co-scheduled high-priority
    /// application over B's run (co-scheduled scenario only).
    pub a_stall_frac: Option<f64>,
    /// Bytes the measured application read from memory, summed over all
    /// node-to-node flows (Table I's "Reads" numerator).
    pub read_bytes: f64,
    /// Total memory traffic (reads + writes) of the measured application.
    pub traffic_bytes: f64,
    /// Phase-change re-tunes the adaptive watchdog performed
    /// (`bwap-adaptive` runs only; `None` for every other policy).
    pub retunes: Option<u64>,
    /// Simulated time of each re-tune, in order (`bwap-adaptive` only).
    pub retune_times_s: Option<Vec<f64>>,
    /// Phase boundaries the measured application crossed (phase-structured
    /// workloads only; `None` for plain specs).
    pub phase_switches: Option<u64>,
    /// Jobs submitted to the fleet (fleet cells only; for those,
    /// `exec_time_s` holds the makespan).
    pub jobs: Option<u64>,
    /// Per-job slowdown-vs-solo samples in arrival order, completed jobs
    /// only (fleet cells only).
    pub job_slowdowns: Option<Vec<f64>>,
    /// Nearest-rank median of `job_slowdowns` (fleet cells with at least
    /// one completed job).
    pub slowdown_p50: Option<f64>,
    /// Nearest-rank 95th percentile of `job_slowdowns`.
    pub slowdown_p95: Option<f64>,
    /// Nearest-rank 99th percentile of `job_slowdowns`.
    pub slowdown_p99: Option<f64>,
}

/// `(read bytes, total traffic bytes)` of `pid` over its whole run.
pub(crate) fn traffic_counters(sim: &Simulator, nodes: usize, pid: ProcessId) -> (f64, f64) {
    let reads: f64 = (0..nodes)
        .flat_map(|s| (0..nodes).map(move |d| (s, d)))
        .map(|(s, d)| sim.counters().flow_read_bytes(pid, s, d))
        .sum();
    (reads, sim.counters().process(pid).traffic_bytes)
}

fn stall_frac_between(sim: &Simulator, pid: ProcessId, start: &numasim::ProcessSample) -> f64 {
    let end = sim.sample(pid).expect("process exists");
    let cycles = end.cycles - start.cycles;
    if cycles <= 0.0 {
        0.0
    } else {
        (end.stall_cycles - start.stall_cycles) / cycles
    }
}

/// Adaptive-watchdog observables for the result record: populated only
/// for the adaptive policy so every other cell's JSON stays unchanged.
fn retune_extras(
    policy: &PlacementPolicy,
    handle: &Option<TunerHandle>,
) -> (Option<u64>, Option<Vec<f64>>) {
    match (policy, handle) {
        (PlacementPolicy::AdaptiveBwap(_), Some(h)) => (Some(h.retunes()), Some(h.retune_times())),
        _ => (None, None),
    }
}

/// Launch the measured application under `policy` (B in the co-scheduled
/// scenario), attaching whatever daemons the policy needs. `spec` defines
/// the memory layout; a phase `timeline`, when given, supplies the spawn
/// profile (phase 0) and is installed on the process so the engine swaps
/// demand profiles at phase boundaries.
///
/// BWAP processes launch with their pages *already at* the canonical
/// distribution: `BWAP-init` runs right after allocation, so its `mbind`
/// applies before pages are faulted in — placement is free, exactly as on
/// Linux. Under the user-level mode the launch placement is what
/// Algorithm 1's sub-range plan realizes (including its rounding error)
/// rather than the exact weights.
/// When `arrive_at` is `Some`, the process is registered via
/// [`Simulator::spawn_at`] instead: memory is placed and daemons attach
/// now, but the process stays pending (no demand) until the engine
/// activates it at the given simulated time — the fleet layer's job
/// submission path (see `crate::fleet`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn launch_measured(
    sim: &mut Simulator,
    machine: &MachineTopology,
    spec: &WorkloadSpec,
    timeline: Option<&[(f64, AppProfile)]>,
    workers: NodeSet,
    policy: &PlacementPolicy,
    cosched_a: Option<ProcessId>,
    arrive_at: Option<f64>,
) -> Result<(ProcessId, Option<TunerHandle>), RuntimeError> {
    let bwap_launch = |cfg: &bwap::BwapConfig| -> Result<numasim::MemPolicy, RuntimeError> {
        let canonical = if cfg.uniform_canonical {
            bwap::WeightDistribution::uniform(machine.node_count())
        } else {
            crate::profiling::ProfileBook::canonical_weights(machine, workers)
        };
        let initial = bwap::apply_dwp(&canonical, workers, cfg.fixed_dwp)?;
        let placed = match cfg.mode {
            bwap::InterleaveMode::Kernel => initial,
            bwap::InterleaveMode::UserLevel => bwap::realized_weights(spec.shared_pages, &initial)?,
        };
        Ok(numasim::MemPolicy::WeightedInterleave(placed.to_vec()))
    };
    let launch_policy = match policy {
        PlacementPolicy::Bwap(cfg) => bwap_launch(cfg)?,
        PlacementPolicy::AdaptiveBwap(acfg) => bwap_launch(&acfg.bwap)?,
        _ => policy.launch_policy(workers, machine.memory_nodes()),
    };
    let profile = match timeline {
        Some(t) => t.first().expect("validated timeline is non-empty").1.clone(),
        None => spec.profile_for(machine),
    };
    let pid = match arrive_at {
        Some(at) => sim.spawn_at(at, profile, workers, None, launch_policy)?,
        None => sim.spawn(profile, workers, None, launch_policy)?,
    };
    if let Some(t) = timeline {
        sim.set_phase_timeline(pid, t.to_vec())?;
    }
    policy.attach_autonuma(sim, pid);
    let handle = match policy {
        PlacementPolicy::Bwap(cfg) => match cosched_a {
            Some(a) => {
                let (daemon, handle) = CoschedDaemon::init(sim, pid, a, cfg, false)?;
                if cfg.online_tuning {
                    daemon.register(sim);
                }
                Some(handle)
            }
            None => {
                let (daemon, handle) = BwapDaemon::init(sim, pid, cfg, false)?;
                if cfg.online_tuning {
                    daemon.register(sim);
                }
                Some(handle)
            }
        },
        PlacementPolicy::AdaptiveBwap(acfg) => {
            if cosched_a.is_some() {
                return Err(RuntimeError::Scenario(
                    "adaptive BWAP supports the stand-alone scenario only (the co-scheduled \
                     tuner has no phase watchdog yet)"
                        .into(),
                ));
            }
            let (daemon, handle) = AdaptiveBwapDaemon::init(sim, pid, acfg, false)?;
            daemon.register(sim);
            Some(handle)
        }
        _ => None,
    };
    Ok((pid, handle))
}

/// Run `spec` alone on `workers` of `machine` under `policy`.
pub fn run_standalone(
    machine: &MachineTopology,
    spec: &WorkloadSpec,
    workers: NodeSet,
    policy: &PlacementPolicy,
) -> Result<RunResult, RuntimeError> {
    run_standalone_with(machine, spec, workers, policy, SimConfig::default())
}

/// [`run_standalone_with`] that additionally captures a structured run
/// trace: a default-capacity [`TraceSink`] is installed on the simulator
/// before launch and returned alongside the result. Serialize it with
/// [`TraceSink::to_chrome_json`] for Perfetto / `chrome://tracing` (see
/// `docs/TRACING.md`).
pub fn run_standalone_traced(
    machine: &MachineTopology,
    spec: &WorkloadSpec,
    workers: NodeSet,
    policy: &PlacementPolicy,
    sim_cfg: SimConfig,
) -> Result<(RunResult, TraceSink), RuntimeError> {
    let mut slot = None;
    let result =
        standalone_impl(machine, spec, None, spec.name, workers, policy, sim_cfg, Some(&mut slot))?;
    Ok((result, slot.expect("traced run returns its sink")))
}

/// [`run_standalone`] with an explicit engine configuration (used by the
/// model ablations).
pub fn run_standalone_with(
    machine: &MachineTopology,
    spec: &WorkloadSpec,
    workers: NodeSet,
    policy: &PlacementPolicy,
    sim_cfg: SimConfig,
) -> Result<RunResult, RuntimeError> {
    standalone_impl(machine, spec, None, spec.name, workers, policy, sim_cfg, None)
}

/// Run a phase-structured workload alone on `workers` under `policy`.
/// `phase_period` overrides every phase's duration (the campaign engine's
/// `phase_period` axis); `None` keeps the workload's native durations.
pub fn run_standalone_phased(
    machine: &MachineTopology,
    phased: &PhasedWorkload,
    workers: NodeSet,
    policy: &PlacementPolicy,
    sim_cfg: SimConfig,
    phase_period: Option<f64>,
) -> Result<RunResult, RuntimeError> {
    let timeline = phased.profiles_for(machine, phase_period);
    standalone_impl(
        machine,
        phased.layout_spec(),
        Some(timeline),
        &phased.name,
        workers,
        policy,
        sim_cfg,
        None,
    )
}

/// Stand-alone scenario core. When `trace` is `Some`, a default-capacity
/// [`TraceSink`] observes the whole run (installed before launch so spawn
/// metadata lands in the trace) and is stored into the slot afterwards.
#[allow(clippy::too_many_arguments)]
pub(crate) fn standalone_impl(
    machine: &MachineTopology,
    spec: &WorkloadSpec,
    timeline: Option<Vec<(f64, AppProfile)>>,
    workload_name: &str,
    workers: NodeSet,
    policy: &PlacementPolicy,
    sim_cfg: SimConfig,
    trace: Option<&mut Option<TraceSink>>,
) -> Result<RunResult, RuntimeError> {
    let mut sim = Simulator::new(machine.clone(), sim_cfg);
    if trace.is_some() {
        sim.set_trace_sink(TraceSink::default());
    }
    let (pid, handle) =
        launch_measured(&mut sim, machine, spec, timeline.as_deref(), workers, policy, None, None)?;
    let start = sim.sample(pid)?;
    let exec_time_s = sim.run_until_finished(pid, MAX_SIM_S)?;
    if let Some(slot) = trace {
        *slot = sim.take_trace_sink();
    }
    let (read_bytes, traffic_bytes) = traffic_counters(&sim, machine.node_count(), pid);
    let (retunes, retune_times_s) = retune_extras(policy, &handle);
    Ok(RunResult {
        policy: policy.label(),
        workload: workload_name.to_string(),
        workers: workers.len(),
        exec_time_s,
        chosen_dwp: handle.as_ref().map(|h| h.dwp()),
        migrated_pages: sim.migrated_pages(pid),
        stall_frac: stall_frac_between(&sim, pid, &start),
        a_stall_frac: None,
        read_bytes,
        traffic_bytes,
        retunes,
        retune_times_s,
        phase_switches: timeline.is_some().then(|| sim.phase_switches(pid)),
        jobs: None,
        job_slowdowns: None,
        slowdown_p50: None,
        slowdown_p95: None,
        slowdown_p99: None,
    })
}

/// Run the co-scheduled scenario: Swaptions (A) on the complement of
/// `workers`, `spec` (B) on `workers` under `policy`.
pub fn run_coscheduled(
    machine: &MachineTopology,
    spec: &WorkloadSpec,
    workers: NodeSet,
    policy: &PlacementPolicy,
) -> Result<RunResult, RuntimeError> {
    run_coscheduled_with(machine, spec, workers, policy, SimConfig::default())
}

/// [`run_coscheduled`] with an explicit engine configuration (used by the
/// model ablations).
pub fn run_coscheduled_with(
    machine: &MachineTopology,
    spec: &WorkloadSpec,
    workers: NodeSet,
    policy: &PlacementPolicy,
    sim_cfg: SimConfig,
) -> Result<RunResult, RuntimeError> {
    coscheduled_impl(machine, spec, None, spec.name, workers, policy, sim_cfg, None)
}

/// Co-scheduled scenario with a phase-structured B. See
/// [`run_standalone_phased`] for `phase_period`.
pub fn run_coscheduled_phased(
    machine: &MachineTopology,
    phased: &PhasedWorkload,
    workers: NodeSet,
    policy: &PlacementPolicy,
    sim_cfg: SimConfig,
    phase_period: Option<f64>,
) -> Result<RunResult, RuntimeError> {
    let timeline = phased.profiles_for(machine, phase_period);
    coscheduled_impl(
        machine,
        phased.layout_spec(),
        Some(timeline),
        &phased.name,
        workers,
        policy,
        sim_cfg,
        None,
    )
}

/// Co-scheduled scenario core; `trace` works as in [`standalone_impl`]
/// (the sink observes both A and B — each process gets its own track).
#[allow(clippy::too_many_arguments)]
pub(crate) fn coscheduled_impl(
    machine: &MachineTopology,
    spec: &WorkloadSpec,
    timeline: Option<Vec<(f64, AppProfile)>>,
    workload_name: &str,
    workers: NodeSet,
    policy: &PlacementPolicy,
    sim_cfg: SimConfig,
    trace: Option<&mut Option<TraceSink>>,
) -> Result<RunResult, RuntimeError> {
    let n = machine.node_count();
    // A runs on the worker-capable nodes B leaves free: CPU-less expander
    // nodes can never host A's threads (they stay pure memory donors).
    let workers_a = machine.worker_nodes().difference(workers);
    if workers_a.is_empty() {
        return Err(RuntimeError::Scenario(
            "co-scheduled scenario needs at least one free worker-capable node for A".into(),
        ));
    }
    let mut sim = Simulator::new(machine.clone(), sim_cfg);
    if trace.is_some() {
        sim.set_trace_sink(TraceSink::default());
    }
    let a = sim.spawn(
        bwap_workloads::swaptions().profile_for(machine),
        workers_a,
        None,
        numasim::MemPolicy::FirstTouch,
    )?;
    let (b, handle) = launch_measured(
        &mut sim,
        machine,
        spec,
        timeline.as_deref(),
        workers,
        policy,
        Some(a),
        None,
    )?;
    let start_a = sim.sample(a)?;
    let start_b = sim.sample(b)?;
    let exec_time_s = sim.run_until_finished(b, MAX_SIM_S)?;
    if let Some(slot) = trace {
        *slot = sim.take_trace_sink();
    }
    let (read_bytes, traffic_bytes) = traffic_counters(&sim, n, b);
    let (retunes, retune_times_s) = retune_extras(policy, &handle);
    Ok(RunResult {
        policy: policy.label(),
        workload: workload_name.to_string(),
        workers: workers.len(),
        exec_time_s,
        chosen_dwp: handle.as_ref().map(|h| h.dwp()),
        migrated_pages: sim.migrated_pages(b),
        stall_frac: stall_frac_between(&sim, b, &start_b),
        a_stall_frac: Some(stall_frac_between(&sim, a, &start_a)),
        read_bytes,
        traffic_bytes,
        retunes,
        retune_times_s,
        phase_switches: timeline.is_some().then(|| sim.phase_switches(b)),
        jobs: None,
        job_slowdowns: None,
        slowdown_p50: None,
        slowdown_p95: None,
        slowdown_p99: None,
    })
}

/// Sweep worker counts in the stand-alone scenario (the search behind
/// Fig. 3c/d's "optimal number of workers"). Returns one result per
/// candidate count, using the machine's rule-of-thumb worker set for each.
pub fn sweep_worker_counts(
    machine: &MachineTopology,
    spec: &WorkloadSpec,
    policy: &PlacementPolicy,
    counts: &[usize],
) -> Result<Vec<RunResult>, RuntimeError> {
    counts
        .iter()
        .map(|&k| run_standalone(machine, spec, machine.best_worker_set(k), policy))
        .collect()
}

/// The count from `counts` minimizing execution time under `policy`.
pub fn optimal_worker_count(
    machine: &MachineTopology,
    spec: &WorkloadSpec,
    policy: &PlacementPolicy,
    counts: &[usize],
) -> Result<(usize, f64), RuntimeError> {
    let results = sweep_worker_counts(machine, spec, policy, counts)?;
    let best = results
        .iter()
        .min_by(|a, b| a.exec_time_s.partial_cmp(&b.exec_time_s).expect("finite times"))
        .ok_or_else(|| RuntimeError::Scenario("empty worker-count sweep".into()))?;
    Ok((best.workers, best.exec_time_s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveConfig;
    use bwap_topology::machines;

    fn fast_sc() -> WorkloadSpec {
        bwap_workloads::streamcluster().scaled_down(8.0)
    }

    #[test]
    fn standalone_two_workers_interleave_beats_first_touch() {
        // The motivation result: first-touch centralizes shared pages and
        // loses badly for a shared-heavy workload on two workers.
        let m = machines::machine_b();
        let workers = m.best_worker_set(2);
        let ft = run_standalone(&m, &fast_sc(), workers, &PlacementPolicy::FirstTouch).unwrap();
        let uw = run_standalone(&m, &fast_sc(), workers, &PlacementPolicy::UniformWorkers).unwrap();
        assert!(
            uw.exec_time_s < ft.exec_time_s,
            "uniform-workers {} vs first-touch {}",
            uw.exec_time_s,
            ft.exec_time_s
        );
        // Plain specs report no phase/retune observables.
        assert_eq!(ft.phase_switches, None);
        assert_eq!(ft.retunes, None);
    }

    #[test]
    fn coscheduled_runs_and_reports_a_stats() {
        let m = machines::machine_b();
        let workers = m.best_worker_set(1);
        let r = run_coscheduled(&m, &fast_sc(), workers, &PlacementPolicy::UniformAll).unwrap();
        assert!(r.exec_time_s > 0.0);
        let a_stall = r.a_stall_frac.expect("cosched reports A");
        assert!((0.0..=1.0).contains(&a_stall));
        assert_eq!(r.workers, 1);
    }

    #[test]
    fn coscheduled_on_full_machine_rejected() {
        let m = machines::machine_b();
        let r = run_coscheduled(&m, &fast_sc(), m.all_nodes(), &PlacementPolicy::UniformAll);
        assert!(r.is_err());
    }

    #[test]
    fn worker_sweep_returns_all_counts() {
        let m = machines::machine_b();
        let rs = sweep_worker_counts(&m, &fast_sc(), &PlacementPolicy::UniformWorkers, &[1, 2, 4])
            .unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].workers, 1);
        assert_eq!(rs[2].workers, 4);
        let (k, t) =
            optimal_worker_count(&m, &fast_sc(), &PlacementPolicy::UniformWorkers, &[1, 2, 4])
                .unwrap();
        assert!(t > 0.0);
        assert!([1usize, 2, 4].contains(&k));
    }

    #[test]
    fn traced_run_matches_untraced_and_yields_events() {
        let m = machines::machine_b();
        let workers = m.best_worker_set(2);
        let plain =
            run_standalone(&m, &fast_sc(), workers, &PlacementPolicy::UniformWorkers).unwrap();
        let (traced, sink) = run_standalone_traced(
            &m,
            &fast_sc(),
            workers,
            &PlacementPolicy::UniformWorkers,
            SimConfig::default(),
        )
        .unwrap();
        // Observation never perturbs the run.
        assert_eq!(plain.exec_time_s, traced.exec_time_s);
        assert_eq!(plain.migrated_pages, traced.migrated_pages);
        assert!(!sink.is_empty(), "a full run leaves events in the sink");
        let json = sink.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn determinism_across_runs() {
        let m = machines::machine_b();
        let workers = m.best_worker_set(2);
        let a = run_standalone(&m, &fast_sc(), workers, &PlacementPolicy::UniformAll).unwrap();
        let b = run_standalone(&m, &fast_sc(), workers, &PlacementPolicy::UniformAll).unwrap();
        assert_eq!(a.exec_time_s, b.exec_time_s);
    }

    #[test]
    fn phased_standalone_reports_switches_and_runs_all_policies() {
        let m = machines::machine_b();
        let workers = m.best_worker_set(1);
        let flip = bwap_workloads::sc_bandwidth_flip().scaled_down(32.0);
        let r = run_standalone_phased(
            &m,
            &flip,
            workers,
            &PlacementPolicy::UniformAll,
            SimConfig::default(),
            Some(2.0),
        )
        .unwrap();
        assert_eq!(r.workload, "SC.FLIP");
        assert!(r.phase_switches.expect("phased run counts switches") >= 1);
        assert_eq!(r.retunes, None, "non-adaptive policies report no retunes");
    }

    #[test]
    fn adaptive_policy_reports_retunes_and_rejects_cosched() {
        let m = machines::machine_b();
        let workers = m.best_worker_set(1);
        let flip = bwap_workloads::sc_bandwidth_flip().scaled_down(32.0);
        let policy = PlacementPolicy::AdaptiveBwap(AdaptiveConfig::default());
        let r = run_standalone_phased(&m, &flip, workers, &policy, SimConfig::default(), Some(2.0))
            .unwrap();
        assert!(r.retunes.is_some());
        assert_eq!(r.retunes.unwrap() as usize, r.retune_times_s.as_ref().unwrap().len());
        let err =
            run_coscheduled_phased(&m, &flip, workers, &policy, SimConfig::default(), Some(2.0));
        assert!(err.unwrap_err().to_string().contains("stand-alone"), "cosched adaptive rejected");
    }

    #[test]
    fn phased_cosched_runs_under_plain_policies() {
        let m = machines::machine_b();
        let workers = m.best_worker_set(1);
        let flip = bwap_workloads::sc_bandwidth_flip().scaled_down(32.0);
        let r = run_coscheduled_phased(
            &m,
            &flip,
            workers,
            &PlacementPolicy::UniformWorkers,
            SimConfig::default(),
            Some(2.0),
        )
        .unwrap();
        assert!(r.a_stall_frac.is_some());
        assert!(r.phase_switches.is_some());
    }
}
