//! The placement policies of the paper's evaluation (§IV), behind one
//! enum: Linux first-touch, uniform-workers (the strategy of Carrefour /
//! AsymSched / Baek et al.), uniform-all, AutoNUMA, and BWAP with its
//! ablation variants — plus adaptive BWAP (the §VI future-work daemon,
//! evaluated on phase-structured workloads).

use crate::adaptive::AdaptiveConfig;
use bwap::BwapConfig;
use bwap_topology::NodeSet;
use numasim::autonuma::{AutoNuma, AutoNumaConfig};
use numasim::{MemPolicy, ProcessId, Simulator};

/// A page-placement policy under evaluation.
#[derive(Debug, Clone)]
pub enum PlacementPolicy {
    /// Linux default: pages land where first touched (shared pages
    /// centralize on the master thread's node).
    FirstTouch,
    /// Uniform interleave over the worker nodes.
    UniformWorkers,
    /// Uniform interleave over all nodes.
    UniformAll,
    /// First-touch plus the kernel's locality-driven balancing daemon.
    AutoNuma,
    /// BWAP (full, `BWAP-uniform`, static DWP, kernel/user-level — all via
    /// the config).
    Bwap(BwapConfig),
    /// BWAP with the phase-change watchdog
    /// ([`crate::adaptive::AdaptiveBwapDaemon`]): re-tunes when the stall
    /// rate departs from the converged level. Stand-alone scenario only.
    AdaptiveBwap(AdaptiveConfig),
}

impl PlacementPolicy {
    /// Label used in reports (matches the paper's plot legends).
    pub fn label(&self) -> String {
        match self {
            PlacementPolicy::FirstTouch => "first-touch".into(),
            PlacementPolicy::UniformWorkers => "uniform-workers".into(),
            PlacementPolicy::UniformAll => "uniform-all".into(),
            PlacementPolicy::AutoNuma => "autonuma".into(),
            PlacementPolicy::Bwap(cfg) => {
                if !cfg.online_tuning {
                    format!("bwap-static({:.0}%)", cfg.fixed_dwp * 100.0)
                } else if cfg.uniform_canonical {
                    "bwap-uniform".into()
                } else {
                    "bwap".into()
                }
            }
            PlacementPolicy::AdaptiveBwap(_) => "bwap-adaptive".into(),
        }
    }

    /// The six policies of Fig. 2/3, in the paper's legend order.
    pub fn evaluation_set() -> Vec<PlacementPolicy> {
        vec![
            PlacementPolicy::FirstTouch,
            PlacementPolicy::UniformWorkers,
            PlacementPolicy::UniformAll,
            PlacementPolicy::AutoNuma,
            PlacementPolicy::Bwap(BwapConfig::bwap_uniform()),
            PlacementPolicy::Bwap(BwapConfig::default()),
        ]
    }

    /// The `numactl`-style memory policy the process is launched under.
    pub fn launch_policy(&self, workers: NodeSet, all: NodeSet) -> MemPolicy {
        match self {
            PlacementPolicy::FirstTouch
            | PlacementPolicy::AutoNuma
            | PlacementPolicy::Bwap(_)
            | PlacementPolicy::AdaptiveBwap(_) => MemPolicy::FirstTouch,
            PlacementPolicy::UniformWorkers => MemPolicy::Interleave(workers),
            PlacementPolicy::UniformAll => MemPolicy::Interleave(all),
        }
    }

    /// Whether this policy needs the AutoNUMA daemon attached.
    pub fn wants_autonuma(&self) -> bool {
        matches!(self, PlacementPolicy::AutoNuma)
    }

    /// Attach the AutoNUMA daemon for `pid` if the policy requires it.
    pub fn attach_autonuma(&self, sim: &mut Simulator, pid: ProcessId) {
        if self.wants_autonuma() {
            let cfg = AutoNumaConfig::default();
            let period = cfg.scan_period;
            let daemon = AutoNuma::for_processes(cfg, vec![pid]);
            sim.add_daemon(Box::new(daemon), period, period);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::NodeId;

    #[test]
    fn labels() {
        assert_eq!(PlacementPolicy::FirstTouch.label(), "first-touch");
        assert_eq!(PlacementPolicy::Bwap(BwapConfig::default()).label(), "bwap");
        assert_eq!(PlacementPolicy::Bwap(BwapConfig::bwap_uniform()).label(), "bwap-uniform");
        assert_eq!(PlacementPolicy::Bwap(BwapConfig::static_dwp(0.4)).label(), "bwap-static(40%)");
        assert_eq!(
            PlacementPolicy::AdaptiveBwap(AdaptiveConfig::default()).label(),
            "bwap-adaptive"
        );
    }

    #[test]
    fn evaluation_set_matches_paper_legends() {
        let labels: Vec<String> =
            PlacementPolicy::evaluation_set().iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            vec![
                "first-touch",
                "uniform-workers",
                "uniform-all",
                "autonuma",
                "bwap-uniform",
                "bwap"
            ]
        );
    }

    #[test]
    fn launch_policies() {
        let workers = NodeSet::from_nodes([NodeId(0)]);
        let all = NodeSet::first(4);
        assert_eq!(
            PlacementPolicy::UniformWorkers.launch_policy(workers, all),
            MemPolicy::Interleave(workers)
        );
        assert_eq!(
            PlacementPolicy::UniformAll.launch_policy(workers, all),
            MemPolicy::Interleave(all)
        );
        assert_eq!(
            PlacementPolicy::Bwap(BwapConfig::default()).launch_policy(workers, all),
            MemPolicy::FirstTouch
        );
    }
}
