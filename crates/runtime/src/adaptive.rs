//! Dynamic re-tuning for phase-changing applications — the first item on
//! the paper's future-work list (§VI: "extend BWAP to dynamically adjust
//! its weight distribution throughout the application's execution time,
//! in order to obtain improved performance for applications whose access
//! patterns change over time").
//!
//! The adaptive daemon wraps the ordinary DWP search with a watchdog:
//! after the search converges it keeps sampling; when the trimmed stall
//! rate departs from the converged level by more than a configurable
//! relative band, it declares a phase change, re-installs the canonical
//! placement (our simulated `mbind` migrates in both directions, lifting
//! the one-way restriction the paper works around) and restarts the hill
//! climb from DWP = 0. [`AdaptiveConfig::max_retunes`] caps how many
//! restarts an oscillating workload can trigger; each re-tune's count and
//! timestamp is published through the shared [`crate::TunerHandle`] and
//! surfaced in campaign reports.
//!
//! The natural counterpart is a phase-structured workload
//! ([`bwap_workloads::PhasedWorkload`]): spawn it, install its timeline,
//! register the adaptive daemon, and watch the watchdog react —
//!
//! ```
//! use bwap_runtime::adaptive::{AdaptiveBwapDaemon, AdaptiveConfig};
//! use bwap_topology::machines;
//! use numasim::{MemPolicy, SimConfig, Simulator};
//!
//! let machine = machines::machine_b();
//! let mut sim = Simulator::new(machine.clone(), SimConfig::default());
//! let workers = machine.best_worker_set(1);
//!
//! // A phase-flipping workload, shrunk for a fast doc test.
//! let flip = bwap_workloads::sc_bandwidth_flip().scaled_down(64.0);
//! let timeline = flip.profiles_for(&machine, Some(2.0));
//! let pid = sim
//!     .spawn(timeline[0].1.clone(), workers, None, MemPolicy::FirstTouch)
//!     .unwrap();
//! sim.set_phase_timeline(pid, timeline)?;
//!
//! let cfg = AdaptiveConfig::default();
//! let (daemon, handle) = AdaptiveBwapDaemon::init(&mut sim, pid, &cfg, true)?;
//! daemon.register(&mut sim);
//! sim.run_for(3.0);
//! // The handle exposes the watchdog's activity (re-tune count and
//! // simulated timestamps) while and after the daemon runs.
//! assert_eq!(handle.retunes() as usize, handle.retune_times().len());
//! assert!(handle.retunes() as usize <= cfg.max_retunes);
//! # Ok::<(), bwap_runtime::RuntimeError>(())
//! ```

use crate::apply::apply_weights;
use crate::bwap_daemon::TunerHandle;
use crate::error::RuntimeError;
use crate::profiling::ProfileBook;
use bwap::dwp::{DwpTuner, TunerAction};
use bwap::sampler::TrimmedSampler;
use bwap::{apply_dwp, BwapConfig, WeightDistribution};
use numasim::{Daemon, ProcessId, ProcessSample, Simulator};

/// Configuration of the watchdog around the DWP search.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// The inner BWAP configuration (tuner parameters, interleave mode).
    pub bwap: BwapConfig,
    /// Relative stall-rate deviation from the watchdog's reference level
    /// that triggers a re-tune (e.g. 0.25 = 25 %).
    pub retune_threshold: f64,
    /// Maximum number of automatic re-tunes (guards against oscillating
    /// workloads thrashing the migration engine).
    pub max_retunes: usize,
    /// Full sampler windows discarded after the search converges before
    /// the watchdog arms itself. The climb's final placement change is
    /// still migrating when the search finishes; stall samples taken
    /// while the migration drains would poison the reference level the
    /// watchdog compares against (and a poisoned reference means a
    /// spurious re-tune that throws away a freshly converged placement).
    /// After the settle windows, the next full window *becomes* the
    /// reference.
    pub settle_windows: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            bwap: BwapConfig::default(),
            retune_threshold: 0.15,
            max_retunes: 4,
            settle_windows: 2,
        }
    }
}

enum Mode {
    Tuning(DwpTuner),
    Watching {
        /// Steady-state stall level measured after the settle windows;
        /// `None` until the first clean window lands.
        reference: Option<f64>,
        /// Full windows still to discard before taking the reference.
        settle: usize,
        watcher: TrimmedSampler,
    },
    Idle,
}

/// The adaptive stand-alone BWAP daemon.
pub struct AdaptiveBwapDaemon {
    pid: ProcessId,
    cfg: AdaptiveConfig,
    canonical: WeightDistribution,
    mode: Mode,
    prev: Option<ProcessSample>,
    retunes: usize,
    handle: TunerHandle,
}

impl AdaptiveBwapDaemon {
    /// `BWAP-init` with phase adaptation. See
    /// [`crate::BwapDaemon::init`] for `apply_initial`.
    pub fn init(
        sim: &mut Simulator,
        pid: ProcessId,
        cfg: &AdaptiveConfig,
        apply_initial: bool,
    ) -> Result<(AdaptiveBwapDaemon, TunerHandle), RuntimeError> {
        // The inner tuner validates its own parameters below; the
        // watchdog band must be validated here — a NaN or non-positive
        // threshold would make every comparison fail open and re-tune on
        // every window until the cap kills the daemon.
        if !(cfg.retune_threshold > 0.0 && cfg.retune_threshold.is_finite()) {
            return Err(RuntimeError::Scenario(format!(
                "retune_threshold {} must be positive and finite",
                cfg.retune_threshold
            )));
        }
        let workers = sim.process(pid)?.workers;
        let n = sim.machine().node_count();
        let canonical = if cfg.bwap.uniform_canonical {
            WeightDistribution::uniform(n)
        } else {
            ProfileBook::canonical_weights(sim.machine(), workers)
        };
        let initial = apply_dwp(&canonical, workers, 0.0)?;
        let queued =
            if apply_initial { apply_weights(sim, pid, &initial, cfg.bwap.mode)? } else { 0 };
        let handle = TunerHandle::default();
        handle.update(|r| r.pages_applied = queued as u64);
        let tuner = DwpTuner::new(canonical.clone(), workers, cfg.bwap.tuner.clone())?;
        Ok((
            AdaptiveBwapDaemon {
                pid,
                cfg: cfg.clone(),
                canonical,
                mode: Mode::Tuning(tuner),
                prev: None,
                retunes: 0,
                handle: handle.clone(),
            },
            handle,
        ))
    }

    /// Register at the tuner's sampling cadence.
    pub fn register(self, sim: &mut Simulator) {
        let interval = self.cfg.bwap.tuner.sample_interval_s;
        sim.add_daemon(Box::new(self), interval, interval);
    }

    /// How many phase changes have been handled so far.
    pub fn retunes(&self) -> usize {
        self.retunes
    }

    fn watcher(&self) -> TrimmedSampler {
        TrimmedSampler::new(self.cfg.bwap.tuner.samples_per_iteration, self.cfg.bwap.tuner.trim)
            .expect("validated at construction")
    }
}

impl Daemon for AdaptiveBwapDaemon {
    fn name(&self) -> &str {
        "bwap-adaptive-tuner"
    }

    fn tick(&mut self, sim: &mut Simulator) {
        let running = sim.process(self.pid).map(|p| p.is_running()).unwrap_or(false);
        if !running {
            self.mode = Mode::Idle;
            return;
        }
        let sample = sim.sample(self.pid).expect("process exists");
        let Some(prev) = self.prev.replace(sample) else {
            return;
        };
        // Placement-in-flight is not a steady state to learn from: while
        // this daemon's own migrations drain, stall samples mix placement
        // signal with migration traffic — feeding them to the climb
        // credits the drain to whatever DWP step happened to be under
        // test, and feeding them to the watchdog poisons its reference.
        // (The one-shot [`crate::BwapDaemon`] deliberately keeps the
        // paper's sample-everything behaviour — its results are pinned by
        // golden reports — so the two daemons share search *parameters*
        // but not this sampling guard; `fig_phases` compares them as the
        // complete systems they are.)
        if sim.pending_migrations(self.pid) > 0 {
            return;
        }
        let stall_rate = sample.stall_rate_since(&prev);
        match &mut self.mode {
            Mode::Tuning(tuner) => match tuner.on_sample(stall_rate) {
                TunerAction::Continue => {}
                TunerAction::Apply { dwp, weights } => {
                    let queued = apply_weights(sim, self.pid, &weights, self.cfg.bwap.mode)
                        .expect("placement apply");
                    self.handle.update(|r| {
                        r.dwp = dwp;
                        r.pages_applied += queued as u64;
                        r.history = tuner.history().to_vec();
                    });
                }
                TunerAction::Finished => {
                    self.handle.update(|r| {
                        r.finished = true;
                        r.dwp = tuner.dwp();
                        r.history = tuner.history().to_vec();
                    });
                    self.mode = Mode::Watching {
                        reference: None,
                        settle: self.cfg.settle_windows,
                        watcher: self.watcher(),
                    };
                }
            },
            Mode::Watching { reference, settle, watcher } => {
                let Some(mean) = watcher.push(stall_rate) else { return };
                if *settle > 0 {
                    *settle -= 1;
                    return;
                }
                let Some(ref_level) = *reference else {
                    *reference = Some(mean);
                    return;
                };
                let deviation = (mean - ref_level).abs() / ref_level.max(1e-9);
                if deviation <= self.cfg.retune_threshold {
                    return;
                }
                if self.retunes >= self.cfg.max_retunes {
                    self.mode = Mode::Idle;
                    return;
                }
                // Phase change: back to the canonical spread, fresh climb.
                self.retunes += 1;
                let workers = sim.process(self.pid).expect("exists").workers;
                let initial = apply_dwp(&self.canonical, workers, 0.0).expect("valid canonical");
                let queued = apply_weights(sim, self.pid, &initial, self.cfg.bwap.mode)
                    .expect("placement apply");
                let now = sim.clock();
                sim.trace_instant(
                    "retune",
                    Some(self.pid),
                    &[("deviation", deviation), ("queued_pages", queued as f64)],
                );
                self.handle.update(|r| {
                    r.finished = false;
                    r.dwp = 0.0;
                    r.pages_applied += queued as u64;
                    r.retunes += 1;
                    r.retune_times.push(now);
                });
                let tuner =
                    DwpTuner::new(self.canonical.clone(), workers, self.cfg.bwap.tuner.clone())
                        .expect("validated at construction");
                self.mode = Mode::Tuning(tuner);
            }
            Mode::Idle => {}
        }
    }

    fn done(&self) -> bool {
        matches!(self.mode, Mode::Idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::{machines, NodeSet};
    use numasim::{MemPolicy, SimConfig};

    #[test]
    fn adaptive_daemon_retunes_on_phase_change() {
        let m = machines::machine_b();
        let mut sim = Simulator::new(m.clone(), SimConfig::default());
        let workers = m.best_worker_set(1);
        // Phase 1: latency-bound (wants high DWP on machine B).
        let mut spec = bwap_workloads::streamcluster();
        spec.total_traffic_gb = f64::INFINITY;
        let pid = sim.spawn(spec.profile_for(&m), workers, None, MemPolicy::FirstTouch).unwrap();
        let cfg = AdaptiveConfig::default();
        let (daemon, handle) = AdaptiveBwapDaemon::init(&mut sim, pid, &cfg, true).unwrap();
        daemon.register(&mut sim);
        sim.run_for(80.0);
        assert!(handle.finished(), "first search should converge");
        let dwp_phase1 = handle.dwp();
        assert!(dwp_phase1 > 0.5, "SC on machine B climbs high: {dwp_phase1}");

        // Phase 2: bandwidth-hungry streaming (saturates the worker's
        // controller; wants pages spread out, i.e. low DWP).
        let mut hungry = bwap_workloads::stream_probe().profile_for(&m);
        hungry.open_loop = false;
        hungry.read_gbps_per_thread = 12.0; // 84 GB/s per node: heavy saturation
        hungry.shared_pages = spec.shared_pages; // layout unchanged
        sim.set_profile(pid, hungry).unwrap();
        sim.run_for(120.0);
        // The watchdog saw the stall shift and restarted at least once.
        let d = sim.shared_distribution(pid).unwrap();
        assert!(
            d[workers.min().unwrap().idx()] < 0.9,
            "after the bandwidth phase, pages spread out again: {d:?}"
        );
    }

    #[test]
    fn max_retunes_caps_oscillating_workloads() {
        // A workload that flips between a latency-bound and a saturating
        // phase every few seconds would thrash the migration engine
        // forever; the watchdog must stop after `max_retunes` restarts.
        let m = machines::machine_b();
        let mut sim = Simulator::new(m.clone(), SimConfig::default());
        let workers = m.best_worker_set(1);
        let mut flip = bwap_workloads::sc_bandwidth_flip().scaled_down(8.0);
        flip.total_traffic_gb = f64::INFINITY;
        let timeline = flip.profiles_for(&m, Some(4.0));
        let pid = sim.spawn(timeline[0].1.clone(), workers, None, MemPolicy::FirstTouch).unwrap();
        sim.set_phase_timeline(pid, timeline).unwrap();
        let mut cfg = AdaptiveConfig { max_retunes: 2, ..AdaptiveConfig::default() };
        cfg.bwap.tuner.sample_interval_s = 0.05;
        cfg.bwap.tuner.samples_per_iteration = 4;
        cfg.bwap.tuner.trim = 1;
        cfg.bwap.tuner.step = 0.25;
        let (daemon, handle) = AdaptiveBwapDaemon::init(&mut sim, pid, &cfg, true).unwrap();
        daemon.register(&mut sim);
        sim.run_for(60.0);
        // Many more than 2 phase flips happened...
        assert!(sim.phase_switches(pid) > 6, "{} switches", sim.phase_switches(pid));
        // ...but the guard stopped the watchdog at exactly the cap.
        assert_eq!(handle.retunes(), 2);
        let times = handle.retune_times();
        assert_eq!(times.len(), 2);
        assert!(times[0] < times[1]);
    }

    #[test]
    fn set_profile_rejects_finished_and_invalid() {
        let m = machines::machine_b();
        let mut sim = Simulator::new(m.clone(), SimConfig::default());
        let mut spec = bwap_workloads::streamcluster().scaled_down(64.0);
        spec.total_traffic_gb = 0.5;
        let pid = sim
            .spawn(
                spec.profile_for(&m),
                NodeSet::single(bwap_topology::NodeId(0)),
                None,
                MemPolicy::FirstTouch,
            )
            .unwrap();
        let mut bad = spec.profile_for(&m);
        bad.serial_frac = 2.0;
        assert!(sim.set_profile(pid, bad).is_err());
        sim.run_until_finished(pid, 600.0).unwrap();
        assert!(sim.set_profile(pid, spec.profile_for(&m)).is_err());
    }
}
