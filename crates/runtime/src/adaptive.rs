//! Dynamic re-tuning for phase-changing applications — the first item on
//! the paper's future-work list (§VI: "extend BWAP to dynamically adjust
//! its weight distribution throughout the application's execution time,
//! in order to obtain improved performance for applications whose access
//! patterns change over time").
//!
//! The adaptive daemon wraps the ordinary DWP search with a watchdog:
//! after the search converges it keeps sampling; when the trimmed stall
//! rate departs from the converged level by more than a configurable
//! relative band, it declares a phase change, re-installs the canonical
//! placement (our simulated `mbind` migrates in both directions, lifting
//! the one-way restriction the paper works around) and restarts the hill
//! climb from DWP = 0.

use crate::apply::apply_weights;
use crate::bwap_daemon::TunerHandle;
use crate::error::RuntimeError;
use crate::profiling::ProfileBook;
use bwap::dwp::{DwpTuner, TunerAction};
use bwap::sampler::TrimmedSampler;
use bwap::{apply_dwp, BwapConfig, WeightDistribution};
use numasim::{Daemon, ProcessId, ProcessSample, Simulator};

/// Configuration of the watchdog around the DWP search.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// The inner BWAP configuration (tuner parameters, interleave mode).
    pub bwap: BwapConfig,
    /// Relative stall-rate deviation from the converged level that
    /// triggers a re-tune (e.g. 0.25 = 25 %).
    pub retune_threshold: f64,
    /// Maximum number of automatic re-tunes (guards against oscillating
    /// workloads thrashing the migration engine).
    pub max_retunes: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig { bwap: BwapConfig::default(), retune_threshold: 0.15, max_retunes: 4 }
    }
}

enum Mode {
    Tuning(DwpTuner),
    Watching { converged_stall: f64, watcher: TrimmedSampler },
    Idle,
}

/// The adaptive stand-alone BWAP daemon.
pub struct AdaptiveBwapDaemon {
    pid: ProcessId,
    cfg: AdaptiveConfig,
    canonical: WeightDistribution,
    mode: Mode,
    prev: Option<ProcessSample>,
    retunes: usize,
    handle: TunerHandle,
}

impl AdaptiveBwapDaemon {
    /// `BWAP-init` with phase adaptation. See
    /// [`crate::BwapDaemon::init`] for `apply_initial`.
    pub fn init(
        sim: &mut Simulator,
        pid: ProcessId,
        cfg: &AdaptiveConfig,
        apply_initial: bool,
    ) -> Result<(AdaptiveBwapDaemon, TunerHandle), RuntimeError> {
        let workers = sim.process(pid)?.workers;
        let n = sim.machine().node_count();
        let canonical = if cfg.bwap.uniform_canonical {
            WeightDistribution::uniform(n)
        } else {
            ProfileBook::canonical_weights(sim.machine(), workers)
        };
        let initial = apply_dwp(&canonical, workers, 0.0)?;
        let queued =
            if apply_initial { apply_weights(sim, pid, &initial, cfg.bwap.mode)? } else { 0 };
        let handle = TunerHandle::default();
        handle.update(|r| r.pages_applied = queued as u64);
        let tuner = DwpTuner::new(canonical.clone(), workers, cfg.bwap.tuner.clone())?;
        Ok((
            AdaptiveBwapDaemon {
                pid,
                cfg: cfg.clone(),
                canonical,
                mode: Mode::Tuning(tuner),
                prev: None,
                retunes: 0,
                handle: handle.clone(),
            },
            handle,
        ))
    }

    /// Register at the tuner's sampling cadence.
    pub fn register(self, sim: &mut Simulator) {
        let interval = self.cfg.bwap.tuner.sample_interval_s;
        sim.add_daemon(Box::new(self), interval, interval);
    }

    /// How many phase changes have been handled so far.
    pub fn retunes(&self) -> usize {
        self.retunes
    }

    fn watcher(&self) -> TrimmedSampler {
        TrimmedSampler::new(self.cfg.bwap.tuner.samples_per_iteration, self.cfg.bwap.tuner.trim)
            .expect("validated at construction")
    }
}

impl Daemon for AdaptiveBwapDaemon {
    fn name(&self) -> &str {
        "bwap-adaptive-tuner"
    }

    fn tick(&mut self, sim: &mut Simulator) {
        let running = sim.process(self.pid).map(|p| p.is_running()).unwrap_or(false);
        if !running {
            self.mode = Mode::Idle;
            return;
        }
        let sample = sim.sample(self.pid).expect("process exists");
        let Some(prev) = self.prev.replace(sample) else {
            return;
        };
        let stall_rate = sample.stall_rate_since(&prev);
        match &mut self.mode {
            Mode::Tuning(tuner) => match tuner.on_sample(stall_rate) {
                TunerAction::Continue => {}
                TunerAction::Apply { dwp, weights } => {
                    let queued = apply_weights(sim, self.pid, &weights, self.cfg.bwap.mode)
                        .expect("placement apply");
                    self.handle.update(|r| {
                        r.dwp = dwp;
                        r.pages_applied += queued as u64;
                        r.history = tuner.history().to_vec();
                    });
                }
                TunerAction::Finished => {
                    let converged_stall =
                        tuner.history().last().map(|&(_, s)| s).unwrap_or(stall_rate);
                    self.handle.update(|r| {
                        r.finished = true;
                        r.dwp = tuner.dwp();
                        r.history = tuner.history().to_vec();
                    });
                    self.mode = Mode::Watching { converged_stall, watcher: self.watcher() };
                }
            },
            Mode::Watching { converged_stall, watcher } => {
                let Some(mean) = watcher.push(stall_rate) else { return };
                let deviation = (mean - *converged_stall).abs() / converged_stall.max(1e-9);
                if deviation <= self.cfg.retune_threshold {
                    return;
                }
                if self.retunes >= self.cfg.max_retunes {
                    self.mode = Mode::Idle;
                    return;
                }
                // Phase change: back to the canonical spread, fresh climb.
                self.retunes += 1;
                let workers = sim.process(self.pid).expect("exists").workers;
                let initial = apply_dwp(&self.canonical, workers, 0.0).expect("valid canonical");
                let queued = apply_weights(sim, self.pid, &initial, self.cfg.bwap.mode)
                    .expect("placement apply");
                self.handle.update(|r| {
                    r.finished = false;
                    r.dwp = 0.0;
                    r.pages_applied += queued as u64;
                });
                let tuner =
                    DwpTuner::new(self.canonical.clone(), workers, self.cfg.bwap.tuner.clone())
                        .expect("validated at construction");
                self.mode = Mode::Tuning(tuner);
            }
            Mode::Idle => {}
        }
    }

    fn done(&self) -> bool {
        matches!(self.mode, Mode::Idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::{machines, NodeSet};
    use numasim::{MemPolicy, SimConfig};

    #[test]
    fn adaptive_daemon_retunes_on_phase_change() {
        let m = machines::machine_b();
        let mut sim = Simulator::new(m.clone(), SimConfig::default());
        let workers = m.best_worker_set(1);
        // Phase 1: latency-bound (wants high DWP on machine B).
        let mut spec = bwap_workloads::streamcluster();
        spec.total_traffic_gb = f64::INFINITY;
        let pid = sim.spawn(spec.profile_for(&m), workers, None, MemPolicy::FirstTouch).unwrap();
        let cfg = AdaptiveConfig::default();
        let (daemon, handle) = AdaptiveBwapDaemon::init(&mut sim, pid, &cfg, true).unwrap();
        daemon.register(&mut sim);
        sim.run_for(80.0);
        assert!(handle.finished(), "first search should converge");
        let dwp_phase1 = handle.dwp();
        assert!(dwp_phase1 > 0.5, "SC on machine B climbs high: {dwp_phase1}");

        // Phase 2: bandwidth-hungry streaming (saturates the worker's
        // controller; wants pages spread out, i.e. low DWP).
        let mut hungry = bwap_workloads::stream_probe().profile_for(&m);
        hungry.open_loop = false;
        hungry.read_gbps_per_thread = 12.0; // 84 GB/s per node: heavy saturation
        hungry.shared_pages = spec.shared_pages; // layout unchanged
        sim.set_profile(pid, hungry).unwrap();
        sim.run_for(120.0);
        // The watchdog saw the stall shift and restarted at least once.
        let d = sim.shared_distribution(pid).unwrap();
        assert!(
            d[workers.min().unwrap().idx()] < 0.9,
            "after the bandwidth phase, pages spread out again: {d:?}"
        );
    }

    #[test]
    fn set_profile_rejects_finished_and_invalid() {
        let m = machines::machine_b();
        let mut sim = Simulator::new(m.clone(), SimConfig::default());
        let mut spec = bwap_workloads::streamcluster().scaled_down(64.0);
        spec.total_traffic_gb = 0.5;
        let pid = sim
            .spawn(
                spec.profile_for(&m),
                NodeSet::single(bwap_topology::NodeId(0)),
                None,
                MemPolicy::FirstTouch,
            )
            .unwrap();
        let mut bad = spec.profile_for(&m);
        bad.serial_frac = 2.0;
        assert!(sim.set_profile(pid, bad).is_err());
        sim.run_until_finished(pid, 600.0).unwrap();
        assert!(sim.set_profile(pid, spec.profile_for(&m)).is_err());
    }
}
