//! BWAP runtime: wires the pure decision logic of the `bwap` crate to the
//! simulated OS of `numasim`.
//!
//! * [`profiling`] — the canonical tuner's installation-time procedure:
//!   run the reference bandwidth benchmark under uniform-all interleaving
//!   and read per-path throughput counters (paper §III-A3). Results are
//!   cached per `(machine, worker set)` in a global [`ProfileBook`].
//! * [`apply`] — enforce a weight distribution on a process, either with
//!   the kernel-level weighted-interleave policy or with the user-level
//!   Algorithm 1 plan (a few uniform-interleave `mbind` calls).
//! * [`bwap_daemon`] / [`cosched_daemon`] — the online DWP tuner as a
//!   periodic daemon: samples stall rates every `t` seconds, feeds the
//!   hill climber, applies the placements it requests through incremental
//!   migration.
//! * [`baselines`] — the placement policies the paper compares against
//!   (first-touch, uniform-workers, uniform-all, AutoNUMA) plus BWAP and
//!   its ablation variants, behind one [`baselines::PlacementPolicy`]
//!   enum.
//! * [`adaptive`] — dynamic re-tuning for phase-changing applications
//!   (the paper's first future-work item, §VI), exercised end-to-end by
//!   phase-structured workloads (`bwap_workloads::PhasedWorkload`) and the
//!   `fig_phases` campaign.
//! * [`scenario`] — the paper's two evaluation scenarios (stand-alone and
//!   co-scheduled, §IV-A) as reusable runners — for plain and
//!   phase-structured workloads — and the worker-count sweep behind
//!   Fig. 3c/d.
//! * [`fleet`] — fleet-scale serving: open-loop job arrivals over many
//!   machines, pluggable cluster schedulers and deterministic tail-latency
//!   (slowdown-vs-solo) metrics.
//! * [`sweep`] — static-DWP sweeps (Fig. 4).
//! * [`campaign`] — the declarative experiment-campaign engine: a
//!   [`CampaignSpec`] describes the whole evaluation matrix; a sharded
//!   executor fans the cells out across threads and collects a
//!   machine-readable, versioned [`CampaignReport`].

pub mod adaptive;
pub mod apply;
pub mod baselines;
pub mod bwap_daemon;
pub mod campaign;
pub mod cosched_daemon;
pub mod error;
pub mod fleet;
pub mod profiling;
pub mod scenario;
pub mod sweep;

pub use adaptive::{AdaptiveBwapDaemon, AdaptiveConfig};
pub use apply::apply_weights;
pub use baselines::PlacementPolicy;
pub use bwap_daemon::{BwapDaemon, TunerHandle};
pub use campaign::{
    cell_descriptor, effective_policy, run_campaign, run_campaign_with, run_cell_for, run_parallel,
    run_parallel_catch, run_parallel_with, CampaignConfig, CampaignReport, CampaignSpec, CellCache,
    CellRecord, DwpPoint, Fault, FaultKind, FaultPlan, FleetAxis, NodeTierRecord, ScenarioKind,
};
pub use cosched_daemon::CoschedDaemon;
pub use error::RuntimeError;
pub use fleet::{
    jobs_from_trace, poisson_jobs, run_fleet, FleetConfig, FleetJob, FleetOutcome, JobOutcome,
    MachineKind, SchedulerKind,
};
pub use numasim::EngineMode;
pub use profiling::{profile_bandwidth, ProfileBook};
pub use scenario::{
    run_coscheduled, run_coscheduled_phased, run_coscheduled_with, run_standalone,
    run_standalone_phased, run_standalone_traced, run_standalone_with, sweep_worker_counts,
    RunResult,
};
pub use sweep::{dwp_sweep, SweepPoint};
