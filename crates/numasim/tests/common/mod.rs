//! Shared reference-run machinery for the engine differential tests.
//!
//! The event-driven engine (`EngineMode::EventDriven`) is pinned to the
//! stepped engine bit-for-bit: [`assert_equivalent`] runs one scenario
//! under both modes and compares
//!
//! * the traced event stream (instants, flows, track metadata — with the
//!   per-epoch/per-stride slices excluded, since the two engines chunk
//!   time differently by design);
//! * the counter stream after consecutive-duplicate removal (the
//!   event-driven engine re-stamps unchanged counters at stride
//!   boundaries; values and change points must match exactly);
//! * the complete final state — clock, per-process progress, placement
//!   distributions, migration totals, performance counters — rendered
//!   through `f64::to_bits` so "equal" means *the same bits*, not "close".
//!
//! On divergence the panic names the scenario and prints the first
//! differing line from both runs, which is exactly the event one needs to
//! debug a stride bug.

use bwap_topology::MachineTopology;
use numasim::trace::{ArgValue, EventPhase, TraceEvent};
use numasim::{Daemon, EngineMode, ProcessId, ProcessState, SimConfig, Simulator, TraceSink};
use std::collections::VecDeque;

/// How a scenario drives the simulator after setup.
#[allow(dead_code)] // each test binary uses the variants it needs
pub enum Drive {
    /// `run_for(seconds)`.
    For(f64),
    /// `run_until_finished(pid, max_seconds)`, ignoring a timeout error.
    UntilFinished(ProcessId, f64),
}

/// A daemon that performs one scripted action per firing, in order, and
/// unregisters itself when the script is exhausted. The differential
/// tests use it to land mbinds, cancels and profile swaps at controlled
/// times — including in the middle of what the event-driven engine would
/// otherwise run as one long stride.
pub struct ScriptDaemon {
    actions: VecDeque<Action>,
}

/// One scripted daemon action.
pub type Action = Box<dyn FnMut(&mut Simulator)>;

impl ScriptDaemon {
    #[allow(dead_code)] // each test binary scripts daemons as it needs
    pub fn new(actions: Vec<Action>) -> Self {
        ScriptDaemon { actions: actions.into() }
    }
}

impl Daemon for ScriptDaemon {
    fn name(&self) -> &str {
        "script"
    }
    fn tick(&mut self, sim: &mut Simulator) {
        if let Some(mut action) = self.actions.pop_front() {
            action(sim);
        }
    }
    fn done(&self) -> bool {
        self.actions.is_empty()
    }
}

/// Everything observable about one finished run, rendered to exact
/// strings (floats via `to_bits`).
pub struct RunLog {
    /// Non-slice trace events (instants, flows, metadata) in emission
    /// order.
    pub events: Vec<String>,
    /// Counter samples with consecutive duplicates (per series) removed.
    pub counters: Vec<String>,
    /// Final simulator state, one line per fact.
    pub state: Vec<String>,
    /// `epoch` B slices in the trace — the stepped engine's work unit
    /// (the event-driven engine runs strictly fewer full epochs on any
    /// run with a quiescent interval).
    pub epoch_slices: usize,
    /// `stride` B slices in the trace (event-driven only).
    pub stride_slices: usize,
}

fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn render_arg(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(u) => format!("u{u}"),
        ArgValue::F64(f) => format!("f{}", bits(*f)),
        ArgValue::Str(s) => format!("s{s:?}"),
    }
}

fn render_event(e: &TraceEvent) -> String {
    let args: Vec<String> = e.args.iter().map(|(k, v)| format!("{k}={}", render_arg(v))).collect();
    format!(
        "{:?} {:?} ts={} track={} id={:?} [{}]",
        e.ph,
        e.name,
        e.ts_us,
        e.track,
        e.id,
        args.join(",")
    )
}

/// Run one scenario under `mode` and capture its [`RunLog`].
pub fn capture<F>(machine: &MachineTopology, base: &SimConfig, mode: EngineMode, setup: F) -> RunLog
where
    F: FnOnce(&mut Simulator) -> Drive,
{
    let cfg = SimConfig { mode, ..base.clone() };
    let mut sim = Simulator::new(machine.clone(), cfg);
    sim.set_trace_sink(TraceSink::default());
    match setup(&mut sim) {
        Drive::For(seconds) => sim.run_for(seconds),
        Drive::UntilFinished(pid, max) => {
            let _ = sim.run_until_finished(pid, max);
        }
    }
    let sink = sim.take_trace_sink().expect("sink installed");
    assert_eq!(sink.dropped(), 0, "differential scenarios must fit the ring");

    let mut events = Vec::new();
    let mut counters = Vec::new();
    let mut last_counter: Vec<(String, String)> = Vec::new();
    let mut epoch_slices = 0usize;
    let mut stride_slices = 0usize;
    for e in sink.events() {
        match e.ph {
            EventPhase::Begin | EventPhase::End => {
                if e.ph == EventPhase::Begin && e.name == "epoch" {
                    epoch_slices += 1;
                }
                if e.ph == EventPhase::Begin && e.name == "stride" {
                    stride_slices += 1;
                }
            }
            EventPhase::Counter => {
                let args: Vec<String> =
                    e.args.iter().map(|(k, v)| format!("{k}={}", render_arg(v))).collect();
                let value = args.join(",");
                let name = e.name.to_string();
                match last_counter.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, prev)) if *prev == value => continue,
                    Some((_, prev)) => *prev = value.clone(),
                    None => last_counter.push((name.clone(), value.clone())),
                }
                counters.push(format!("{name} ts={} [{value}]", e.ts_us));
            }
            _ => events.push(render_event(e)),
        }
    }

    let mut state = vec![format!("clock={}", bits(sim.clock()))];
    let n = sim.machine().node_count();
    for (i, u) in sim.controller_utilization().iter().enumerate() {
        state.push(format!("ctrl_util[{i}]={}", bits(*u)));
    }
    let mut pid_idx = 0usize;
    while let Ok(p) = sim.process(ProcessId(pid_idx)) {
        let pid = ProcessId(pid_idx);
        state.push(format!("p{pid_idx}.work_done_gb={}", bits(p.work_done_gb)));
        state.push(format!("p{pid_idx}.migration_credit={}", bits(p.migration_credit)));
        match p.state {
            ProcessState::Running => state.push(format!("p{pid_idx}.state=running")),
            ProcessState::Pending { at } => {
                state.push(format!("p{pid_idx}.state=pending@{}", bits(at)));
            }
            ProcessState::Finished { at } => {
                state.push(format!("p{pid_idx}.state=finished@{}", bits(at)));
            }
        }
        state.push(format!(
            "p{pid_idx}.migrated={} pending={} ranges={}",
            p.migrations.migrated_total,
            p.migrations.pending(),
            p.migrations.range_count()
        ));
        state.push(format!("p{pid_idx}.phase_switches={}", sim.phase_switches(pid)));
        let shared: Vec<String> =
            sim.shared_distribution(pid).unwrap().iter().map(|v| bits(*v)).collect();
        state.push(format!("p{pid_idx}.shared=[{}]", shared.join(",")));
        let full: Vec<String> =
            sim.full_distribution(pid).unwrap().iter().map(|v| bits(*v)).collect();
        state.push(format!("p{pid_idx}.full=[{}]", full.join(",")));
        let pc = sim.counters().process(pid);
        state.push(format!(
            "p{pid_idx}.cycles={} stalls={} traffic={}",
            bits(pc.cycles),
            bits(pc.stall_cycles),
            bits(pc.traffic_bytes)
        ));
        for src in 0..n {
            for dst in 0..n {
                let r = sim.counters().flow_read_bytes(pid, src, dst);
                let w = sim.counters().flow_write_bytes(pid, src, dst);
                if r != 0.0 || w != 0.0 {
                    state.push(format!("p{pid_idx}.flow[{src}->{dst}]=r{}w{}", bits(r), bits(w)));
                }
            }
        }
        pid_idx += 1;
    }
    RunLog { events, counters, state, epoch_slices, stride_slices }
}

fn compare(scenario: &str, what: &str, stepped: &[String], event: &[String]) {
    let n = stepped.len().max(event.len());
    for i in 0..n {
        let a = stepped.get(i);
        let b = event.get(i);
        if a != b {
            panic!(
                "scenario {scenario:?}: first diverging {what} at index {i}:\n  \
                 stepped: {}\n  event:   {}",
                a.map_or("<missing>".to_string(), |s| s.clone()),
                b.map_or("<missing>".to_string(), |s| s.clone()),
            );
        }
    }
}

/// Run `setup` under both engine modes and require bit-identical results.
/// Returns `(stepped, event)` logs for scenario-specific extra checks
/// (e.g. that the event run actually strode).
pub fn assert_equivalent<F>(
    scenario: &str,
    machine: &MachineTopology,
    base: &SimConfig,
    setup: F,
) -> (RunLog, RunLog)
where
    F: Fn(&mut Simulator) -> Drive,
{
    let stepped = capture(machine, base, EngineMode::Stepped, &setup);
    let event = capture(machine, base, EngineMode::EventDriven, &setup);
    compare(scenario, "event", &stepped.events, &event.events);
    compare(scenario, "counter sample", &stepped.counters, &event.counters);
    compare(scenario, "state line", &stepped.state, &event.state);
    assert_eq!(stepped.stride_slices, 0, "{scenario}: stepped engine never strides");
    assert!(
        event.epoch_slices <= stepped.epoch_slices,
        "{scenario}: event-driven runs at most as many full epochs \
         ({} vs {})",
        event.epoch_slices,
        stepped.epoch_slices
    );
    (stepped, event)
}
