//! Differential harness for dynamic process lifecycle: `spawn_at`
//! arrivals and `depart_at` departures through both time engines.
//!
//! Arrivals and departures are exactly the events the event-driven
//! engine's stride logic must not skip over: a stride that overshoots an
//! arrival would activate the process late, and one that overshoots a
//! departure would bill work the process never did. Every scenario here
//! runs under `EngineMode::Stepped` and `EngineMode::EventDriven` and
//! must agree to the bit — trace stream, counter stream and complete
//! final state (see `tests/common/mod.rs`) — plus a proptest sweep over
//! random arrival/departure traces.

mod common;

use bwap_topology::{machines, NodeId, NodeSet};
use common::{assert_equivalent, Drive};
use numasim::{AppProfile, MemPolicy, SimConfig};
use proptest::prelude::*;

fn profile(total_gb: f64) -> AppProfile {
    AppProfile {
        name: "stream".into(),
        read_gbps_per_thread: 2.0,
        write_gbps_per_thread: 0.0,
        private_frac: 0.0,
        latency_sensitivity: 0.0,
        serial_frac: 0.0,
        multinode_penalty: 0.0,
        shared_pages: 10_000,
        private_pages_per_thread: 16,
        total_traffic_gb: total_gb,
        open_loop: false,
    }
}

#[test]
fn late_arrival_lands_mid_stride_identically() {
    // The first job runs steady — exactly what the event engine strides
    // over — and the second arrives at a time that is not an epoch
    // multiple, in the middle of that stride. Both engines must activate
    // it at the same epoch boundary.
    let m = machines::machine_b();
    let (_, event) = assert_equivalent("late-arrival", &m, &SimConfig::default(), |sim| {
        sim.spawn(profile(10.0), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch).unwrap();
        sim.spawn_at(0.4321, profile(6.0), NodeSet::single(NodeId(1)), None, MemPolicy::FirstTouch)
            .unwrap();
        Drive::For(6.0)
    });
    assert!(event.stride_slices >= 1, "the steady intervals stride");
}

#[test]
fn arrival_into_an_idle_simulator_strides_to_it() {
    // Nothing runs before the arrival: the event engine may cross the
    // idle prefix in one stride but must stop exactly at the arrival.
    let m = machines::machine_b();
    let (stepped, event) = assert_equivalent("idle-arrival", &m, &SimConfig::default(), |sim| {
        sim.spawn_at(1.0, profile(5.0), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        Drive::For(4.0)
    });
    assert!(event.stride_slices >= 1, "the idle prefix strides");
    assert!(event.epoch_slices < stepped.epoch_slices, "strides replace full epochs");
}

#[test]
fn simultaneous_arrivals_activate_in_pid_order() {
    let m = machines::machine_b();
    assert_equivalent("simultaneous-arrivals", &m, &SimConfig::default(), |sim| {
        for node in [0u16, 1, 2] {
            sim.spawn_at(
                0.5,
                profile(4.0),
                NodeSet::single(NodeId(node)),
                None,
                MemPolicy::FirstTouch,
            )
            .unwrap();
        }
        Drive::For(4.0)
    });
}

#[test]
fn departure_truncates_the_run_identically() {
    // An infinite job forced out at t=0.7: both engines must retire it at
    // the same epoch and stop billing its work at the same bit pattern.
    let m = machines::machine_b();
    let (stepped, _) = assert_equivalent("departure", &m, &SimConfig::default(), |sim| {
        let pid = sim
            .spawn(profile(f64::INFINITY), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        sim.depart_at(pid, 0.7).unwrap();
        Drive::For(2.0)
    });
    assert!(
        stepped.state.iter().any(|l| l.contains("p0.state=finished@")),
        "the departed process is retired"
    );
}

#[test]
fn departure_during_a_migration_drain_drops_the_queue() {
    // The drain keeps every epoch a full epoch; the departure lands while
    // pages are still queued and must clear the queue identically.
    let m = machines::machine_b();
    let (stepped, _) = assert_equivalent("depart-mid-drain", &m, &SimConfig::default(), |sim| {
        let pid = sim
            .spawn(profile(1e4), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        let seg = sim.process(pid).unwrap().shared_seg;
        sim.mbind(pid, seg, 0, 10_000, MemPolicy::Bind(NodeId(3)), true).unwrap();
        sim.depart_at(pid, 0.3).unwrap();
        Drive::For(2.0)
    });
    assert!(
        stepped.state.iter().any(|l| l.contains("pending=0")),
        "the departure clears the migration queue"
    );
}

#[test]
fn staggered_arrivals_and_departures_interleave_identically() {
    // An open-loop-style burst: three staggered arrivals, the middle one
    // forced out while the others still run.
    let m = machines::machine_b();
    assert_equivalent("staggered-fleet", &m, &SimConfig::default(), |sim| {
        sim.spawn_at(0.3, profile(8.0), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        let mid = sim
            .spawn_at(
                0.9,
                profile(f64::INFINITY),
                NodeSet::single(NodeId(1)),
                None,
                MemPolicy::FirstTouch,
            )
            .unwrap();
        sim.spawn_at(1.5, profile(4.0), NodeSet::single(NodeId(2)), None, MemPolicy::FirstTouch)
            .unwrap();
        sim.depart_at(mid, 1.2).unwrap();
        Drive::For(8.0)
    });
}

#[test]
fn run_until_finished_waits_for_a_pending_arrival() {
    // Driving a pending process to completion crosses its own arrival.
    let m = machines::machine_b();
    assert_equivalent("run-until-pending", &m, &SimConfig::default(), |sim| {
        let pid = sim
            .spawn_at(0.8, profile(5.0), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        Drive::UntilFinished(pid, 100.0)
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random open-loop arrival traces — arrival times off the epoch
    /// grid, random sizes, random worker nodes, optional forced
    /// departures — must agree to the bit between the engines.
    #[test]
    fn prop_random_arrival_traces_agree(
        jobs in prop::collection::vec(
            (
                0.0f64..2.0,            // arrival time
                2.0f64..10.0,           // total traffic GB
                0u16..4,                // worker node on machine B
                any::<bool>(),          // forced departure?
                0.05f64..1.0,           // departure offset after arrival
            ),
            1..5
        ),
        horizon_epochs in 100u64..=900,
    ) {
        let m = machines::machine_b();
        let name = format!("prop-arrivals {jobs:?} h{horizon_epochs}");
        assert_equivalent(&name, &m, &SimConfig::default(), move |sim| {
            for &(at, gb, node, departs, offset) in &jobs {
                let pid = sim
                    .spawn_at(
                        at,
                        profile(gb),
                        NodeSet::single(NodeId(node)),
                        None,
                        MemPolicy::FirstTouch,
                    )
                    .unwrap();
                if departs {
                    sim.depart_at(pid, at + offset).unwrap();
                }
            }
            Drive::For(horizon_epochs as f64 * 0.005)
        });
    }

    /// A departure scheduled before a pending job's activation: the job
    /// must still activate (departure applies from its start) and retire
    /// at max(arrival, departure) in both engines.
    #[test]
    fn prop_departure_racing_the_arrival_agrees(
        at in 0.1f64..1.5,
        depart_delta in -0.05f64..0.5,
    ) {
        let m = machines::machine_b();
        let name = format!("prop-race at{at} d{depart_delta}");
        assert_equivalent(&name, &m, &SimConfig::default(), move |sim| {
            let pid = sim
                .spawn_at(
                    at,
                    profile(f64::INFINITY),
                    NodeSet::single(NodeId(0)),
                    None,
                    MemPolicy::FirstTouch,
                )
                .unwrap();
            let depart = (at + depart_delta).max(0.0);
            sim.depart_at(pid, depart).unwrap();
            Drive::For(3.0)
        });
    }
}

#[test]
fn lifecycle_error_paths_are_typed() {
    use numasim::{SimError, Simulator};
    let m = machines::machine_b();
    let mut sim = Simulator::new(m, SimConfig::default());
    // Arrival in the past or non-finite.
    sim.run_for(0.5);
    for bad in [0.2, f64::NAN, f64::NEG_INFINITY] {
        let err = sim
            .spawn_at(bad, profile(1.0), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidTime(_)), "{bad}: {err:?}");
    }
    // Departure of a finished process.
    let pid =
        sim.spawn(profile(0.5), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch).unwrap();
    sim.run_until_finished(pid, 100.0).unwrap();
    let err = sim.depart_at(pid, sim.clock() + 1.0).unwrap_err();
    assert!(matches!(err, SimError::ProcessFinished(_)), "{err:?}");
    // Departure in the past.
    let pid2 = sim
        .spawn(profile(f64::INFINITY), NodeSet::single(NodeId(1)), None, MemPolicy::FirstTouch)
        .unwrap();
    let err = sim.depart_at(pid2, 0.0).unwrap_err();
    assert!(matches!(err, SimError::InvalidTime(_)), "{err:?}");
}
