//! Property tests over the physical frame allocator: capacity is never
//! oversubscribed, spill follows the caller's fallback order, and frees
//! return frames — across random machines (tiered ones included) and
//! random allocation traces.

use bwap_topology::{MemClass, NodeId, NodeSet, NodeSpec, TopologyBuilder};
use numasim::mem::frames::FramePools;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A small random machine: 2-6 nodes in a ring, a random subset of them
/// CPU-less expanders, random (small) capacities.
fn random_machine(seed: u64) -> bwap_topology::MachineTopology {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=6usize);
    let mut b = TopologyBuilder::new("prop");
    for i in 0..n {
        // 1-4 MiB: tiny pools. Node 0 stays worker-capable so the machine
        // validates.
        let mem_gib = rng.gen_range(1..=4) as f64 / 256.0;
        if i > 0 && rng.gen_bool(0.3) {
            b = b.node(NodeSpec::memory_only(mem_gib, 10.0, MemClass::new("slow", 0.5, 2.0)));
        } else {
            b = b.node(NodeSpec::new(2, mem_gib, 10.0, 16.0));
        }
    }
    for i in 0..n {
        b = b.symmetric_link(NodeId(i as u16), NodeId(((i + 1) % n) as u16), 6.0);
    }
    b.auto_routes()
        .default_path_caps()
        .hop_latencies(90.0, 50.0)
        .build()
        .expect("random ring validates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Random alloc/free traces never oversubscribe any node, and the
    /// books always balance: used + free == capacity on every node.
    #[test]
    fn alloc_free_never_oversubscribes(seed in 0u64..2000) {
        let m = random_machine(seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut pools = FramePools::from_machine(&m);
        let n = m.node_count();
        let mut live: Vec<(NodeId, u64)> = Vec::new();
        for _ in 0..200 {
            let node = NodeId(rng.gen_range(0..n) as u16);
            if rng.gen_bool(0.6) {
                let want = rng.gen_range(1..=300u64);
                let free_before = pools.free(node);
                match pools.alloc(node, want) {
                    Ok(()) => {
                        prop_assert!(want <= free_before);
                        live.push((node, want));
                    }
                    Err(_) => {
                        // Failure only when the request exceeds free space,
                        // and it must be side-effect free.
                        prop_assert!(want > free_before);
                        prop_assert_eq!(pools.free(node), free_before);
                    }
                }
            } else if let Some((node, count)) = live.pop() {
                let used_before = pools.used(node);
                pools.release(node, count);
                prop_assert_eq!(pools.used(node), used_before - count);
            }
            for i in 0..n {
                let id = NodeId(i as u16);
                prop_assert!(pools.used(id) <= pools.capacity(id));
                prop_assert_eq!(pools.used(id) + pools.free(id), pools.capacity(id));
            }
        }
        // Returning every live allocation drains the pools completely.
        for (node, count) in live.drain(..) {
            pools.release(node, count);
        }
        prop_assert_eq!(pools.used_in(m.all_nodes()), 0);
    }

    /// `alloc_with_fallback` respects the spill order: the frame comes
    /// from the first node in `[preferred] ++ fallback` with free space,
    /// and only that node's accounting changes.
    #[test]
    fn fallback_spill_order_is_respected(seed in 0u64..2000) {
        let m = random_machine(seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut pools = FramePools::from_machine(&m);
        let n = m.node_count();
        // Pre-fill a random subset of nodes to force spills.
        for i in 0..n {
            let id = NodeId(i as u16);
            if rng.gen_bool(0.5) {
                pools.alloc(id, pools.capacity(id)).unwrap();
            }
        }
        for _ in 0..100 {
            let preferred = NodeId(rng.gen_range(0..n) as u16);
            // A random permutation of the other nodes as fallback order.
            let mut fallback: Vec<NodeId> =
                (0..n).map(|i| NodeId(i as u16)).filter(|&x| x != preferred).collect();
            for i in (1..fallback.len()).rev() {
                fallback.swap(i, rng.gen_range(0..=i));
            }
            let chain: Vec<NodeId> =
                std::iter::once(preferred).chain(fallback.iter().copied()).collect();
            let expected = chain.iter().copied().find(|&x| pools.free(x) > 0);
            let before: Vec<u64> = (0..n).map(|i| pools.used(NodeId(i as u16))).collect();
            match pools.alloc_with_fallback(preferred, &fallback) {
                Ok(got) => {
                    prop_assert_eq!(Some(got), expected, "spill order violated");
                    for (i, &b) in before.iter().enumerate() {
                        let id = NodeId(i as u16);
                        let delta = pools.used(id) - b;
                        prop_assert_eq!(delta, u64::from(id == got));
                    }
                }
                Err(_) => {
                    prop_assert!(expected.is_none(), "allocator gave up with space left");
                    prop_assert_eq!(pools.free_in(NodeSet::first(n)), 0);
                }
            }
        }
    }
}
