//! Equivalence suite: the extent-based [`Segment`] against a naive
//! per-page reference model (the historical `Vec<u16>` implementation,
//! re-stated here verbatim). Random machines, random pre-pressure on the
//! frame pools (to force spill), random policies and random
//! place/relocate/mbind traces must agree on every observable: `node_of`
//! for every page, `node_counts`, distributions, frame accounting, the
//! non-complying move set, and the expanded contents of the migration
//! queue.

use bwap_topology::{MemClass, NodeId, NodeSet, NodeSpec, TopologyBuilder};
use numasim::mem::frames::FramePools;
use numasim::mem::migrate::{MigrationQueue, PendingRange};
use numasim::mem::segment::{Segment, SegmentId, SegmentKind};
use numasim::MemPolicy;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// The historical per-page segment: one `u16` per page, every operation a
/// page-at-a-time loop. This is the semantics oracle.
struct RefSegment {
    pages: Vec<u16>,
    counts: Vec<u64>,
}

impl RefSegment {
    fn place(
        len: u64,
        policy: &MemPolicy,
        toucher: NodeId,
        frames: &mut FramePools,
        fallback: &[Vec<NodeId>],
    ) -> Option<RefSegment> {
        let mut pages = Vec::with_capacity(len as usize);
        let mut counts = vec![0u64; frames.node_count()];
        for i in 0..len {
            let target = policy.target_node(i, len, toucher);
            let got = frames.alloc_with_fallback(target, &fallback[target.idx()]).ok()?;
            pages.push(got.0);
            counts[got.idx()] += 1;
        }
        Some(RefSegment { pages, counts })
    }

    fn relocate(&mut self, i: u64, to: NodeId) {
        let from = self.pages[i as usize];
        if from == to.0 {
            return;
        }
        self.counts[from as usize] -= 1;
        self.counts[to.idx()] += 1;
        self.pages[i as usize] = to.0;
    }

    fn non_complying(
        &self,
        start: u64,
        len: u64,
        policy: &MemPolicy,
        toucher: NodeId,
    ) -> Vec<(u64, NodeId)> {
        let mut moves = Vec::new();
        if matches!(policy, MemPolicy::FirstTouch) {
            return moves;
        }
        for rel in 0..len {
            let abs = start + rel;
            let target = policy.target_node(rel, len, toucher);
            if self.pages[abs as usize] != target.0 {
                moves.push((abs, target));
            }
        }
        moves
    }
}

/// A small random machine with a random expander subset (see
/// `tests/props.rs`).
fn random_machine(seed: u64) -> bwap_topology::MachineTopology {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..=6usize);
    let mut b = TopologyBuilder::new("prop");
    for i in 0..n {
        let mem_gib = rng.gen_range(1..=4) as f64 / 256.0;
        if i > 0 && rng.gen_bool(0.3) {
            b = b.node(NodeSpec::memory_only(mem_gib, 10.0, MemClass::new("slow", 0.5, 2.0)));
        } else {
            b = b.node(NodeSpec::new(2, mem_gib, 10.0, 16.0));
        }
    }
    for i in 0..n {
        b = b.symmetric_link(NodeId(i as u16), NodeId(((i + 1) % n) as u16), 6.0);
    }
    b.auto_routes()
        .default_path_caps()
        .hop_latencies(90.0, 50.0)
        .build()
        .expect("random ring validates")
}

fn random_policy(rng: &mut impl Rng, n: usize) -> MemPolicy {
    match rng.gen_range(0..4) {
        0 => MemPolicy::FirstTouch,
        1 => MemPolicy::Bind(NodeId(rng.gen_range(0..n) as u16)),
        2 => {
            let picked: Vec<NodeId> =
                (0..n).filter(|_| rng.gen_bool(0.5)).map(|i| NodeId(i as u16)).collect();
            let set = if picked.is_empty() {
                NodeSet::single(NodeId(rng.gen_range(0..n) as u16))
            } else {
                NodeSet::from_nodes(picked)
            };
            MemPolicy::Interleave(set)
        }
        _ => {
            let raw: Vec<f64> = (0..n)
                .map(|_| if rng.gen_bool(0.25) { 0.0 } else { rng.gen_range(0.1..4.0) })
                .collect();
            let sum: f64 = raw.iter().sum();
            if sum == 0.0 {
                MemPolicy::FirstTouch
            } else {
                MemPolicy::WeightedInterleave(raw.iter().map(|w| w / sum).collect())
            }
        }
    }
}

fn nearest_fallback(m: &bwap_topology::MachineTopology) -> Vec<Vec<NodeId>> {
    let n = m.node_count();
    (0..n)
        .map(|t| {
            let mut others: Vec<NodeId> =
                (0..n).filter(|&i| i != t).map(|i| NodeId(i as u16)).collect();
            others.sort_by(|a, b| {
                m.latency_ns()
                    .get(*a, NodeId(t as u16))
                    .partial_cmp(&m.latency_ns().get(*b, NodeId(t as u16)))
                    .unwrap()
                    .then(a.0.cmp(&b.0))
            });
            others
        })
        .collect()
}

fn assert_equal(seg: &Segment, reference: &RefSegment) {
    assert_eq!(seg.len(), reference.pages.len() as u64);
    assert_eq!(seg.node_counts(), &reference.counts[..]);
    for i in 0..seg.len() {
        assert_eq!(seg.node_of(i), NodeId(reference.pages[i as usize]), "page {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// Placement under every policy, including forced spill, lands every
    /// page exactly where the per-page loop did — and leaves the frame
    /// pools in the same state.
    #[test]
    fn place_matches_per_page_reference(seed in 0u64..4000) {
        let m = random_machine(seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x51ce);
        let n = m.node_count();
        let fallback = nearest_fallback(&m);
        let mut frames = FramePools::from_machine(&m);
        // Random pre-pressure so some placements spill mid-run.
        for i in 0..n {
            let node = NodeId(i as u16);
            let cap = frames.capacity(node);
            let used = rng.gen_range(0..=cap);
            frames.alloc(node, used).unwrap();
        }
        let mut ref_frames = frames.clone();
        let policy = random_policy(&mut rng, n);
        let toucher = NodeId(rng.gen_range(0..n) as u16);
        let len = rng.gen_range(0..800u64);
        let seg = Segment::place(SegmentKind::Shared, len, &policy, toucher, &mut frames, &fallback);
        let reference = RefSegment::place(len, &policy, toucher, &mut ref_frames, &fallback);
        match (&seg, &reference) {
            (Ok(seg), Some(reference)) => {
                assert_equal(seg, reference);
                for i in 0..n {
                    prop_assert_eq!(frames.used(NodeId(i as u16)), ref_frames.used(NodeId(i as u16)));
                }
            }
            (Err(_), None) => {} // both out of memory
            (got, want) => prop_assert!(false, "divergent outcome: {:?} vs ref {:?}",
                got.is_ok(), want.is_some()),
        }
    }

    /// Random relocate / relocate_run / non_complying traces keep the
    /// extent segment and the per-page reference in lock-step, and the
    /// range queue expands to exactly the per-page move list.
    #[test]
    fn mutation_trace_matches_per_page_reference(seed in 0u64..4000) {
        let m = random_machine(seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed_f00d);
        let n = m.node_count();
        let fallback = nearest_fallback(&m);
        let mut frames = FramePools::from_machine(&m);
        let mut ref_frames = frames.clone();
        let len = rng.gen_range(1..600u64);
        let policy = random_policy(&mut rng, n);
        let toucher = NodeId(rng.gen_range(0..n) as u16);
        let mut seg = match Segment::place(SegmentKind::Shared, len, &policy, toucher, &mut frames, &fallback) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let mut reference = RefSegment::place(len, &policy, toucher, &mut ref_frames, &fallback)
            .expect("extent place succeeded");
        for _ in 0..40 {
            match rng.gen_range(0..3) {
                0 => {
                    let i = rng.gen_range(0..len);
                    let to = NodeId(rng.gen_range(0..n) as u16);
                    seg.relocate(i, to);
                    reference.relocate(i, to);
                }
                1 => {
                    let start = rng.gen_range(0..len);
                    let l = rng.gen_range(0..=(len - start).min(64));
                    let to = NodeId(rng.gen_range(0..n) as u16);
                    if l > 0 {
                        seg.relocate_run(start, l, to);
                        for p in start..start + l {
                            reference.relocate(p, to);
                        }
                    }
                }
                _ => {
                    let start = rng.gen_range(0..len);
                    let l = rng.gen_range(0..=len - start);
                    let q_policy = random_policy(&mut rng, n);
                    let q_toucher = NodeId(rng.gen_range(0..n) as u16);
                    let runs = seg
                        .non_complying_runs(start, l, &q_policy, q_toucher)
                        .expect("range in bounds");
                    let expanded: Vec<(u64, NodeId)> = runs
                        .iter()
                        .flat_map(|r| (r.start..r.start + r.len).map(|p| (p, r.to)))
                        .collect();
                    let want = reference.non_complying(start, l, &q_policy, q_toucher);
                    prop_assert_eq!(&expanded, &want);
                    // `from` on every run matches the page table.
                    for r in &runs {
                        for p in r.start..r.start + r.len {
                            prop_assert_eq!(r.from, seg.node_of(p));
                        }
                    }
                    // Queue round-trip: enqueued ranges expand to the same
                    // page sequence, FIFO order preserved.
                    let mut q = MigrationQueue::new();
                    q.enqueue_ranges(runs.iter().map(|r| PendingRange {
                        segment: SegmentId(0),
                        start: r.start,
                        len: r.len,
                        from: r.from,
                        to: r.to,
                    }));
                    prop_assert_eq!(q.pending(), want.len());
                    let queued: Vec<(u64, NodeId)> = q
                        .ranges()
                        .flat_map(|r| (r.start..r.start + r.len).map(|p| (p, r.to)))
                        .collect();
                    prop_assert_eq!(&queued, &want);
                }
            }
        }
        assert_equal(&seg, &reference);
        let mut dist = vec![0.0; n];
        seg.fill_distribution(&mut dist);
        prop_assert_eq!(seg.distribution(), dist);
    }

    /// `cancel_range` on the range queue drops exactly the pages a
    /// per-page `retain` would.
    #[test]
    fn cancel_range_matches_per_page_retain(seed in 0u64..2000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut q = MigrationQueue::new();
        let mut model: Vec<(usize, u64, NodeId, NodeId)> = Vec::new(); // (segment, page, from, to)
        for _ in 0..rng.gen_range(1..30usize) {
            let segment = rng.gen_range(0..3usize);
            let start = rng.gen_range(0..200u64);
            let l = rng.gen_range(1..40u64);
            let from = NodeId(rng.gen_range(0..4) as u16);
            let to = NodeId(rng.gen_range(0..4) as u16);
            q.enqueue_ranges([PendingRange { segment: SegmentId(segment), start, len: l, from, to }]);
            for p in start..start + l {
                model.push((segment, p, from, to));
            }
        }
        for _ in 0..5 {
            let segment = rng.gen_range(0..3usize);
            let start = rng.gen_range(0..220u64);
            let l = rng.gen_range(0..60u64);
            let cancelled = q.cancel_range(SegmentId(segment), start, l);
            let before = model.len();
            model.retain(|&(s, p, ..)| !(s == segment && p >= start && p < start + l));
            prop_assert_eq!(cancelled, before - model.len());
            prop_assert_eq!(q.pending(), model.len());
        }
        let queued: Vec<(usize, u64, NodeId, NodeId)> = q
            .ranges()
            .flat_map(|r| (r.start..r.start + r.len).map(|p| (r.segment.0, p, r.from, r.to)))
            .collect();
        prop_assert_eq!(queued, model);
    }
}
