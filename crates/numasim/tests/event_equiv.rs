//! Differential harness: the event-driven engine against the stepped
//! reference, scenario family by scenario family — steady runs, phase
//! timelines, migration drains (including the queue edge cases the stride
//! logic leans on), tiered machines, traced runs, open-loop probes and
//! scripted daemon interleavings — plus proptest sweeps over random phase
//! timelines, spill regimes, tuner cadences and migration interleavings.
//! Everything must agree to the bit; see `tests/common/mod.rs` for what
//! "agree" means and how divergences are reported.

mod common;

use bwap_topology::{machines, NodeId, NodeSet, NodeSpec, TopologyBuilder};
use common::{assert_equivalent, Action, Drive, ScriptDaemon};
use numasim::{AppProfile, Daemon, MemPolicy, ProcessId, SimConfig, Simulator};
use proptest::prelude::*;

fn profile(total_gb: f64) -> AppProfile {
    AppProfile {
        name: "stream".into(),
        read_gbps_per_thread: 2.0,
        write_gbps_per_thread: 0.0,
        private_frac: 0.0,
        latency_sensitivity: 0.0,
        serial_frac: 0.0,
        multinode_penalty: 0.0,
        shared_pages: 10_000,
        private_pages_per_thread: 16,
        total_traffic_gb: total_gb,
        open_loop: false,
    }
}

/// A machine whose only inter-node link is effectively zero bandwidth
/// (1e-6 GB/s — the builder rejects an exact zero as it would any dead
/// link): migration drains across it make essentially no progress, so
/// the engine must keep treating the drain as an interesting time
/// forever rather than striding over it.
fn starved_link_machine() -> bwap_topology::MachineTopology {
    TopologyBuilder::new("starved-link")
        .nodes(2, NodeSpec::new(2, 0.5, 10.0, 16.0))
        .symmetric_link(NodeId(0), NodeId(1), 1e-6)
        .auto_routes()
        .default_path_caps()
        .hop_latencies(90.0, 60.0)
        .build()
        .expect("starved-link machine validates")
}

#[test]
fn steady_run_to_completion_strides() {
    let m = machines::machine_b();
    let (_, event) = assert_equivalent("steady", &m, &SimConfig::default(), |sim| {
        let pid = sim
            .spawn(profile(14.0), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        Drive::UntilFinished(pid, 100.0)
    });
    // ~200 stepped epochs collapse to a couple of full epochs + strides.
    assert!(event.stride_slices >= 1, "the steady run strides");
    assert!(event.epoch_slices < 20, "full epochs are rare: {}", event.epoch_slices);
}

#[test]
fn saturated_controller_run_strides_identically() {
    let m = machines::machine_b();
    assert_equivalent("saturated", &m, &SimConfig::default(), |sim| {
        let mut p = profile(42.0);
        p.read_gbps_per_thread = 6.0;
        let pid = sim.spawn(p, NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch).unwrap();
        Drive::UntilFinished(pid, 100.0)
    });
}

#[test]
fn latency_sensitive_feedback_reaches_its_fixed_point_in_both_modes() {
    // latency_sensitivity > 0 couples demand to the previous epoch's
    // controller utilization; strides may only begin once that feedback
    // is bitwise-stationary.
    let m = machines::machine_b();
    assert_equivalent("alpha-feedback", &m, &SimConfig::default(), |sim| {
        let mut p = profile(20.0);
        p.read_gbps_per_thread = 5.0;
        p.latency_sensitivity = 0.6;
        p.private_frac = 0.3;
        let pid = sim
            .spawn(
                p,
                NodeSet::from_nodes([NodeId(0), NodeId(1)]),
                None,
                MemPolicy::Interleave(NodeSet::from_nodes([NodeId(0), NodeId(1)])),
            )
            .unwrap();
        Drive::UntilFinished(pid, 200.0)
    });
}

#[test]
fn phased_timeline_switches_at_identical_epochs() {
    let m = machines::machine_b();
    let (_, event) = assert_equivalent("phased", &m, &SimConfig::default(), |sim| {
        let mut busy = profile(40.0);
        busy.read_gbps_per_thread = 6.0;
        let mut calm = busy.clone();
        calm.read_gbps_per_thread = 1.0;
        let pid = sim
            .spawn(busy.clone(), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        sim.set_phase_timeline(pid, vec![(0.4, busy), (0.4, calm)]).unwrap();
        Drive::UntilFinished(pid, 600.0)
    });
    assert!(event.stride_slices >= 2, "each steady phase interior strides");
}

#[test]
fn migration_drain_is_never_strided_over() {
    let m = machines::machine_b();
    assert_equivalent("drain", &m, &SimConfig::default(), |sim| {
        let pid = sim
            .spawn(profile(1e4), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        let seg = sim.process(pid).unwrap().shared_seg;
        sim.mbind(pid, seg, 0, 10_000, MemPolicy::Bind(NodeId(3)), true).unwrap();
        Drive::For(2.0)
    });
}

#[test]
fn multiple_drains_completing_in_the_same_epoch() {
    // Two queues sized under one epoch's budget: both `complete_into`
    // calls land in the same epoch, and the following epoch both drain
    // flows close — after which the stride may begin.
    let m = machines::machine_b();
    assert_equivalent("twin-drains", &m, &SimConfig::default(), |sim| {
        let a = sim
            .spawn(profile(30.0), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        let b = sim
            .spawn(profile(30.0), NodeSet::single(NodeId(1)), None, MemPolicy::FirstTouch)
            .unwrap();
        for (pid, to) in [(a, NodeId(2)), (b, NodeId(3))] {
            let seg = sim.process(pid).unwrap().shared_seg;
            sim.mbind(pid, seg, 0, 500, MemPolicy::Bind(to), true).unwrap();
        }
        Drive::UntilFinished(a, 100.0)
    });
}

#[test]
fn zero_bandwidth_migration_engine_drains_one_page_per_epoch() {
    // migration_gbps = 0 degenerates the per-epoch budget to its floor of
    // one page; every epoch stays a full epoch until the queue empties.
    let m = machines::machine_b();
    let cfg = SimConfig { migration_gbps: 0.0, ..SimConfig::default() };
    assert_equivalent("zero-budget-drain", &m, &cfg, |sim| {
        let pid = sim
            .spawn(profile(1e4), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        let seg = sim.process(pid).unwrap().shared_seg;
        sim.mbind(pid, seg, 0, 120, MemPolicy::Bind(NodeId(1)), true).unwrap();
        Drive::For(1.5)
    });
}

#[test]
fn starved_link_drain_makes_no_progress_and_no_strides() {
    let m = starved_link_machine();
    let (stepped, event) = assert_equivalent("starved-link", &m, &SimConfig::default(), |sim| {
        let mut p = profile(f64::INFINITY);
        p.shared_pages = 2_000;
        let pid = sim.spawn(p, NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch).unwrap();
        let seg = sim.process(pid).unwrap().shared_seg;
        sim.mbind(pid, seg, 0, 2_000, MemPolicy::Bind(NodeId(1)), true).unwrap();
        Drive::For(1.0)
    });
    // The drain stays pending the whole window, so every epoch remains a
    // full epoch in both modes.
    assert_eq!(event.stride_slices, 0, "a live drain blocks striding");
    assert_eq!(event.epoch_slices, stepped.epoch_slices);
    assert!(stepped.state.iter().any(|l| l.contains("pending=") && !l.contains("pending=0")));
}

#[test]
fn cancel_range_lands_mid_stride() {
    // A scripted daemon queues a big rebind, later cancels the middle of
    // it, later still re-binds a sub-range — each firing interrupts what
    // the event engine would otherwise run as one stride.
    let m = machines::machine_b();
    assert_equivalent("cancel-mid-stride", &m, &SimConfig::default(), |sim| {
        let pid = sim
            .spawn(profile(5e3), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        let seg = sim.process(pid).unwrap().shared_seg;
        let daemon = ScriptDaemon::new(vec![
            Box::new(move |sim: &mut Simulator| {
                sim.mbind(pid, seg, 0, 8_000, MemPolicy::Bind(NodeId(2)), true).unwrap();
            }),
            Box::new(move |sim: &mut Simulator| {
                // Supersede the middle of the still-draining range: the
                // engine path for this is mbind, whose first act is a
                // cancel_range over [2000, 6000).
                sim.mbind(pid, seg, 2_000, 4_000, MemPolicy::Bind(NodeId(0)), true).unwrap();
            }),
            Box::new(move |sim: &mut Simulator| {
                sim.mbind(pid, seg, 6_000, 2_000, MemPolicy::Bind(NodeId(1)), true).unwrap();
            }),
        ]);
        sim.add_daemon(Box::new(daemon), 0.25, 0.1);
        Drive::For(3.0)
    });
}

#[test]
fn tiered_machine_with_spill_strides_identically() {
    let m = machines::machine_tiered();
    let fast_pages: u64 = m.worker_nodes().iter().map(|w| m.node(w).mem_pages).sum();
    assert_equivalent("tiered-spill", &m, &SimConfig::default(), move |sim| {
        let mut p = profile(60.0);
        p.read_gbps_per_thread = 3.0;
        p.shared_pages = fast_pages + 5_000; // force spill into expanders
        let workers = sim.machine().worker_nodes();
        let pid = sim.spawn(p, workers, None, MemPolicy::Interleave(workers)).unwrap();
        Drive::UntilFinished(pid, 600.0)
    });
}

#[test]
fn open_loop_probe_strides_identically() {
    let m = machines::machine_b();
    assert_equivalent("open-loop", &m, &SimConfig::default(), |sim| {
        let mut p = profile(20.0);
        p.open_loop = true;
        p.read_gbps_per_thread = 4.0;
        let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let pid = sim.spawn(p, workers, None, MemPolicy::Interleave(workers)).unwrap();
        Drive::UntilFinished(pid, 200.0)
    });
}

#[test]
fn idle_simulator_with_daemon_cadence_strides_between_fires() {
    // Nothing but a monitor daemon: the stride runs wall-to-wall between
    // fires, and every fire lands at the same clock in both modes.
    let m = machines::machine_b();
    let (_, event) = assert_equivalent("idle-cadence", &m, &SimConfig::default(), |sim| {
        let pid = sim
            .spawn(profile(f64::INFINITY), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        let daemon = ScriptDaemon::new(
            (0..6)
                .map(|i| {
                    Box::new(move |sim: &mut Simulator| {
                        let s = sim.sample(pid).unwrap();
                        sim.trace_instant(
                            "probe",
                            Some(pid),
                            &[("i", i as f64), ("traffic", s.traffic_bytes)],
                        );
                    }) as Action
                })
                .collect(),
        );
        sim.add_daemon(Box::new(daemon), 0.5, 0.5);
        Drive::For(4.0)
    });
    assert!(event.stride_slices >= 6, "one stride per inter-fire gap");
    assert!(event.epoch_slices <= 10, "full epochs only at fires: {}", event.epoch_slices);
}

#[test]
fn two_contending_processes_finish_at_identical_times() {
    let m = machines::machine_b();
    assert_equivalent("contention", &m, &SimConfig::default(), |sim| {
        let mut p = profile(28.0);
        p.read_gbps_per_thread = 6.0;
        let a =
            sim.spawn(p.clone(), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch).unwrap();
        let _b =
            sim.spawn(p, NodeSet::single(NodeId(1)), None, MemPolicy::Bind(NodeId(0))).unwrap();
        Drive::UntilFinished(a, 100.0)
    });
}

// ---------------------------------------------------------------------------
// Proptest sweeps. Shrinking minimizes the scenario; the panic message
// from `assert_equivalent` then names the first diverging event.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct PhasePlan {
    epochs: usize,
    demand: f64,
    alpha: f64,
}

fn phase_strategy() -> impl Strategy<Value = PhasePlan> {
    (1usize..=80, 0usize..=12, 0usize..=2).prop_map(|(epochs, demand_steps, alpha_steps)| {
        PhasePlan {
            epochs,
            // Include exact zero (idle phases) and saturating demand.
            demand: demand_steps as f64 * 0.75,
            alpha: alpha_steps as f64 * 0.35,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random phase timelines and spill regimes through both engines.
    #[test]
    fn prop_random_phase_timelines_agree(
        phases in prop::collection::vec(phase_strategy(), 1..4),
        shared_pages in prop_oneof![Just(4_000u64), Just(40_000u64), Just(400_000u64)],
        total_steps in 1u64..=40,
        machine_idx in 0usize..3,
        interleave in any::<bool>(),
    ) {
        let m = match machine_idx {
            0 => machines::machine_b(),
            1 => machines::machine_tiered(),
            _ => machines::twin(),
        };
        let name = format!(
            "prop-phased m{machine_idx} sp{shared_pages} ts{total_steps} {phases:?}"
        );
        assert_equivalent(&name, &m, &SimConfig::default(), move |sim| {
            let mk = |plan: &PhasePlan| {
                let mut p = profile(total_steps as f64 * 1.5);
                p.read_gbps_per_thread = plan.demand;
                p.latency_sensitivity = plan.alpha;
                p.shared_pages = shared_pages;
                p
            };
            let workers = sim.machine().worker_nodes();
            let policy = if interleave {
                MemPolicy::Interleave(sim.machine().all_nodes())
            } else {
                MemPolicy::FirstTouch
            };
            let pid = sim.spawn(mk(&phases[0]), workers, None, policy).unwrap();
            if phases.len() > 1 || phases[0].epochs > 1 {
                let timeline: Vec<(f64, AppProfile)> =
                    phases.iter().map(|pl| (pl.epochs as f64 * 0.005, mk(pl))).collect();
                sim.set_phase_timeline(pid, timeline).unwrap();
            }
            Drive::UntilFinished(pid, 30.0)
        });
    }

    /// Random migration interleavings and tuner-style cadences: scripted
    /// daemons fire mbinds/cancels over random ranges at a random period
    /// while the workload runs.
    #[test]
    fn prop_random_migration_interleavings_agree(
        period_epochs in 1u64..=120,
        ops in prop::collection::vec(
            (0u64..9_000, 1u64..2_000, 0u16..4, any::<bool>()),
            1..5
        ),
        demand_steps in 0usize..=10,
        migration_tenth_gbps in prop_oneof![Just(0u32), Just(1u32), Just(20u32)],
    ) {
        let m = machines::machine_b();
        let cfg = SimConfig {
            migration_gbps: migration_tenth_gbps as f64 * 0.1,
            ..SimConfig::default()
        };
        let name = format!(
            "prop-mig p{period_epochs} mig{migration_tenth_gbps} d{demand_steps} {ops:?}"
        );
        assert_equivalent(&name, &m, &cfg, move |sim| {
            let mut p = profile(f64::INFINITY);
            p.read_gbps_per_thread = demand_steps as f64 * 0.6;
            let pid = sim
                .spawn(p, NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
                .unwrap();
            let seg = sim.process(pid).unwrap().shared_seg;
            let actions: Vec<Action> = ops
                .iter()
                .cloned()
                .map(|(start, len, node, move_pages)| {
                    Box::new(move |sim: &mut Simulator| {
                        let len = len.min(10_000 - start).max(1);
                        sim.mbind(
                            pid,
                            seg,
                            start,
                            len,
                            MemPolicy::Bind(NodeId(node)),
                            move_pages,
                        )
                        .unwrap();
                    }) as Action
                })
                .collect();
            sim.add_daemon(
                Box::new(ScriptDaemon::new(actions)),
                period_epochs as f64 * 0.005,
                0.01,
            );
            Drive::For(1.2)
        });
    }
}

// Keep clippy honest about the helper being exercised from this binary.
#[test]
fn script_daemon_unregisters_after_its_last_action() {
    let m = machines::machine_b();
    let mut sim = Simulator::new(m, SimConfig::default());
    let pid = sim
        .spawn(profile(f64::INFINITY), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
        .unwrap();
    let daemon = ScriptDaemon::new(vec![Box::new(move |sim: &mut Simulator| {
        sim.trace_instant("only-action", Some(pid), &[]);
    })]);
    assert!(!daemon.done());
    sim.add_daemon(Box::new(daemon), 0.05, 0.05);
    sim.run_for(0.5);
    // The daemon ran once and removed itself; the run kept going.
    assert!(sim.clock() > 0.4);
    let _ = ProcessId(0);
}
