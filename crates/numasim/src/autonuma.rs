//! AutoNUMA: the Linux locality-driven page-placement daemon the paper
//! compares against (§IV, baseline `autonuma`).
//!
//! Real AutoNUMA unmaps pages periodically and uses the resulting NUMA
//! hinting faults to migrate each page toward the node that accesses it.
//! The emergent behaviour (documented by the paper and by Dashti et al.'s
//! Carrefour study) is:
//!
//! * thread-private pages converge to their accessor's node;
//! * pages shared by threads on several nodes bounce between, and end up
//!   spread over, the *worker* nodes only — AutoNUMA never exploits
//!   non-worker bandwidth and ignores interconnect asymmetry.
//!
//! We model that converged behaviour directly: each scan period the daemon
//! nudges private pages home and shared pages toward a uniform spread over
//! the worker set, both rate-limited like the kernel's NUMA-balancing
//! migration budget.

use crate::daemon::Daemon;
use crate::engine::Simulator;
use crate::mem::migrate::PendingRange;
use crate::process::ProcessId;
use bwap_topology::{NodeId, PAGE_SIZE};

/// Configuration of the AutoNUMA daemon.
#[derive(Debug, Clone)]
pub struct AutoNumaConfig {
    /// Scan period (seconds); the daemon fires once per period.
    pub scan_period: f64,
    /// Migration budget per scan, in bytes (the kernel rate-limits NUMA
    /// balancing to ~256 MB/s by default).
    pub bytes_per_scan: f64,
}

impl Default for AutoNumaConfig {
    fn default() -> Self {
        AutoNumaConfig { scan_period: 0.1, bytes_per_scan: 256e6 * 0.1 }
    }
}

/// The daemon. Register with
/// `sim.add_daemon(Box::new(auto_numa), cfg.scan_period, cfg.scan_period)`.
#[derive(Debug)]
pub struct AutoNuma {
    cfg: AutoNumaConfig,
    /// Processes to balance; empty = all running processes.
    scope: Vec<ProcessId>,
}

impl AutoNuma {
    /// Balance every running process.
    pub fn new(cfg: AutoNumaConfig) -> Self {
        AutoNuma { cfg, scope: Vec::new() }
    }

    /// Balance only the given processes.
    pub fn for_processes(cfg: AutoNumaConfig, pids: Vec<ProcessId>) -> Self {
        AutoNuma { cfg, scope: pids }
    }

    /// Scan period for daemon registration.
    pub fn period(&self) -> f64 {
        self.cfg.scan_period
    }

    fn balance_process(&self, sim: &mut Simulator, pid: ProcessId, budget_pages: &mut u64) {
        let Ok(p) = sim.process(pid) else { return };
        if !p.is_running() || *budget_pages == 0 {
            return;
        }
        let n = sim.machine().node_count();
        let mut moves: Vec<PendingRange> = Vec::new();
        let mut queued = 0u64;

        // 1. Private pages home to their owner's node. The scan walks the
        // segment's placement runs (O(extents)), emitting one range per
        // misplaced run — the expanded page order matches the historical
        // page-by-page scan exactly.
        for &(owner, seg) in &p.private_segs {
            if *budget_pages == queued {
                break;
            }
            let segment = p.aspace.segment(seg).expect("segment exists");
            if segment.node_counts()[owner.idx()] == segment.len() {
                continue;
            }
            segment.for_each_run(0, segment.len(), |run_start, run_len, at| {
                if at != owner {
                    let take = run_len.min(*budget_pages - queued);
                    moves.push(PendingRange {
                        segment: seg,
                        start: run_start,
                        len: take,
                        from: at,
                        to: owner,
                    });
                    queued += take;
                }
                queued < *budget_pages
            });
        }

        // 2. Shared pages toward a uniform spread over worker nodes: move
        // pages off non-workers (and off over-weight workers) onto the
        // most underweight workers.
        let workers = p.workers;
        let shared = p.shared_seg;
        let segment = p.aspace.segment(shared).expect("shared segment");
        let len = segment.len();
        if len > 0 && queued < *budget_pages {
            let target_per_worker = len as f64 / workers.len() as f64;
            // Deficit per worker node.
            let mut deficit: Vec<(NodeId, f64)> = workers
                .iter()
                .map(|w| (w, target_per_worker - segment.node_counts()[w.idx()] as f64))
                .filter(|&(_, d)| d > 0.5)
                .collect();
            deficit.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));
            if !deficit.is_empty() {
                // Sources: nodes holding pages beyond their target (target
                // is zero for non-workers). Snapshot at scan start, as the
                // page-by-page scan always did.
                let over: Vec<bool> = (0..n)
                    .map(|i| {
                        let tgt = if workers.contains(NodeId(i as u16)) {
                            target_per_worker
                        } else {
                            0.0
                        };
                        segment.node_counts()[i] as f64 > tgt + 0.5
                    })
                    .collect();
                let mut di = 0usize;
                let mut remaining: Vec<f64> = deficit.iter().map(|&(_, d)| d).collect();
                segment.for_each_run(0, len, |run_start, run_len, at| {
                    if di >= deficit.len() {
                        return false;
                    }
                    if !over[at.idx()] {
                        return true;
                    }
                    // Split the run across deficit targets: each accepts
                    // pages until its (fractional) deficit is exhausted,
                    // exactly one page at a time in the historical scan.
                    let mut off = 0u64;
                    while off < run_len && di < deficit.len() && queued < *budget_pages {
                        let (to, _) = deficit[di];
                        if at == to {
                            // Pages already on the current target stay put
                            // (and consume neither deficit nor budget).
                            break;
                        }
                        let accepts = remaining[di].ceil().max(1.0) as u64;
                        let take = (run_len - off).min(accepts).min(*budget_pages - queued);
                        moves.push(PendingRange {
                            segment: shared,
                            start: run_start + off,
                            len: take,
                            from: at,
                            to,
                        });
                        remaining[di] -= take as f64;
                        if remaining[di] <= 0.0 {
                            di += 1;
                        }
                        off += take;
                        queued += take;
                    }
                    queued < *budget_pages && di < deficit.len()
                });
            }
        }

        *budget_pages = budget_pages.saturating_sub(queued);
        if !moves.is_empty() {
            let _ = sim.enqueue_move_ranges(pid, moves);
        }
    }
}

impl Daemon for AutoNuma {
    fn name(&self) -> &str {
        "autonuma"
    }

    fn tick(&mut self, sim: &mut Simulator) {
        let mut budget = (self.cfg.bytes_per_scan / PAGE_SIZE as f64) as u64;
        let pids: Vec<ProcessId> = if self.scope.is_empty() {
            (0..usize::MAX).map_while(|i| sim.process(ProcessId(i)).ok().map(|p| p.id)).collect()
        } else {
            self.scope.clone()
        };
        for pid in pids {
            // Skip processes that still have queued migrations from the
            // previous scan: re-queuing the same pages would double-move.
            if sim.pending_migrations(pid) > 0 {
                continue;
            }
            self.balance_process(sim, pid, &mut budget);
            if budget == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AppProfile, SimConfig, Simulator};
    use crate::mem::policy::MemPolicy;
    use bwap_topology::{machines, NodeSet};

    fn profile() -> AppProfile {
        AppProfile {
            name: "app".into(),
            read_gbps_per_thread: 1.0,
            write_gbps_per_thread: 0.0,
            private_frac: 0.3,
            latency_sensitivity: 0.1,
            serial_frac: 0.0,
            multinode_penalty: 0.0,
            shared_pages: 8_000,
            private_pages_per_thread: 100,
            total_traffic_gb: f64::INFINITY,
            open_loop: false,
        }
    }

    #[test]
    fn autonuma_spreads_shared_pages_over_workers_only() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let workers = NodeSet::from_nodes([NodeId(1), NodeId(2)]);
        // Start with everything bound to node 0 (a non-worker).
        let pid = sim.spawn(profile(), workers, None, MemPolicy::Bind(NodeId(0))).unwrap();
        let an = AutoNuma::new(AutoNumaConfig::default());
        let period = an.period();
        sim.add_daemon(Box::new(an), period, period);
        sim.run_for(20.0);
        let d = sim.shared_distribution(pid).unwrap();
        assert!(d[0] < 0.02, "non-worker drained: {d:?}");
        assert!((d[1] - 0.5).abs() < 0.05, "{d:?}");
        assert!((d[2] - 0.5).abs() < 0.05, "{d:?}");
        // Private pages went home.
        let full = sim.full_distribution(pid).unwrap();
        assert!(full[0] < 0.02, "{full:?}");
    }

    #[test]
    fn autonuma_is_rate_limited() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let workers = NodeSet::from_nodes([NodeId(1), NodeId(2)]);
        let pid = sim.spawn(profile(), workers, None, MemPolicy::Bind(NodeId(0))).unwrap();
        let cfg = AutoNumaConfig { scan_period: 0.1, bytes_per_scan: 40.0 * 4096.0 };
        let an = AutoNuma::new(cfg);
        sim.add_daemon(Box::new(an), 0.1, 0.1);
        sim.run_for(0.35);
        // At most 3 scans x 40 pages have been queued/moved.
        let moved = sim.migrated_pages(pid) + sim.pending_migrations(pid) as u64;
        assert!(moved <= 120, "moved {moved}");
        assert!(moved > 0);
    }

    #[test]
    fn autonuma_never_migrates_pages_to_memory_only_nodes() {
        // AutoNUMA is locality-driven: it drags pages toward their
        // accessors, and threads can never run on the CPU-less tier — so
        // on a tiered machine it must drain the expanders, not fill them.
        let m = machines::machine_tiered();
        let mut sim = Simulator::new(m.clone(), SimConfig::default());
        let workers = m.worker_nodes();
        let mut p = profile();
        p.shared_pages = 4_000;
        // Start with everything spread over the whole machine, expanders
        // included.
        let pid = sim.spawn(p, workers, None, MemPolicy::Interleave(m.all_nodes())).unwrap();
        let before = sim.shared_distribution(pid).unwrap();
        assert!(before[2] > 0.2 && before[3] > 0.2);
        let an = AutoNuma::new(AutoNumaConfig::default());
        let period = an.period();
        sim.add_daemon(Box::new(an), period, period);
        sim.run_for(20.0);
        let d = sim.shared_distribution(pid).unwrap();
        assert!(d[2] < 0.02 && d[3] < 0.02, "expanders drained: {d:?}");
        assert!((d[0] - 0.5).abs() < 0.05 && (d[1] - 0.5).abs() < 0.05, "{d:?}");
    }

    #[test]
    fn autonuma_scoped_to_processes() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let w1 = NodeSet::single(NodeId(1));
        let w2 = NodeSet::single(NodeId(2));
        let a = sim.spawn(profile(), w1, None, MemPolicy::Bind(NodeId(0))).unwrap();
        let b = sim.spawn(profile(), w2, None, MemPolicy::Bind(NodeId(0))).unwrap();
        let an = AutoNuma::for_processes(AutoNumaConfig::default(), vec![a]);
        sim.add_daemon(Box::new(an), 0.1, 0.1);
        sim.run_for(10.0);
        let da = sim.shared_distribution(a).unwrap();
        let db = sim.shared_distribution(b).unwrap();
        assert!(da[1] > 0.9, "scoped process balanced: {da:?}");
        assert!((db[0] - 1.0).abs() < 1e-9, "unscoped untouched: {db:?}");
    }
}
