//! Structured run tracing: Chrome `trace_event` emission for the engine.
//!
//! A [`TraceSink`] installed via `Simulator::set_trace_sink` records what
//! the epoch loop actually did — epochs, per-process phase switches,
//! migration drains as flow arrows, per-epoch migration completions,
//! `mbind` calls, per-link max-min bandwidth shares, and generic markers
//! from daemons (`Simulator::trace_instant`) — into a bounded ring
//! buffer. [`TraceSink::to_chrome_json`] serializes the retained events
//! as a Chrome `trace_event` document loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`; the schema is
//! documented in `docs/TRACING.md`.
//!
//! Design constraints, in order:
//!
//! * **Zero cost when disabled.** Every engine hook is behind one
//!   `Option` check; with no sink installed the steady-state epoch loop
//!   stays allocation-free (see `docs/PERFORMANCE.md`).
//! * **Deterministic.** Timestamps are the *simulated* clock in
//!   microseconds ([`ts_us`]), flow ids come from a sink-local counter,
//!   and nothing reads the wall clock — the same run emits byte-identical
//!   JSON regardless of host, executor thread count, or repetition.
//! * **Bounded.** The ring keeps the most recent [`TraceSink::capacity`]
//!   events and counts the rest in [`TraceSink::dropped`]; a very long
//!   run yields the tail of its timeline, never unbounded memory. (A
//!   drop can orphan the `E` of an already-dropped `B` at the very start
//!   of the retained window — viewers tolerate this, and traces within
//!   capacity are exactly matched.)
//!
//! Like the rest of the workspace, the writer is serde-free and follows
//! the hand-rolled JSON conventions of the campaign reports (shortest
//! round-trip floats, `null` for non-finite values).

use std::borrow::Cow;
use std::collections::VecDeque;

/// Ring capacity of [`TraceSink::default`]: 2^18 events keeps a full
/// quick-scale campaign cell (tens of thousands of events) with room to
/// spare while bounding a worst-case sink at a few tens of MiB.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Chrome track (`pid` in the emitted JSON) of engine-wide events:
/// epochs and per-link bandwidth counters.
pub const ENGINE_TRACK: u64 = 0;

/// Chrome track of a simulated process's events (tracks `1..`; track 0
/// is [`ENGINE_TRACK`]).
pub fn process_track(pid: crate::process::ProcessId) -> u64 {
    1 + pid.0 as u64
}

/// Simulated clock → trace timestamp (microseconds, the `trace_event`
/// unit). Monotone in the clock, so emission order is non-decreasing in
/// `ts`.
pub fn ts_us(clock: f64) -> u64 {
    (clock * 1e6).round() as u64
}

/// The `ph` field: which kind of `trace_event` record an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    /// `B` — duration slice opens.
    Begin,
    /// `E` — duration slice closes.
    End,
    /// `i` — instant (thread-scoped).
    Instant,
    /// `s` — flow arrow starts (paired by `id`).
    FlowStart,
    /// `f` — flow arrow ends.
    FlowEnd,
    /// `C` — counter sample; each arg is one series.
    Counter,
    /// `M` — metadata (track names).
    Metadata,
}

impl EventPhase {
    /// The single-character `ph` code.
    pub fn code(self) -> char {
        match self {
            EventPhase::Begin => 'B',
            EventPhase::End => 'E',
            EventPhase::Instant => 'i',
            EventPhase::FlowStart => 's',
            EventPhase::FlowEnd => 'f',
            EventPhase::Counter => 'C',
            EventPhase::Metadata => 'M',
        }
    }
}

/// One event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Integer argument (counts, indices).
    U64(u64),
    /// Float argument (rates, times); non-finite serializes as `null`.
    F64(f64),
    /// String argument (names).
    Str(String),
}

/// One recorded event. Field names mirror the `trace_event` keys; the
/// Chrome `pid` is called `track` here to avoid confusion with simulated
/// [`crate::process::ProcessId`]s (`tid` is always 0 — the simulator has
/// no thread dimension worth a second axis).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event kind (`ph`).
    pub ph: EventPhase,
    /// Event name (slice/counter/marker name).
    pub name: Cow<'static, str>,
    /// Timestamp, simulated microseconds.
    pub ts_us: u64,
    /// Chrome track: [`ENGINE_TRACK`] or [`process_track`].
    pub track: u64,
    /// Flow pairing id (`s`/`f` events only).
    pub id: Option<u64>,
    /// `args` object entries.
    pub args: Vec<(Cow<'static, str>, ArgValue)>,
}

/// Bounded recorder of [`TraceEvent`]s. See the module docs for the
/// guarantees and `docs/TRACING.md` for the event vocabulary.
#[derive(Debug)]
pub struct TraceSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    next_flow_id: u64,
    /// Open migration-drain flow id per process index.
    drains: Vec<Option<u64>>,
    /// Last emitted per-link-direction shares (change detection for the
    /// bandwidth counters); `-1.0` forces the first emission.
    last_links: Vec<f64>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new(DEFAULT_CAPACITY)
    }
}

impl TraceSink {
    /// A sink retaining at most `capacity` events (> 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceSink {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
            next_flow_id: 0,
            drains: Vec::new(),
            last_links: Vec::new(),
        }
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Append an event, evicting the oldest once full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Name a track (Chrome `process_name` metadata).
    pub fn note_track(&mut self, track: u64, name: &str, ts: u64) {
        self.push(TraceEvent {
            ph: EventPhase::Metadata,
            name: "process_name".into(),
            ts_us: ts,
            track,
            id: None,
            args: vec![("name".into(), ArgValue::Str(name.to_string()))],
        });
    }

    /// Open a duration slice.
    pub fn begin(&mut self, name: &'static str, ts: u64, track: u64) {
        self.push(TraceEvent {
            ph: EventPhase::Begin,
            name: name.into(),
            ts_us: ts,
            track,
            id: None,
            args: Vec::new(),
        });
    }

    /// Close the innermost open slice of `name` on `track`.
    pub fn end(&mut self, name: &'static str, ts: u64, track: u64) {
        self.push(TraceEvent {
            ph: EventPhase::End,
            name: name.into(),
            ts_us: ts,
            track,
            id: None,
            args: Vec::new(),
        });
    }

    /// Record an instant event with arbitrary args.
    pub fn instant(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        ts: u64,
        track: u64,
        args: Vec<(Cow<'static, str>, ArgValue)>,
    ) {
        self.push(TraceEvent {
            ph: EventPhase::Instant,
            name: name.into(),
            ts_us: ts,
            track,
            id: None,
            args,
        });
    }

    /// Record a counter sample; each arg is one series of the counter.
    pub fn counter(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        ts: u64,
        track: u64,
        args: Vec<(Cow<'static, str>, ArgValue)>,
    ) {
        self.push(TraceEvent {
            ph: EventPhase::Counter,
            name: name.into(),
            ts_us: ts,
            track,
            id: None,
            args,
        });
    }

    /// Start a migration-drain flow for process index `pid` unless one is
    /// already open; `pending` is the queue depth observed this epoch.
    pub(crate) fn drain_start(&mut self, pid: usize, track: u64, ts: u64, pending: u64) {
        if self.drains.len() <= pid {
            self.drains.resize(pid + 1, None);
        }
        if self.drains[pid].is_some() {
            return;
        }
        let id = self.next_flow_id;
        self.next_flow_id += 1;
        self.drains[pid] = Some(id);
        self.push(TraceEvent {
            ph: EventPhase::FlowStart,
            name: "migration".into(),
            ts_us: ts,
            track,
            id: Some(id),
            args: vec![("pending".into(), ArgValue::U64(pending))],
        });
    }

    /// The open drain flow id of process index `pid`, if any.
    pub(crate) fn open_drain(&self, pid: usize) -> Option<u64> {
        self.drains.get(pid).copied().flatten()
    }

    /// Close the open migration-drain flow of process index `pid`.
    pub(crate) fn drain_end(&mut self, pid: usize, track: u64, ts: u64, migrated_total: u64) {
        let Some(id) = self.drains.get_mut(pid).and_then(Option::take) else {
            return;
        };
        self.push(TraceEvent {
            ph: EventPhase::FlowEnd,
            name: "migration".into(),
            ts_us: ts,
            track,
            id: Some(id),
            args: vec![("migrated_total".into(), ArgValue::U64(migrated_total))],
        });
    }

    /// Emit per-link share counters for the directions whose share
    /// changed since the previous emission. `shares` yields the directed
    /// pairs of each link consecutively, as
    /// `bwap_fabric::SolveResult::link_shares` does.
    pub(crate) fn link_counters(
        &mut self,
        ts: u64,
        shares: impl Iterator<Item = (usize, f64, f64)>,
    ) {
        self.link_counters_impl(ts, shares, false);
    }

    /// Emit per-link share counters unconditionally — the event-driven
    /// engine stamps every stride boundary so counter timelines show the
    /// extent of a plateau rather than a gap where epochs were skipped.
    pub(crate) fn link_counters_forced(
        &mut self,
        ts: u64,
        shares: impl Iterator<Item = (usize, f64, f64)>,
    ) {
        self.link_counters_impl(ts, shares, true);
    }

    fn link_counters_impl(
        &mut self,
        ts: u64,
        shares: impl Iterator<Item = (usize, f64, f64)>,
        force: bool,
    ) {
        for (l, ab, ba) in shares {
            if self.last_links.len() < 2 * (l + 1) {
                self.last_links.resize(2 * (l + 1), -1.0);
            }
            let changed = (self.last_links[2 * l] - ab).abs() > 1e-9
                || (self.last_links[2 * l + 1] - ba).abs() > 1e-9;
            if !(changed || force) {
                continue;
            }
            if changed {
                self.last_links[2 * l] = ab;
                self.last_links[2 * l + 1] = ba;
            }
            // A forced re-stamp of an unchanged series repeats the last
            // emitted values bitwise (the current ones may differ by the
            // sub-tolerance drift the change filter deliberately ignores),
            // so a plateau extends with identical samples.
            let (ab, ba) = (self.last_links[2 * l], self.last_links[2 * l + 1]);
            self.counter(
                format!("link{l}_gbps"),
                ts,
                ENGINE_TRACK,
                vec![("a_to_b".into(), ArgValue::F64(ab)), ("b_to_a".into(), ArgValue::F64(ba))],
            );
        }
    }

    /// Serialize the retained events as a Chrome `trace_event` JSON
    /// document (object form, `traceEvents` array; `displayTimeUnit` ms).
    /// Evicted events are summarized under `otherData.dropped_events`.
    pub fn to_chrome_json(&self) -> String {
        let mut s = String::with_capacity(64 + self.events.len() * 96);
        s.push_str("{\n  \"displayTimeUnit\": \"ms\",\n");
        s.push_str(&format!("  \"otherData\": {{\"dropped_events\": \"{}\"}},\n", self.dropped));
        s.push_str("  \"traceEvents\": [\n");
        for ev in &self.events {
            s.push_str("    {");
            s.push_str(&format!("\"name\": {}, ", json_str(&ev.name)));
            s.push_str("\"cat\": \"sim\", ");
            s.push_str(&format!("\"ph\": \"{}\", ", ev.ph.code()));
            s.push_str(&format!("\"ts\": {}, ", ev.ts_us));
            s.push_str(&format!("\"pid\": {}, ", ev.track));
            s.push_str("\"tid\": 0");
            if let Some(id) = ev.id {
                s.push_str(&format!(", \"id\": {id}"));
            }
            if ev.ph == EventPhase::Instant {
                // Thread-scoped instants render as ticks on their track.
                s.push_str(", \"s\": \"t\"");
            }
            if !ev.args.is_empty() {
                s.push_str(", \"args\": {");
                for (i, (k, v)) in ev.args.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&format!("{}: {}", json_str(k), json_value(v)));
                }
                s.push('}');
            }
            s.push_str("},\n");
        }
        pop_trailing_comma(&mut s);
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_value(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(u) => format!("{u}"),
        ArgValue::F64(f) if f.is_finite() => format!("{f}"),
        ArgValue::F64(_) => "null".into(),
        ArgValue::Str(s) => json_str(s),
    }
}

/// JSON string literal with the mandatory escapes (same rules as the
/// campaign report writer).
fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn pop_trailing_comma(s: &mut String) {
    if s.ends_with(",\n") {
        s.truncate(s.len() - 2);
        s.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut t = TraceSink::new(3);
        for i in 0..5u64 {
            t.begin("e", i, ENGINE_TRACK);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let ts: Vec<u64> = t.events().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        assert!(t.to_chrome_json().contains("\"dropped_events\": \"2\""));
    }

    #[test]
    fn drains_pair_flow_ids_and_ignore_reentry() {
        let mut t = TraceSink::default();
        t.drain_start(0, 1, 10, 7);
        t.drain_start(0, 1, 11, 5); // already open: no second `s`
        assert_eq!(t.open_drain(0), Some(0));
        t.drain_end(0, 1, 20, 7);
        assert_eq!(t.open_drain(0), None);
        t.drain_end(0, 1, 21, 7); // already closed: no event
        t.drain_start(2, 3, 30, 1); // fresh flow id per drain
        let evs: Vec<_> = t.events().collect();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].ph, EventPhase::FlowStart);
        assert_eq!(evs[1].ph, EventPhase::FlowEnd);
        assert_eq!(evs[0].id, evs[1].id);
        assert_eq!(evs[2].id, Some(1));
    }

    #[test]
    fn link_counters_emit_only_on_change() {
        let mut t = TraceSink::default();
        t.link_counters(0, [(0usize, 1.0, 0.0), (1, 0.0, 0.0)].into_iter());
        t.link_counters(1, [(0usize, 1.0, 0.0), (1, 0.0, 0.0)].into_iter());
        t.link_counters(2, [(0usize, 2.0, 0.0), (1, 0.0, 0.0)].into_iter());
        // First epoch emits both links, the steady epoch none, the change
        // re-emits link0 only.
        assert_eq!(t.len(), 3);
        let names: Vec<&str> = t.events().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, vec!["link0_gbps", "link1_gbps", "link0_gbps"]);
        assert_eq!(t.events().last().unwrap().ts_us, 2);
    }

    #[test]
    fn json_has_trace_event_shape_and_escapes() {
        let mut t = TraceSink::default();
        t.note_track(0, "engine", 0);
        t.begin("epoch", 0, ENGINE_TRACK);
        t.instant("mark \"x\"", 1, ENGINE_TRACK, vec![("v".into(), ArgValue::F64(f64::NAN))]);
        t.end("epoch", 5, ENGINE_TRACK);
        let j = t.to_chrome_json();
        assert!(j.contains("\"traceEvents\": ["), "{j}");
        assert!(j.contains("\"ph\": \"M\""));
        assert!(j.contains("\"ph\": \"B\""));
        assert!(j.contains("\"ph\": \"E\""));
        assert!(j.contains("\"mark \\\"x\\\"\""));
        assert!(j.contains("\"v\": null"));
        assert!(j.contains("\"s\": \"t\""));
        // No trailing comma before the array close.
        assert!(!j.contains("},\n  ]"));
    }

    #[test]
    fn ts_us_is_monotone_in_the_clock() {
        let mut clock = 0.0;
        let mut last = 0;
        for _ in 0..10_000 {
            clock += 0.005;
            let ts = ts_us(clock);
            assert!(ts >= last);
            last = ts;
        }
        assert_eq!(ts_us(0.005), 5000);
    }
}
