//! Simulated hardware performance counters.
//!
//! Mirrors what the paper reads through likwid/NumaMMA:
//!
//! * per-node served read/write bytes (IMC counters) — used by the
//!   canonical tuner to estimate `bw(src -> dst)` while the profiling
//!   workload runs;
//! * per-process `(memory node, CPU node)` traffic matrices — the
//!   per-worker attribution the paper derives from per-node counters;
//! * per-process cycle and stall-cycle counters — the DWP tuner's signal
//!   ("resource stall rate", §III-B1);
//! * per-process processed traffic — for MAPI-style intensity metrics.
//!
//! Counters are cumulative; consumers take [`ProcessSample`] snapshots and
//! difference them, exactly like sampling a real PMU.

use crate::process::ProcessId;

/// Cumulative counters for one process.
#[derive(Debug, Clone)]
pub struct ProcCounters {
    /// Executed cycles across all threads.
    pub cycles: f64,
    /// Cycles stalled on memory (latency or bandwidth starvation).
    pub stall_cycles: f64,
    /// Total traffic processed, bytes.
    pub traffic_bytes: f64,
    /// Read bytes by (memory node `src`, CPU node `dst`): row-major
    /// `src * n + dst`.
    pub flow_read_bytes: Vec<f64>,
    /// Write bytes by (memory node, CPU node).
    pub flow_write_bytes: Vec<f64>,
}

impl ProcCounters {
    fn new(n: usize) -> Self {
        ProcCounters {
            cycles: 0.0,
            stall_cycles: 0.0,
            traffic_bytes: 0.0,
            flow_read_bytes: vec![0.0; n * n],
            flow_write_bytes: vec![0.0; n * n],
        }
    }
}

/// Snapshot of a process's counters at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessSample {
    /// Simulated time of the snapshot (seconds).
    pub time: f64,
    /// Cumulative cycles.
    pub cycles: f64,
    /// Cumulative stall cycles.
    pub stall_cycles: f64,
    /// Cumulative traffic bytes.
    pub traffic_bytes: f64,
}

impl ProcessSample {
    /// Average stall rate (stalled cycles per second) between `earlier` and
    /// `self` — the metric the DWP tuner hill-climbs on.
    pub fn stall_rate_since(&self, earlier: &ProcessSample) -> f64 {
        let dt = self.time - earlier.time;
        if dt <= 0.0 {
            return 0.0;
        }
        (self.stall_cycles - earlier.stall_cycles) / dt
    }

    /// Average memory throughput (bytes/second) between two samples.
    pub fn throughput_since(&self, earlier: &ProcessSample) -> f64 {
        let dt = self.time - earlier.time;
        if dt <= 0.0 {
            return 0.0;
        }
        (self.traffic_bytes - earlier.traffic_bytes) / dt
    }
}

/// All counters of the machine.
#[derive(Debug, Clone)]
pub struct PerfCounters {
    n: usize,
    node_read_bytes: Vec<f64>,
    node_write_bytes: Vec<f64>,
    procs: Vec<ProcCounters>,
}

impl PerfCounters {
    /// Fresh counters for an `n`-node machine.
    pub fn new(n: usize) -> Self {
        PerfCounters {
            n,
            node_read_bytes: vec![0.0; n],
            node_write_bytes: vec![0.0; n],
            procs: Vec::new(),
        }
    }

    /// Register a new process (called by the engine on spawn).
    pub(crate) fn register_process(&mut self, pid: ProcessId) {
        while self.procs.len() <= pid.0 {
            self.procs.push(ProcCounters::new(self.n));
        }
    }

    /// Record one epoch's traffic for a process: `read`/`write` in bytes
    /// from memory node `src` consumed by threads on `dst`.
    pub(crate) fn record_flow(
        &mut self,
        pid: ProcessId,
        src: usize,
        dst: usize,
        read: f64,
        write: f64,
    ) {
        self.node_read_bytes[src] += read;
        self.node_write_bytes[src] += write;
        let pc = &mut self.procs[pid.0];
        pc.flow_read_bytes[src * self.n + dst] += read;
        pc.flow_write_bytes[src * self.n + dst] += write;
        pc.traffic_bytes += read + write;
    }

    /// Record one epoch's cycle accounting for a process.
    pub(crate) fn record_cycles(&mut self, pid: ProcessId, cycles: f64, stall_cycles: f64) {
        let pc = &mut self.procs[pid.0];
        pc.cycles += cycles;
        pc.stall_cycles += stall_cycles;
    }

    /// Cumulative read bytes served by a node's memory.
    pub fn node_read_bytes(&self, node: usize) -> f64 {
        self.node_read_bytes[node]
    }

    /// Cumulative write bytes absorbed by a node's memory.
    pub fn node_write_bytes(&self, node: usize) -> f64 {
        self.node_write_bytes[node]
    }

    /// Per-process counters.
    pub fn process(&self, pid: ProcessId) -> &ProcCounters {
        &self.procs[pid.0]
    }

    /// Read bytes process `pid`'s threads on `dst` pulled from memory on
    /// `src`.
    pub fn flow_read_bytes(&self, pid: ProcessId, src: usize, dst: usize) -> f64 {
        self.procs[pid.0].flow_read_bytes[src * self.n + dst]
    }

    /// Write counterpart of [`Self::flow_read_bytes`].
    pub fn flow_write_bytes(&self, pid: ProcessId, src: usize, dst: usize) -> f64 {
        self.procs[pid.0].flow_write_bytes[src * self.n + dst]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flows_accumulate_per_node_and_process() {
        let mut c = PerfCounters::new(2);
        c.register_process(ProcessId(0));
        c.record_flow(ProcessId(0), 0, 1, 100.0, 20.0);
        c.record_flow(ProcessId(0), 0, 1, 50.0, 0.0);
        assert_eq!(c.node_read_bytes(0), 150.0);
        assert_eq!(c.node_write_bytes(0), 20.0);
        assert_eq!(c.flow_read_bytes(ProcessId(0), 0, 1), 150.0);
        assert_eq!(c.process(ProcessId(0)).traffic_bytes, 170.0);
    }

    #[test]
    fn sample_deltas() {
        let a = ProcessSample { time: 1.0, cycles: 100.0, stall_cycles: 30.0, traffic_bytes: 10.0 };
        let b = ProcessSample { time: 3.0, cycles: 300.0, stall_cycles: 90.0, traffic_bytes: 50.0 };
        assert_eq!(b.stall_rate_since(&a), 30.0);
        assert_eq!(b.throughput_since(&a), 20.0);
        // degenerate window
        assert_eq!(a.stall_rate_since(&a), 0.0);
    }

    #[test]
    fn register_is_idempotent_and_gap_free() {
        let mut c = PerfCounters::new(2);
        c.register_process(ProcessId(2));
        c.register_process(ProcessId(0));
        c.record_cycles(ProcessId(2), 10.0, 5.0);
        assert_eq!(c.process(ProcessId(2)).stall_cycles, 5.0);
        assert_eq!(c.process(ProcessId(0)).cycles, 0.0);
    }
}
