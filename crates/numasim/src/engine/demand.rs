//! Translating processes and page placements into fabric demand.
//!
//! # Execution model
//!
//! An application processes abstract *work* that requires memory traffic.
//! Per thread, at the reference latency `L0` and with no bandwidth
//! starvation, the workload demands `D0 = read + write` GB/s. Placement
//! affects execution through two channels:
//!
//! * **Latency**: a fraction `alpha` of the serial critical path is
//!   latency-bound memory accesses (dependent loads). With average access
//!   latency `L(w)` — placement-weighted over the latency matrix — the
//!   serial time per unit of work scales by
//!   `latency_factor = (1 - alpha) + alpha * L(w)/L0`, so the unstalled
//!   demand becomes `D = D0 / latency_factor`.
//! * **Bandwidth**: the fabric allocates each `(process, worker node)`
//!   group a lock-step utilization `u ∈ [0, 1]` of its demand vector
//!   (the paper's Eq. 1/3 pacing: progress follows the slowest parallel
//!   transfer).
//!
//! Progress per thread is `u * D` bytes of traffic per second; stall
//! cycles follow `stall_frac = 1 - u * (1 - alpha) / latency_factor`
//! (at `u = 1` and local-like latency this is `alpha`, the workload's
//! intrinsic memory-stall share). Parallel efficiency (Amdahl serial
//! fraction plus a per-extra-worker-node penalty) scales demand and
//! progress identically, so poorly scaling applications gain nothing from
//! extra nodes — reproducing the paper's stand-alone scenario where some
//! applications peak below the machine size (Fig. 3c/d).

use crate::engine::AppProfile;
use crate::process::{ProcessId, SimProcess};
use crate::REFERENCE_LATENCY_NS;
use bwap_fabric::{DemandSet, FlowDemand};
use bwap_topology::{MachineTopology, NodeId};

/// Post-solve context for one application group.
#[derive(Debug, Clone)]
pub(crate) struct GroupMeta {
    /// Worker node index.
    pub node: usize,
    /// Thread count for cycle accounting (open-loop workloads split a
    /// node's threads across flow groups).
    pub cycle_threads: f64,
    /// Aggregate unstalled demand of the node's threads (GB/s), efficiency
    /// and latency adjusted.
    pub demand_gbps: f64,
    /// Serial-time scaling from average access latency.
    pub latency_factor: f64,
    /// Traffic share per memory node: `node_count` values starting at this
    /// offset of the epoch's [`DemandScratch::share_arena`].
    pub share_off: usize,
}

/// Reusable buffers for demand building — the epoch loop's per-process
/// distributions and the flat arena every group's traffic-share vector
/// lives in. Cleared (`clear_epoch`) once per epoch, never reallocated in
/// steady state.
#[derive(Debug, Clone, Default)]
pub(crate) struct DemandScratch {
    /// Scratch: shared-segment distribution of the current process.
    shared_dist: Vec<f64>,
    /// Scratch: private-page distribution of one worker node's threads.
    priv_dist: Vec<f64>,
    /// Scratch: one segment's distribution.
    seg_dist: Vec<f64>,
    /// Scratch: active memory-node indices (open-loop bundle split).
    active: Vec<usize>,
    /// Arena of per-group share vectors; [`GroupMeta::share_off`] indexes
    /// into it.
    pub share_arena: Vec<f64>,
}

impl DemandScratch {
    /// Reset the arena for a new epoch (scratch vectors are overwritten in
    /// place by the builders).
    pub fn clear_epoch(&mut self) {
        self.share_arena.clear();
    }
}

/// Parallel efficiency per thread for `threads` total threads over
/// `worker_nodes` nodes (Amdahl + multi-node communication penalty).
pub(crate) fn parallel_efficiency(profile: &AppProfile, threads: u32, worker_nodes: usize) -> f64 {
    if threads == 0 {
        return 0.0;
    }
    let t = threads as f64;
    let f = profile.serial_frac;
    let speedup = 1.0 / (f + (1.0 - f) / t);
    let node_penalty = 1.0 + profile.multinode_penalty * (worker_nodes.saturating_sub(1)) as f64;
    (speedup / t) / node_penalty
}

/// Queueing-delay inflation of DRAM access latency as a controller
/// approaches saturation: `1 + a * rho^b` with `rho` the controller's
/// utilization in the previous epoch. The shape (flat until ~70 %, then a
/// steep knee toward ~3x at saturation with the default `a = 2, b = 4`)
/// follows measured loaded-latency curves; exact constants only scale the
/// effect, never its direction.
pub(crate) fn latency_inflation(rho: f64, a: f64, b: f64) -> f64 {
    1.0 + a * rho.clamp(0.0, 1.0).powf(b)
}

/// Build the demand groups for one running process, appending fabric
/// groups to `ds` and `(pid, meta)` records to `metas` (parallel, same
/// order). `ctrl_util` is each node controller's utilization in the
/// previous epoch (for loaded latency); `lat_infl` the `(a, b)` inflation
/// parameters. All working memory comes from `ws` — nothing is allocated
/// in steady state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_app_groups(
    proc_: &SimProcess,
    machine: &MachineTopology,
    ctrl_util: &[f64],
    lat_infl: (f64, f64),
    make_id: impl Fn(usize) -> u64,
    ds: &mut DemandSet,
    metas: &mut Vec<(ProcessId, GroupMeta)>,
    ws: &mut DemandScratch,
) {
    let n = machine.node_count();
    let profile = &proc_.profile;
    ws.shared_dist.resize(n, 0.0);
    proc_
        .aspace
        .segment(proc_.shared_seg)
        .expect("shared segment exists")
        .fill_distribution(&mut ws.shared_dist);
    let total_threads = proc_.total_threads();
    let eff = parallel_efficiency(profile, total_threads, proc_.worker_count());
    let d0_thread = profile.read_gbps_per_thread + profile.write_gbps_per_thread;
    let read_frac = if d0_thread > 0.0 { profile.read_gbps_per_thread / d0_thread } else { 1.0 };
    for w in 0..n {
        let t_w = proc_.threads_per_node[w];
        if t_w == 0 {
            continue;
        }
        // Private-page distribution of this node's threads.
        ws.priv_dist.clear();
        ws.priv_dist.resize(n, 0.0);
        let mut priv_segs = 0usize;
        for &(owner, seg) in &proc_.private_segs {
            if owner.idx() == w {
                ws.seg_dist.resize(n, 0.0);
                proc_
                    .aspace
                    .segment(seg)
                    .expect("private segment exists")
                    .fill_distribution(&mut ws.seg_dist);
                for i in 0..n {
                    ws.priv_dist[i] += ws.seg_dist[i];
                }
                priv_segs += 1;
            }
        }
        if priv_segs > 0 {
            for v in &mut ws.priv_dist {
                *v /= priv_segs as f64;
            }
        }
        let p = profile.private_frac;
        let share_off = ws.share_arena.len();
        for i in 0..n {
            ws.share_arena.push(p * ws.priv_dist[i] + (1.0 - p) * ws.shared_dist[i]);
        }
        // Average access latency seen from node w, inflated by queueing
        // delay at loaded controllers.
        let lat_w: f64 = (0..n)
            .map(|i| {
                ws.share_arena[share_off + i]
                    * machine.latency_ns().get(NodeId(i as u16), NodeId(w as u16))
                    * latency_inflation(ctrl_util[i], lat_infl.0, lat_infl.1)
            })
            .sum();
        let alpha = profile.latency_sensitivity;
        let latency_factor = (1.0 - alpha) + alpha * lat_w / REFERENCE_LATENCY_NS;
        let demand_gbps = t_w as f64 * eff * d0_thread / latency_factor;
        let mk_flow = |share_i: f64, i: usize| FlowDemand {
            mem: NodeId(i as u16),
            cpu: NodeId(w as u16),
            read_gbps: demand_gbps * share_i * read_frac,
            write_gbps: demand_gbps * share_i * (1.0 - read_frac),
        };
        if profile.open_loop {
            // One independent bundle per memory node: fast paths deliver
            // their full share even while slow paths starve. A thread
            // with many outstanding requests turns over slots on a fast
            // path proportionally faster, so when a *shared* resource
            // (core ingress, a controller) binds, per-path throughput
            // splits proportionally to path speed — modelled by weighting
            // each bundle with its path bandwidth. Cycle accounting splits
            // the node's threads across its flow groups so totals stay
            // correct.
            ws.active.clear();
            ws.active.extend(
                (0..n).filter(|&i| ws.share_arena[share_off + i] > 1e-12 && demand_gbps > 0.0),
            );
            let cycle_share = t_w as f64 / ws.active.len().max(1) as f64;
            for idx in 0..ws.active.len() {
                let i = ws.active[idx];
                let share_i = ws.share_arena[share_off + i];
                let one_hot_off = ws.share_arena.len();
                for j in 0..n {
                    ws.share_arena.push(if j == i { 1.0 } else { 0.0 });
                }
                let path_bw = machine.path_caps().get(NodeId(i as u16), NodeId(w as u16));
                ds.begin_group(make_id(w), t_w as f64 * path_bw, 1.0);
                ds.add_flow(mk_flow(share_i, i));
                metas.push((
                    proc_.id,
                    GroupMeta {
                        node: w,
                        cycle_threads: cycle_share,
                        demand_gbps: demand_gbps * share_i,
                        latency_factor,
                        share_off: one_hot_off,
                    },
                ));
            }
        } else {
            ds.begin_group(make_id(w), t_w as f64, 1.0);
            for i in 0..n {
                let share_i = ws.share_arena[share_off + i];
                if share_i > 1e-12 && demand_gbps > 0.0 {
                    ds.add_flow(mk_flow(share_i, i));
                }
            }
            metas.push((
                proc_.id,
                GroupMeta {
                    node: w,
                    cycle_threads: t_w as f64,
                    demand_gbps,
                    latency_factor,
                    share_off,
                },
            ));
        }
    }
}

/// Stall fraction of threads running at utilization `u` with the given
/// latency factor and latency sensitivity `alpha`.
pub(crate) fn stall_fraction(u: f64, alpha: f64, latency_factor: f64) -> f64 {
    (1.0 - u * (1.0 - alpha) / latency_factor).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(alpha: f64, serial: f64, penalty: f64) -> AppProfile {
        AppProfile {
            name: "t".into(),
            read_gbps_per_thread: 2.0,
            write_gbps_per_thread: 1.0,
            private_frac: 0.0,
            latency_sensitivity: alpha,
            serial_frac: serial,
            multinode_penalty: penalty,
            shared_pages: 100,
            private_pages_per_thread: 10,
            total_traffic_gb: 10.0,
            open_loop: false,
        }
    }

    #[test]
    fn efficiency_perfect_scaling() {
        let p = profile(0.0, 0.0, 0.0);
        assert!((parallel_efficiency(&p, 1, 1) - 1.0).abs() < 1e-12);
        assert!((parallel_efficiency(&p, 16, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_amdahl_limits() {
        let p = profile(0.0, 0.5, 0.0);
        // speedup(4) = 1/(0.5+0.125) = 1.6; eff = 0.4
        assert!((parallel_efficiency(&p, 4, 1) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn efficiency_multinode_penalty() {
        let p = profile(0.0, 0.0, 0.25);
        assert!((parallel_efficiency(&p, 8, 2) - 1.0 / 1.25).abs() < 1e-12);
        assert!((parallel_efficiency(&p, 8, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stall_fraction_baseline_is_alpha() {
        // u = 1, local latency (factor 1): stall share equals alpha.
        assert!((stall_fraction(1.0, 0.3, 1.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn latency_inflation_shape() {
        // flat at idle, ~3x at saturation with defaults
        assert!((latency_inflation(0.0, 2.0, 4.0) - 1.0).abs() < 1e-12);
        assert!(latency_inflation(0.5, 2.0, 4.0) < 1.2);
        assert!((latency_inflation(1.0, 2.0, 4.0) - 3.0).abs() < 1e-12);
        // monotone
        let mut prev = 0.0;
        for i in 0..=10 {
            let v = latency_inflation(i as f64 / 10.0, 2.0, 4.0);
            assert!(v >= prev);
            prev = v;
        }
        // ablated
        assert_eq!(latency_inflation(0.9, 0.0, 4.0), 1.0);
    }

    #[test]
    fn stall_fraction_grows_with_starvation_and_latency() {
        let base = stall_fraction(1.0, 0.3, 1.0);
        assert!(stall_fraction(0.5, 0.3, 1.0) > base);
        assert!(stall_fraction(1.0, 0.3, 1.5) > base);
        assert_eq!(stall_fraction(0.0, 0.3, 1.0), 1.0);
    }
}
