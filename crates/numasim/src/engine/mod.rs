//! The epoch-based simulation engine.
//!
//! Each epoch (`SimConfig::epoch_dt` of simulated time) the engine:
//!
//! 1. converts every running process's page placement and workload profile
//!    into lock-step demand groups (one per worker node — see the
//!    crate-private `demand` module);
//! 2. adds rate-limited migration traffic for pending page moves;
//! 3. lets `bwap-fabric` allocate bandwidth (weighted demand-bounded
//!    max-min over the machine's controllers, links, path caps and ingress
//!    limits);
//! 4. advances progress, accounts stall cycles and per-flow counters, and
//!    completes migrations;
//! 5. fires due daemons (AutoNUMA, tuners, monitors).
//!
//! Everything is deterministic: identical inputs give identical traces.

pub(crate) mod demand;

use crate::daemon::Daemon;
use crate::error::SimError;
use crate::mem::address_space::AddressSpace;
use crate::mem::frames::FramePools;
use crate::mem::migrate::{MigrationQueue, PendingMove, PendingRange};
use crate::mem::policy::MemPolicy;
use crate::mem::segment::{SegmentId, SegmentKind};
use crate::perf::{PerfCounters, ProcessSample};
use crate::process::{ProcessId, ProcessState, SimProcess};
use crate::trace::{self, ArgValue, TraceSink};
use crate::CLOCK_HZ;
use bwap_fabric::{
    ControllerModel, DemandSet, FlowDemand, ResourceTable, SolveResult, SolveScratch,
};
use bwap_topology::{MachineTopology, NodeId, NodeSet, PAGE_SIZE};

/// Workload characterization of an application (the simulated analogue of
/// the paper's Table I plus scalability traits).
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Application name (diagnostics, reports).
    pub name: String,
    /// Read demand per thread at reference latency, unstalled (GB/s).
    pub read_gbps_per_thread: f64,
    /// Write demand per thread (GB/s).
    pub write_gbps_per_thread: f64,
    /// Fraction of traffic addressing thread-private pages (Table I
    /// "private accesses").
    pub private_frac: f64,
    /// Fraction of the serial critical path that is latency-bound memory
    /// access (`alpha`): 0 = pure bandwidth streaming, 1 = pure pointer
    /// chasing.
    pub latency_sensitivity: f64,
    /// Amdahl serial fraction (limits thread scaling).
    pub serial_frac: f64,
    /// Relative slowdown per additional worker node (synchronization /
    /// sharing traffic across nodes).
    pub multinode_penalty: f64,
    /// Shared segment size in pages.
    pub shared_pages: u64,
    /// Private segment size per thread, pages.
    pub private_pages_per_thread: u64,
    /// Total traffic to process before completion, GB (`f64::INFINITY`
    /// for continuously running services).
    pub total_traffic_gb: f64,
    /// `false` (normal applications): each worker node's transfers pace
    /// each other in lock-step — progress follows the slowest parallel
    /// transfer (the paper's Eq. 1/3). `true` (bandwidth probes such as
    /// the canonical tuner's reference workload): every `(memory node,
    /// worker)` flow fills its path independently, so per-path counters
    /// expose the asymmetric path bandwidths.
    pub open_loop: bool,
}

impl AppProfile {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |m: String| Err(SimError::InvalidWeights(m));
        if !(self.read_gbps_per_thread >= 0.0 && self.read_gbps_per_thread.is_finite()) {
            return bad(format!("read_gbps {}", self.read_gbps_per_thread));
        }
        if !(self.write_gbps_per_thread >= 0.0 && self.write_gbps_per_thread.is_finite()) {
            return bad(format!("write_gbps {}", self.write_gbps_per_thread));
        }
        for (name, v) in [
            ("private_frac", self.private_frac),
            ("latency_sensitivity", self.latency_sensitivity),
            ("serial_frac", self.serial_frac),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return bad(format!("{name} {v} outside [0,1]"));
            }
        }
        if self.serial_frac >= 1.0 {
            return bad("serial_frac must be < 1".into());
        }
        if !(self.multinode_penalty >= 0.0 && self.multinode_penalty.is_finite()) {
            return bad(format!("multinode_penalty {}", self.multinode_penalty));
        }
        if self.shared_pages == 0 {
            return bad("shared_pages must be > 0".into());
        }
        if self.total_traffic_gb.is_nan() || self.total_traffic_gb <= 0.0 {
            return bad(format!("total_traffic_gb {}", self.total_traffic_gb));
        }
        Ok(())
    }

    /// Whether the application runs forever (service-style).
    pub fn runs_forever(&self) -> bool {
        self.total_traffic_gb.is_infinite()
    }
}

/// How the simulator advances time (see `docs/ARCHITECTURE.md`).
///
/// Both modes produce bit-identical results — `Stepped` is the reference
/// semantics, `EventDriven` is an optimization pinned to it by the
/// differential harness in `tests/event_equiv.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Execute every epoch in full: build demand, solve, account.
    #[default]
    Stepped,
    /// Detect quiescent steady state (no pending migrations, no process
    /// at a finish or phase boundary, bandwidth allocation at its fixed
    /// point) and replay only the progress-accounting stage until the
    /// next interesting time — phase boundary, process finish, daemon
    /// fire, or the run limit — instead of re-solving identical epochs.
    EventDriven,
}

impl EngineMode {
    /// Stable lowercase label (CLI flag values, report provenance).
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Stepped => "stepped",
            EngineMode::EventDriven => "event-driven",
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Epoch length, simulated seconds.
    pub epoch_dt: f64,
    /// Per-process migration engine bandwidth cap (GB/s) — the kernel's
    /// page-copy throughput budget.
    pub migration_gbps: f64,
    /// Memory-controller behaviour.
    pub ctrl_model: ControllerModel,
    /// Loaded-latency inflation `(a, b)`: access latency to a node scales
    /// by `1 + a * rho^b` with `rho` its controller's utilization (see
    /// `demand::latency_inflation`). Set `a = 0` to ablate queueing
    /// delay.
    pub latency_inflation: (f64, f64),
    /// Time-advancement strategy; results are identical in both modes.
    pub mode: EngineMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            epoch_dt: 0.005,
            migration_gbps: 2.0,
            ctrl_model: ControllerModel::default(),
            latency_inflation: (2.0, 4.0),
            mode: EngineMode::default(),
        }
    }
}

struct DaemonSlot {
    next_fire: f64,
    period: f64,
    daemon: Option<Box<dyn Daemon>>,
}

/// One process's migration attempt this epoch (post-solve bookkeeping).
struct MigAttempt {
    pid: ProcessId,
    pages: usize,
}

/// The epoch loop's persistent workspace: every buffer `step` needs,
/// allocated once and reused — in steady state an epoch performs no heap
/// allocation at all (see `docs/PERFORMANCE.md`).
#[derive(Default)]
struct StepScratch {
    /// Fabric demand set (group headers + flow arena).
    ds: DemandSet,
    /// Fabric solver buffers.
    solve_ws: SolveScratch,
    /// Solver output, reused.
    solved: SolveResult,
    /// `(pid, meta)` per application group, parallel to `ds`'s app groups.
    app_meta: Vec<(ProcessId, demand::GroupMeta)>,
    /// Demand-building buffers (distributions, share arena).
    demand_ws: demand::DemandScratch,
    /// Per-process `(group index, activity)` lists.
    per_proc: Vec<Vec<(usize, f64)>>,
    /// Migration groups appended after the app groups.
    mig_meta: Vec<MigAttempt>,
    /// Dense n*n page counts per `(from, to)` migration pair.
    pair_count: Vec<u64>,
    /// `(from, to)` pairs in first-appearance (FIFO) order.
    pair_order: Vec<(u16, u16)>,
    /// Ranges completed this epoch.
    completed: Vec<PendingRange>,
    /// Constant-node runs of the range being applied.
    runs_buf: Vec<(u64, u64, NodeId)>,
}

/// The simulated machine + OS. See module docs.
pub struct Simulator {
    machine: MachineTopology,
    resources: ResourceTable,
    cfg: SimConfig,
    frames: FramePools,
    fallback: Vec<Vec<NodeId>>,
    procs: Vec<SimProcess>,
    daemons: Vec<DaemonSlot>,
    clock: f64,
    counters: PerfCounters,
    /// Controller utilization per node in the previous epoch (drives the
    /// loaded-latency feedback).
    ctrl_util: Vec<f64>,
    /// `ctrl_util` as of the epoch before that — when the two agree the
    /// demand → allocation → utilization feedback loop is at its fixed
    /// point, one of the conditions for an event-driven stride.
    util_prev: Vec<f64>,
    /// Whether the last full epoch was quiescent: re-running it would
    /// change nothing but the clock and accumulated progress.
    quiescent: bool,
    /// Reused epoch-loop buffers.
    scratch: StepScratch,
    /// Structured run tracing; `None` (the default) makes every hook a
    /// single branch and keeps the epoch loop allocation-free.
    trace: Option<TraceSink>,
}

impl Simulator {
    /// Boot a machine.
    pub fn new(machine: MachineTopology, cfg: SimConfig) -> Self {
        assert!(cfg.epoch_dt > 0.0, "epoch must be positive");
        cfg.ctrl_model.validate().expect("valid controller model");
        let resources = ResourceTable::from_machine(&machine);
        let frames = FramePools::from_machine(&machine);
        let n = machine.node_count();
        // Allocation spill order: nearest (lowest latency) first.
        let fallback: Vec<Vec<NodeId>> = (0..n)
            .map(|t| {
                let mut others: Vec<NodeId> =
                    (0..n).filter(|&i| i != t).map(|i| NodeId(i as u16)).collect();
                others.sort_by(|a, b| {
                    machine
                        .latency_ns()
                        .get(*a, NodeId(t as u16))
                        .partial_cmp(&machine.latency_ns().get(*b, NodeId(t as u16)))
                        .unwrap()
                        .then(a.0.cmp(&b.0))
                });
                others
            })
            .collect();
        Simulator {
            counters: PerfCounters::new(n),
            machine,
            resources,
            cfg,
            frames,
            fallback,
            procs: Vec::new(),
            daemons: Vec::new(),
            clock: 0.0,
            ctrl_util: vec![0.0; n],
            util_prev: vec![0.0; n],
            quiescent: false,
            scratch: StepScratch::default(),
            trace: None,
        }
    }

    /// Install a [`TraceSink`]: from now on the engine records epochs,
    /// phase switches, migration activity and per-link bandwidth shares
    /// into it (see [`crate::trace`] and `docs/TRACING.md`). Replaces any
    /// previously installed sink. Tracks are named for already-spawned
    /// processes immediately; later spawns name themselves.
    pub fn set_trace_sink(&mut self, mut sink: TraceSink) {
        let ts = trace::ts_us(self.clock);
        sink.note_track(trace::ENGINE_TRACK, "engine", ts);
        for p in &self.procs {
            sink.note_track(trace::process_track(p.id), &p.profile.name, ts);
        }
        self.trace = Some(sink);
    }

    /// Remove and return the installed sink (typically to serialize it
    /// with [`TraceSink::to_chrome_json`] after a run).
    pub fn take_trace_sink(&mut self) -> Option<TraceSink> {
        self.trace.take()
    }

    /// Whether a trace sink is installed.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Record a generic instant marker at the current simulated time, on
    /// a process's track (or the engine track with `pid == None`). A
    /// no-op without a sink. This is the hook daemons layered above the
    /// simulator use to place their own decisions on the timeline — e.g.
    /// the BWAP runtime's adaptive tuner marks each retune — without the
    /// engine knowing their vocabulary.
    pub fn trace_instant(
        &mut self,
        name: &'static str,
        pid: Option<ProcessId>,
        args: &[(&'static str, f64)],
    ) {
        let ts = trace::ts_us(self.clock);
        if let Some(tr) = self.trace.as_mut() {
            let track = pid.map_or(trace::ENGINE_TRACK, trace::process_track);
            tr.instant(
                name,
                ts,
                track,
                args.iter().map(|&(k, v)| (k.into(), ArgValue::F64(v))).collect(),
            );
        }
    }

    /// Controller utilization per node during the previous epoch.
    pub fn controller_utilization(&self) -> &[f64] {
        &self.ctrl_util
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &MachineTopology {
        &self.machine
    }

    /// Current simulated time, seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Performance counters.
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// Engine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Launch a process: pin `threads_per_node` threads (default: every
    /// core) on each worker node, allocate and first-touch its memory under
    /// `policy` (applied to all segments, like `numactl`).
    ///
    /// Shared pages are touched by the master thread on the first worker
    /// node; private pages by their owning thread — so under
    /// [`MemPolicy::FirstTouch`] shared data centralizes on one node, the
    /// pathology the paper's Fig. 1b demonstrates.
    pub fn spawn(
        &mut self,
        profile: AppProfile,
        workers: NodeSet,
        threads_per_node: Option<u16>,
        policy: MemPolicy,
    ) -> Result<ProcessId, SimError> {
        self.spawn_inner(profile, workers, threads_per_node, policy, None)
    }

    /// Register a process that arrives at simulated time `at` (>= the
    /// current clock). Validation and memory placement happen now — pages
    /// are pre-faulted at submission, so placement policies see the final
    /// layout — but the process stays [`ProcessState::Pending`] and
    /// generates no demand until the first epoch boundary at or past `at`,
    /// when the engine activates it and emits an `"arrival"` trace instant.
    ///
    /// An idle event-driven simulator strides across the gap to the next
    /// arrival instead of stepping through it epoch by epoch.
    pub fn spawn_at(
        &mut self,
        at: f64,
        profile: AppProfile,
        workers: NodeSet,
        threads_per_node: Option<u16>,
        policy: MemPolicy,
    ) -> Result<ProcessId, SimError> {
        if !at.is_finite() || at + 1e-12 < self.clock {
            return Err(SimError::InvalidTime(format!(
                "arrival time {at} is before the clock ({})",
                self.clock
            )));
        }
        self.spawn_inner(profile, workers, threads_per_node, policy, Some(at))
    }

    /// Schedule `pid` to depart (leave the machine) at simulated time `at`
    /// (>= the current clock), whether or not its work has completed by
    /// then. The engine retires the process at the first epoch boundary at
    /// or past `at`: it stops generating demand, pending migrations are
    /// dropped (their drain flows close), and a `"departure"` trace
    /// instant is emitted. A later call replaces an earlier schedule. A
    /// pending process may depart before it arrives; it then never runs.
    pub fn depart_at(&mut self, pid: ProcessId, at: f64) -> Result<(), SimError> {
        if !at.is_finite() || at + 1e-12 < self.clock {
            return Err(SimError::InvalidTime(format!(
                "departure time {at} is before the clock ({})",
                self.clock
            )));
        }
        let p = self.process_mut(pid)?;
        if matches!(p.state, ProcessState::Finished { .. }) {
            return Err(SimError::ProcessFinished(pid.0));
        }
        p.departs_at = Some(at);
        Ok(())
    }

    fn spawn_inner(
        &mut self,
        profile: AppProfile,
        workers: NodeSet,
        threads_per_node: Option<u16>,
        policy: MemPolicy,
        arrival: Option<f64>,
    ) -> Result<ProcessId, SimError> {
        profile.validate()?;
        policy.validate(self.machine.node_count())?;
        if workers.is_empty() {
            return Err(SimError::InvalidNodes("empty worker set".into()));
        }
        if !workers.is_subset(self.machine.all_nodes()) {
            return Err(SimError::InvalidNodes(format!("workers {workers} exceed machine")));
        }
        // Threads can only run on worker-capable nodes; CPU-less expander
        // tiers hold pages, never threads (AutoNUMA and the scenario
        // runners rely on this same guarantee).
        if let Some(w) = workers.iter().find(|&w| self.machine.node(w).is_memory_only()) {
            return Err(SimError::InvalidNodes(format!(
                "worker node {w} is memory-only (no cores)"
            )));
        }
        let min_cores =
            workers.iter().map(|w| self.machine.node(w).cores).min().expect("non-empty workers");
        let tpn = threads_per_node.unwrap_or(min_cores);
        if tpn == 0 || tpn > min_cores {
            return Err(SimError::InvalidNodes(format!(
                "threads per node {tpn} exceeds cores {min_cores}"
            )));
        }
        let pid = ProcessId(self.procs.len());
        let mut threads_per_node_vec = vec![0u16; self.machine.node_count()];
        for w in workers.iter() {
            threads_per_node_vec[w.idx()] = tpn;
        }
        let master = workers.min().expect("non-empty workers");
        let mut aspace = AddressSpace::new();
        let shared_seg = aspace.create_segment(
            SegmentKind::Shared,
            profile.shared_pages,
            &policy,
            master,
            &mut self.frames,
            &self.fallback,
        )?;
        let mut private_segs = Vec::new();
        let mut thread_idx = 0usize;
        for w in workers.iter() {
            for _ in 0..tpn {
                let seg = aspace.create_segment(
                    SegmentKind::Private { thread: thread_idx },
                    profile.private_pages_per_thread.max(1),
                    &policy,
                    w,
                    &mut self.frames,
                    &self.fallback,
                )?;
                private_segs.push((w, seg));
                thread_idx += 1;
            }
        }
        self.counters.register_process(pid);
        let (state, started_at) = match arrival {
            Some(at) => (ProcessState::Pending { at }, at),
            None => (ProcessState::Running, self.clock),
        };
        self.procs.push(SimProcess {
            id: pid,
            profile,
            workers,
            threads_per_node: threads_per_node_vec,
            aspace,
            shared_seg,
            private_segs,
            work_done_gb: 0.0,
            state,
            started_at,
            departs_at: None,
            migrations: MigrationQueue::new(),
            migration_credit: 0.0,
            phases: None,
        });
        if let Some(tr) = self.trace.as_mut() {
            tr.note_track(
                trace::process_track(pid),
                &self.procs[pid.0].profile.name,
                trace::ts_us(self.clock),
            );
        }
        Ok(pid)
    }

    /// Borrow a process.
    pub fn process(&self, pid: ProcessId) -> Result<&SimProcess, SimError> {
        self.procs.get(pid.0).ok_or(SimError::NoSuchProcess(pid.0))
    }

    fn process_mut(&mut self, pid: ProcessId) -> Result<&mut SimProcess, SimError> {
        self.procs.get_mut(pid.0).ok_or(SimError::NoSuchProcess(pid.0))
    }

    /// `mbind(2)` analogue: apply `policy` to `[start, start+len)` of a
    /// segment. With `move_pages` (the `MPOL_MF_MOVE | MPOL_MF_STRICT`
    /// combination the paper uses), queues migration of non-complying
    /// pages; they move at the migration engine's rate over the following
    /// epochs. Returns the number of queued page moves.
    ///
    /// Non-compliance is computed per placement run (O(extents + policy
    /// blocks), not O(pages)) and queued as [`PendingRange`]s; without
    /// `move_pages` the call returns after validation, before any scan.
    pub fn mbind(
        &mut self,
        pid: ProcessId,
        seg: SegmentId,
        start: u64,
        len: u64,
        policy: MemPolicy,
        move_pages: bool,
    ) -> Result<usize, SimError> {
        policy.validate(self.machine.node_count())?;
        let pending: Vec<PendingRange> = {
            let proc_ = self.process(pid)?;
            let master = proc_.master_node();
            let segment = proc_.aspace.segment(seg)?;
            if start + len > segment.len() {
                return Err(SimError::RangeOutOfBounds { start, len, segment_len: segment.len() });
            }
            if !move_pages {
                return Ok(0);
            }
            segment
                .non_complying_runs(start, len, &policy, master)?
                .into_iter()
                .map(|r| PendingRange {
                    segment: seg,
                    start: r.start,
                    len: r.len,
                    from: r.from,
                    to: r.to,
                })
                .collect()
        };
        // A new mbind over the range supersedes any moves still queued for
        // it (the latest policy wins, as with Linux's synchronous mbind).
        let proc_ = self.process_mut(pid)?;
        proc_.migrations.cancel_range(seg, start, len);
        let count: u64 = pending.iter().map(|r| r.len).sum();
        proc_.migrations.enqueue_ranges(pending);
        if count > 0 {
            if let Some(tr) = self.trace.as_mut() {
                tr.instant(
                    "mbind",
                    trace::ts_us(self.clock),
                    trace::process_track(pid),
                    vec![
                        ("segment".into(), ArgValue::U64(seg.0 as u64)),
                        ("queued".into(), ArgValue::U64(count)),
                    ],
                );
            }
        }
        Ok(count as usize)
    }

    /// Apply one policy across every segment of the process (shared and
    /// private), as `numactl` does for a whole address space. Returns total
    /// queued moves.
    pub fn apply_policy_all_segments(
        &mut self,
        pid: ProcessId,
        policy: &MemPolicy,
        move_pages: bool,
    ) -> Result<usize, SimError> {
        let segs: Vec<(SegmentId, u64)> =
            self.process(pid)?.aspace.iter().map(|(id, s)| (id, s.len())).collect();
        let mut total = 0;
        for (id, len) in segs {
            total += self.mbind(pid, id, 0, len, policy.clone(), move_pages)?;
        }
        Ok(total)
    }

    /// Directly enqueue single-page moves (tests and per-page callers;
    /// contiguous moves coalesce into ranges in the queue).
    pub fn enqueue_moves(
        &mut self,
        pid: ProcessId,
        moves: Vec<PendingMove>,
    ) -> Result<(), SimError> {
        self.process_mut(pid)?.migrations.enqueue(moves);
        Ok(())
    }

    /// Directly enqueue page-move ranges (used by AutoNUMA and tests).
    pub fn enqueue_move_ranges(
        &mut self,
        pid: ProcessId,
        ranges: Vec<PendingRange>,
    ) -> Result<(), SimError> {
        self.process_mut(pid)?.migrations.enqueue_ranges(ranges);
        Ok(())
    }

    /// Number of queued-but-unfinished page moves.
    pub fn pending_migrations(&self, pid: ProcessId) -> usize {
        self.procs.get(pid.0).map_or(0, |p| p.migrations.pending())
    }

    /// Pages migrated so far on behalf of `pid`.
    pub fn migrated_pages(&self, pid: ProcessId) -> u64 {
        self.procs.get(pid.0).map_or(0, |p| p.migrations.migrated_total)
    }

    /// Replace a running process's workload characterization mid-run —
    /// the simulated analogue of an application entering a new execution
    /// phase (different demand, read/write mix, latency sensitivity).
    /// Memory layout (segment sizes) is kept; only demand characteristics
    /// change. Total work continues counting against the *new* profile's
    /// `total_traffic_gb`.
    pub fn set_profile(&mut self, pid: ProcessId, profile: AppProfile) -> Result<(), SimError> {
        profile.validate()?;
        let p = self.process_mut(pid)?;
        if !p.is_running() {
            return Err(SimError::ProcessFinished(pid.0));
        }
        p.profile = profile;
        Ok(())
    }

    /// Install a cycling phase schedule on a running process: the engine
    /// swaps the process's demand profile at each phase boundary (start of
    /// the first epoch at or past the boundary), cycling phase 0 → 1 → …
    /// → 0 until the process finishes. The simulated analogue of an
    /// application with phase-structured behaviour; memory layout stays
    /// fixed, exactly as with [`Simulator::set_profile`].
    ///
    /// The process's profile is set to phase 0's immediately. Every phase
    /// needs a positive finite duration and a valid profile; the phase
    /// list must be non-empty.
    pub fn set_phase_timeline(
        &mut self,
        pid: ProcessId,
        phases: Vec<(f64, AppProfile)>,
    ) -> Result<(), SimError> {
        if phases.is_empty() {
            return Err(SimError::InvalidWeights("empty phase timeline".into()));
        }
        for (i, (d, profile)) in phases.iter().enumerate() {
            // A phase must span at least one epoch: boundaries are only
            // observed at epoch granularity, and a duration below the
            // float ulp of the clock would never advance `next_switch`
            // (an infinite loop, not just a skipped phase).
            if !(d.is_finite() && *d >= self.cfg.epoch_dt) {
                return Err(SimError::InvalidWeights(format!(
                    "phase {i}: duration {d} shorter than one epoch ({})",
                    self.cfg.epoch_dt
                )));
            }
            profile.validate()?;
        }
        let clock = self.clock;
        let p = self.process_mut(pid)?;
        if !p.is_running() {
            return Err(SimError::ProcessFinished(pid.0));
        }
        p.profile = phases[0].1.clone();
        p.phases = Some(crate::process::PhaseTimeline {
            next_switch: clock + phases[0].0,
            phases,
            idx: 0,
            switches: 0,
        });
        Ok(())
    }

    /// Phase boundaries a process has crossed so far (0 for processes
    /// without a timeline).
    pub fn phase_switches(&self, pid: ProcessId) -> u64 {
        self.procs.get(pid.0).and_then(|p| p.phases.as_ref()).map_or(0, |t| t.switches)
    }

    /// Snapshot of a process's cycle/stall/traffic counters.
    pub fn sample(&self, pid: ProcessId) -> Result<ProcessSample, SimError> {
        let pc = self
            .procs
            .get(pid.0)
            .ok_or(SimError::NoSuchProcess(pid.0))
            .map(|_| self.counters.process(pid))?;
        Ok(ProcessSample {
            time: self.clock,
            cycles: pc.cycles,
            stall_cycles: pc.stall_cycles,
            traffic_bytes: pc.traffic_bytes,
        })
    }

    /// Current page distribution of the shared segment (fractions per
    /// node).
    pub fn shared_distribution(&self, pid: ProcessId) -> Result<Vec<f64>, SimError> {
        let p = self.process(pid)?;
        Ok(p.aspace.segment(p.shared_seg)?.distribution())
    }

    /// Aggregate page distribution over the whole address space.
    pub fn full_distribution(&self, pid: ProcessId) -> Result<Vec<f64>, SimError> {
        let p = self.process(pid)?;
        let counts = p.aspace.node_counts(self.machine.node_count());
        let total: u64 = counts.iter().sum();
        Ok(counts.iter().map(|&c| c as f64 / total.max(1) as f64).collect())
    }

    /// Register a periodic daemon; first fire at `clock + phase`, then
    /// every `period`.
    pub fn add_daemon(&mut self, daemon: Box<dyn Daemon>, period: f64, phase: f64) {
        assert!(period > 0.0, "daemon period must be positive");
        self.daemons.push(DaemonSlot {
            next_fire: self.clock + phase,
            period,
            daemon: Some(daemon),
        });
    }

    /// Execution time of a finished process.
    pub fn execution_time(&self, pid: ProcessId) -> Option<f64> {
        self.procs.get(pid.0).and_then(|p| p.execution_time())
    }

    /// Advance one epoch.
    pub fn step(&mut self) {
        let dt = self.cfg.epoch_dt;
        let n = self.machine.node_count();
        let epoch_ts = trace::ts_us(self.clock);
        if let Some(tr) = self.trace.as_mut() {
            tr.begin("epoch", epoch_ts, trace::ENGINE_TRACK);
        }

        // 0a. Lifecycle: activate due arrivals and retire due departures
        // before demand assembly, so a job arriving this epoch contributes
        // demand this epoch and a departing one contributes none.
        let any_lifecycle = self.process_lifecycle(epoch_ts);

        // 0. Phase boundaries: swap demand profiles of phase-structured
        // processes. Steady-state epochs only compare the clock; the
        // profile clone happens at boundaries (a handful per run).
        for p in &mut self.procs {
            if !p.is_running() {
                continue;
            }
            let Some(tl) = p.phases.as_mut() else { continue };
            while self.clock + 1e-12 >= tl.next_switch {
                tl.idx = (tl.idx + 1) % tl.phases.len();
                tl.next_switch += tl.phases[tl.idx].0;
                tl.switches += 1;
                p.profile = tl.phases[tl.idx].1.clone();
                if let Some(tr) = self.trace.as_mut() {
                    tr.instant(
                        "phase-switch",
                        epoch_ts,
                        trace::process_track(p.id),
                        vec![
                            ("phase".into(), ArgValue::U64(tl.idx as u64)),
                            ("switches".into(), ArgValue::U64(tl.switches)),
                        ],
                    );
                }
            }
        }
        let scratch = &mut self.scratch;

        // 1-2. Assemble demand into the reused workspace.
        scratch.ds.clear();
        scratch.app_meta.clear();
        scratch.demand_ws.clear_epoch();
        for p in &self.procs {
            if !p.is_running() {
                continue;
            }
            let pid = p.id;
            demand::build_app_groups(
                p,
                &self.machine,
                &self.ctrl_util,
                self.cfg.latency_inflation,
                |w| (pid.0 as u64) << 16 | w as u64,
                &mut scratch.ds,
                &mut scratch.app_meta,
                &mut scratch.demand_ws,
            );
        }
        scratch.mig_meta.clear();
        scratch.pair_count.resize(n * n, 0);
        for p in &self.procs {
            if p.migrations.is_empty() {
                continue;
            }
            let budget_pages =
                ((self.cfg.migration_gbps * 1e9 * dt) / PAGE_SIZE as f64).ceil() as usize;
            let attempt = budget_pages.min(p.migrations.pending()).max(1);
            // Aggregate attempted moves by (from, to): dense counts, plus
            // the pairs in first-appearance (FIFO) order so the emitted
            // flow order matches the queue page order exactly.
            for &(f, t) in &scratch.pair_order {
                scratch.pair_count[f as usize * n + t as usize] = 0;
            }
            scratch.pair_order.clear();
            let mut left = attempt as u64;
            for r in p.migrations.ranges() {
                if left == 0 {
                    break;
                }
                let take = r.len.min(left);
                left -= take;
                let key = r.from.0 as usize * n + r.to.0 as usize;
                if scratch.pair_count[key] == 0 {
                    scratch.pair_order.push((r.from.0, r.to.0));
                }
                scratch.pair_count[key] += take;
            }
            scratch.ds.begin_group((1u64 << 63) | p.id.0 as u64, 1.0, 1.0);
            for &(from, to) in &scratch.pair_order {
                let count = scratch.pair_count[from as usize * n + to as usize];
                let rate = count as f64 * PAGE_SIZE as f64 / dt / 1e9;
                // Read the page from its current node...
                scratch.ds.add_flow(FlowDemand {
                    mem: NodeId(from),
                    cpu: NodeId(to),
                    read_gbps: rate,
                    write_gbps: 0.0,
                });
                // ...and write it into the destination node.
                scratch.ds.add_flow(FlowDemand {
                    mem: NodeId(to),
                    cpu: NodeId(to),
                    read_gbps: 0.0,
                    write_gbps: rate,
                });
            }
            scratch.mig_meta.push(MigAttempt { pid: p.id, pages: attempt });
            if let Some(tr) = self.trace.as_mut() {
                tr.drain_start(
                    p.id.0,
                    trace::process_track(p.id),
                    epoch_ts,
                    p.migrations.pending() as u64,
                );
            }
        }

        // 3. Allocate bandwidth.
        scratch.ds.solve_into(
            &self.machine,
            &self.resources,
            &self.cfg.ctrl_model,
            &mut scratch.solve_ws,
            &mut scratch.solved,
        );
        self.util_prev.clear();
        self.util_prev.extend_from_slice(&self.ctrl_util);
        for i in 0..n {
            let r = self.resources.ctrl(NodeId(i as u16));
            self.ctrl_util[i] =
                scratch.solved.allocation.utilization(self.resources.capacities(), r);
        }
        let util_fixed = self.util_prev == self.ctrl_util;
        if let Some(tr) = self.trace.as_mut() {
            // Directed link pairs arrive consecutively (AtoB then BtoA);
            // fold each pair into one per-link counter sample.
            let mut shares = scratch.solved.link_shares(&self.resources);
            tr.link_counters(
                epoch_ts,
                std::iter::from_fn(|| {
                    let (l, _, ab) = shares.next()?;
                    let (_, _, ba) = shares.next().expect("directions come in pairs");
                    Some((l.0, ab, ba))
                }),
            );
        }

        // 4. Progress, stalls, counters — the one stage an event-driven
        // stride replays per skipped epoch, so it lives in its own method.
        let any_finished = self.advance_progress();
        let scratch = &mut self.scratch;
        let app_groups = scratch.app_meta.len();

        // 5. Complete migrations, range by range.
        for mi in 0..scratch.mig_meta.len() {
            let att = &scratch.mig_meta[mi];
            let u = scratch.solved.outcomes[app_groups + mi].activity;
            let pid = att.pid;
            self.procs[pid.0].migration_credit += u * att.pages as f64;
            let completed = (self.procs[pid.0].migration_credit + 1e-9).floor() as usize;
            if completed == 0 {
                continue;
            }
            self.procs[pid.0].migration_credit -= completed as f64;
            let completed_pages = completed as u64;
            scratch.completed.clear();
            self.procs[pid.0].migrations.complete_into(completed, &mut scratch.completed);
            let StepScratch { completed, runs_buf, .. } = &mut *scratch;
            for r in completed.iter() {
                // A later mbind may have re-queued these pages while the
                // range was pending: trust the page table, not the stale
                // `from` recorded at enqueue time.
                runs_buf.clear();
                {
                    let seg = self.procs[pid.0].aspace.segment(r.segment).expect("segment exists");
                    seg.for_each_run(r.start, r.len, |a, l, node| {
                        runs_buf.push((a, l, node));
                        true
                    });
                }
                for &(run_start, run_len, current) in runs_buf.iter() {
                    if current == r.to {
                        continue;
                    }
                    // Best-effort: drop what the destination cannot hold
                    // (free frames only shrink while a range applies, so
                    // the first `m` movable pages land, as per-page did).
                    let m = run_len.min(self.frames.free(r.to));
                    if m == 0 {
                        continue;
                    }
                    self.frames.alloc(r.to, m).expect("free frames checked");
                    self.frames.release(current, m);
                    self.procs[pid.0]
                        .aspace
                        .segment_mut(r.segment)
                        .expect("segment exists")
                        .relocate_run(run_start, m, r.to);
                    let bytes = m as f64 * PAGE_SIZE as f64;
                    self.counters.record_flow(pid, current.idx(), r.to.idx(), bytes, 0.0);
                    self.counters.record_flow(pid, r.to.idx(), r.to.idx(), 0.0, bytes);
                }
            }
            if let Some(tr) = self.trace.as_mut() {
                tr.instant(
                    "migrate",
                    epoch_ts,
                    trace::process_track(pid),
                    vec![
                        ("pages".into(), ArgValue::U64(completed_pages)),
                        ("ranges".into(), ArgValue::U64(completed.len() as u64)),
                    ],
                );
            }
        }

        // 5b. Close migration-drain flows whose queue emptied — by
        // completing the last range or by the process finishing.
        if let Some(tr) = self.trace.as_mut() {
            for (i, proc) in self.procs.iter().enumerate() {
                if !proc.migrations.is_empty() {
                    continue;
                }
                if tr.open_drain(i).is_some() {
                    tr.drain_end(
                        i,
                        trace::process_track(ProcessId(i)),
                        epoch_ts,
                        proc.migrations.migrated_total,
                    );
                }
            }
        }

        // 6-7. Advance time, fire daemons.
        let no_migrations = scratch.mig_meta.is_empty();
        self.clock += dt;
        if let Some(tr) = self.trace.as_mut() {
            tr.end("epoch", trace::ts_us(self.clock), trace::ENGINE_TRACK);
        }
        let any_fired = self.fire_due_daemons();
        // Quiescent: no migration traffic in the solve, nobody finished,
        // arrived or departed, no daemon mutated anything, and the
        // utilization feedback is at its fixed point — so re-running the
        // epoch would reproduce the same allocation and only accumulate
        // progress at the same rates.
        self.quiescent =
            no_migrations && !any_finished && !any_fired && !any_lifecycle && util_fixed;
    }

    /// Stage 0a of [`Simulator::step`]: transition pending processes whose
    /// arrival time the clock has reached to running, and retire processes
    /// whose scheduled departure is due. Returns whether any transition
    /// happened (such an epoch is never quiescent).
    fn process_lifecycle(&mut self, epoch_ts: u64) -> bool {
        let mut any = false;
        for i in 0..self.procs.len() {
            if let ProcessState::Pending { at } = self.procs[i].state {
                if self.clock + 1e-12 >= at {
                    self.procs[i].state = ProcessState::Running;
                    any = true;
                    if let Some(tr) = self.trace.as_mut() {
                        tr.instant(
                            "arrival",
                            epoch_ts,
                            trace::process_track(self.procs[i].id),
                            vec![("at_s".into(), ArgValue::F64(at))],
                        );
                    }
                }
            }
            let Some(at) = self.procs[i].departs_at else { continue };
            if self.clock + 1e-12 < at {
                continue;
            }
            self.procs[i].departs_at = None;
            if matches!(self.procs[i].state, ProcessState::Finished { .. }) {
                continue;
            }
            // Retire at the scheduled time (never before arrival, so
            // execution time stays non-negative for cancelled jobs).
            let started_at = self.procs[i].started_at;
            self.procs[i].state = ProcessState::Finished { at: at.max(started_at) };
            // Dropped migrations leave the page table as-is; stage 5b
            // closes any still-open drain flow this same epoch.
            self.procs[i].migrations.clear();
            any = true;
            if let Some(tr) = self.trace.as_mut() {
                tr.instant(
                    "departure",
                    epoch_ts,
                    trace::process_track(self.procs[i].id),
                    vec![("at_s".into(), ArgValue::F64(at))],
                );
            }
        }
        any
    }

    /// Stage 4 of [`Simulator::step`]: convert the solved bandwidth
    /// allocation into progress, stall cycles and per-flow counters, and
    /// finish processes whose remaining work fits in this epoch. Returns
    /// whether any process finished.
    ///
    /// This is also the replay body of an event-driven stride: while the
    /// engine is quiescent the solved allocation in `scratch` stays valid,
    /// so [`Simulator::step_stride`] re-runs exactly this accounting (same
    /// statements, same values, same order — bit-identical floats) without
    /// rebuilding demand or re-solving.
    fn advance_progress(&mut self) -> bool {
        let dt = self.cfg.epoch_dt;
        let n = self.machine.node_count();
        let epoch_ts = trace::ts_us(self.clock);
        let scratch = &mut self.scratch;
        let mut any_finished = false;
        // Group app outcomes per process (inner vectors reused).
        for v in scratch.per_proc.iter_mut() {
            v.clear();
        }
        scratch.per_proc.resize_with(self.procs.len(), Vec::new);
        for (gi, (pid, _)) in scratch.app_meta.iter().enumerate() {
            scratch.per_proc[pid.0].push((gi, scratch.solved.outcomes[gi].activity));
        }
        for (pid_idx, proc_groups) in scratch.per_proc.iter().enumerate() {
            if proc_groups.is_empty() {
                continue;
            }
            let rate_gbps: f64 =
                proc_groups.iter().map(|&(gi, u)| u * scratch.app_meta[gi].1.demand_gbps).sum();
            let p = &self.procs[pid_idx];
            let remaining = p.profile.total_traffic_gb - p.work_done_gb;
            let frac = if rate_gbps * dt >= remaining && remaining.is_finite() {
                (remaining / (rate_gbps * dt)).clamp(0.0, 1.0)
            } else {
                1.0
            };
            let dt_eff = dt * frac;
            let alpha = p.profile.latency_sensitivity;
            // One division per process, not one per group per node.
            let read_frac = {
                let pr = &p.profile;
                let tot = pr.read_gbps_per_thread + pr.write_gbps_per_thread;
                if tot > 0.0 {
                    pr.read_gbps_per_thread / tot
                } else {
                    1.0
                }
            };
            let pid = p.id;
            for &(gi, u) in proc_groups {
                let meta = &scratch.app_meta[gi].1;
                let stall = demand::stall_fraction(u, alpha, meta.latency_factor);
                let cycles = meta.cycle_threads * CLOCK_HZ * dt_eff;
                self.counters.record_cycles(pid, cycles, stall * cycles);
                let node_bytes = u * meta.demand_gbps * 1e9 * dt_eff;
                let share = &scratch.demand_ws.share_arena[meta.share_off..meta.share_off + n];
                for (i, &share_i) in share.iter().enumerate() {
                    if share_i > 1e-12 {
                        self.counters.record_flow(
                            pid,
                            i,
                            meta.node,
                            node_bytes * share_i * read_frac,
                            node_bytes * share_i * (1.0 - read_frac),
                        );
                    }
                }
            }
            let p = &mut self.procs[pid_idx];
            p.work_done_gb += rate_gbps * dt_eff;
            if frac < 1.0 {
                any_finished = true;
                p.state = ProcessState::Finished { at: self.clock + dt_eff };
                p.migrations.clear();
                // Timestamped at the epoch start to keep emission order
                // non-decreasing in ts; the sub-epoch completion time is
                // an argument.
                if let Some(tr) = self.trace.as_mut() {
                    tr.instant(
                        "finished",
                        epoch_ts,
                        trace::process_track(pid),
                        vec![("at_s".into(), ArgValue::F64(self.clock + dt_eff))],
                    );
                }
            }
        }
        any_finished
    }

    /// Fire every daemon whose `next_fire` the clock has reached (stage 7
    /// of [`Simulator::step`], also run per replayed epoch of a stride).
    /// Returns whether any daemon ticked.
    fn fire_due_daemons(&mut self) -> bool {
        let mut any_fired = false;
        let mut i = 0;
        while i < self.daemons.len() {
            if self.clock + 1e-12 >= self.daemons[i].next_fire {
                if let Some(mut d) = self.daemons[i].daemon.take() {
                    any_fired = true;
                    d.tick(self);
                    let done = d.done();
                    self.daemons[i].next_fire += self.daemons[i].period;
                    if !done {
                        self.daemons[i].daemon = Some(d);
                    }
                }
            }
            i += 1;
        }
        self.daemons.retain(|s| s.daemon.is_some());
        any_fired
    }

    /// Whether any running process has a phase boundary at or before the
    /// current clock (stage 0 of the next [`Simulator::step`] would swap
    /// profiles).
    fn phase_boundary_due(&self) -> bool {
        self.procs.iter().any(|p| {
            p.is_running()
                && p.phases.as_ref().is_some_and(|tl| self.clock + 1e-12 >= tl.next_switch)
        })
    }

    /// Whether any pending arrival or scheduled departure is at or before
    /// the current clock (stage 0a of the next [`Simulator::step`] would
    /// transition a process). Breaks an event-driven stride the same way a
    /// phase boundary does.
    fn lifecycle_due(&self) -> bool {
        self.procs.iter().any(|p| {
            (matches!(p.state, ProcessState::Pending { at } if self.clock + 1e-12 >= at))
                || (!matches!(p.state, ProcessState::Finished { .. })
                    && p.departs_at.is_some_and(|at| self.clock + 1e-12 >= at))
        })
    }

    /// Advance one event-driven stride, never past `limit`: one full
    /// [`Simulator::step`], then — if that epoch was quiescent — replay
    /// its progress accounting over the following epochs until the next
    /// interesting time (phase boundary, process finish, daemon fire, or
    /// `limit`). Returns the number of epochs advanced.
    ///
    /// Bit-identical to stepping because a replayed epoch executes exactly
    /// the statements a full epoch would: quiescence guarantees demand
    /// assembly and the bandwidth solve would reproduce the allocation
    /// already in scratch, so skipping them is unobservable.
    pub fn step_stride(&mut self, limit: f64) -> u64 {
        self.step();
        let mut epochs = 1u64;
        if !self.quiescent
            || self.clock + 1e-12 >= limit
            || self.phase_boundary_due()
            || self.lifecycle_due()
        {
            return epochs;
        }
        let dt = self.cfg.epoch_dt;
        // At least one epoch will be replayed: open the stride slice on
        // the engine track (per-epoch slices are the stepped engine's; a
        // stride is the event-driven engine's unit of work).
        if let Some(tr) = self.trace.as_mut() {
            tr.begin("stride", trace::ts_us(self.clock), trace::ENGINE_TRACK);
        }
        loop {
            let any_finished = self.advance_progress();
            self.clock += dt;
            epochs += 1;
            let any_fired = self.fire_due_daemons();
            if any_finished
                || any_fired
                || self.clock + 1e-12 >= limit
                || self.phase_boundary_due()
                || self.lifecycle_due()
            {
                break;
            }
        }
        if let Some(tr) = self.trace.as_mut() {
            // Counters are emitted at the stride boundary even when their
            // values did not change, so consumers sampling the trace see
            // the plateau's extent, not a gap.
            let end_ts = trace::ts_us(self.clock);
            let mut shares = self.scratch.solved.link_shares(&self.resources);
            tr.link_counters_forced(
                end_ts,
                std::iter::from_fn(|| {
                    let (l, _, ab) = shares.next()?;
                    let (_, _, ba) = shares.next().expect("directions come in pairs");
                    Some((l.0, ab, ba))
                }),
            );
            tr.end("stride", end_ts, trace::ENGINE_TRACK);
        }
        epochs
    }

    /// Run for a fixed amount of simulated time.
    pub fn run_for(&mut self, seconds: f64) {
        let end = self.clock + seconds;
        match self.cfg.mode {
            EngineMode::Stepped => {
                while self.clock + 1e-12 < end {
                    self.step();
                }
            }
            EngineMode::EventDriven => {
                while self.clock + 1e-12 < end {
                    self.step_stride(end);
                }
            }
        }
    }

    /// Run until `pid` finishes (or `max_seconds` of simulated time pass).
    /// Returns the process's execution time.
    pub fn run_until_finished(
        &mut self,
        pid: ProcessId,
        max_seconds: f64,
    ) -> Result<f64, SimError> {
        let deadline = self.clock + max_seconds;
        loop {
            match self.process(pid)?.state {
                ProcessState::Finished { .. } => {
                    return Ok(self.execution_time(pid).expect("finished"));
                }
                ProcessState::Running | ProcessState::Pending { .. } => {
                    if self.clock >= deadline {
                        return Err(SimError::Timeout { pid: pid.0, deadline });
                    }
                    match self.cfg.mode {
                        EngineMode::Stepped => self.step(),
                        EngineMode::EventDriven => {
                            self.step_stride(deadline);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    fn profile(total_gb: f64) -> AppProfile {
        AppProfile {
            name: "stream".into(),
            read_gbps_per_thread: 2.0,
            write_gbps_per_thread: 0.0,
            private_frac: 0.0,
            latency_sensitivity: 0.0,
            serial_frac: 0.0,
            multinode_penalty: 0.0,
            shared_pages: 10_000,
            private_pages_per_thread: 16,
            total_traffic_gb: total_gb,
            open_loop: false,
        }
    }

    #[test]
    fn single_node_unconstrained_runs_at_demand() {
        // 7 threads x 2 GB/s = 14 GB/s < 28 GB/s controller: exec time =
        // 14 GB / 14 GB/s = 1 s.
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let pid = sim
            .spawn(profile(14.0), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        let t = sim.run_until_finished(pid, 100.0).unwrap();
        assert!((t - 1.0).abs() < 0.02, "exec time {t}");
    }

    #[test]
    fn controller_saturation_slows_down() {
        // Demand 42 GB/s against a 28 GB/s controller: u = 2/3, so the
        // 42 GB of work takes 1.5 s.
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let mut p = profile(42.0);
        p.read_gbps_per_thread = 6.0;
        let pid = sim.spawn(p, NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch).unwrap();
        let t = sim.run_until_finished(pid, 100.0).unwrap();
        assert!((t - 1.5).abs() < 0.03, "exec time {t}");
    }

    #[test]
    fn interleave_across_two_nodes_beats_saturated_local() {
        let m = machines::machine_b();
        // Saturating workload: 7 threads x 6 = 42 GB/s demand.
        let mk = |policy| {
            let mut sim = Simulator::new(m.clone(), SimConfig::default());
            let mut p = profile(42.0);
            p.read_gbps_per_thread = 6.0;
            let pid = sim.spawn(p, NodeSet::single(NodeId(0)), None, policy).unwrap();
            sim.run_until_finished(pid, 100.0).unwrap()
        };
        let local = mk(MemPolicy::FirstTouch);
        let spread = mk(MemPolicy::Interleave(NodeSet::from_nodes([NodeId(0), NodeId(1)])));
        assert!(
            spread < local * 0.85,
            "interleaving should relieve the controller: local {local}, spread {spread}"
        );
    }

    #[test]
    fn first_touch_centralizes_shared_pages_on_master() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let workers = NodeSet::from_nodes([NodeId(1), NodeId(2)]);
        let pid = sim.spawn(profile(10.0), workers, None, MemPolicy::FirstTouch).unwrap();
        let d = sim.shared_distribution(pid).unwrap();
        assert!((d[1] - 1.0).abs() < 1e-12, "master node holds all shared pages: {d:?}");
        // private pages are local to each thread's node
        let full = sim.full_distribution(pid).unwrap();
        assert!(full[2] > 0.0);
    }

    #[test]
    fn mbind_migrates_pages_over_time() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let pid = sim
            .spawn(profile(1e6), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        let seg = sim.process(pid).unwrap().shared_seg;
        let queued = sim.mbind(pid, seg, 0, 10_000, MemPolicy::Bind(NodeId(3)), true).unwrap();
        assert_eq!(queued, 10_000);
        assert_eq!(sim.pending_migrations(pid), 10_000);
        sim.run_for(0.5);
        // 2 GB/s * 0.5 s / 4 KiB ≈ 244k pages of budget: all 10k done.
        assert_eq!(sim.pending_migrations(pid), 0);
        let d = sim.shared_distribution(pid).unwrap();
        assert!((d[3] - 1.0).abs() < 1e-12, "{d:?}");
        assert_eq!(sim.migrated_pages(pid), 10_000);
    }

    #[test]
    fn mbind_without_move_only_counts_zero() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let pid = sim
            .spawn(profile(10.0), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        let seg = sim.process(pid).unwrap().shared_seg;
        let queued = sim.mbind(pid, seg, 0, 100, MemPolicy::Bind(NodeId(1)), false).unwrap();
        assert_eq!(queued, 0);
        assert_eq!(sim.pending_migrations(pid), 0);
    }

    #[test]
    fn stall_rate_rises_under_saturation() {
        let m = machines::machine_b();
        let measure = |read_gbps: f64| {
            let mut sim = Simulator::new(m.clone(), SimConfig::default());
            let mut p = profile(f64::INFINITY);
            p.read_gbps_per_thread = read_gbps;
            let pid =
                sim.spawn(p, NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch).unwrap();
            let s0 = sim.sample(pid).unwrap();
            sim.run_for(1.0);
            let s1 = sim.sample(pid).unwrap();
            s1.stall_rate_since(&s0)
        };
        let light = measure(1.0); // 7 GB/s demand, no contention
        let heavy = measure(10.0); // 70 GB/s demand, heavily starved
        assert!(heavy > light * 2.0, "light {light}, heavy {heavy}");
    }

    #[test]
    fn two_processes_contend_for_one_controller() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let mut p = profile(28.0);
        p.read_gbps_per_thread = 6.0; // 42 GB/s per process demand
        let a =
            sim.spawn(p.clone(), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch).unwrap();
        // Second process binds its memory to node 0 as well.
        let b = sim.spawn(p, NodeSet::single(NodeId(1)), None, MemPolicy::Bind(NodeId(0))).unwrap();
        let ta = sim.run_until_finished(a, 100.0).unwrap();
        let tb = sim.run_until_finished(b, 100.0).unwrap();
        // Alone each would take 28/28=1.0s at full controller; sharing the
        // controller they take about double, and within 10% of each other.
        assert!(ta > 1.6 && tb > 1.6, "ta {ta}, tb {tb}");
        assert!((ta - tb).abs() < 0.4, "ta {ta}, tb {tb}");
    }

    #[test]
    fn invalid_spawns_rejected() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        assert!(sim.spawn(profile(1.0), NodeSet::EMPTY, None, MemPolicy::FirstTouch).is_err());
        assert!(sim
            .spawn(profile(1.0), NodeSet::single(NodeId(9)), None, MemPolicy::FirstTouch)
            .is_err());
        assert!(sim
            .spawn(profile(1.0), NodeSet::single(NodeId(0)), Some(99), MemPolicy::FirstTouch)
            .is_err());
        let mut bad = profile(1.0);
        bad.serial_frac = 1.5;
        assert!(sim.spawn(bad, NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch).is_err());
    }

    #[test]
    fn memory_only_nodes_cannot_host_threads_but_hold_pages() {
        let m = machines::machine_tiered();
        let mut sim = Simulator::new(m.clone(), SimConfig::default());
        // Spawning with a CPU-less worker is rejected with a clear error.
        let err = sim
            .spawn(
                profile(1.0),
                NodeSet::from_nodes([NodeId(0), NodeId(2)]),
                None,
                MemPolicy::FirstTouch,
            )
            .unwrap_err();
        assert!(err.to_string().contains("memory-only"), "{err}");
        // But placing pages *on* the expander tier is fine.
        let pid = sim
            .spawn(profile(1.0), m.worker_nodes(), None, MemPolicy::Interleave(m.all_nodes()))
            .unwrap();
        let d = sim.shared_distribution(pid).unwrap();
        assert!(d[2] > 0.2 && d[3] > 0.2, "expanders hold pages: {d:?}");
    }

    #[test]
    fn capacity_pressure_spills_into_the_expander_tier() {
        // A shared segment larger than the whole fast tier must spill into
        // the CPU-less expanders even under worker-only placement.
        let m = machines::machine_tiered();
        let mut sim = Simulator::new(m.clone(), SimConfig::default());
        let workers = m.worker_nodes();
        let fast_pages: u64 = workers.iter().map(|w| m.node(w).mem_pages).sum();
        let mut p = profile(1.0);
        p.shared_pages = fast_pages + 10_000;
        let pid = sim.spawn(p, workers, None, MemPolicy::Interleave(workers)).unwrap();
        let d = sim.shared_distribution(pid).unwrap();
        assert!(d[2] + d[3] > 0.0, "spill reached the slow tier: {d:?}");
        // Fast tier is full (private segments also landed somewhere).
        assert!(sim.frames.free_in(workers) < 10_000);
    }

    #[test]
    fn phase_timeline_swaps_profiles_at_boundaries() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let pid = sim
            .spawn(profile(f64::INFINITY), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        // Phase 0: 2 GB/s per thread; phase 1: idle (0 GB/s). 1 s each.
        let mut idle = profile(f64::INFINITY);
        idle.read_gbps_per_thread = 0.0;
        sim.set_phase_timeline(pid, vec![(1.0, profile(f64::INFINITY)), (1.0, idle)]).unwrap();
        let t0 = sim.sample(pid).unwrap();
        sim.run_for(1.0);
        let t1 = sim.sample(pid).unwrap();
        sim.run_for(1.0);
        let t2 = sim.sample(pid).unwrap();
        sim.run_for(1.0);
        let t3 = sim.sample(pid).unwrap();
        // Busy, idle, busy again: traffic flows only in the busy phases.
        assert!(t1.traffic_bytes - t0.traffic_bytes > 1e9);
        assert!((t2.traffic_bytes - t1.traffic_bytes).abs() < 1e6);
        assert!(t3.traffic_bytes - t2.traffic_bytes > 1e9);
        // Boundaries apply at the start of the first epoch at or past
        // them; the boundary at t = 3.0 lands on the next (unrun) epoch.
        assert_eq!(sim.phase_switches(pid), 2);
    }

    #[test]
    fn phase_timeline_validation() {
        let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
        let pid = sim
            .spawn(profile(1.0), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
            .unwrap();
        assert!(sim.set_phase_timeline(pid, vec![]).is_err());
        assert!(sim.set_phase_timeline(pid, vec![(0.0, profile(1.0))]).is_err());
        assert!(sim.set_phase_timeline(pid, vec![(f64::INFINITY, profile(1.0))]).is_err());
        // Sub-epoch durations are rejected (they could never advance the
        // boundary), including denormals that would not move the clock.
        assert!(sim.set_phase_timeline(pid, vec![(1e-300, profile(1.0))]).is_err());
        assert!(sim.set_phase_timeline(pid, vec![(0.001, profile(1.0))]).is_err());
        let mut bad = profile(1.0);
        bad.serial_frac = 2.0;
        assert!(sim.set_phase_timeline(pid, vec![(1.0, bad)]).is_err());
        assert!(sim.set_phase_timeline(ProcessId(9), vec![(1.0, profile(1.0))]).is_err());
        // Valid timelines install phase 0's profile immediately.
        let mut slow = profile(1.0);
        slow.read_gbps_per_thread = 0.25;
        sim.set_phase_timeline(pid, vec![(5.0, slow)]).unwrap();
        assert_eq!(sim.process(pid).unwrap().profile.read_gbps_per_thread, 0.25);
        assert_eq!(sim.phase_switches(pid), 0);
        // Finished processes reject timelines.
        sim.run_until_finished(pid, 600.0).unwrap();
        assert!(sim.set_phase_timeline(pid, vec![(1.0, profile(1.0))]).is_err());
    }

    #[test]
    fn phased_runs_are_deterministic() {
        let run = || {
            let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
            let mut p = profile(40.0);
            p.read_gbps_per_thread = 6.0;
            let pid = sim
                .spawn(p.clone(), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
                .unwrap();
            let mut calm = p.clone();
            calm.read_gbps_per_thread = 1.0;
            sim.set_phase_timeline(pid, vec![(0.4, p), (0.4, calm)]).unwrap();
            (sim.run_until_finished(pid, 600.0).unwrap(), sim.phase_switches(pid))
        };
        assert_eq!(run(), run());
        assert!(run().1 >= 2, "the run spans several phases");
    }

    #[test]
    fn determinism_same_inputs_same_trace() {
        let run = || {
            let mut sim = Simulator::new(machines::machine_a(), SimConfig::default());
            let mut p = profile(30.0);
            p.read_gbps_per_thread = 3.0;
            p.private_frac = 0.4;
            let pid = sim
                .spawn(
                    p,
                    NodeSet::from_nodes([NodeId(0), NodeId(1)]),
                    None,
                    MemPolicy::Interleave(NodeSet::from_nodes([NodeId(0), NodeId(1)])),
                )
                .unwrap();
            sim.run_until_finished(pid, 200.0).unwrap()
        };
        assert_eq!(run(), run());
    }

    /// A traced run records the whole event vocabulary: epoch B/E pairs,
    /// the spawn's track name, an `mbind` instant, a paired migration
    /// drain flow, per-epoch `migrate` completions, link counters, phase
    /// switches and the `finished` instant — and the identical run emits
    /// byte-identical JSON.
    #[test]
    fn traced_run_records_migrations_phases_and_links() {
        use crate::trace::EventPhase;
        let run = || {
            let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
            sim.set_trace_sink(TraceSink::default());
            let mut p = profile(6.0);
            p.read_gbps_per_thread = 2.0;
            let pid = sim
                .spawn(p.clone(), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
                .unwrap();
            let mut calm = p.clone();
            calm.read_gbps_per_thread = 0.5;
            sim.set_phase_timeline(pid, vec![(0.2, p), (0.2, calm)]).unwrap();
            // Rebind shared pages across two nodes: queues migrations and
            // puts traffic on the node 0 <-> node 1 links.
            let seg = sim.process(pid).unwrap().shared_seg;
            let queued = sim
                .mbind(
                    pid,
                    seg,
                    0,
                    10_000,
                    MemPolicy::Interleave(NodeSet::from_nodes([NodeId(0), NodeId(1)])),
                    true,
                )
                .unwrap();
            assert!(queued > 0);
            sim.trace_instant("custom-marker", Some(pid), &[("v", 1.5)]);
            sim.run_until_finished(pid, 200.0).unwrap();
            sim.take_trace_sink().expect("sink installed")
        };
        let t = run();
        assert_eq!(t.dropped(), 0, "capacity holds a small run");

        let count = |ph: EventPhase, name: &str| {
            t.events().filter(|e| e.ph == ph && e.name == name).count()
        };
        assert_eq!(count(EventPhase::Begin, "epoch"), count(EventPhase::End, "epoch"));
        assert!(count(EventPhase::Begin, "epoch") > 10);
        assert_eq!(count(EventPhase::Instant, "mbind"), 1);
        assert_eq!(count(EventPhase::Instant, "custom-marker"), 1);
        assert_eq!(count(EventPhase::FlowStart, "migration"), 1);
        assert_eq!(count(EventPhase::FlowEnd, "migration"), 1);
        assert!(count(EventPhase::Instant, "migrate") > 0);
        assert!(count(EventPhase::Instant, "phase-switch") > 0);
        assert_eq!(count(EventPhase::Instant, "finished"), 1);
        assert!(t.events().any(|e| e.ph == EventPhase::Counter));
        assert!(
            t.events()
                .any(|e| e.ph == EventPhase::Metadata
                    && e.track == trace::process_track(ProcessId(0)))
        );

        // Flow start/end share the id; ts never decreases in emission
        // order.
        let s_id = t.events().find(|e| e.ph == EventPhase::FlowStart).unwrap().id;
        let f_id = t.events().find(|e| e.ph == EventPhase::FlowEnd).unwrap().id;
        assert_eq!(s_id, f_id);
        let mut last = 0;
        for e in t.events() {
            assert!(e.ts_us >= last, "ts regressed: {} < {last}", e.ts_us);
            last = e.ts_us;
        }

        assert_eq!(t.to_chrome_json(), run().to_chrome_json(), "traced runs are deterministic");
    }

    /// Tracing leaves the physics untouched: the same run with and
    /// without a sink finishes at the same simulated time.
    #[test]
    fn tracing_does_not_perturb_the_run() {
        let run = |traced: bool| {
            let mut sim = Simulator::new(machines::machine_b(), SimConfig::default());
            if traced {
                sim.set_trace_sink(TraceSink::new(64)); // tiny ring, drops heavily
            }
            let pid = sim
                .spawn(profile(14.0), NodeSet::single(NodeId(0)), None, MemPolicy::FirstTouch)
                .unwrap();
            sim.run_until_finished(pid, 100.0).unwrap()
        };
        assert_eq!(run(false), run(true));
    }
}
