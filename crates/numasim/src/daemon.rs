//! Periodic daemons: OS or runtime components that observe and mutate the
//! simulated system (AutoNUMA, the BWAP DWP tuner, co-schedule monitors).

use crate::engine::Simulator;

/// A periodic task the engine fires at a fixed cadence. Daemons receive the
/// whole simulator and use its public API (counters, `mbind`, placement
/// queries), exactly like a privileged userspace daemon or kernel thread.
pub trait Daemon {
    /// Human-readable name for diagnostics.
    fn name(&self) -> &str;

    /// Called every period; `sim.clock()` gives the current time.
    fn tick(&mut self, sim: &mut Simulator);

    /// Whether the daemon has finished its job and can be dropped
    /// (default: never).
    fn done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use bwap_topology::machines;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct CountingDaemon {
        fires: Rc<RefCell<Vec<f64>>>,
        stop_after: usize,
    }

    impl Daemon for CountingDaemon {
        fn name(&self) -> &str {
            "counting"
        }
        fn tick(&mut self, sim: &mut Simulator) {
            self.fires.borrow_mut().push(sim.clock());
        }
        fn done(&self) -> bool {
            self.fires.borrow().len() >= self.stop_after
        }
    }

    #[test]
    fn daemons_fire_on_schedule_and_retire() {
        let fires = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(machines::twin(), SimConfig::default());
        sim.add_daemon(Box::new(CountingDaemon { fires: fires.clone(), stop_after: 3 }), 0.1, 0.1);
        sim.run_for(1.0);
        let fired = fires.borrow();
        assert_eq!(fired.len(), 3, "daemon should retire after 3 fires: {fired:?}");
        assert!((fired[0] - 0.1).abs() < 0.011, "first fire at ~0.1s, got {}", fired[0]);
        assert!((fired[1] - fired[0] - 0.1).abs() < 0.011);
    }
}
