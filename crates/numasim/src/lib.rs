//! A simulated NUMA machine and operating system.
//!
//! `numasim` provides the substrate the paper runs on: a multi-node machine
//! (described by `bwap-topology`), an OS memory-management layer with the
//! Linux facilities BWAP builds on, and an epoch-based execution engine that
//! models application progress through the `bwap-fabric` bandwidth
//! allocator.
//!
//! # OS facilities (mirroring Linux)
//!
//! * **Memory policies** ([`mem::policy::MemPolicy`]): first-touch (the
//!   Linux default), `bind`, uniform `interleave` (as in `numactl
//!   --interleave`), and the *weighted interleave* policy the paper adds at
//!   kernel level.
//! * **`mbind`** ([`Simulator::mbind`]): (re)set the policy of a page range
//!   with `MPOL_MF_MOVE`-style migration of non-complying pages — the
//!   primitive under the paper's Algorithm 1.
//! * **Page migration** ([`mem::migrate`]): rate-limited, consuming real
//!   controller/link bandwidth through the fabric.
//! * **AutoNUMA** ([`autonuma::AutoNuma`]): the locality-driven daemon the
//!   paper compares against — migrates private pages to their accessor and
//!   spreads shared pages across worker nodes only.
//! * **Performance counters** ([`perf::PerfCounters`]): per-node served
//!   bytes, per-process `(memory node, CPU node)` traffic matrices (what
//!   the paper's canonical tuner profiles), and per-process stall cycles
//!   (what the DWP tuner samples).
//!
//! # Execution model
//!
//! Applications are characterized by an [`AppProfile`] (demand per thread,
//! read/write mix, private/shared mix, latency sensitivity, scalability).
//! Each epoch the engine converts every process's page placement into
//! lock-step demand bundles, lets the fabric allocate bandwidth, and
//! advances progress by the achieved utilization — see `engine` for the
//! precise equations and their correspondence to the paper's Eq. 1-5.
//!
//! Workload behaviour may change mid-run: [`Simulator::set_profile`] swaps
//! a process's demand characterization once, and
//! [`Simulator::set_phase_timeline`] installs a cycling [`PhaseTimeline`]
//! the engine advances at epoch boundaries (phase-structured workloads).
//!
//! Runs can be observed without being perturbed:
//! [`Simulator::set_trace_sink`] installs a ring-buffered [`TraceSink`]
//! recording epochs, phase switches, migration drains and per-link
//! bandwidth shares as Chrome `trace_event` JSON (see [`trace`] and
//! `docs/TRACING.md`); with no sink installed the hooks cost one branch.

pub mod autonuma;
pub mod daemon;
pub mod engine;
pub mod error;
pub mod mem;
pub mod perf;
pub mod process;
pub mod trace;

pub use daemon::Daemon;
pub use engine::{AppProfile, EngineMode, SimConfig, Simulator};
pub use error::SimError;
pub use mem::policy::MemPolicy;
pub use mem::segment::{SegmentId, SegmentKind};
pub use perf::{PerfCounters, ProcessSample};
pub use process::{PhaseTimeline, ProcessId, ProcessState};
pub use trace::{TraceEvent, TraceSink};

/// Reference DRAM latency used to normalize latency sensitivity across
/// machines (ns). An application's demand rate is defined at this latency.
pub const REFERENCE_LATENCY_NS: f64 = 100.0;

/// Simulated core clock, cycles per second (only affects the absolute scale
/// of stall-rate counters, never any comparison).
pub const CLOCK_HZ: f64 = 2.1e9;
