//! Simulated processes and their threads.

use crate::engine::AppProfile;
use crate::mem::address_space::AddressSpace;
use crate::mem::migrate::MigrationQueue;
use crate::mem::segment::SegmentId;
use bwap_topology::{NodeId, NodeSet};

/// Identifier of a process within one simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub usize);

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProcessState {
    /// Registered via [`crate::Simulator::spawn_at`] but not yet arrived:
    /// memory is already placed, threads are pinned, but the process
    /// generates no demand until the engine activates it at `at`.
    Pending {
        /// Simulated arrival time (seconds).
        at: f64,
    },
    /// Still executing.
    Running,
    /// Completed its total work at the given simulated time.
    Finished {
        /// Simulated completion time (seconds).
        at: f64,
    },
}

/// A cycling schedule of demand-profile phases, installed with
/// [`crate::Simulator::set_phase_timeline`]. The engine swaps the
/// process's profile at each phase boundary (checked once per epoch, so a
/// switch costs one `AppProfile` clone at the boundary and nothing in
/// steady state).
#[derive(Debug, Clone)]
pub struct PhaseTimeline {
    /// `(duration_s, profile)` per phase, cycled forever.
    pub phases: Vec<(f64, AppProfile)>,
    /// Index of the active phase.
    pub idx: usize,
    /// Simulated time of the next boundary.
    pub next_switch: f64,
    /// Boundaries crossed so far.
    pub switches: u64,
}

/// A running application: pinned threads, an address space, progress.
#[derive(Debug, Clone)]
pub struct SimProcess {
    /// Identifier.
    pub id: ProcessId,
    /// Workload characterization.
    pub profile: AppProfile,
    /// Worker nodes hosting threads.
    pub workers: NodeSet,
    /// Threads pinned per node (indexed by node id; zero off-workers). The
    /// paper pins one thread per core and distributes threads evenly over
    /// worker nodes.
    pub threads_per_node: Vec<u16>,
    /// The process's memory.
    pub aspace: AddressSpace,
    /// Shared segment id (cached).
    pub shared_seg: SegmentId,
    /// Private segment per thread: `(owner node, segment)`, in thread
    /// order.
    pub private_segs: Vec<(NodeId, SegmentId)>,
    /// Work completed so far, in GB of traffic processed.
    pub work_done_gb: f64,
    /// Lifecycle.
    pub state: ProcessState,
    /// Simulated spawn time. For a [`ProcessState::Pending`] process this
    /// is the scheduled arrival time, so execution time always measures
    /// from arrival, not registration.
    pub started_at: f64,
    /// Scheduled departure time, if any. The engine retires the process at
    /// the first epoch boundary at or past this time, whether or not its
    /// work completed.
    pub departs_at: Option<f64>,
    /// Pending page migrations.
    pub migrations: MigrationQueue,
    /// Fractional page-migration credit carried between epochs, so slow
    /// trickles of bandwidth still complete whole pages eventually.
    pub migration_credit: f64,
    /// Phase schedule, if the workload is phase-structured.
    pub phases: Option<PhaseTimeline>,
}

impl SimProcess {
    /// Total thread count.
    pub fn total_threads(&self) -> u32 {
        self.threads_per_node.iter().map(|&t| t as u32).sum()
    }

    /// Number of worker nodes.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Whether the process is still running.
    pub fn is_running(&self) -> bool {
        matches!(self.state, ProcessState::Running)
    }

    /// Execution time if finished. Measured from arrival (`started_at`),
    /// and clamped to zero for a job that departed before it arrived.
    pub fn execution_time(&self) -> Option<f64> {
        match self.state {
            ProcessState::Finished { at } => Some((at - self.started_at).max(0.0)),
            ProcessState::Running | ProcessState::Pending { .. } => None,
        }
    }

    /// The node of the master thread (thread 0): the first worker node.
    /// Under first-touch, shared pages land here — the pathology the paper
    /// describes for multi-worker runs.
    pub fn master_node(&self) -> NodeId {
        self.workers.min().expect("process has at least one worker")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_and_timing() {
        let state = ProcessState::Finished { at: 12.5 };
        assert_eq!(state, ProcessState::Finished { at: 12.5 });
    }
}
