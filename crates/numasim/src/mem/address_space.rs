//! Per-process address space: an ordered collection of segments.

use crate::error::SimError;
use crate::mem::frames::FramePools;
use crate::mem::policy::MemPolicy;
use crate::mem::segment::{Segment, SegmentId, SegmentKind};
use bwap_topology::NodeId;

/// The segments of one process.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    segments: Vec<Segment>,
}

impl AddressSpace {
    /// Empty address space.
    pub fn new() -> Self {
        AddressSpace { segments: Vec::new() }
    }

    /// Create and place a segment; returns its id.
    pub fn create_segment(
        &mut self,
        kind: SegmentKind,
        len: u64,
        policy: &MemPolicy,
        toucher: NodeId,
        frames: &mut FramePools,
        fallback: &[Vec<NodeId>],
    ) -> Result<SegmentId, SimError> {
        let seg = Segment::place(kind, len, policy, toucher, frames, fallback)?;
        self.segments.push(seg);
        Ok(SegmentId(self.segments.len() - 1))
    }

    /// Borrow a segment.
    pub fn segment(&self, id: SegmentId) -> Result<&Segment, SimError> {
        self.segments.get(id.0).ok_or(SimError::NoSuchSegment(id.0))
    }

    /// Mutably borrow a segment.
    pub fn segment_mut(&mut self, id: SegmentId) -> Result<&mut Segment, SimError> {
        self.segments.get_mut(id.0).ok_or(SimError::NoSuchSegment(id.0))
    }

    /// Iterate `(id, segment)`.
    pub fn iter(&self) -> impl Iterator<Item = (SegmentId, &Segment)> {
        self.segments.iter().enumerate().map(|(i, s)| (SegmentId(i), s))
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether there are no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The shared segment (processes have exactly one), if created.
    pub fn shared_segment(&self) -> Option<SegmentId> {
        self.iter().find(|(_, s)| matches!(s.kind(), SegmentKind::Shared)).map(|(id, _)| id)
    }

    /// Private segment of a given thread, if created.
    pub fn private_segment(&self, thread: usize) -> Option<SegmentId> {
        self.iter()
            .find(|(_, s)| matches!(s.kind(), SegmentKind::Private { thread: t } if t == thread))
            .map(|(id, _)| id)
    }

    /// Total pages across all segments.
    pub fn total_pages(&self) -> u64 {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// Aggregate pages-per-node histogram across all segments.
    pub fn node_counts(&self, node_count: usize) -> Vec<u64> {
        let mut out = vec![0u64; node_count];
        for s in &self.segments {
            for (i, &c) in s.node_counts().iter().enumerate() {
                out[i] += c;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    fn fixture() -> (AddressSpace, FramePools, Vec<Vec<NodeId>>) {
        let m = machines::machine_b();
        (AddressSpace::new(), FramePools::from_machine(&m), vec![Vec::new(); 4])
    }

    #[test]
    fn create_and_lookup() {
        let (mut asp, mut f, fb) = fixture();
        let shared = asp
            .create_segment(
                SegmentKind::Shared,
                100,
                &MemPolicy::FirstTouch,
                NodeId(0),
                &mut f,
                &fb,
            )
            .unwrap();
        let p0 = asp
            .create_segment(
                SegmentKind::Private { thread: 0 },
                50,
                &MemPolicy::FirstTouch,
                NodeId(1),
                &mut f,
                &fb,
            )
            .unwrap();
        assert_eq!(asp.shared_segment(), Some(shared));
        assert_eq!(asp.private_segment(0), Some(p0));
        assert_eq!(asp.private_segment(1), None);
        assert_eq!(asp.total_pages(), 150);
        assert_eq!(asp.node_counts(4), vec![100, 50, 0, 0]);
        assert_eq!(asp.len(), 2);
    }

    #[test]
    fn missing_segment_errors() {
        let (asp, ..) = fixture();
        assert!(asp.segment(SegmentId(0)).is_err());
    }
}
