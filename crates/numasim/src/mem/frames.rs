//! Physical frame accounting per node.

use crate::error::SimError;
use bwap_topology::{MachineTopology, NodeId, NodeSet};

/// Tracks free/used physical page frames on every node.
#[derive(Debug, Clone)]
pub struct FramePools {
    capacity: Vec<u64>,
    used: Vec<u64>,
}

impl FramePools {
    /// Pools sized from the machine's per-node memory.
    pub fn from_machine(m: &MachineTopology) -> Self {
        let capacity: Vec<u64> = m.nodes().iter().map(|n| n.mem_pages).collect();
        FramePools { used: vec![0; capacity.len()], capacity }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.capacity.len()
    }

    /// Free pages on `n`.
    pub fn free(&self, n: NodeId) -> u64 {
        self.capacity[n.idx()] - self.used[n.idx()]
    }

    /// Used pages on `n`.
    pub fn used(&self, n: NodeId) -> u64 {
        self.used[n.idx()]
    }

    /// Total capacity of `n` in pages.
    pub fn capacity(&self, n: NodeId) -> u64 {
        self.capacity[n.idx()]
    }

    /// Aggregate capacity of a node set (e.g. one memory tier), pages.
    pub fn capacity_in(&self, set: NodeSet) -> u64 {
        set.iter().map(|n| self.capacity(n)).sum()
    }

    /// Aggregate used pages of a node set.
    pub fn used_in(&self, set: NodeSet) -> u64 {
        set.iter().map(|n| self.used(n)).sum()
    }

    /// Aggregate free pages of a node set.
    pub fn free_in(&self, set: NodeSet) -> u64 {
        set.iter().map(|n| self.free(n)).sum()
    }

    /// Allocate `count` pages on `n`; fails without side effects if the
    /// node lacks room.
    pub fn alloc(&mut self, n: NodeId, count: u64) -> Result<(), SimError> {
        if self.free(n) < count {
            return Err(SimError::OutOfMemory);
        }
        self.used[n.idx()] += count;
        Ok(())
    }

    /// The node a single-page allocation would come from: `preferred` if
    /// it has a free frame, else the first fallback node with one — THE
    /// spill rule (Linux zone-fallback analogue); every allocation path
    /// routes through it so spill semantics live in one place.
    pub fn first_free(&self, preferred: NodeId, fallback: &[NodeId]) -> Result<NodeId, SimError> {
        if self.free(preferred) > 0 {
            return Ok(preferred);
        }
        fallback.iter().copied().find(|&f| self.free(f) > 0).ok_or(SimError::OutOfMemory)
    }

    /// Allocate one page on `preferred`, spilling to the fallback nodes in
    /// the given order when full. Returns the node that actually supplied
    /// the frame.
    pub fn alloc_with_fallback(
        &mut self,
        preferred: NodeId,
        fallback: &[NodeId],
    ) -> Result<NodeId, SimError> {
        let node = self.first_free(preferred, fallback)?;
        self.alloc(node, 1)?;
        Ok(node)
    }

    /// Allocate `count` frames preferring `preferred` and spilling in
    /// `fallback` order as pools drain — the batched equivalent of `count`
    /// successive [`FramePools::alloc_with_fallback`] calls (free counts
    /// only shrink during a placement, so the per-page spill decision is
    /// constant between pool exhaustions). Returns the granted
    /// `(node, frames)` runs in allocation order: a million-page bind is
    /// one pool operation per spill boundary.
    ///
    /// On exhaustion mid-run the frames already granted stay allocated
    /// and `SimError::OutOfMemory` is returned, exactly as the per-page
    /// loop left them.
    pub fn alloc_run(
        &mut self,
        preferred: NodeId,
        fallback: &[NodeId],
        count: u64,
    ) -> Result<Vec<(NodeId, u64)>, SimError> {
        let mut runs: Vec<(NodeId, u64)> = Vec::new();
        let mut left = count;
        while left > 0 {
            let node = self.first_free(preferred, fallback)?;
            let take = left.min(self.free(node));
            self.alloc(node, take)?;
            runs.push((node, take));
            left -= take;
        }
        Ok(runs)
    }

    /// Release `count` pages on `n`.
    pub fn release(&mut self, n: NodeId, count: u64) {
        assert!(self.used[n.idx()] >= count, "releasing more pages than used");
        self.used[n.idx()] -= count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::machines;

    #[test]
    fn alloc_and_release() {
        let m = machines::machine_b();
        let mut p = FramePools::from_machine(&m);
        let n0 = NodeId(0);
        let cap = p.capacity(n0);
        assert_eq!(p.free(n0), cap);
        p.alloc(n0, 100).unwrap();
        assert_eq!(p.used(n0), 100);
        assert_eq!(p.free(n0), cap - 100);
        p.release(n0, 40);
        assert_eq!(p.used(n0), 60);
    }

    #[test]
    fn alloc_fails_when_full_without_side_effects() {
        let m = machines::twin();
        let mut p = FramePools::from_machine(&m);
        let n0 = NodeId(0);
        let cap = p.capacity(n0);
        p.alloc(n0, cap).unwrap();
        assert!(p.alloc(n0, 1).is_err());
        assert_eq!(p.used(n0), cap);
    }

    #[test]
    fn fallback_spills_in_order() {
        let m = machines::twin();
        let mut p = FramePools::from_machine(&m);
        let (n0, n1) = (NodeId(0), NodeId(1));
        p.alloc(n0, p.capacity(n0)).unwrap();
        let got = p.alloc_with_fallback(n0, &[n1]).unwrap();
        assert_eq!(got, n1);
        assert_eq!(p.used(n1), 1);
    }

    #[test]
    fn fallback_exhausted_errors() {
        let m = machines::twin();
        let mut p = FramePools::from_machine(&m);
        for n in [NodeId(0), NodeId(1)] {
            p.alloc(n, p.capacity(n)).unwrap();
        }
        assert!(p.alloc_with_fallback(NodeId(0), &[NodeId(1)]).is_err());
    }

    #[test]
    fn alloc_run_batches_with_spill_order() {
        let m = machines::twin();
        let mut p = FramePools::from_machine(&m);
        let (n0, n1) = (NodeId(0), NodeId(1));
        let cap0 = p.capacity(n0);
        p.alloc(n0, cap0 - 5).unwrap();
        let runs = p.alloc_run(n0, &[n1], 12).unwrap();
        assert_eq!(runs, vec![(n0, 5), (n1, 7)]);
        assert_eq!(p.free(n0), 0);
        assert_eq!(p.used(n1), 7);
        // Exhaustion: grants what it can, then errors.
        let cap1 = p.capacity(n1);
        let r = p.alloc_run(n0, &[n1], cap1);
        assert!(r.is_err());
        assert_eq!(p.free(n1), 0, "partial grant stays allocated, as per-page spill did");
    }

    #[test]
    fn tier_aggregates_sum_over_sets() {
        let m = machines::machine_tiered();
        let mut p = FramePools::from_machine(&m);
        let workers = m.worker_nodes();
        let expanders = m.all_nodes().difference(workers);
        assert_eq!(p.capacity_in(workers), 2 * 512 * 1024); // 2x 2 GiB
        assert_eq!(p.capacity_in(expanders), 2 * 8 * 1024 * 1024); // 2x 32 GiB
        p.alloc(NodeId(0), 100).unwrap();
        p.alloc(NodeId(2), 7).unwrap();
        assert_eq!(p.used_in(workers), 100);
        assert_eq!(p.used_in(expanders), 7);
        assert_eq!(p.free_in(m.all_nodes()), p.capacity_in(m.all_nodes()) - 107);
    }

    #[test]
    #[should_panic(expected = "releasing more pages")]
    fn over_release_panics() {
        let m = machines::twin();
        let mut p = FramePools::from_machine(&m);
        p.release(NodeId(0), 1);
    }
}
