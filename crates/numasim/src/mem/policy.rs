//! Memory placement policies — the simulated analogue of Linux
//! `set_mempolicy`/`mbind` policies, extended with the paper's
//! kernel-level *weighted interleave*.

use crate::error::SimError;
use bwap_topology::{NodeId, NodeSet};

/// Placement policy for a page range.
#[derive(Debug, Clone, PartialEq)]
pub enum MemPolicy {
    /// Linux default: allocate on the node of the first-touching thread.
    FirstTouch,
    /// Bind all pages to one node (`MPOL_BIND` with a single node).
    Bind(NodeId),
    /// Uniform round-robin interleave over a node set (`MPOL_INTERLEAVE`).
    Interleave(NodeSet),
    /// Weighted interleave: node `i` receives a fraction `weights[i]` of
    /// the pages. This is the kernel extension the paper implements
    /// (§III-B2); weights must be non-negative and sum to 1.
    WeightedInterleave(Vec<f64>),
}

impl MemPolicy {
    /// Validate the policy against a machine of `node_count` nodes.
    pub fn validate(&self, node_count: usize) -> Result<(), SimError> {
        match self {
            MemPolicy::FirstTouch => Ok(()),
            MemPolicy::Bind(n) => {
                if n.idx() >= node_count {
                    Err(SimError::InvalidNodes(format!("bind node {n} out of range")))
                } else {
                    Ok(())
                }
            }
            MemPolicy::Interleave(set) => {
                if set.is_empty() {
                    return Err(SimError::InvalidNodes("empty interleave set".into()));
                }
                if !set.is_subset(NodeSet::first(node_count)) {
                    return Err(SimError::InvalidNodes(format!(
                        "interleave set {set} exceeds machine"
                    )));
                }
                Ok(())
            }
            MemPolicy::WeightedInterleave(w) => {
                if w.len() != node_count {
                    return Err(SimError::InvalidWeights(format!(
                        "expected {node_count} weights, got {}",
                        w.len()
                    )));
                }
                if w.iter().any(|&x| !(x.is_finite() && x >= 0.0)) {
                    return Err(SimError::InvalidWeights("negative or non-finite weight".into()));
                }
                let sum: f64 = w.iter().sum();
                if (sum - 1.0).abs() > 1e-6 {
                    return Err(SimError::InvalidWeights(format!("weights sum to {sum}, not 1")));
                }
                Ok(())
            }
        }
    }

    /// The node the `index`-th page of a range should live on under this
    /// policy, given the touching thread's node (`toucher`). Deterministic:
    /// uniform interleave is round-robin; weighted interleave assigns page
    /// `i` to the node whose cumulative-weight bucket contains
    /// `(i + 0.5) / len` — an exact largest-remainder apportionment for any
    /// range length.
    pub fn target_node(&self, index: u64, range_len: u64, toucher: NodeId) -> NodeId {
        match self {
            MemPolicy::FirstTouch => toucher,
            MemPolicy::Bind(n) => *n,
            MemPolicy::Interleave(set) => {
                let nodes = set.to_vec();
                nodes[(index % nodes.len() as u64) as usize]
            }
            MemPolicy::WeightedInterleave(w) => {
                debug_assert!(range_len > 0);
                let pos = (index as f64 + 0.5) / range_len as f64;
                let mut acc = 0.0;
                let mut last_positive = 0usize;
                for (i, &wi) in w.iter().enumerate() {
                    if wi > 0.0 {
                        last_positive = i;
                    }
                    acc += wi;
                    if pos < acc {
                        return NodeId(i as u16);
                    }
                }
                // Floating-point slack at the very end of the range.
                NodeId(last_positive as u16)
            }
        }
    }

    /// Human-readable policy name (matches the paper's terminology).
    pub fn name(&self) -> &'static str {
        match self {
            MemPolicy::FirstTouch => "first-touch",
            MemPolicy::Bind(_) => "bind",
            MemPolicy::Interleave(_) => "interleave",
            MemPolicy::WeightedInterleave(_) => "weighted-interleave",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_bounds() {
        assert!(MemPolicy::FirstTouch.validate(4).is_ok());
        assert!(MemPolicy::Bind(NodeId(3)).validate(4).is_ok());
        assert!(MemPolicy::Bind(NodeId(4)).validate(4).is_err());
        assert!(MemPolicy::Interleave(NodeSet::EMPTY).validate(4).is_err());
        assert!(MemPolicy::Interleave(NodeSet::first(5)).validate(4).is_err());
        assert!(MemPolicy::Interleave(NodeSet::first(2)).validate(4).is_ok());
    }

    #[test]
    fn validate_weights() {
        assert!(MemPolicy::WeightedInterleave(vec![0.5, 0.5]).validate(2).is_ok());
        assert!(MemPolicy::WeightedInterleave(vec![0.5, 0.6]).validate(2).is_err());
        assert!(MemPolicy::WeightedInterleave(vec![1.0]).validate(2).is_err());
        assert!(MemPolicy::WeightedInterleave(vec![-0.1, 1.1]).validate(2).is_err());
        assert!(MemPolicy::WeightedInterleave(vec![f64::NAN, 1.0]).validate(2).is_err());
    }

    #[test]
    fn first_touch_follows_toucher() {
        let p = MemPolicy::FirstTouch;
        assert_eq!(p.target_node(7, 100, NodeId(2)), NodeId(2));
    }

    #[test]
    fn interleave_round_robin() {
        let set = NodeSet::from_nodes([NodeId(1), NodeId(3)]);
        let p = MemPolicy::Interleave(set);
        assert_eq!(p.target_node(0, 10, NodeId(0)), NodeId(1));
        assert_eq!(p.target_node(1, 10, NodeId(0)), NodeId(3));
        assert_eq!(p.target_node(2, 10, NodeId(0)), NodeId(1));
    }

    #[test]
    fn weighted_interleave_exact_proportions() {
        let p = MemPolicy::WeightedInterleave(vec![0.25, 0.5, 0.25]);
        let len = 1000u64;
        let mut counts = [0u64; 3];
        for i in 0..len {
            counts[p.target_node(i, len, NodeId(0)).idx()] += 1;
        }
        assert_eq!(counts, [250, 500, 250]);
    }

    #[test]
    fn weighted_interleave_handles_zero_weights() {
        let p = MemPolicy::WeightedInterleave(vec![0.0, 1.0, 0.0]);
        for i in 0..17 {
            assert_eq!(p.target_node(i, 17, NodeId(0)), NodeId(1));
        }
    }

    #[test]
    fn weighted_interleave_small_ranges_round_sanely() {
        // 3 pages at weights .5/.5: largest-remainder gives 2/1 or 1/2 —
        // never 3/0.
        let p = MemPolicy::WeightedInterleave(vec![0.5, 0.5]);
        let mut counts = [0u64; 2];
        for i in 0..3 {
            counts[p.target_node(i, 3, NodeId(0)).idx()] += 1;
        }
        assert!(counts[0] >= 1 && counts[1] >= 1);
    }

    #[test]
    fn names() {
        assert_eq!(MemPolicy::FirstTouch.name(), "first-touch");
        assert_eq!(MemPolicy::WeightedInterleave(vec![1.0]).name(), "weighted-interleave");
    }
}
