//! Rate-limited page migration.
//!
//! Migrations queue up (from `mbind` with move semantics, or from the
//! AutoNUMA daemon) and drain each epoch at a bounded rate, consuming
//! memory-controller and interconnect bandwidth through the fabric: a
//! migration reads the page from its source node and writes it to its
//! destination. This is what makes the DWP tuner's incremental migration
//! *cost* something, reproducing the paper's <= 4 % tuner overhead.

use crate::mem::segment::SegmentId;
use bwap_topology::NodeId;
use std::collections::VecDeque;

/// One queued page move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingMove {
    /// Segment the page belongs to.
    pub segment: SegmentId,
    /// Page index within the segment.
    pub page: u64,
    /// Current node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
}

/// FIFO queue of page moves for one process.
#[derive(Debug, Clone, Default)]
pub struct MigrationQueue {
    queue: VecDeque<PendingMove>,
    /// Total pages ever enqueued (stat).
    pub enqueued_total: u64,
    /// Total pages ever migrated (stat).
    pub migrated_total: u64,
}

impl MigrationQueue {
    /// Empty queue.
    pub fn new() -> Self {
        MigrationQueue::default()
    }

    /// Append moves (deterministic FIFO order).
    pub fn enqueue(&mut self, moves: impl IntoIterator<Item = PendingMove>) {
        for m in moves {
            self.queue.push_back(m);
            self.enqueued_total += 1;
        }
    }

    /// Pending page count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether no moves are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Peek at the first `k` moves without removing them (the demand the
    /// migration engine will attempt this epoch).
    pub fn peek(&self, k: usize) -> impl Iterator<Item = &PendingMove> {
        self.queue.iter().take(k)
    }

    /// Remove and return the first `k` moves (those that completed).
    pub fn complete(&mut self, k: usize) -> Vec<PendingMove> {
        let k = k.min(self.queue.len());
        self.migrated_total += k as u64;
        self.queue.drain(..k).collect()
    }

    /// Drop all pending moves (e.g. when the process exits).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Drop pending moves for pages of `segment` in `[start, start+len)`.
    /// A fresh `mbind` over a range supersedes queued moves for it — the
    /// latest policy wins, as with Linux's synchronous `mbind`. Returns
    /// how many moves were cancelled.
    pub fn cancel_range(&mut self, segment: SegmentId, start: u64, len: u64) -> usize {
        let before = self.queue.len();
        self.queue.retain(|m| !(m.segment == segment && m.page >= start && m.page < start + len));
        before - self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(page: u64, from: u16, to: u16) -> PendingMove {
        PendingMove { segment: SegmentId(0), page, from: NodeId(from), to: NodeId(to) }
    }

    #[test]
    fn fifo_order() {
        let mut q = MigrationQueue::new();
        q.enqueue([mv(0, 0, 1), mv(1, 0, 1), mv(2, 1, 0)]);
        assert_eq!(q.pending(), 3);
        let done = q.complete(2);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].page, 0);
        assert_eq!(done[1].page, 1);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.migrated_total, 2);
        assert_eq!(q.enqueued_total, 3);
    }

    #[test]
    fn complete_more_than_pending_is_safe() {
        let mut q = MigrationQueue::new();
        q.enqueue([mv(0, 0, 1)]);
        let done = q.complete(10);
        assert_eq!(done.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = MigrationQueue::new();
        q.enqueue([mv(0, 0, 1), mv(1, 1, 2)]);
        let peeked: Vec<_> = q.peek(5).copied().collect();
        assert_eq!(peeked.len(), 2);
        assert_eq!(q.pending(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut q = MigrationQueue::new();
        q.enqueue([mv(0, 0, 1)]);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_range_is_segment_and_range_scoped() {
        let mut q = MigrationQueue::new();
        q.enqueue([mv(0, 0, 1), mv(5, 0, 1), mv(10, 0, 1)]);
        q.enqueue([PendingMove { segment: SegmentId(1), page: 5, from: NodeId(0), to: NodeId(1) }]);
        // cancel pages [0, 8) of segment 0
        let cancelled = q.cancel_range(SegmentId(0), 0, 8);
        assert_eq!(cancelled, 2);
        assert_eq!(q.pending(), 2);
        // segment 1's move and segment 0's page 10 survive
        let rest: Vec<_> = q.complete(10);
        assert!(rest.iter().any(|m| m.segment == SegmentId(1)));
        assert!(rest.iter().any(|m| m.page == 10 && m.segment == SegmentId(0)));
    }
}
