//! Rate-limited page migration, queued as **ranges**.
//!
//! Migrations queue up (from `mbind` with move semantics, or from the
//! AutoNUMA daemon) and drain each epoch at a bounded rate, consuming
//! memory-controller and interconnect bandwidth through the fabric: a
//! migration reads the page from its source node and writes it to its
//! destination. This is what makes the DWP tuner's incremental migration
//! *cost* something, reproducing the paper's <= 4 % tuner overhead.
//!
//! The queue stores [`PendingRange`]s — `(segment, page range, from, to)`
//! — not individual pages: a weighted-interleave `mbind` over a
//! million-page segment queues one range per placement block instead of a
//! million `PendingMove`s. The FIFO page *order* is identical to the
//! historical per-page queue (ranges are enqueued in ascending page order
//! and split on partial completion), so rate-limiting, demand accounting
//! and completion all behave page-for-page the same.

use crate::mem::segment::SegmentId;
use bwap_topology::NodeId;
use std::collections::VecDeque;

/// One queued page move (the per-page interface, kept for AutoNUMA-style
/// callers and tests; the queue coalesces contiguous moves into ranges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingMove {
    /// Segment the page belongs to.
    pub segment: SegmentId,
    /// Page index within the segment.
    pub page: u64,
    /// Current node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
}

/// A queued run of page moves: `len` consecutive pages of `segment`
/// starting at `start`, recorded on `from` at enqueue time, heading to
/// `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRange {
    /// Segment the pages belong to.
    pub segment: SegmentId,
    /// First page of the run.
    pub start: u64,
    /// Pages in the run.
    pub len: u64,
    /// Node holding the run when it was queued (demand accounting; the
    /// completion path re-reads the page table).
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
}

/// FIFO queue of page-move ranges for one process.
#[derive(Debug, Clone, Default)]
pub struct MigrationQueue {
    queue: VecDeque<PendingRange>,
    /// Pages across all queued ranges (kept in sync with `queue`).
    pending_pages: u64,
    /// Conservative per-segment page spans `(segment, lo, hi)` covering
    /// every queued range (spans only grow; reset when the queue drains).
    /// Lets `cancel_range` answer the common no-overlap case — e.g. the
    /// paper's Algorithm 1 issuing one `mbind` per *disjoint* sub-range —
    /// in O(segments) instead of walking a million-range queue.
    seg_spans: Vec<(SegmentId, u64, u64)>,
    /// Total pages ever enqueued (stat).
    pub enqueued_total: u64,
    /// Total pages ever migrated (stat).
    pub migrated_total: u64,
}

impl MigrationQueue {
    /// Empty queue.
    pub fn new() -> Self {
        MigrationQueue::default()
    }

    /// Append ranges (deterministic FIFO order). Contiguous ranges with
    /// matching endpoints coalesce with the queue tail.
    pub fn enqueue_ranges(&mut self, ranges: impl IntoIterator<Item = PendingRange>) {
        for r in ranges {
            if r.len == 0 {
                continue;
            }
            match self.seg_spans.iter_mut().find(|(s, ..)| *s == r.segment) {
                Some((_, lo, hi)) => {
                    *lo = (*lo).min(r.start);
                    *hi = (*hi).max(r.start + r.len);
                }
                None => self.seg_spans.push((r.segment, r.start, r.start + r.len)),
            }
            self.pending_pages += r.len;
            self.enqueued_total += r.len;
            if let Some(back) = self.queue.back_mut() {
                if back.segment == r.segment
                    && back.from == r.from
                    && back.to == r.to
                    && back.start + back.len == r.start
                {
                    back.len += r.len;
                    continue;
                }
            }
            self.queue.push_back(r);
        }
    }

    /// Append single-page moves (compatibility shim over
    /// [`MigrationQueue::enqueue_ranges`]; contiguous pages coalesce).
    pub fn enqueue(&mut self, moves: impl IntoIterator<Item = PendingMove>) {
        self.enqueue_ranges(moves.into_iter().map(|m| PendingRange {
            segment: m.segment,
            start: m.page,
            len: 1,
            from: m.from,
            to: m.to,
        }));
    }

    /// Pending page count.
    pub fn pending(&self) -> usize {
        self.pending_pages as usize
    }

    /// Number of queued ranges (diagnostics: regular rebinds stay
    /// O(placement blocks), never O(pages)).
    pub fn range_count(&self) -> usize {
        self.queue.len()
    }

    /// Whether no moves are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The queued ranges in FIFO order (the demand the migration engine
    /// will attempt, front first), without removing them.
    pub fn ranges(&self) -> impl Iterator<Item = &PendingRange> {
        self.queue.iter()
    }

    /// Remove the first `k` *pages* from the queue into `out` (those that
    /// completed), splitting the boundary range if needed. Returns the
    /// number of pages removed.
    pub fn complete_into(&mut self, k: usize, out: &mut Vec<PendingRange>) -> usize {
        let mut left = (k as u64).min(self.pending_pages);
        let removed = left;
        while left > 0 {
            let front = self.queue.front_mut().expect("pending_pages tracks queue");
            if front.len <= left {
                left -= front.len;
                self.pending_pages -= front.len;
                out.push(self.queue.pop_front().expect("non-empty"));
            } else {
                out.push(PendingRange { len: left, ..*front });
                front.start += left;
                front.len -= left;
                self.pending_pages -= left;
                left = 0;
            }
        }
        self.migrated_total += removed;
        if self.queue.is_empty() {
            self.seg_spans.clear();
        }
        removed as usize
    }

    /// Remove and return the first `k` pages as ranges (allocating
    /// convenience form of [`MigrationQueue::complete_into`]).
    pub fn complete(&mut self, k: usize) -> Vec<PendingRange> {
        let mut out = Vec::new();
        self.complete_into(k, &mut out);
        out
    }

    /// Drop all pending moves (e.g. when the process exits).
    pub fn clear(&mut self) {
        self.queue.clear();
        self.seg_spans.clear();
        self.pending_pages = 0;
    }

    /// Drop pending moves for pages of `segment` in `[start, start+len)`.
    /// A fresh `mbind` over a range supersedes queued moves for it — the
    /// latest policy wins, as with Linux's synchronous `mbind`. Ranges
    /// partially covered are trimmed or split in place. Returns how many
    /// page moves were cancelled. Cancels that cannot touch anything —
    /// checked against the per-segment span index — return without
    /// scanning the queue.
    pub fn cancel_range(&mut self, segment: SegmentId, start: u64, len: u64) -> usize {
        if len == 0 {
            return 0;
        }
        let end = start + len;
        let possible =
            self.seg_spans.iter().any(|&(s, lo, hi)| s == segment && start < hi && end > lo);
        if !possible {
            return 0;
        }
        // Span hit: confirm a real overlap with one read-only pass before
        // paying for the rebuild.
        if !self
            .queue
            .iter()
            .any(|r| r.segment == segment && r.start < end && r.start + r.len > start)
        {
            return 0;
        }
        let mut cancelled = 0u64;
        let mut kept: VecDeque<PendingRange> = VecDeque::with_capacity(self.queue.len() + 1);
        for r in self.queue.drain(..) {
            let r_end = r.start + r.len;
            if r.segment != segment || r_end <= start || r.start >= end {
                kept.push_back(r);
                continue;
            }
            let (os, oe) = (r.start.max(start), r_end.min(end));
            cancelled += oe - os;
            if r.start < os {
                kept.push_back(PendingRange { len: os - r.start, ..r });
            }
            if r_end > oe {
                kept.push_back(PendingRange { start: oe, len: r_end - oe, ..r });
            }
        }
        self.queue = kept;
        self.pending_pages -= cancelled;
        cancelled as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(page: u64, from: u16, to: u16) -> PendingMove {
        PendingMove { segment: SegmentId(0), page, from: NodeId(from), to: NodeId(to) }
    }

    fn rg(start: u64, len: u64, from: u16, to: u16) -> PendingRange {
        PendingRange { segment: SegmentId(0), start, len, from: NodeId(from), to: NodeId(to) }
    }

    #[test]
    fn fifo_order() {
        let mut q = MigrationQueue::new();
        q.enqueue([mv(0, 0, 1), mv(1, 0, 1), mv(2, 1, 0)]);
        assert_eq!(q.pending(), 3);
        assert_eq!(q.range_count(), 2, "contiguous same-pair moves coalesce");
        let done = q.complete(2);
        assert_eq!(done, vec![rg(0, 2, 0, 1)]);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.migrated_total, 2);
        assert_eq!(q.enqueued_total, 3);
    }

    #[test]
    fn complete_splits_boundary_range() {
        let mut q = MigrationQueue::new();
        q.enqueue_ranges([rg(0, 10, 0, 1)]);
        let done = q.complete(4);
        assert_eq!(done, vec![rg(0, 4, 0, 1)]);
        assert_eq!(q.pending(), 6);
        let rest = q.complete(100);
        assert_eq!(rest, vec![rg(4, 6, 0, 1)]);
        assert!(q.is_empty());
        assert_eq!(q.migrated_total, 10);
    }

    #[test]
    fn complete_more_than_pending_is_safe() {
        let mut q = MigrationQueue::new();
        q.enqueue([mv(0, 0, 1)]);
        let done = q.complete(10);
        assert_eq!(done.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn ranges_do_not_consume() {
        let mut q = MigrationQueue::new();
        q.enqueue([mv(0, 0, 1), mv(1, 1, 2)]);
        let peeked: Vec<_> = q.ranges().copied().collect();
        assert_eq!(peeked.len(), 2);
        assert_eq!(q.pending(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut q = MigrationQueue::new();
        q.enqueue([mv(0, 0, 1)]);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn cancel_range_is_segment_and_range_scoped() {
        let mut q = MigrationQueue::new();
        q.enqueue([mv(0, 0, 1), mv(5, 0, 1), mv(10, 0, 1)]);
        q.enqueue([PendingMove { segment: SegmentId(1), page: 5, from: NodeId(0), to: NodeId(1) }]);
        // cancel pages [0, 8) of segment 0
        let cancelled = q.cancel_range(SegmentId(0), 0, 8);
        assert_eq!(cancelled, 2);
        assert_eq!(q.pending(), 2);
        // segment 1's move and segment 0's page 10 survive
        let rest: Vec<_> = q.complete(10);
        assert!(rest.iter().any(|r| r.segment == SegmentId(1)));
        assert!(rest.iter().any(|r| r.start == 10 && r.segment == SegmentId(0)));
    }

    #[test]
    fn cancel_range_splits_covering_range() {
        let mut q = MigrationQueue::new();
        q.enqueue_ranges([rg(0, 100, 2, 3)]);
        let cancelled = q.cancel_range(SegmentId(0), 40, 20);
        assert_eq!(cancelled, 20);
        assert_eq!(q.pending(), 80);
        let rest = q.complete(1000);
        assert_eq!(rest, vec![rg(0, 40, 2, 3), rg(60, 40, 2, 3)]);
    }
}
