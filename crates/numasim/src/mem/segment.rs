//! Virtual memory segments and their page-to-node mapping, kept as
//! run-length **extents** instead of a per-page array.
//!
//! # Representation
//!
//! A segment's placement is a sorted, disjoint, covering list of
//! extents. Each extent maps a contiguous page range either to one
//! node (`Const`) or to a repeating node cycle (`Cycle` — the periodic
//! pattern a round-robin interleave produces, stored once instead of per
//! page). The paper's placement policies are piecewise-regular, so real
//! layouts compress to a handful of extents: a 1M-page
//! weighted-interleave segment is one `Const` extent per positive-weight
//! node, not a megabyte of `u16`s.
//!
//! # Invariants
//!
//! * extents are sorted by `start`, disjoint, and cover `[0, len)`;
//! * every extent has `len > 0`; `Cycle` patterns have ≥ 2 nodes and are
//!   never all-equal (those normalize to `Const`);
//! * adjacent `Const` extents never share a node (they merge on write);
//! * `node_counts` always equals the histogram implied by the extents.
//!
//! All mutators preserve the exact page-to-node mapping the historical
//! per-page implementation produced — placement math binary-searches the
//! *same* `MemPolicy::target_node` predicate rather than re-deriving
//! boundaries in floating point, and batched frame allocation replicates
//! the per-page spill loop (see `place`). The golden campaign reports
//! pin this equivalence end-to-end.

use crate::error::SimError;
use crate::mem::frames::FramePools;
use crate::mem::policy::MemPolicy;
use bwap_topology::NodeId;

/// Identifier of a segment within one process's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub usize);

/// What a segment holds, which decides who accesses it in the demand model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Shared data accessed uniformly by all threads (the paper's shared
    /// pages assumption).
    Shared,
    /// Thread-private data of one thread (index within the process).
    Private {
        /// Index of the owning thread.
        thread: usize,
    },
}

/// Node-assignment rule of one extent.
#[derive(Debug, Clone, PartialEq)]
enum Pattern {
    /// Every page of the extent lives on one node.
    Const(NodeId),
    /// Page `p` (extent-relative) lives on `nodes[p % nodes.len()]` — the
    /// shape a round-robin interleave (possibly with spill substitutions)
    /// lays down. The phase is folded into the rotation of `nodes`.
    Cycle(Box<[NodeId]>),
}

/// A run of contiguous pages sharing one placement rule.
#[derive(Debug, Clone, PartialEq)]
struct Extent {
    start: u64,
    len: u64,
    pat: Pattern,
}

impl Extent {
    /// Node of absolute page `page` (must lie inside the extent).
    fn node_at(&self, page: u64) -> NodeId {
        debug_assert!(page >= self.start && page < self.start + self.len);
        match &self.pat {
            Pattern::Const(n) => *n,
            Pattern::Cycle(nodes) => nodes[((page - self.start) % nodes.len() as u64) as usize],
        }
    }

    fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Visit `(node, pages)` counts for the absolute sub-range `[a, b)`.
    fn for_each_count(&self, a: u64, b: u64, mut f: impl FnMut(NodeId, u64)) {
        debug_assert!(a >= self.start && b <= self.end() && a <= b);
        if a == b {
            return;
        }
        match &self.pat {
            Pattern::Const(n) => f(*n, b - a),
            Pattern::Cycle(nodes) => {
                let k = nodes.len() as u64;
                let (ra, rb) = (a - self.start, b - self.start);
                for (j, &n) in nodes.iter().enumerate() {
                    let c = slot_count(ra, rb, k, j as u64);
                    if c > 0 {
                        f(n, c);
                    }
                }
            }
        }
    }
}

/// Number of integers `i` in `[a, b)` with `i % k == j`.
fn slot_count(a: u64, b: u64, k: u64, j: u64) -> u64 {
    let upto = |x: u64| if x <= j { 0 } else { (x - j - 1) / k + 1 };
    upto(b) - upto(a)
}

/// One maximal run of non-complying pages an `mbind` would migrate: `len`
/// consecutive pages starting at `start`, all currently on `from`, all
/// targeted at `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveRun {
    /// First page of the run (segment-absolute).
    pub start: u64,
    /// Pages in the run.
    pub len: u64,
    /// Node currently holding the run.
    pub from: NodeId,
    /// Node the policy assigns the run to.
    pub to: NodeId,
}

/// The target pattern of a policy over one block of a range.
enum TargetPat {
    Const(NodeId),
    /// Relative page `r` of the *whole policy range* targets
    /// `nodes[r % nodes.len()]`.
    Cycle(Vec<NodeId>),
}

/// Decompose `policy` over a range of `range_len` pages into blocks of
/// regular structure, each `(rel_start, len, pattern)`. Exactly mirrors
/// `MemPolicy::target_node` page by page: weighted-interleave block
/// boundaries are found by binary search over the *original* per-page
/// predicate (its mapping is monotone in the page index), so no float
/// re-derivation can drift from the historical placement.
fn policy_blocks(
    policy: &MemPolicy,
    range_len: u64,
    toucher: NodeId,
) -> Vec<(u64, u64, TargetPat)> {
    if range_len == 0 {
        return Vec::new();
    }
    match policy {
        MemPolicy::FirstTouch => vec![(0, range_len, TargetPat::Const(toucher))],
        MemPolicy::Bind(n) => vec![(0, range_len, TargetPat::Const(*n))],
        MemPolicy::Interleave(set) => {
            let nodes = set.to_vec();
            if nodes.len() == 1 {
                vec![(0, range_len, TargetPat::Const(nodes[0]))]
            } else {
                vec![(0, range_len, TargetPat::Cycle(nodes))]
            }
        }
        MemPolicy::WeightedInterleave(_) => {
            let mut blocks = Vec::new();
            let mut cur = 0u64;
            while cur < range_len {
                let node = policy.target_node(cur, range_len, toucher);
                // First index past `cur` with a different target.
                let (mut lo, mut hi) = (cur, range_len);
                while lo + 1 < hi {
                    let mid = lo + (hi - lo) / 2;
                    if policy.target_node(mid, range_len, toucher) == node {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                blocks.push((cur, hi - cur, TargetPat::Const(node)));
                cur = hi;
            }
            blocks
        }
    }
}

/// A contiguous range of virtual pages, each mapped to a physical node.
/// All pages are populated at creation (the paper's applications touch
/// their full working set during initialization, before `BWAP-init`).
#[derive(Debug, Clone)]
pub struct Segment {
    kind: SegmentKind,
    /// Length in pages.
    len: u64,
    /// Sorted, disjoint, covering placement runs.
    extents: Vec<Extent>,
    /// Cached histogram: pages per node.
    node_counts: Vec<u64>,
    /// Extent count that triggers the next compaction pass (doubles when
    /// compaction cannot shrink the list, so aperiodic fragmentation
    /// degrades gracefully instead of re-scanning every write).
    compact_watermark: usize,
    /// Policy the segment was created under (later `mbind`s move pages but
    /// the creation policy records provenance for debugging).
    creation_policy: MemPolicy,
}

/// Extent count below which compaction never runs.
const COMPACT_WATERMARK: usize = 64;
/// Extents at most this long are expanded page-by-page during compaction
/// (longer ones are structural and pass through unchanged).
const COMPACT_SHORT: u64 = 4;
/// Longest cycle period the compactor searches for.
const COMPACT_MAX_PERIOD: usize = 64;

impl Segment {
    /// Allocate and place `len` pages under `policy`. `toucher` is the node
    /// of the first-touching thread (the master thread for shared segments,
    /// the owner for private ones). `fallback` gives the spill order when
    /// the target node is full (nearest-first, like Linux zone fallback).
    ///
    /// The placement is computed analytically per policy block — a
    /// million-page bind is a handful of pool operations — but lands every
    /// page on exactly the node the historical page-at-a-time loop chose:
    /// free counts only shrink during placement, so "first node of
    /// `[target] + fallback` with a free frame" is constant between pool
    /// exhaustions and whole runs can be granted at once (see
    /// [`FramePools::alloc_run`]).
    pub fn place(
        kind: SegmentKind,
        len: u64,
        policy: &MemPolicy,
        toucher: NodeId,
        frames: &mut FramePools,
        fallback: &[Vec<NodeId>],
    ) -> Result<Self, SimError> {
        let node_count = frames.node_count();
        policy.validate(node_count)?;
        if fallback.len() < node_count {
            return Err(SimError::InvalidNodes(format!(
                "fallback table covers {} of {node_count} nodes",
                fallback.len()
            )));
        }
        let mut seg = Segment {
            kind,
            len: 0,
            extents: Vec::new(),
            node_counts: vec![0u64; node_count],
            compact_watermark: COMPACT_WATERMARK,
            creation_policy: policy.clone(),
        };
        for (_, block_len, pat) in policy_blocks(policy, len, toucher) {
            match pat {
                TargetPat::Const(target) => {
                    for (node, granted) in
                        frames.alloc_run(target, &fallback[target.idx()], block_len)?
                    {
                        seg.push_const(node, granted);
                    }
                }
                TargetPat::Cycle(nodes) => seg.place_cycle(&nodes, block_len, frames, fallback)?,
            }
        }
        debug_assert_eq!(seg.len, len);
        Ok(seg)
    }

    /// Place `total` pages round-robin over `nodes`, spilling exactly like
    /// the per-page loop. Between pool exhaustions the *effective* target
    /// of each cycle slot (first free node of its spill chain) is fixed,
    /// so whole batches of cycles collapse into one `Cycle` extent; each
    /// exhaustion starts a new regime.
    fn place_cycle(
        &mut self,
        nodes: &[NodeId],
        total: u64,
        frames: &mut FramePools,
        fallback: &[Vec<NodeId>],
    ) -> Result<(), SimError> {
        let k = nodes.len();
        debug_assert!(k >= 2);
        let mut placed = 0u64;
        let mut eff = vec![NodeId(0); k];
        let mut share: Vec<(NodeId, u64)> = Vec::with_capacity(k);
        while placed < total {
            for (j, &n) in nodes.iter().enumerate() {
                eff[j] = frames.first_free(n, &fallback[n.idx()])?;
            }
            // Pages each node receives per full cycle under this regime.
            share.clear();
            for &e in &eff {
                match share.iter_mut().find(|(n, _)| *n == e) {
                    Some((_, c)) => *c += 1,
                    None => share.push((e, 1)),
                }
            }
            let cycles = share.iter().map(|&(n, s)| frames.free(n) / s).min().expect("k >= 2");
            if cycles == 0 {
                // Not a full cycle of room: step page by page (each step can
                // exhaust a pool and change the spill picture) until the
                // next cycle boundary.
                let boundary = placed + (k as u64 - placed % k as u64);
                while placed < boundary.min(total) {
                    let slot = (placed % k as u64) as usize;
                    let target = nodes[slot];
                    let node = frames.first_free(target, &fallback[target.idx()])?;
                    frames.alloc(node, 1)?;
                    self.push_const(node, 1);
                    placed += 1;
                }
                continue;
            }
            let pages = (total - placed).min(cycles * k as u64);
            // Grant every node its exact share of these `pages`, starting
            // at the current cycle phase.
            let phase = (placed % k as u64) as usize;
            let full = pages / k as u64;
            let rem = (pages % k as u64) as usize;
            for j in 0..k {
                let node = eff[(phase + j) % k];
                let cnt = full + u64::from(j < rem);
                if cnt > 0 {
                    frames.alloc(node, cnt)?;
                }
            }
            let rotated: Vec<NodeId> = (0..k).map(|j| eff[(phase + j) % k]).collect();
            self.push_cycle(&rotated, pages);
            placed += pages;
        }
        Ok(())
    }

    /// Append `len` pages on `node` to the tail of the segment, merging
    /// with the previous extent when possible.
    fn push_const(&mut self, node: NodeId, len: u64) {
        if len == 0 {
            return;
        }
        self.node_counts[node.idx()] += len;
        if let Some(last) = self.extents.last_mut() {
            if matches!(&last.pat, Pattern::Const(n) if *n == node) {
                last.len += len;
                self.len += len;
                return;
            }
        }
        self.extents.push(Extent { start: self.len, len, pat: Pattern::Const(node) });
        self.len += len;
    }

    /// Append `len` pages cycling over `nodes` (phase already folded into
    /// the rotation). Degenerate cycles normalize to `Const`.
    fn push_cycle(&mut self, nodes: &[NodeId], len: u64) {
        if len == 0 {
            return;
        }
        if nodes.iter().all(|&n| n == nodes[0]) || len == 1 {
            self.push_const(nodes[0], len);
            return;
        }
        let ext =
            Extent { start: self.len, len, pat: Pattern::Cycle(nodes.to_vec().into_boxed_slice()) };
        ext.for_each_count(ext.start, ext.end(), |n, c| self.node_counts[n.idx()] += c);
        self.extents.push(ext);
        self.len += len;
    }

    /// Segment kind.
    pub fn kind(&self) -> SegmentKind {
        self.kind
    }

    /// Length in pages.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the segment has no pages.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of extents currently describing the placement (diagnostics /
    /// perf assertions: regular placements stay O(nodes), never O(pages)).
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Approximate heap footprint of the placement bookkeeping, bytes.
    pub fn approx_heap_bytes(&self) -> usize {
        let ext = self.extents.capacity() * std::mem::size_of::<Extent>();
        let cycles: usize = self
            .extents
            .iter()
            .map(|e| match &e.pat {
                Pattern::Const(_) => 0,
                Pattern::Cycle(nodes) => nodes.len() * std::mem::size_of::<NodeId>(),
            })
            .sum();
        ext + cycles + self.node_counts.capacity() * std::mem::size_of::<u64>()
    }

    /// Index of the extent containing `page`.
    fn extent_index(&self, page: u64) -> usize {
        debug_assert!(page < self.len, "page {page} out of bounds ({})", self.len);
        self.extents.partition_point(|e| e.start <= page) - 1
    }

    /// Node currently holding page `i`.
    pub fn node_of(&self, i: u64) -> NodeId {
        assert!(i < self.len, "page {i} out of bounds ({})", self.len);
        self.extents[self.extent_index(i)].node_at(i)
    }

    /// Pages per node.
    pub fn node_counts(&self) -> &[u64] {
        &self.node_counts
    }

    /// Fraction of pages per node (all zeros for an empty segment).
    pub fn distribution(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.node_counts.len()];
        self.fill_distribution(&mut out);
        out
    }

    /// Write the per-node page fractions into `out` (allocation-free
    /// epoch-loop variant of [`Segment::distribution`]).
    pub fn fill_distribution(&self, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.node_counts.len());
        let total = self.len as f64;
        if total == 0.0 {
            out.fill(0.0);
            return;
        }
        for (o, &c) in out.iter_mut().zip(&self.node_counts) {
            *o = c as f64 / total;
        }
    }

    /// Policy the segment was created under.
    pub fn creation_policy(&self) -> &MemPolicy {
        &self.creation_policy
    }

    /// Move page `i` to `to`, updating the histogram. The caller is
    /// responsible for frame accounting (this keeps migration atomic with
    /// respect to [`FramePools`] in one place, the migration engine).
    pub fn relocate(&mut self, i: u64, to: NodeId) {
        if self.node_of(i) == to {
            return;
        }
        self.relocate_run(i, 1, to);
    }

    /// Move the `len` pages starting at `start` to `to`, splitting the
    /// overlapped extents — the O(extents) bulk form of
    /// [`Segment::relocate`] the range-based migration engine uses.
    pub fn relocate_run(&mut self, start: u64, len: u64, to: NodeId) {
        assert!(start + len <= self.len, "relocate_run out of bounds");
        if len == 0 {
            return;
        }
        let end = start + len;
        let i0 = self.extent_index(start);
        let mut i1 = i0;
        while self.extents[i1].end() < end {
            i1 += 1;
        }
        // Histogram: drop the overlapped pages' old homes, add the new one.
        let mut counts_delta_applied = 0u64;
        for e in &self.extents[i0..=i1] {
            let (a, b) = (start.max(e.start), end.min(e.end()));
            let counts = &mut self.node_counts;
            e.for_each_count(a, b, |n, c| {
                counts[n.idx()] -= c;
                counts_delta_applied += c;
            });
        }
        debug_assert_eq!(counts_delta_applied, len);
        self.node_counts[to.idx()] += len;
        // Rebuild the overlapped span: prefix of the first extent, the new
        // constant run, suffix of the last extent.
        let mut replacement: Vec<Extent> = Vec::with_capacity(3);
        let first = &self.extents[i0];
        if first.start < start {
            replacement.push(trim(first, first.start, start));
        }
        replacement.push(Extent { start, len, pat: Pattern::Const(to) });
        let last = &self.extents[i1];
        if last.end() > end {
            replacement.push(trim(last, end, last.end()));
        }
        self.extents.splice(i0..=i1, replacement);
        self.merge_around(i0);
        self.maybe_compact();
    }

    /// Run a compaction pass when fragmentation crosses the watermark.
    /// Migrating a range *into* an interleave pattern (the paper's
    /// user-level Algorithm 1) splits constant extents into per-page
    /// singletons; the drained region is exactly periodic, so compaction
    /// re-fuses those stretches into `Cycle` extents and the list stays
    /// O(pattern) instead of O(pages). Purely representational: the
    /// page-to-node mapping is untouched.
    fn maybe_compact(&mut self) {
        if self.extents.len() <= self.compact_watermark {
            return;
        }
        self.compact();
        // If the list would not shrink (genuinely aperiodic placement),
        // back off so writes stay O(watermark) amortized.
        self.compact_watermark = (self.extents.len() * 2).max(COMPACT_WATERMARK);
    }

    /// Rebuild the extent list, expanding stretches of short extents and
    /// re-encoding them as the shortest periodic cycle (or merged constant
    /// runs). Long extents pass through and re-merge at the seams.
    fn compact(&mut self) {
        let old = std::mem::take(&mut self.extents);
        let mut out: Vec<Extent> = Vec::with_capacity(old.len().min(256));
        let mut seq: Vec<NodeId> = Vec::new();
        let mut seq_start = 0u64;
        for e in &old {
            if e.len <= COMPACT_SHORT {
                if seq.is_empty() {
                    seq_start = e.start;
                }
                for p in e.start..e.end() {
                    seq.push(e.node_at(p));
                }
            } else {
                flush_seq(&mut out, seq_start, &mut seq);
                append_extent(&mut out, e.clone());
            }
        }
        flush_seq(&mut out, seq_start, &mut seq);
        self.extents = out;
    }

    /// Merge mergeable neighbors in `extents[idx.saturating_sub(1)..=idx+2]`
    /// after a splice at `idx`.
    fn merge_around(&mut self, idx: usize) {
        let mut i = idx.saturating_sub(1);
        while i + 1 < self.extents.len() && i <= idx + 2 {
            let (a, b) = (&self.extents[i], &self.extents[i + 1]);
            let merged = match (&a.pat, &b.pat) {
                (Pattern::Const(x), Pattern::Const(y)) if x == y => true,
                (Pattern::Cycle(xs), Pattern::Cycle(ys)) if xs.len() == ys.len() => {
                    // b is the aligned continuation of a's cycle.
                    let k = xs.len() as u64;
                    let shift = (a.len % k) as usize;
                    (0..xs.len()).all(|j| ys[j] == xs[(shift + j) % xs.len()])
                }
                _ => false,
            };
            if merged {
                self.extents[i].len += self.extents[i + 1].len;
                self.extents.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    /// Visit the maximal constant-node runs covering `[start, start+len)`
    /// in ascending page order: `f(run_start, run_len, node)`. O(runs) for
    /// `Const` extents; `Cycle` extents yield their per-page alternation.
    pub fn for_each_run(&self, start: u64, len: u64, mut f: impl FnMut(u64, u64, NodeId) -> bool) {
        assert!(start + len <= self.len, "run walk out of bounds");
        if len == 0 {
            return;
        }
        let end = start + len;
        let mut idx = self.extent_index(start);
        let mut run_start = start;
        let mut run_node = self.extents[idx].node_at(start);
        let mut pos = start;
        'outer: while pos < end {
            let e = &self.extents[idx];
            let e_end = e.end().min(end);
            match &e.pat {
                Pattern::Const(n) => {
                    if *n != run_node {
                        if !f(run_start, pos - run_start, run_node) {
                            return;
                        }
                        run_start = pos;
                        run_node = *n;
                    }
                    pos = e_end;
                }
                Pattern::Cycle(nodes) => {
                    let k = nodes.len() as u64;
                    while pos < e_end {
                        let n = nodes[((pos - e.start) % k) as usize];
                        if n != run_node {
                            if !f(run_start, pos - run_start, run_node) {
                                return;
                            }
                            run_start = pos;
                            run_node = n;
                        }
                        pos += 1;
                    }
                }
            }
            if pos < end {
                idx += 1;
            } else {
                break 'outer;
            }
        }
        f(run_start, end - run_start, run_node);
    }

    /// Pages in `[start, start+len)` that are **not** on the node `policy`
    /// assigns them (relative to this range), as maximal
    /// `(run, from, to)` moves in ascending page order. This is the page
    /// set an `MPOL_MF_MOVE` `mbind` migrates, and the shape the range
    /// migration queue consumes. O(extents + policy blocks + emitted
    /// runs); wholly complying pieces — including a re-applied interleave
    /// whose cycle aligns with the existing extents — are skipped without
    /// touching their pages.
    pub fn non_complying_runs(
        &self,
        start: u64,
        len: u64,
        policy: &MemPolicy,
        toucher: NodeId,
    ) -> Result<Vec<MoveRun>, SimError> {
        if start + len > self.len {
            return Err(SimError::RangeOutOfBounds { start, len, segment_len: self.len });
        }
        let mut moves: Vec<MoveRun> = Vec::new();
        if matches!(policy, MemPolicy::FirstTouch) || len == 0 {
            // First-touch never migrates existing pages.
            return Ok(moves);
        }
        let push = |moves: &mut Vec<MoveRun>, p: u64, l: u64, from: NodeId, to: NodeId| {
            if let Some(m) = moves.last_mut() {
                if m.from == from && m.to == to && m.start + m.len == p {
                    m.len += l;
                    return;
                }
            }
            moves.push(MoveRun { start: p, len: l, from, to });
        };
        let blocks = policy_blocks(policy, len, toucher);
        let end = start + len;
        let mut pos = start;
        let mut ext_idx = self.extent_index(start);
        let mut blk_idx = 0usize;
        while pos < end {
            let e = &self.extents[ext_idx];
            let (b_rel, b_len, b_pat) = &blocks[blk_idx];
            let b_end = start + b_rel + b_len;
            let piece_end = e.end().min(b_end).min(end);
            match (&e.pat, b_pat) {
                (Pattern::Const(c), TargetPat::Const(t)) => {
                    if c != t {
                        push(&mut moves, pos, piece_end - pos, *c, *t);
                    }
                }
                (Pattern::Const(c), TargetPat::Cycle(tn)) => {
                    let k = tn.len() as u64;
                    for p in pos..piece_end {
                        let t = tn[((p - start) % k) as usize];
                        if t != *c {
                            push(&mut moves, p, 1, *c, t);
                        }
                    }
                }
                (Pattern::Cycle(sn), TargetPat::Const(t)) => {
                    let k = sn.len() as u64;
                    for p in pos..piece_end {
                        let c = sn[((p - e.start) % k) as usize];
                        if c != *t {
                            push(&mut moves, p, 1, c, *t);
                        }
                    }
                }
                (Pattern::Cycle(sn), TargetPat::Cycle(tn)) => {
                    let (sk, tk) = (sn.len() as u64, tn.len() as u64);
                    let aligned = sk == tk
                        && (0..sk).all(|j| {
                            sn[(((pos - e.start) + j) % sk) as usize]
                                == tn[(((pos - start) + j) % tk) as usize]
                        });
                    if !aligned {
                        for p in pos..piece_end {
                            let c = sn[((p - e.start) % sk) as usize];
                            let t = tn[((p - start) % tk) as usize];
                            if c != t {
                                push(&mut moves, p, 1, c, t);
                            }
                        }
                    }
                }
            }
            pos = piece_end;
            if pos < end {
                if pos == e.end() {
                    ext_idx += 1;
                }
                if pos == b_end {
                    blk_idx += 1;
                }
            }
        }
        Ok(moves)
    }

    /// Per-page expansion of [`Segment::non_complying_runs`] — the
    /// historical interface, kept for tests and callers that want the
    /// explicit page list.
    pub fn non_complying(
        &self,
        start: u64,
        len: u64,
        policy: &MemPolicy,
        toucher: NodeId,
    ) -> Result<Vec<(u64, NodeId)>, SimError> {
        let runs = self.non_complying_runs(start, len, policy, toucher)?;
        let mut moves = Vec::new();
        for r in runs {
            for p in r.start..r.start + r.len {
                moves.push((p, r.to));
            }
        }
        Ok(moves)
    }
}

/// Append `e` to a compaction output list, merging with the tail when the
/// rule of [`Segment::merge_around`] applies (same-node constants; aligned
/// cycle continuations).
fn append_extent(out: &mut Vec<Extent>, e: Extent) {
    if let Some(last) = out.last_mut() {
        debug_assert_eq!(last.end(), e.start);
        let merged = match (&last.pat, &e.pat) {
            (Pattern::Const(x), Pattern::Const(y)) if x == y => true,
            (Pattern::Cycle(xs), Pattern::Cycle(ys)) if xs.len() == ys.len() => {
                let k = xs.len();
                let shift = (last.len % k as u64) as usize;
                (0..k).all(|j| ys[j] == xs[(shift + j) % k])
            }
            _ => false,
        };
        if merged {
            last.len += e.len;
            return;
        }
    }
    out.push(e);
}

/// Longest prefix of `s` that is `k`-periodic (`s[j] == s[j-k]` for all
/// `k <= j <` the returned length).
fn periodic_run(s: &[NodeId], k: usize) -> usize {
    let mut l = k.min(s.len());
    while l < s.len() && s[l] == s[l - k] {
        l += 1;
    }
    l
}

/// Re-encode an expanded page-to-node sequence starting at `seq_start` by
/// greedily emitting the longest periodic run at each position — the
/// shape a drained user-level interleave leaves behind is piecewise
/// periodic (one pattern per Algorithm-1 sub-range, seams between them),
/// and greedy segmentation compresses each piece independently. Clears
/// `seq`.
fn flush_seq(out: &mut Vec<Extent>, seq_start: u64, seq: &mut Vec<NodeId>) {
    let mut i = 0usize;
    while i < seq.len() {
        let rest = &seq[i..];
        // Longest periodic run over all candidate periods; ties prefer the
        // shortest period (a k-run is also a 2k-run).
        let mut best_k = 1;
        let mut best_l = periodic_run(rest, 1);
        for k in 2..=COMPACT_MAX_PERIOD.min(rest.len()) {
            if best_l == rest.len() {
                break;
            }
            let l = periodic_run(rest, k);
            if l > best_l {
                best_k = k;
                best_l = l;
            }
        }
        let pat = if best_k == 1 {
            Pattern::Const(rest[0])
        } else {
            Pattern::Cycle(rest[..best_k].to_vec().into_boxed_slice())
        };
        append_extent(out, Extent { start: seq_start + i as u64, len: best_l as u64, pat });
        i += best_l;
    }
    seq.clear();
}

/// The sub-extent of `e` covering absolute pages `[a, b)`, with cycle
/// phases re-folded.
fn trim(e: &Extent, a: u64, b: u64) -> Extent {
    debug_assert!(a >= e.start && b <= e.end() && a < b);
    let pat = match &e.pat {
        Pattern::Const(n) => Pattern::Const(*n),
        Pattern::Cycle(nodes) => {
            let k = nodes.len();
            let shift = ((a - e.start) % k as u64) as usize;
            let rotated: Vec<NodeId> = (0..k).map(|j| nodes[(shift + j) % k]).collect();
            Pattern::Cycle(rotated.into_boxed_slice())
        }
    };
    Extent { start: a, len: b - a, pat }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::{machines, NodeSet};

    fn frames() -> FramePools {
        FramePools::from_machine(&machines::machine_b())
    }

    fn no_fallback(n: usize) -> Vec<Vec<NodeId>> {
        vec![Vec::new(); n]
    }

    #[test]
    fn first_touch_places_on_toucher() {
        let mut f = frames();
        let s = Segment::place(
            SegmentKind::Shared,
            100,
            &MemPolicy::FirstTouch,
            NodeId(2),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        assert_eq!(s.node_counts()[2], 100);
        assert_eq!(f.used(NodeId(2)), 100);
        assert_eq!(s.len(), 100);
        assert_eq!(s.extent_count(), 1);
    }

    #[test]
    fn interleave_places_round_robin() {
        let mut f = frames();
        let set = NodeSet::from_nodes([NodeId(0), NodeId(3)]);
        let s = Segment::place(
            SegmentKind::Shared,
            10,
            &MemPolicy::Interleave(set),
            NodeId(1),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        assert_eq!(s.node_counts(), &[5, 0, 0, 5]);
        assert_eq!(s.node_of(0), NodeId(0));
        assert_eq!(s.node_of(1), NodeId(3));
        assert_eq!(s.extent_count(), 1, "round-robin is one cycle extent");
    }

    #[test]
    fn weighted_places_proportionally() {
        let mut f = frames();
        let s = Segment::place(
            SegmentKind::Shared,
            1000,
            &MemPolicy::WeightedInterleave(vec![0.1, 0.2, 0.3, 0.4]),
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        assert_eq!(s.node_counts(), &[100, 200, 300, 400]);
        let d = s.distribution();
        assert!((d[3] - 0.4).abs() < 1e-12);
        assert_eq!(s.extent_count(), 4, "one block per positive weight");
    }

    #[test]
    fn weighted_interleave_memory_is_o_extents() {
        // The acceptance bound: a 1M-page weighted-interleave segment must
        // cost O(extents) bookkeeping (< 10 KiB), not ~2 MiB of per-page
        // node ids.
        let mut f = frames();
        let s = Segment::place(
            SegmentKind::Shared,
            1_000_000,
            &MemPolicy::WeightedInterleave(vec![0.1, 0.2, 0.3, 0.4]),
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        assert_eq!(s.node_counts(), &[100_000, 200_000, 300_000, 400_000]);
        assert!(s.extent_count() <= 4, "{} extents", s.extent_count());
        assert!(s.approx_heap_bytes() < 10 * 1024, "{} bytes", s.approx_heap_bytes());
    }

    #[test]
    fn spill_when_node_full() {
        let m = machines::twin();
        let mut f = FramePools::from_machine(&m);
        let cap0 = f.capacity(NodeId(0));
        f.alloc(NodeId(0), cap0 - 10).unwrap();
        let fallback = vec![vec![NodeId(1)], vec![NodeId(0)]];
        let s = Segment::place(
            SegmentKind::Shared,
            30,
            &MemPolicy::FirstTouch,
            NodeId(0),
            &mut f,
            &fallback,
        )
        .unwrap();
        assert_eq!(s.node_counts(), &[10, 20]);
        assert_eq!(s.extent_count(), 2);
    }

    #[test]
    fn interleave_spill_matches_per_page_semantics() {
        // Interleave over {0, 1} with node 0 nearly full: once node 0
        // drains, its cycle slots spill to node 1 — same as the historical
        // per-page alloc_with_fallback loop.
        let m = machines::twin();
        let mut f = FramePools::from_machine(&m);
        let cap0 = f.capacity(NodeId(0));
        f.alloc(NodeId(0), cap0 - 3).unwrap();
        let fallback = vec![vec![NodeId(1)], vec![NodeId(0)]];
        let set = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let s = Segment::place(
            SegmentKind::Shared,
            10,
            &MemPolicy::Interleave(set),
            NodeId(0),
            &mut f,
            &fallback,
        )
        .unwrap();
        // Per-page: pages 0,2,4 land on node 0 (3 free), pages 1,3,5,7,9 on
        // node 1, and pages 6,8 (slot 0, node 0 full) spill to node 1.
        assert_eq!(s.node_counts(), &[3, 7]);
        for i in [0u64, 2, 4] {
            assert_eq!(s.node_of(i), NodeId(0), "page {i}");
        }
        for i in [1u64, 3, 5, 6, 7, 8, 9] {
            assert_eq!(s.node_of(i), NodeId(1), "page {i}");
        }
    }

    #[test]
    fn relocate_updates_histogram() {
        let mut f = frames();
        let mut s = Segment::place(
            SegmentKind::Private { thread: 0 },
            4,
            &MemPolicy::FirstTouch,
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        s.relocate(1, NodeId(3));
        assert_eq!(s.node_counts(), &[3, 0, 0, 1]);
        assert_eq!(s.node_of(1), NodeId(3));
        // no-op relocate
        s.relocate(1, NodeId(3));
        assert_eq!(s.node_counts(), &[3, 0, 0, 1]);
        assert_eq!(s.node_of(0), NodeId(0));
        assert_eq!(s.node_of(2), NodeId(0));
        assert_eq!(s.node_of(3), NodeId(0));
    }

    #[test]
    fn relocate_run_splits_and_merges_extents() {
        let mut f = frames();
        let mut s = Segment::place(
            SegmentKind::Shared,
            100,
            &MemPolicy::FirstTouch,
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        s.relocate_run(10, 30, NodeId(2));
        assert_eq!(s.node_counts(), &[70, 0, 30, 0]);
        assert_eq!(s.extent_count(), 3);
        assert_eq!(s.node_of(9), NodeId(0));
        assert_eq!(s.node_of(10), NodeId(2));
        assert_eq!(s.node_of(39), NodeId(2));
        assert_eq!(s.node_of(40), NodeId(0));
        // Moving it back re-merges into a single extent.
        s.relocate_run(10, 30, NodeId(0));
        assert_eq!(s.extent_count(), 1);
        assert_eq!(s.node_counts(), &[100, 0, 0, 0]);
    }

    #[test]
    fn relocate_inside_cycle_extent_splits_phases() {
        let mut f = frames();
        let set = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let mut s = Segment::place(
            SegmentKind::Shared,
            8,
            &MemPolicy::Interleave(set),
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        s.relocate(4, NodeId(3));
        assert_eq!(s.node_counts(), &[3, 4, 0, 1]);
        let expect = [0u16, 1, 0, 1, 3, 1, 0, 1];
        for (i, &n) in expect.iter().enumerate() {
            assert_eq!(s.node_of(i as u64), NodeId(n), "page {i}");
        }
    }

    #[test]
    fn for_each_run_yields_maximal_runs() {
        let mut f = frames();
        let mut s = Segment::place(
            SegmentKind::Shared,
            10,
            &MemPolicy::FirstTouch,
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        s.relocate_run(4, 2, NodeId(2));
        let mut runs = Vec::new();
        s.for_each_run(0, 10, |a, l, n| {
            runs.push((a, l, n));
            true
        });
        assert_eq!(runs, vec![(0, 4, NodeId(0)), (4, 2, NodeId(2)), (6, 4, NodeId(0))]);
        // Sub-range walk.
        runs.clear();
        s.for_each_run(3, 3, |a, l, n| {
            runs.push((a, l, n));
            true
        });
        assert_eq!(runs, vec![(3, 1, NodeId(0)), (4, 2, NodeId(2))]);
    }

    #[test]
    fn non_complying_lists_moves() {
        let mut f = frames();
        let s = Segment::place(
            SegmentKind::Shared,
            8,
            &MemPolicy::FirstTouch,
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        let set = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let moves = s.non_complying(0, 8, &MemPolicy::Interleave(set), NodeId(0)).unwrap();
        // round-robin targets: 0,1,0,1,... -> odd indices move to node 1
        assert_eq!(moves, vec![(1, NodeId(1)), (3, NodeId(1)), (5, NodeId(1)), (7, NodeId(1))]);
    }

    #[test]
    fn non_complying_sub_range_uses_relative_indices() {
        let mut f = frames();
        let s = Segment::place(
            SegmentKind::Shared,
            8,
            &MemPolicy::FirstTouch,
            NodeId(1),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        let moves = s.non_complying(4, 4, &MemPolicy::Bind(NodeId(1)), NodeId(0)).unwrap();
        assert!(moves.is_empty()); // already on node 1
        let moves = s.non_complying(4, 4, &MemPolicy::Bind(NodeId(2)), NodeId(0)).unwrap();
        assert_eq!(moves.len(), 4);
        assert_eq!(moves[0], (4, NodeId(2)));
    }

    #[test]
    fn non_complying_runs_coalesce_and_skip_aligned_cycles() {
        let mut f = frames();
        let set = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let s = Segment::place(
            SegmentKind::Shared,
            1000,
            &MemPolicy::Interleave(set),
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        // Re-applying the same interleave is a no-op detected at the
        // extent level, without touching pages.
        let runs = s.non_complying_runs(0, 1000, &MemPolicy::Interleave(set), NodeId(0)).unwrap();
        assert!(runs.is_empty());
        // Binding everything to node 0 moves exactly the node-1 slots.
        let runs = s.non_complying_runs(0, 1000, &MemPolicy::Bind(NodeId(0)), NodeId(0)).unwrap();
        assert_eq!(runs.len(), 500);
        assert!(runs.iter().all(|r| r.len == 1 && r.from == NodeId(1) && r.to == NodeId(0)));
        // A bind over a constant extent is a single coalesced run.
        let mut f2 = frames();
        let s2 = Segment::place(
            SegmentKind::Shared,
            1000,
            &MemPolicy::FirstTouch,
            NodeId(2),
            &mut f2,
            &no_fallback(4),
        )
        .unwrap();
        let runs = s2.non_complying_runs(0, 1000, &MemPolicy::Bind(NodeId(3)), NodeId(0)).unwrap();
        assert_eq!(runs, vec![MoveRun { start: 0, len: 1000, from: NodeId(2), to: NodeId(3) }]);
    }

    #[test]
    fn short_fallback_table_is_an_error_not_a_panic() {
        let mut f = frames(); // 4-node machine
        let r = Segment::place(
            SegmentKind::Shared,
            8,
            &MemPolicy::Bind(NodeId(3)),
            NodeId(0),
            &mut f,
            &no_fallback(2), // too short: indexing node 3 used to panic
        );
        assert!(matches!(r, Err(crate::error::SimError::InvalidNodes(_))), "{r:?}");
        // Nothing was allocated.
        for n in 0..4u16 {
            assert_eq!(f.used(NodeId(n)), 0);
        }
    }

    #[test]
    fn non_complying_rejects_bad_range() {
        let mut f = frames();
        let s = Segment::place(
            SegmentKind::Shared,
            8,
            &MemPolicy::FirstTouch,
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        assert!(s.non_complying(5, 4, &MemPolicy::Bind(NodeId(1)), NodeId(0)).is_err());
    }

    #[test]
    fn first_touch_mbind_never_moves() {
        let mut f = frames();
        let s = Segment::place(
            SegmentKind::Shared,
            8,
            &MemPolicy::Bind(NodeId(2)),
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        let moves = s.non_complying(0, 8, &MemPolicy::FirstTouch, NodeId(0)).unwrap();
        assert!(moves.is_empty());
    }

    #[test]
    fn slot_count_is_exact() {
        for k in 1..5u64 {
            for a in 0..10u64 {
                for b in a..12u64 {
                    for j in 0..k {
                        let naive = (a..b).filter(|i| i % k == j).count() as u64;
                        assert_eq!(slot_count(a, b, k, j), naive, "a={a} b={b} k={k} j={j}");
                    }
                }
            }
        }
    }
}
