//! Virtual memory segments and their page-to-node mapping.

use crate::error::SimError;
use crate::mem::frames::FramePools;
use crate::mem::policy::MemPolicy;
use bwap_topology::NodeId;

/// Identifier of a segment within one process's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub usize);

/// What a segment holds, which decides who accesses it in the demand model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Shared data accessed uniformly by all threads (the paper's shared
    /// pages assumption).
    Shared,
    /// Thread-private data of one thread (index within the process).
    Private {
        /// Index of the owning thread.
        thread: usize,
    },
}

/// A contiguous range of virtual pages, each mapped to a physical node.
/// All pages are populated at creation (the paper's applications touch
/// their full working set during initialization, before `BWAP-init`).
#[derive(Debug, Clone)]
pub struct Segment {
    kind: SegmentKind,
    /// Node holding each page.
    pages: Vec<u16>,
    /// Cached histogram: pages per node.
    node_counts: Vec<u64>,
    /// Policy the segment was created under (later `mbind`s move pages but
    /// the creation policy records provenance for debugging).
    creation_policy: MemPolicy,
}

impl Segment {
    /// Allocate and place `len` pages under `policy`. `toucher` is the node
    /// of the first-touching thread (the master thread for shared segments,
    /// the owner for private ones). `fallback` gives the spill order when
    /// the target node is full (nearest-first, like Linux zone fallback).
    pub fn place(
        kind: SegmentKind,
        len: u64,
        policy: &MemPolicy,
        toucher: NodeId,
        frames: &mut FramePools,
        fallback: &[Vec<NodeId>],
    ) -> Result<Self, SimError> {
        let node_count = frames.node_count();
        policy.validate(node_count)?;
        if fallback.len() < node_count {
            return Err(SimError::InvalidNodes(format!(
                "fallback table covers {} of {node_count} nodes",
                fallback.len()
            )));
        }
        let mut pages = Vec::with_capacity(len as usize);
        let mut node_counts = vec![0u64; node_count];
        for i in 0..len {
            let target = policy.target_node(i, len, toucher);
            let got = frames.alloc_with_fallback(target, &fallback[target.idx()])?;
            pages.push(got.0);
            node_counts[got.idx()] += 1;
        }
        Ok(Segment { kind, pages, node_counts, creation_policy: policy.clone() })
    }

    /// Segment kind.
    pub fn kind(&self) -> SegmentKind {
        self.kind
    }

    /// Length in pages.
    pub fn len(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Whether the segment has no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Node currently holding page `i`.
    pub fn node_of(&self, i: u64) -> NodeId {
        NodeId(self.pages[i as usize])
    }

    /// Pages per node.
    pub fn node_counts(&self) -> &[u64] {
        &self.node_counts
    }

    /// Fraction of pages per node (all zeros for an empty segment).
    pub fn distribution(&self) -> Vec<f64> {
        let total = self.pages.len() as f64;
        if total == 0.0 {
            return vec![0.0; self.node_counts.len()];
        }
        self.node_counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// Policy the segment was created under.
    pub fn creation_policy(&self) -> &MemPolicy {
        &self.creation_policy
    }

    /// Move page `i` to `to`, updating the histogram. The caller is
    /// responsible for frame accounting (this keeps migration atomic with
    /// respect to [`FramePools`] in one place, the migration engine).
    pub fn relocate(&mut self, i: u64, to: NodeId) {
        let from = self.pages[i as usize];
        if from == to.0 {
            return;
        }
        self.node_counts[from as usize] -= 1;
        self.node_counts[to.idx()] += 1;
        self.pages[i as usize] = to.0;
    }

    /// Pages in `[start, start+len)` that are **not** on the node `policy`
    /// assigns them (relative to this range), paired with their target.
    /// This is the page set an `MPOL_MF_MOVE` `mbind` migrates.
    pub fn non_complying(
        &self,
        start: u64,
        len: u64,
        policy: &MemPolicy,
        toucher: NodeId,
    ) -> Result<Vec<(u64, NodeId)>, SimError> {
        if start + len > self.len() {
            return Err(SimError::RangeOutOfBounds { start, len, segment_len: self.len() });
        }
        let mut moves = Vec::new();
        if matches!(policy, MemPolicy::FirstTouch) {
            // First-touch never migrates existing pages.
            return Ok(moves);
        }
        for rel in 0..len {
            let abs = start + rel;
            let target = policy.target_node(rel, len, toucher);
            if self.node_of(abs) != target {
                moves.push((abs, target));
            }
        }
        Ok(moves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwap_topology::{machines, NodeSet};

    fn frames() -> FramePools {
        FramePools::from_machine(&machines::machine_b())
    }

    fn no_fallback(n: usize) -> Vec<Vec<NodeId>> {
        vec![Vec::new(); n]
    }

    #[test]
    fn first_touch_places_on_toucher() {
        let mut f = frames();
        let s = Segment::place(
            SegmentKind::Shared,
            100,
            &MemPolicy::FirstTouch,
            NodeId(2),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        assert_eq!(s.node_counts()[2], 100);
        assert_eq!(f.used(NodeId(2)), 100);
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn interleave_places_round_robin() {
        let mut f = frames();
        let set = NodeSet::from_nodes([NodeId(0), NodeId(3)]);
        let s = Segment::place(
            SegmentKind::Shared,
            10,
            &MemPolicy::Interleave(set),
            NodeId(1),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        assert_eq!(s.node_counts(), &[5, 0, 0, 5]);
        assert_eq!(s.node_of(0), NodeId(0));
        assert_eq!(s.node_of(1), NodeId(3));
    }

    #[test]
    fn weighted_places_proportionally() {
        let mut f = frames();
        let s = Segment::place(
            SegmentKind::Shared,
            1000,
            &MemPolicy::WeightedInterleave(vec![0.1, 0.2, 0.3, 0.4]),
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        assert_eq!(s.node_counts(), &[100, 200, 300, 400]);
        let d = s.distribution();
        assert!((d[3] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn spill_when_node_full() {
        let m = machines::twin();
        let mut f = FramePools::from_machine(&m);
        let cap0 = f.capacity(NodeId(0));
        f.alloc(NodeId(0), cap0 - 10).unwrap();
        let fallback = vec![vec![NodeId(1)], vec![NodeId(0)]];
        let s = Segment::place(
            SegmentKind::Shared,
            30,
            &MemPolicy::FirstTouch,
            NodeId(0),
            &mut f,
            &fallback,
        )
        .unwrap();
        assert_eq!(s.node_counts(), &[10, 20]);
    }

    #[test]
    fn relocate_updates_histogram() {
        let mut f = frames();
        let mut s = Segment::place(
            SegmentKind::Private { thread: 0 },
            4,
            &MemPolicy::FirstTouch,
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        s.relocate(1, NodeId(3));
        assert_eq!(s.node_counts(), &[3, 0, 0, 1]);
        assert_eq!(s.node_of(1), NodeId(3));
        // no-op relocate
        s.relocate(1, NodeId(3));
        assert_eq!(s.node_counts(), &[3, 0, 0, 1]);
    }

    #[test]
    fn non_complying_lists_moves() {
        let mut f = frames();
        let s = Segment::place(
            SegmentKind::Shared,
            8,
            &MemPolicy::FirstTouch,
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        let set = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        let moves = s.non_complying(0, 8, &MemPolicy::Interleave(set), NodeId(0)).unwrap();
        // round-robin targets: 0,1,0,1,... -> odd indices move to node 1
        assert_eq!(moves, vec![(1, NodeId(1)), (3, NodeId(1)), (5, NodeId(1)), (7, NodeId(1))]);
    }

    #[test]
    fn non_complying_sub_range_uses_relative_indices() {
        let mut f = frames();
        let s = Segment::place(
            SegmentKind::Shared,
            8,
            &MemPolicy::FirstTouch,
            NodeId(1),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        let moves = s.non_complying(4, 4, &MemPolicy::Bind(NodeId(1)), NodeId(0)).unwrap();
        assert!(moves.is_empty()); // already on node 1
        let moves = s.non_complying(4, 4, &MemPolicy::Bind(NodeId(2)), NodeId(0)).unwrap();
        assert_eq!(moves.len(), 4);
        assert_eq!(moves[0], (4, NodeId(2)));
    }

    #[test]
    fn short_fallback_table_is_an_error_not_a_panic() {
        let mut f = frames(); // 4-node machine
        let r = Segment::place(
            SegmentKind::Shared,
            8,
            &MemPolicy::Bind(NodeId(3)),
            NodeId(0),
            &mut f,
            &no_fallback(2), // too short: indexing node 3 used to panic
        );
        assert!(matches!(r, Err(crate::error::SimError::InvalidNodes(_))), "{r:?}");
        // Nothing was allocated.
        for n in 0..4u16 {
            assert_eq!(f.used(NodeId(n)), 0);
        }
    }

    #[test]
    fn non_complying_rejects_bad_range() {
        let mut f = frames();
        let s = Segment::place(
            SegmentKind::Shared,
            8,
            &MemPolicy::FirstTouch,
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        assert!(s.non_complying(5, 4, &MemPolicy::Bind(NodeId(1)), NodeId(0)).is_err());
    }

    #[test]
    fn first_touch_mbind_never_moves() {
        let mut f = frames();
        let s = Segment::place(
            SegmentKind::Shared,
            8,
            &MemPolicy::Bind(NodeId(2)),
            NodeId(0),
            &mut f,
            &no_fallback(4),
        )
        .unwrap();
        let moves = s.non_complying(0, 8, &MemPolicy::FirstTouch, NodeId(0)).unwrap();
        assert!(moves.is_empty());
    }
}
