//! Simulated OS memory management: physical frames, segments, policies,
//! `mbind`, and page migration.

pub mod address_space;
pub mod frames;
pub mod migrate;
pub mod policy;
pub mod segment;

pub use address_space::AddressSpace;
pub use frames::FramePools;
pub use migrate::{MigrationQueue, PendingMove, PendingRange};
pub use policy::MemPolicy;
pub use segment::{MoveRun, Segment, SegmentId, SegmentKind};
