//! Error type for OS-level operations.

use std::fmt;

/// Errors surfaced by simulated OS calls.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Unknown process id.
    NoSuchProcess(usize),
    /// Unknown segment id within a process.
    NoSuchSegment(usize),
    /// A page range exceeded its segment.
    RangeOutOfBounds { start: u64, len: u64, segment_len: u64 },
    /// A policy referenced nodes outside the machine.
    InvalidNodes(String),
    /// Weighted interleave with invalid weights.
    InvalidWeights(String),
    /// Operation requires a running process but it already finished.
    ProcessFinished(usize),
    /// An arrival or departure time in the simulated past (or non-finite).
    InvalidTime(String),
    /// Physical memory exhausted while placing pages.
    OutOfMemory,
    /// A bounded run ended before the awaited process finished.
    Timeout {
        /// The process that was awaited.
        pid: usize,
        /// Simulated-time deadline that was hit.
        deadline: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoSuchProcess(p) => write!(f, "no such process {p}"),
            SimError::NoSuchSegment(s) => write!(f, "no such segment {s}"),
            SimError::RangeOutOfBounds { start, len, segment_len } => {
                write!(f, "range {start}+{len} out of bounds (segment has {segment_len} pages)")
            }
            SimError::InvalidNodes(s) => write!(f, "invalid node set: {s}"),
            SimError::InvalidWeights(s) => write!(f, "invalid weights: {s}"),
            SimError::ProcessFinished(p) => write!(f, "process {p} already finished"),
            SimError::InvalidTime(s) => write!(f, "invalid time: {s}"),
            SimError::OutOfMemory => write!(f, "physical memory exhausted"),
            SimError::Timeout { pid, deadline } => {
                write!(f, "process {pid} did not finish by simulated t={deadline}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::NoSuchProcess(3).to_string().contains('3'));
        let e = SimError::RangeOutOfBounds { start: 10, len: 5, segment_len: 12 };
        assert!(e.to_string().contains("10+5"));
    }
}
