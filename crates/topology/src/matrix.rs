//! Dense node-to-node bandwidth (or latency) matrices.

use crate::error::TopologyError;
use crate::node::NodeId;
use std::fmt;

/// A dense `N x N` matrix of per-pair values, row = source (memory) node,
/// column = destination (CPU) node, matching the paper's Fig. 1a layout.
/// Values are GB/s for bandwidth matrices and nanoseconds for latency
/// matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct BwMatrix {
    n: usize,
    data: Vec<f64>, // row-major
}

impl BwMatrix {
    /// Zero matrix for `n` nodes.
    pub fn zeros(n: usize) -> Self {
        BwMatrix { n, data: vec![0.0; n * n] }
    }

    /// Build from row-major data.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, TopologyError> {
        let n = rows.len();
        let mut data = Vec::with_capacity(n * n);
        for row in rows {
            if row.len() != n {
                return Err(TopologyError::DimensionMismatch { expected: n, got: row.len() });
            }
            data.extend_from_slice(row);
        }
        Ok(BwMatrix { n, data })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Value for `(src, dst)`.
    #[inline]
    pub fn get(&self, src: NodeId, dst: NodeId) -> f64 {
        self.data[src.idx() * self.n + dst.idx()]
    }

    /// Set value for `(src, dst)`.
    #[inline]
    pub fn set(&mut self, src: NodeId, dst: NodeId, v: f64) {
        self.data[src.idx() * self.n + dst.idx()] = v;
    }

    /// The diagonal (local bandwidth per node).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.data[i * self.n + i]).collect()
    }

    /// Largest entry.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest entry.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Ratio between highest (local) and lowest bandwidth — the paper quotes
    /// 5.8x for machine A and 2.3x for machine B.
    pub fn amplitude(&self) -> f64 {
        self.max() / self.min()
    }

    /// Maximum relative error versus another matrix (for calibration tests).
    pub fn max_rel_error(&self, other: &BwMatrix) -> Result<f64, TopologyError> {
        if self.n != other.n {
            return Err(TopologyError::DimensionMismatch { expected: self.n, got: other.n });
        }
        let mut worst = 0.0f64;
        for (a, b) in self.data.iter().zip(other.data.iter()) {
            if *b != 0.0 {
                worst = worst.max(((a - b) / b).abs());
            } else if *a != 0.0 {
                worst = f64::INFINITY;
            }
        }
        Ok(worst)
    }

    /// Render as a CSV block (header row of destination nodes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("src");
        for d in 0..self.n {
            out.push_str(&format!(",{}", NodeId(d as u16)));
        }
        out.push('\n');
        for s in 0..self.n {
            out.push_str(&format!("{}", NodeId(s as u16)));
            for d in 0..self.n {
                out.push_str(&format!(",{:.2}", self.data[s * self.n + d]));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for BwMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "      ")?;
        for d in 0..self.n {
            write!(f, "{:>6}", format!("{}", NodeId(d as u16)))?;
        }
        writeln!(f)?;
        for s in 0..self.n {
            write!(f, "{:>6}", format!("{}", NodeId(s as u16)))?;
            for d in 0..self.n {
                write!(f, "{:>6.1}", self.data[s * self.n + d])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_get() {
        let m = BwMatrix::from_rows(&[&[9.0, 5.0], &[4.0, 9.0]]).unwrap();
        assert_eq!(m.get(NodeId(0), NodeId(1)), 5.0);
        assert_eq!(m.get(NodeId(1), NodeId(0)), 4.0);
        assert_eq!(m.diagonal(), vec![9.0, 9.0]);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(BwMatrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
    }

    #[test]
    fn amplitude() {
        let m = BwMatrix::from_rows(&[&[10.0, 2.0], &[5.0, 10.0]]).unwrap();
        assert!((m.amplitude() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rel_error() {
        let a = BwMatrix::from_rows(&[&[10.0, 2.0], &[5.0, 10.0]]).unwrap();
        let mut b = a.clone();
        b.set(NodeId(0), NodeId(1), 2.2);
        // we perturbed one entry by 10% of its new-reference value:
        // |2.0-2.2|/2.2 = 0.0909..
        let err = a.max_rel_error(&b).unwrap();
        assert!((err - 0.2 / 2.2).abs() < 1e-12);
    }

    #[test]
    fn csv_and_display_render() {
        let m = BwMatrix::from_rows(&[&[9.0, 5.0], &[4.0, 9.0]]).unwrap();
        let csv = m.to_csv();
        assert!(csv.starts_with("src,N1,N2\n"));
        assert!(csv.contains("N2,4.00,9.00"));
        let disp = format!("{m}");
        assert!(disp.contains("9.0"));
    }

    #[test]
    fn set_and_zeros() {
        let mut m = BwMatrix::zeros(3);
        m.set(NodeId(2), NodeId(0), 7.5);
        assert_eq!(m.get(NodeId(2), NodeId(0)), 7.5);
        assert_eq!(m.get(NodeId(0), NodeId(2)), 0.0);
    }
}
