//! Ergonomic construction of [`MachineTopology`] values.

use crate::error::TopologyError;
use crate::link::{Link, LinkId};
use crate::machine::MachineTopology;
use crate::matrix::BwMatrix;
use crate::node::{NodeId, NodeSpec};
use crate::route::{Hop, Route, RoutingTable};

/// Builder for custom machines. Reference machines in
/// [`crate::machines`] are built with this too.
///
/// ```
/// use bwap_topology::{TopologyBuilder, NodeSpec, NodeId};
///
/// let m = TopologyBuilder::new("twin")
///     .node(NodeSpec::new(4, 4.0, 10.0, 16.0))
///     .node(NodeSpec::new(4, 4.0, 10.0, 16.0))
///     .symmetric_link(NodeId(0), NodeId(1), 6.0)
///     .auto_routes()
///     .default_path_caps()
///     .hop_latencies(90.0, 60.0)
///     .build()
///     .unwrap();
/// assert_eq!(m.node_count(), 2);
/// assert_eq!(m.path_bw(NodeId(0), NodeId(1)), 6.0);
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    name: String,
    nodes: Vec<NodeSpec>,
    links: Vec<Link>,
    routes: Option<RoutingTable>,
    path_caps: Option<BwMatrix>,
    latency_ns: Option<BwMatrix>,
}

impl TopologyBuilder {
    /// Start building a machine with the given name.
    pub fn new(name: &str) -> Self {
        TopologyBuilder {
            name: name.to_string(),
            nodes: Vec::new(),
            links: Vec::new(),
            routes: None,
            path_caps: None,
            latency_ns: None,
        }
    }

    /// Add a node; nodes receive ids in insertion order.
    pub fn node(mut self, spec: NodeSpec) -> Self {
        self.nodes.push(spec);
        self
    }

    /// Add `count` identical nodes.
    pub fn nodes(mut self, count: usize, spec: NodeSpec) -> Self {
        for _ in 0..count {
            self.nodes.push(spec.clone());
        }
        self
    }

    /// Add a link with independent per-direction capacities.
    pub fn link(mut self, a: NodeId, b: NodeId, cap_ab: f64, cap_ba: f64) -> Self {
        self.links.push(Link { a, b, cap_ab, cap_ba });
        self
    }

    /// Add a link with equal capacity both ways.
    pub fn symmetric_link(self, a: NodeId, b: NodeId, cap: f64) -> Self {
        self.link(a, b, cap, cap)
    }

    /// Set an explicit route for an ordered pair (node ids as u16 for
    /// brevity); hops are given as `(link_index, from_node)` pairs resolved
    /// against the links added so far.
    pub fn route_via(mut self, src: u16, dst: u16, intermediates: &[u16]) -> Self {
        let routes = self.routes.get_or_insert_with(|| RoutingTable::all_local(self.nodes.len()));
        let mut hops = Vec::new();
        let mut at = NodeId(src);
        for &next in intermediates.iter().chain(std::iter::once(&dst)) {
            let next = NodeId(next);
            let (idx, link) = self
                .links
                .iter()
                .enumerate()
                .find(|(_, l)| l.touches(at) && l.touches(next))
                .unwrap_or_else(|| panic!("no link between {at} and {next}"));
            hops.push(Hop { link: LinkId(idx), dir: link.direction_from(at).unwrap() });
            at = next;
        }
        routes.set(NodeId(src), NodeId(dst), Route::new(hops));
        self
    }

    /// Compute routes for every pair lacking one: BFS shortest path by hop
    /// count, tie-broken by the larger bottleneck capacity, then by lower
    /// intermediate node ids (deterministic).
    pub fn auto_routes(mut self) -> Self {
        let n = self.nodes.len();
        let mut routes = self.routes.take().unwrap_or_else(|| RoutingTable::all_local(n));
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let (src, dst) = (NodeId(s as u16), NodeId(d as u16));
                if !routes.get(src, dst).is_local() {
                    continue; // explicit route provided
                }
                if let Some(route) = self.bfs_route(src, dst) {
                    routes.set(src, dst, route);
                }
            }
        }
        self.routes = Some(routes);
        self
    }

    fn bfs_route(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        // Breadth-first search over nodes; for equal-depth candidates keep
        // the path with the larger bottleneck, then lexicographically
        // smaller node sequence.
        #[derive(Clone)]
        struct Path {
            at: NodeId,
            hops: Vec<Hop>,
            bottleneck: f64,
            seq: Vec<u16>,
        }
        let mut frontier =
            vec![Path { at: src, hops: Vec::new(), bottleneck: f64::INFINITY, seq: vec![src.0] }];
        let mut visited_depth = vec![usize::MAX; self.nodes.len()];
        visited_depth[src.idx()] = 0;
        for depth in 1..=self.nodes.len() {
            let mut best_done: Option<Path> = None;
            let mut next_frontier: Vec<Path> = Vec::new();
            for path in &frontier {
                for (idx, link) in self.links.iter().enumerate() {
                    let Some(dir) = link.direction_from(path.at) else { continue };
                    let to = link.other_end(path.at).unwrap();
                    if path.seq.contains(&to.0) {
                        continue;
                    }
                    let mut cand = path.clone();
                    cand.at = to;
                    cand.hops.push(Hop { link: LinkId(idx), dir });
                    cand.bottleneck = cand.bottleneck.min(link.capacity(dir));
                    cand.seq.push(to.0);
                    if to == dst {
                        let better = match &best_done {
                            None => true,
                            Some(b) => {
                                cand.bottleneck > b.bottleneck + 1e-12
                                    || ((cand.bottleneck - b.bottleneck).abs() <= 1e-12
                                        && cand.seq < b.seq)
                            }
                        };
                        if better {
                            best_done = Some(cand);
                        }
                    } else if visited_depth[to.idx()] >= depth {
                        visited_depth[to.idx()] = depth;
                        next_frontier.push(cand);
                    }
                }
            }
            if let Some(done) = best_done {
                return Some(Route::new(done.hops));
            }
            frontier = next_frontier;
            if frontier.is_empty() {
                break;
            }
        }
        None
    }

    /// Provide the calibrated single-flow bandwidth matrix explicitly
    /// (diagonal must equal each node's `ctrl_bw`).
    pub fn path_caps(mut self, m: BwMatrix) -> Self {
        self.path_caps = Some(m);
        self
    }

    /// Derive path caps from the physical structure: local = controller
    /// bandwidth; remote = weakest link on the route, discounted 10 % per
    /// extra hop (protocol overhead), never above the source controller.
    pub fn default_path_caps(mut self) -> Self {
        let n = self.nodes.len();
        let routes = self.routes.as_ref().expect("routes before default_path_caps");
        let mut m = BwMatrix::zeros(n);
        for s in 0..n {
            for d in 0..n {
                let (src, dst) = (NodeId(s as u16), NodeId(d as u16));
                let v = if s == d {
                    self.nodes[s].ctrl_bw
                } else {
                    let route = routes.get(src, dst);
                    let hops = route.hop_count().max(1);
                    let link_cap = route.min_link_capacity(&self.links);
                    (link_cap * 0.9f64.powi(hops as i32 - 1)).min(self.nodes[s].ctrl_bw)
                };
                m.set(src, dst, v);
            }
        }
        self.path_caps = Some(m);
        self
    }

    /// Provide the latency matrix explicitly.
    pub fn latencies(mut self, m: BwMatrix) -> Self {
        self.latency_ns = Some(m);
        self
    }

    /// Derive latencies as `(local_ns + per_hop_ns * hops) * lat_scale(src)`:
    /// the serving node's memory class scales its whole row, so accesses
    /// served from a slow tier (CXL expander, PMEM) pay the tier's media
    /// latency on top of the interconnect hops.
    pub fn hop_latencies(mut self, local_ns: f64, per_hop_ns: f64) -> Self {
        let n = self.nodes.len();
        let routes = self.routes.as_ref().expect("routes before hop_latencies");
        let mut m = BwMatrix::zeros(n);
        for s in 0..n {
            let tier = self.nodes[s].mem_class.lat_scale;
            for d in 0..n {
                let (src, dst) = (NodeId(s as u16), NodeId(d as u16));
                let hops = routes.get(src, dst).hop_count();
                m.set(src, dst, (local_ns + per_hop_ns * hops as f64) * tier);
            }
        }
        self.latency_ns = Some(m);
        self
    }

    /// Finish and validate.
    pub fn build(self) -> Result<MachineTopology, TopologyError> {
        let n = self.nodes.len();
        let routes = self.routes.unwrap_or_else(|| RoutingTable::all_local(n));
        let path_caps =
            self.path_caps.ok_or(TopologyError::DimensionMismatch { expected: n, got: 0 })?;
        let latency_ns =
            self.latency_ns.ok_or(TopologyError::DimensionMismatch { expected: n, got: 0 })?;
        MachineTopology::new(self.name, self.nodes, self.links, routes, path_caps, latency_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad() -> TopologyBuilder {
        // ring of 4 nodes
        TopologyBuilder::new("ring4")
            .nodes(4, NodeSpec::new(4, 4.0, 10.0, 16.0))
            .symmetric_link(NodeId(0), NodeId(1), 6.0)
            .symmetric_link(NodeId(1), NodeId(2), 6.0)
            .symmetric_link(NodeId(2), NodeId(3), 6.0)
            .symmetric_link(NodeId(3), NodeId(0), 6.0)
    }

    #[test]
    fn auto_routes_pick_shortest() {
        let m = quad().auto_routes().default_path_caps().hop_latencies(90.0, 50.0).build().unwrap();
        assert_eq!(m.routes().get(NodeId(0), NodeId(1)).hop_count(), 1);
        assert_eq!(m.routes().get(NodeId(0), NodeId(2)).hop_count(), 2);
        // 2-hop path discounted by 10%
        assert!((m.path_bw(NodeId(0), NodeId(2)) - 5.4).abs() < 1e-9);
        assert!((m.latency_ns().get(NodeId(0), NodeId(2)) - 190.0).abs() < 1e-9);
    }

    #[test]
    fn auto_routes_prefer_fatter_bottleneck_on_tie() {
        let m = TopologyBuilder::new("tri")
            .nodes(3, NodeSpec::new(2, 1.0, 10.0, 16.0))
            .symmetric_link(NodeId(0), NodeId(1), 2.0) // thin direct
            .symmetric_link(NodeId(0), NodeId(2), 8.0)
            .symmetric_link(NodeId(2), NodeId(1), 8.0)
            .auto_routes()
            .default_path_caps()
            .hop_latencies(90.0, 50.0)
            .build()
            .unwrap();
        // shortest (1 hop) wins even though 2-hop has fatter bottleneck
        assert_eq!(m.routes().get(NodeId(0), NodeId(1)).hop_count(), 1);
        assert!((m.path_bw(NodeId(0), NodeId(1)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn explicit_route_respected_by_auto_routes() {
        let m = quad()
            .route_via(0, 2, &[1])
            .auto_routes()
            .default_path_caps()
            .hop_latencies(90.0, 50.0)
            .build()
            .unwrap();
        let r = m.routes().get(NodeId(0), NodeId(2));
        assert_eq!(r.hop_count(), 2);
        // goes through node 1: first hop is link 0 (0<->1)
        assert_eq!(r.hops()[0].link, LinkId(0));
    }

    #[test]
    fn missing_matrices_error() {
        let r = quad().auto_routes().build();
        assert!(r.is_err());
    }

    #[test]
    fn disconnected_machine_fails_validation() {
        let r = TopologyBuilder::new("islands")
            .nodes(2, NodeSpec::new(2, 1.0, 10.0, 16.0))
            .auto_routes()
            .default_path_caps()
            .hop_latencies(90.0, 50.0)
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn doc_example_builds() {
        let m = TopologyBuilder::new("twin")
            .node(NodeSpec::new(4, 4.0, 10.0, 16.0))
            .node(NodeSpec::new(4, 4.0, 10.0, 16.0))
            .symmetric_link(NodeId(0), NodeId(1), 6.0)
            .auto_routes()
            .default_path_caps()
            .hop_latencies(90.0, 60.0)
            .build()
            .unwrap();
        assert_eq!(m.path_bw(NodeId(1), NodeId(0)), 6.0);
    }
}
