//! NUMA topology model for the BWAP reproduction suite.
//!
//! This crate describes *machines*: sets of NUMA nodes (CPU cores + a local
//! memory controller), the directed interconnect links between them, the
//! routes data takes between every ordered pair of nodes, and the calibrated
//! per-pair bandwidth caps and latencies.
//!
//! Two reference machines mirror the paper's testbeds:
//!
//! * [`machines::machine_a`] — an 8-node, strongly asymmetric topology
//!   calibrated so single-flow probes reproduce the paper's Fig. 1a
//!   bandwidth matrix (4-socket AMD Opteron 6272, 5.8x amplitude).
//! * [`machines::machine_b`] — a 4-node, 2-socket Cluster-on-Die topology
//!   with a 2.3x amplitude (Intel Xeon E5-2660 v4).
//!
//! A third reference machine goes beyond the paper's testbeds:
//! [`machines::machine_tiered`] mixes memory tiers — two worker nodes with
//! a small fast DRAM tier plus two CPU-less, slow, high-capacity expander
//! nodes ([`MemClass`]). Machines distinguish *worker* nodes (can host
//! threads, [`MachineTopology::worker_nodes`]) from *memory* nodes (can
//! hold pages, [`MachineTopology::memory_nodes`]); on symmetric machines
//! the two sets coincide.
//!
//! Bandwidths are in GB/s (1e9 bytes per second), latencies in nanoseconds.
//! The crate is purely descriptive: contention/allocation lives in
//! `bwap-fabric`, and the simulated OS in `numasim`.

pub mod builder;
pub mod error;
pub mod link;
pub mod machine;
pub mod machines;
pub mod matrix;
pub mod node;
pub mod route;

pub use builder::TopologyBuilder;
pub use error::TopologyError;
pub use link::{Direction, Link, LinkId};
pub use machine::MachineTopology;
pub use matrix::BwMatrix;
pub use node::{MemClass, NodeId, NodeSet, NodeSpec};
pub use route::{Hop, Route, RoutingTable};

/// Size of a simulated OS page in bytes (the Linux default the paper uses).
pub const PAGE_SIZE: usize = 4096;

/// One gigabyte per second, in bytes per second.
pub const GB: f64 = 1e9;
