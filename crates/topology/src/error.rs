//! Error type for topology construction and validation.

use std::fmt;

/// Errors raised while building or validating a [`crate::MachineTopology`].
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// A node id referenced a node that does not exist.
    UnknownNode(u16),
    /// A link id referenced a link that does not exist.
    UnknownLink(usize),
    /// A bandwidth or capacity value was non-positive or non-finite.
    BadBandwidth { what: &'static str, value: f64 },
    /// The machine has no nodes.
    Empty,
    /// Every node is memory-only: nothing can host threads.
    NoWorkerNodes,
    /// More nodes than [`crate::NodeSet`] can hold (64).
    TooManyNodes(usize),
    /// A route references a link that does not connect its hops.
    BrokenRoute { src: u16, dst: u16, detail: String },
    /// The routing table is missing an ordered pair.
    MissingRoute { src: u16, dst: u16 },
    /// A matrix had the wrong dimensions.
    DimensionMismatch { expected: usize, got: usize },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node id {n}"),
            TopologyError::UnknownLink(l) => write!(f, "unknown link id {l}"),
            TopologyError::BadBandwidth { what, value } => {
                write!(f, "bad bandwidth for {what}: {value}")
            }
            TopologyError::Empty => write!(f, "machine has no nodes"),
            TopologyError::NoWorkerNodes => {
                write!(f, "machine has no worker-capable nodes (every node is memory-only)")
            }
            TopologyError::TooManyNodes(n) => {
                write!(f, "machine has {n} nodes; NodeSet supports at most 64")
            }
            TopologyError::BrokenRoute { src, dst, detail } => {
                write!(f, "broken route {src}->{dst}: {detail}")
            }
            TopologyError::MissingRoute { src, dst } => {
                write!(f, "missing route {src}->{dst}")
            }
            TopologyError::DimensionMismatch { expected, got } => {
                write!(f, "matrix dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TopologyError::BrokenRoute {
            src: 1,
            dst: 2,
            detail: "link 3 does not touch node 1".into(),
        };
        let s = e.to_string();
        assert!(s.contains("1->2"));
        assert!(s.contains("link 3"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(TopologyError::Empty);
        assert_eq!(e.to_string(), "machine has no nodes");
    }
}
