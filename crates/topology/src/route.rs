//! Routes: the sequence of directed link hops data takes between two nodes.

use crate::error::TopologyError;
use crate::link::{Direction, Link, LinkId};
use crate::node::NodeId;

/// One traversal of a physical link in a specific direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hop {
    /// Which link is traversed.
    pub link: LinkId,
    /// In which direction.
    pub dir: Direction,
}

/// An ordered sequence of hops from a source (memory) node to a destination
/// (CPU) node. The local route (src == dst) has no hops.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Route {
    hops: Vec<Hop>,
}

impl Route {
    /// The empty (local) route.
    pub fn local() -> Self {
        Route { hops: Vec::new() }
    }

    /// Route over the given hops.
    pub fn new(hops: Vec<Hop>) -> Self {
        Route { hops }
    }

    /// Hops in traversal order.
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// Number of link traversals.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Whether this is the local (zero-hop) route.
    pub fn is_local(&self) -> bool {
        self.hops.is_empty()
    }

    /// Verify the route is a connected path `src -> dst` over `links`.
    pub fn validate(&self, src: NodeId, dst: NodeId, links: &[Link]) -> Result<(), TopologyError> {
        let mut at = src;
        for hop in &self.hops {
            let link = links.get(hop.link.0).ok_or(TopologyError::UnknownLink(hop.link.0))?;
            let expected_dir =
                link.direction_from(at).ok_or_else(|| TopologyError::BrokenRoute {
                    src: src.0,
                    dst: dst.0,
                    detail: format!("link {} does not leave node {at}", hop.link.0),
                })?;
            if expected_dir != hop.dir {
                return Err(TopologyError::BrokenRoute {
                    src: src.0,
                    dst: dst.0,
                    detail: format!("hop over link {} has wrong direction", hop.link.0),
                });
            }
            at = link.other_end(at).expect("direction_from succeeded");
        }
        if at != dst {
            return Err(TopologyError::BrokenRoute {
                src: src.0,
                dst: dst.0,
                detail: format!("route ends at {at}, not {dst}"),
            });
        }
        Ok(())
    }

    /// The tightest link capacity along the route (infinite for local).
    pub fn min_link_capacity(&self, links: &[Link]) -> f64 {
        self.hops.iter().map(|h| links[h.link.0].capacity(h.dir)).fold(f64::INFINITY, f64::min)
    }
}

/// All-pairs routing table. Entry `(src, dst)` is the path data flows when a
/// thread on `dst` reads memory resident on `src` (matching the paper's
/// `bw(n_src -> n_dst)` orientation).
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTable {
    n: usize,
    routes: Vec<Route>, // row-major [src][dst]
}

impl RoutingTable {
    /// Table of local-only routes for `n` nodes (valid for fully local
    /// machines or as a starting point for the builder).
    pub fn all_local(n: usize) -> Self {
        RoutingTable { n, routes: vec![Route::local(); n * n] }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Set the route for an ordered pair.
    pub fn set(&mut self, src: NodeId, dst: NodeId, route: Route) {
        let idx = self.index(src, dst);
        self.routes[idx] = route;
    }

    /// The route for an ordered pair.
    pub fn get(&self, src: NodeId, dst: NodeId) -> &Route {
        &self.routes[self.index(src, dst)]
    }

    fn index(&self, src: NodeId, dst: NodeId) -> usize {
        assert!(src.idx() < self.n && dst.idx() < self.n, "node id out of range");
        src.idx() * self.n + dst.idx()
    }

    /// Validate every pair: off-diagonal routes must connect src to dst;
    /// diagonal routes must be local.
    pub fn validate(&self, links: &[Link]) -> Result<(), TopologyError> {
        for s in 0..self.n {
            for d in 0..self.n {
                let (src, dst) = (NodeId(s as u16), NodeId(d as u16));
                let route = self.get(src, dst);
                if s == d && !route.is_local() {
                    return Err(TopologyError::BrokenRoute {
                        src: src.0,
                        dst: dst.0,
                        detail: "diagonal route must be local".into(),
                    });
                }
                if s != d && route.is_local() {
                    return Err(TopologyError::MissingRoute { src: src.0, dst: dst.0 });
                }
                route.validate(src, dst, links)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;

    fn three_node_links() -> Vec<Link> {
        vec![
            Link::symmetric(NodeId(0), NodeId(1), 5.0), // link 0
            Link::symmetric(NodeId(1), NodeId(2), 3.0), // link 1
        ]
    }

    #[test]
    fn local_route_is_valid_and_infinite() {
        let links = three_node_links();
        let r = Route::local();
        assert!(r.validate(NodeId(0), NodeId(0), &links).is_ok());
        assert_eq!(r.min_link_capacity(&links), f64::INFINITY);
        assert!(r.is_local());
    }

    #[test]
    fn two_hop_route_validates_and_caps() {
        let links = three_node_links();
        let r = Route::new(vec![
            Hop { link: LinkId(0), dir: Direction::AtoB },
            Hop { link: LinkId(1), dir: Direction::AtoB },
        ]);
        assert!(r.validate(NodeId(0), NodeId(2), &links).is_ok());
        assert_eq!(r.min_link_capacity(&links), 3.0);
        assert_eq!(r.hop_count(), 2);
    }

    #[test]
    fn wrong_direction_rejected() {
        let links = three_node_links();
        let r = Route::new(vec![Hop { link: LinkId(0), dir: Direction::BtoA }]);
        assert!(matches!(
            r.validate(NodeId(0), NodeId(1), &links),
            Err(TopologyError::BrokenRoute { .. })
        ));
    }

    #[test]
    fn disconnected_route_rejected() {
        let links = three_node_links();
        let r = Route::new(vec![Hop { link: LinkId(0), dir: Direction::AtoB }]);
        // ends at node 1, not node 2
        assert!(matches!(
            r.validate(NodeId(0), NodeId(2), &links),
            Err(TopologyError::BrokenRoute { .. })
        ));
    }

    #[test]
    fn unknown_link_rejected() {
        let links = three_node_links();
        let r = Route::new(vec![Hop { link: LinkId(9), dir: Direction::AtoB }]);
        assert!(matches!(
            r.validate(NodeId(0), NodeId(1), &links),
            Err(TopologyError::UnknownLink(9))
        ));
    }

    #[test]
    fn routing_table_roundtrip_and_validate() {
        let links = three_node_links();
        let mut rt = RoutingTable::all_local(3);
        rt.set(
            NodeId(0),
            NodeId(1),
            Route::new(vec![Hop { link: LinkId(0), dir: Direction::AtoB }]),
        );
        // missing routes for other pairs -> invalid
        assert!(rt.validate(&links).is_err());
        rt.set(
            NodeId(1),
            NodeId(0),
            Route::new(vec![Hop { link: LinkId(0), dir: Direction::BtoA }]),
        );
        rt.set(
            NodeId(1),
            NodeId(2),
            Route::new(vec![Hop { link: LinkId(1), dir: Direction::AtoB }]),
        );
        rt.set(
            NodeId(2),
            NodeId(1),
            Route::new(vec![Hop { link: LinkId(1), dir: Direction::BtoA }]),
        );
        rt.set(
            NodeId(0),
            NodeId(2),
            Route::new(vec![
                Hop { link: LinkId(0), dir: Direction::AtoB },
                Hop { link: LinkId(1), dir: Direction::AtoB },
            ]),
        );
        rt.set(
            NodeId(2),
            NodeId(0),
            Route::new(vec![
                Hop { link: LinkId(1), dir: Direction::BtoA },
                Hop { link: LinkId(0), dir: Direction::BtoA },
            ]),
        );
        assert!(rt.validate(&links).is_ok());
        assert_eq!(rt.get(NodeId(0), NodeId(2)).hop_count(), 2);
    }
}
