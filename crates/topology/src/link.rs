//! Physical interconnect links.
//!
//! A link joins two nodes and has an independent capacity per direction,
//! because contemporary interconnects (HyperTransport, QPI) are frequently
//! asymmetric — the paper's Fig. 1a shows "possibly distinct BWs for each
//! communication direction".

use crate::node::NodeId;
use std::fmt;

/// Index of a link within a machine's link table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Direction of traversal over a [`Link`]: `AtoB` carries data from
/// `Link::a` to `Link::b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From endpoint `a` to endpoint `b`.
    AtoB,
    /// From endpoint `b` to endpoint `a`.
    BtoA,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::AtoB => Direction::BtoA,
            Direction::BtoA => Direction::AtoB,
        }
    }
}

/// A bidirectional physical link with per-direction capacities in GB/s.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Capacity for data flowing `a -> b`.
    pub cap_ab: f64,
    /// Capacity for data flowing `b -> a`.
    pub cap_ba: f64,
}

impl Link {
    /// Symmetric link with the same capacity in both directions.
    pub fn symmetric(a: NodeId, b: NodeId, cap: f64) -> Self {
        Link { a, b, cap_ab: cap, cap_ba: cap }
    }

    /// Capacity when traversed in `dir`.
    pub fn capacity(&self, dir: Direction) -> f64 {
        match dir {
            Direction::AtoB => self.cap_ab,
            Direction::BtoA => self.cap_ba,
        }
    }

    /// Whether the link touches `n`.
    pub fn touches(&self, n: NodeId) -> bool {
        self.a == n || self.b == n
    }

    /// Given a source endpoint, the direction that leaves it, if the link
    /// touches that node.
    pub fn direction_from(&self, src: NodeId) -> Option<Direction> {
        if self.a == src {
            Some(Direction::AtoB)
        } else if self.b == src {
            Some(Direction::BtoA)
        } else {
            None
        }
    }

    /// The endpoint reached when entering from `src`.
    pub fn other_end(&self, src: NodeId) -> Option<NodeId> {
        if self.a == src {
            Some(self.b)
        } else if self.b == src {
            Some(self.a)
        } else {
            None
        }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<->{} ({:.1}/{:.1} GB/s)", self.a, self.b, self.cap_ab, self.cap_ba)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_reverse_roundtrip() {
        assert_eq!(Direction::AtoB.reverse(), Direction::BtoA);
        assert_eq!(Direction::AtoB.reverse().reverse(), Direction::AtoB);
    }

    #[test]
    fn capacity_per_direction() {
        let l = Link { a: NodeId(0), b: NodeId(1), cap_ab: 4.0, cap_ba: 2.9 };
        assert_eq!(l.capacity(Direction::AtoB), 4.0);
        assert_eq!(l.capacity(Direction::BtoA), 2.9);
    }

    #[test]
    fn endpoints_and_directions() {
        let l = Link::symmetric(NodeId(2), NodeId(5), 5.4);
        assert!(l.touches(NodeId(2)));
        assert!(!l.touches(NodeId(3)));
        assert_eq!(l.direction_from(NodeId(2)), Some(Direction::AtoB));
        assert_eq!(l.direction_from(NodeId(5)), Some(Direction::BtoA));
        assert_eq!(l.direction_from(NodeId(0)), None);
        assert_eq!(l.other_end(NodeId(5)), Some(NodeId(2)));
        assert_eq!(l.other_end(NodeId(1)), None);
    }

    #[test]
    fn display_format() {
        let l = Link::symmetric(NodeId(0), NodeId(1), 5.5);
        assert_eq!(format!("{l}"), "N1<->N2 (5.5/5.5 GB/s)");
    }
}
