//! A complete machine description: nodes, links, routes, calibrated per-pair
//! bandwidth caps and latencies.

use crate::error::TopologyError;
use crate::link::Link;
use crate::matrix::BwMatrix;
use crate::node::{NodeId, NodeSet, NodeSpec};
use crate::route::RoutingTable;

/// A cache-coherent NUMA machine, as assumed by the paper's system model
/// (§III-A1): `N` nodes, each with cores and a local memory controller,
/// fully connected through an (asymmetric) interconnect.
///
/// Besides the physical structure (links + routes, used for congestion
/// modelling), the machine carries a calibrated `path_caps` matrix: the
/// bandwidth a *single* uncontended flow achieves between each ordered node
/// pair. For the reference machines this matrix reproduces the paper's
/// measured matrices (Fig. 1a for machine A); the fabric uses it to model
/// per-hop protocol overheads that make end-to-end bandwidth lower than any
/// individual link's nominal capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineTopology {
    name: String,
    nodes: Vec<NodeSpec>,
    links: Vec<Link>,
    routes: RoutingTable,
    path_caps: BwMatrix,
    latency_ns: BwMatrix,
}

impl MachineTopology {
    /// Assemble and validate a machine. Prefer [`crate::TopologyBuilder`].
    pub fn new(
        name: String,
        nodes: Vec<NodeSpec>,
        links: Vec<Link>,
        routes: RoutingTable,
        path_caps: BwMatrix,
        latency_ns: BwMatrix,
    ) -> Result<Self, TopologyError> {
        let m = MachineTopology { name, nodes, links, routes, path_caps, latency_ns };
        m.validate()?;
        Ok(m)
    }

    /// Machine name (e.g. `"machine-a"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of NUMA nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes as a set.
    pub fn all_nodes(&self) -> NodeSet {
        NodeSet::first(self.node_count())
    }

    /// Nodes that can host threads (`cores > 0`). On pre-tier symmetric
    /// machines this equals [`MachineTopology::all_nodes`].
    pub fn worker_nodes(&self) -> NodeSet {
        NodeSet::from_nodes(
            self.nodes
                .iter()
                .enumerate()
                .filter(|(_, s)| s.has_cores())
                .map(|(i, _)| NodeId(i as u16)),
        )
    }

    /// Nodes that contribute memory capacity (`mem_pages > 0`): the target
    /// set of page-placement decisions. Includes CPU-less expander nodes.
    pub fn memory_nodes(&self) -> NodeSet {
        NodeSet::from_nodes(
            self.nodes
                .iter()
                .enumerate()
                .filter(|(_, s)| s.mem_pages > 0)
                .map(|(i, _)| NodeId(i as u16)),
        )
    }

    /// Number of worker-capable nodes.
    pub fn worker_node_count(&self) -> usize {
        self.worker_nodes().len()
    }

    /// Whether the machine mixes memory tiers: any CPU-less node, or any
    /// node on a non-DRAM memory class.
    pub fn is_heterogeneous(&self) -> bool {
        self.nodes.iter().any(|s| s.is_memory_only() || !s.mem_class.is_dram())
    }

    /// Per-node hardware specs.
    pub fn node(&self, n: NodeId) -> &NodeSpec {
        &self.nodes[n.idx()]
    }

    /// All node specs.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Physical links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All-pairs routing table.
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }

    /// Calibrated single-flow bandwidth caps, GB/s.
    pub fn path_caps(&self) -> &BwMatrix {
        &self.path_caps
    }

    /// Unloaded access latency, nanoseconds.
    pub fn latency_ns(&self) -> &BwMatrix {
        &self.latency_ns
    }

    /// Total hardware threads across the machine (the paper's `C x N`).
    pub fn total_cores(&self) -> usize {
        self.nodes.iter().map(|n| n.cores as usize).sum()
    }

    /// The single-flow bandwidth cap for a `dst`-resident thread reading
    /// from memory on `src` — the paper's `bw(n_src -> n_dst)` under no
    /// contention.
    pub fn path_bw(&self, src: NodeId, dst: NodeId) -> f64 {
        self.path_caps.get(src, dst)
    }

    /// Sum of pairwise path bandwidth among distinct members of `set`, both
    /// directions. The paper's thread-placement rule of thumb (borrowed from
    /// AsymSched) groups threads on the worker set maximizing this.
    pub fn aggregate_interworker_bw(&self, set: NodeSet) -> f64 {
        let nodes = set.to_vec();
        let mut total = 0.0;
        for &a in &nodes {
            for &b in &nodes {
                if a != b {
                    total += self.path_bw(a, b);
                }
            }
        }
        total
    }

    /// Pick the `k`-node worker set per the paper's rule of thumb: maximize
    /// aggregate inter-worker bandwidth; for `k == 1` pick the node with the
    /// highest local bandwidth. Only worker-capable nodes are candidates —
    /// CPU-less expander tiers can never host threads. Ties break toward
    /// lower node ids, making the choice deterministic.
    pub fn best_worker_set(&self, k: usize) -> NodeSet {
        let candidates = self.worker_nodes().to_vec();
        assert!(k >= 1 && k <= candidates.len(), "worker count out of range");
        if k == 1 {
            let best = candidates
                .iter()
                .copied()
                .max_by(|a, b| {
                    let (fa, fb) = (self.node(*a).ctrl_bw, self.node(*b).ctrl_bw);
                    fa.partial_cmp(&fb).unwrap().then(b.0.cmp(&a.0)) // prefer lower id on ties
                })
                .unwrap();
            return NodeSet::single(best);
        }
        let n = candidates.len();
        let mut best_set = NodeSet::EMPTY;
        let mut best_score = f64::NEG_INFINITY;
        // Enumerate all k-subsets of the worker-capable nodes; reference
        // machines have at most 8 so this is tiny.
        let mut subset: Vec<usize> = (0..k).collect();
        loop {
            let set = NodeSet::from_nodes(subset.iter().map(|&i| candidates[i]));
            let score = self.aggregate_interworker_bw(set);
            if score > best_score + 1e-12 {
                best_score = score;
                best_set = set;
            }
            // next combination
            let mut i = k;
            loop {
                if i == 0 {
                    return best_set;
                }
                i -= 1;
                if subset[i] != i + n - k {
                    subset[i] += 1;
                    for j in i + 1..k {
                        subset[j] = subset[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    /// Full consistency validation.
    pub fn validate(&self) -> Result<(), TopologyError> {
        let n = self.node_count();
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        if n > 64 {
            return Err(TopologyError::TooManyNodes(n));
        }
        if self.path_caps.node_count() != n {
            return Err(TopologyError::DimensionMismatch {
                expected: n,
                got: self.path_caps.node_count(),
            });
        }
        if self.latency_ns.node_count() != n {
            return Err(TopologyError::DimensionMismatch {
                expected: n,
                got: self.latency_ns.node_count(),
            });
        }
        if self.routes.node_count() != n {
            return Err(TopologyError::DimensionMismatch {
                expected: n,
                got: self.routes.node_count(),
            });
        }
        if self.worker_nodes().is_empty() {
            return Err(TopologyError::NoWorkerNodes);
        }
        for (i, spec) in self.nodes.iter().enumerate() {
            for (what, v) in [
                ("ctrl_bw", spec.ctrl_bw),
                ("ingress_bw", spec.ingress_bw),
                ("mem_class bw_scale", spec.mem_class.bw_scale),
                ("mem_class lat_scale", spec.mem_class.lat_scale),
            ] {
                if !(v.is_finite() && v > 0.0) {
                    return Err(TopologyError::BadBandwidth { what, value: v });
                }
            }
            // Memory-only nodes are legal (CPU-less expander tiers), but a
            // node with neither cores nor memory is dead weight.
            if spec.is_memory_only() && spec.mem_pages == 0 {
                return Err(TopologyError::BadBandwidth { what: "empty node", value: 0.0 });
            }
            let _ = i;
        }
        for link in &self.links {
            if link.a.idx() >= n {
                return Err(TopologyError::UnknownNode(link.a.0));
            }
            if link.b.idx() >= n {
                return Err(TopologyError::UnknownNode(link.b.0));
            }
            for (what, v) in [("link cap_ab", link.cap_ab), ("link cap_ba", link.cap_ba)] {
                if !(v.is_finite() && v > 0.0) {
                    return Err(TopologyError::BadBandwidth { what, value: v });
                }
            }
        }
        self.routes.validate(&self.links)?;
        // Path caps must be physically realizable and positive; the diagonal
        // must equal the node's controller bandwidth.
        const EPS: f64 = 1e-9;
        for s in 0..n {
            for d in 0..n {
                let (src, dst) = (NodeId(s as u16), NodeId(d as u16));
                let cap = self.path_caps.get(src, dst);
                if !(cap.is_finite() && cap > 0.0) {
                    return Err(TopologyError::BadBandwidth { what: "path cap", value: cap });
                }
                let lat = self.latency_ns.get(src, dst);
                if !(lat.is_finite() && lat > 0.0) {
                    return Err(TopologyError::BadBandwidth { what: "latency", value: lat });
                }
                if s == d {
                    if (cap - self.nodes[s].ctrl_bw).abs() > EPS {
                        return Err(TopologyError::BadBandwidth {
                            what: "diagonal path cap != ctrl_bw",
                            value: cap,
                        });
                    }
                } else {
                    let route = self.routes.get(src, dst);
                    let link_cap = route.min_link_capacity(&self.links);
                    if cap > link_cap + EPS {
                        return Err(TopologyError::BrokenRoute {
                            src: src.0,
                            dst: dst.0,
                            detail: format!("path cap {cap} exceeds weakest link {link_cap}"),
                        });
                    }
                    if cap > self.nodes[s].ctrl_bw + EPS {
                        return Err(TopologyError::BrokenRoute {
                            src: src.0,
                            dst: dst.0,
                            detail: format!(
                                "path cap {cap} exceeds source controller {}",
                                self.nodes[s].ctrl_bw
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    #[test]
    fn machine_a_validates() {
        let m = machines::machine_a();
        assert_eq!(m.node_count(), 8);
        assert_eq!(m.total_cores(), 64);
        m.validate().unwrap();
    }

    #[test]
    fn machine_b_validates() {
        let m = machines::machine_b();
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.total_cores(), 28);
        m.validate().unwrap();
    }

    #[test]
    fn machine_a_amplitude_matches_paper() {
        // Paper §IV: lowest BW 5.8x lower than local (highest) on machine A.
        let m = machines::machine_a();
        let amp = m.path_caps().amplitude();
        assert!((amp - 5.8).abs() < 0.1, "amplitude {amp}");
    }

    #[test]
    fn machine_b_amplitude_matches_paper() {
        // Paper §IV: amplitude 2.3x on machine B.
        let m = machines::machine_b();
        let amp = m.path_caps().amplitude();
        assert!((amp - 2.3).abs() < 0.05, "amplitude {amp}");
    }

    #[test]
    fn best_single_worker_prefers_high_local_bw() {
        let m = machines::machine_a();
        // Nodes N5..N8 have 10.5 GB/s local; ties break to the lowest id.
        assert_eq!(m.best_worker_set(1).to_vec(), vec![NodeId(4)]);
    }

    #[test]
    fn best_pair_is_an_intra_package_pair() {
        let m = machines::machine_a();
        let w = m.best_worker_set(2);
        let v = w.to_vec();
        assert_eq!(v.len(), 2);
        // Intra-package pairs have 5.4/5.5 GB/s links; any other pair is
        // strictly worse on aggregate BW.
        let bw = m.path_bw(v[0], v[1]) + m.path_bw(v[1], v[0]);
        assert!(bw >= 10.8, "picked {w} with aggregate {bw}");
    }

    #[test]
    fn best_worker_set_skips_memory_only_nodes() {
        let m = machines::machine_tiered();
        for k in 1..=2 {
            let w = m.best_worker_set(k);
            assert_eq!(w.len(), k);
            assert!(w.is_subset(m.worker_nodes()), "{w} contains a CPU-less node");
        }
    }

    #[test]
    #[should_panic(expected = "worker count out of range")]
    fn best_worker_set_rejects_counts_beyond_worker_nodes() {
        // 4 nodes, but only 2 can host threads.
        let _ = machines::machine_tiered().best_worker_set(3);
    }

    #[test]
    fn all_memory_only_machine_rejected() {
        use crate::{MemClass, TopologyBuilder};
        let r = TopologyBuilder::new("no-cpus")
            .nodes(2, NodeSpec::memory_only(8.0, 10.0, MemClass::DRAM))
            .symmetric_link(NodeId(0), NodeId(1), 6.0)
            .auto_routes()
            .default_path_caps()
            .hop_latencies(90.0, 60.0)
            .build();
        assert_eq!(r.unwrap_err(), crate::TopologyError::NoWorkerNodes);
    }

    #[test]
    fn aggregate_interworker_bw_monotone_in_set_growth() {
        let m = machines::machine_b();
        let two = m.best_worker_set(2);
        let four = m.all_nodes();
        assert!(m.aggregate_interworker_bw(four) > m.aggregate_interworker_bw(two));
    }

    #[test]
    fn path_bw_orientation_matches_fig1a() {
        // Fig. 1a row N3, column N1 is 2.9; row N1 column N3 is 4.0.
        let m = machines::machine_a();
        assert!((m.path_bw(NodeId(2), NodeId(0)) - 2.9).abs() < 1e-9);
        assert!((m.path_bw(NodeId(0), NodeId(2)) - 4.0).abs() < 1e-9);
    }
}
