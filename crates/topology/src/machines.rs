//! Reference machines mirroring the paper's testbeds, plus small synthetic
//! machines used by tests and examples.

use crate::builder::TopologyBuilder;
use crate::machine::MachineTopology;
use crate::matrix::BwMatrix;
use crate::node::{MemClass, NodeId, NodeSpec};

/// The paper's Fig. 1a: measured node-to-node bandwidths (GB/s) on the
/// 8-node AMD Opteron 6272 (machine A). Row = source (memory) node, column
/// = destination (CPU) node.
pub fn fig1a_matrix() -> BwMatrix {
    BwMatrix::from_rows(&[
        &[9.2, 5.5, 4.0, 3.6, 2.8, 1.8, 2.7, 1.8],
        &[5.5, 9.2, 3.6, 4.0, 1.8, 2.8, 1.8, 2.8],
        &[2.9, 3.6, 9.3, 5.5, 4.0, 1.8, 2.9, 1.8],
        &[1.8, 4.0, 5.5, 9.3, 3.6, 2.9, 1.8, 2.9],
        &[4.0, 1.8, 2.9, 1.8, 10.5, 5.4, 2.9, 3.5],
        &[3.6, 2.8, 1.9, 2.9, 5.4, 10.5, 1.8, 4.0],
        &[4.0, 1.8, 2.9, 3.6, 2.9, 1.8, 10.5, 5.4],
        &[3.5, 2.8, 1.8, 4.0, 1.9, 2.8, 5.4, 10.5],
    ])
    .expect("static matrix is square")
}

/// Machine A: 4-socket AMD Opteron 6272 — 8 NUMA nodes (two dies per
/// package), 8 cores and 8 GiB per node, strongly asymmetric HyperTransport
/// interconnect. Packages pair nodes (N1,N2), (N3,N4), (N5,N6), (N7,N8).
///
/// Single-flow path capacities reproduce Fig. 1a exactly; the link graph
/// (intra-package links plus the direct HT links implied by the >= 2.7 GB/s
/// entries) provides the sharing structure for congestion. Node pairs whose
/// measured bandwidth is 1.8-1.9 GB/s in *both* directions have no direct
/// link and route through the source's package peer.
pub fn machine_a() -> MachineTopology {
    let m = fig1a_matrix();
    let ctrl = [9.2, 9.2, 9.3, 9.3, 10.5, 10.5, 10.5, 10.5];
    let mut b = TopologyBuilder::new("machine-a");
    for c in ctrl {
        // Ingress cap at 1.6x local controller: an 8-core node can absorb
        // more than its local controller supplies by pulling over HT links,
        // but not the full sum of all incoming paths.
        b = b.node(NodeSpec::new(8, 8.0, c, 1.6 * c));
    }
    // Direct links: every unordered pair with at least one direction
    // measured >= 2.7 GB/s. Per-direction capacities are the Fig. 1a
    // entries themselves.
    let direct_pairs: &[(u16, u16)] = &[
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (0, 7),
        (1, 2),
        (1, 3),
        (1, 5),
        (1, 7),
        (2, 3),
        (2, 4),
        (2, 6),
        (3, 4),
        (3, 5),
        (3, 6),
        (3, 7),
        (4, 5),
        (4, 6),
        (4, 7),
        (5, 7),
        (6, 7),
    ];
    for &(a, bb) in direct_pairs {
        let cap_ab = m.get(NodeId(a), NodeId(bb));
        let cap_ba = m.get(NodeId(bb), NodeId(a));
        b = b.link(NodeId(a), NodeId(bb), cap_ab, cap_ba);
    }
    // Two-hop pairs (both directions measured at 1.8-1.9 GB/s) route
    // through a package peer with direct connectivity to the destination.
    b = b
        .route_via(1, 4, &[0])
        .route_via(4, 1, &[5])
        .route_via(1, 6, &[0])
        .route_via(6, 1, &[7])
        .route_via(2, 5, &[3])
        .route_via(5, 2, &[4])
        .route_via(2, 7, &[3])
        .route_via(7, 2, &[6])
        .route_via(5, 6, &[4])
        .route_via(6, 5, &[7]);
    let lat = latency_from_classes(
        8,
        |s, d| {
            if s == d {
                LatClass::Local
            } else if s / 2 == d / 2 {
                LatClass::OneHopNear
            } else if is_two_hop_a(s, d) {
                LatClass::TwoHop
            } else {
                LatClass::OneHopFar
            }
        },
        [100.0, 136.0, 190.0, 280.0],
    );
    b.auto_routes().path_caps(m).latencies(lat).build().expect("machine A is statically valid")
}

fn is_two_hop_a(s: usize, d: usize) -> bool {
    const TWO_HOP: [(usize, usize); 5] = [(1, 4), (1, 6), (2, 5), (2, 7), (5, 6)];
    TWO_HOP.iter().any(|&(a, b)| (s, d) == (a, b) || (s, d) == (b, a))
}

/// Machine B: 2-socket Intel Xeon E5-2660 v4 in Cluster-on-Die mode — 4
/// NUMA nodes (two per socket), 7 cores and 8 GiB per node. Sockets pair
/// nodes (N1,N2) and (N3,N4); one QPI link joins the sockets and is shared
/// by all cross-socket traffic. Bandwidth amplitude is 2.3x, matching the
/// paper's characterization.
pub fn machine_b() -> MachineTopology {
    let caps = BwMatrix::from_rows(&[
        &[28.0, 21.0, 13.5, 12.6],
        &[21.0, 28.0, 12.6, 12.2],
        &[13.5, 12.6, 28.0, 21.0],
        &[12.6, 12.2, 21.0, 28.0],
    ])
    .expect("static matrix is square");
    let lat = BwMatrix::from_rows(&[
        &[85.0, 105.0, 140.0, 150.0],
        &[105.0, 85.0, 150.0, 160.0],
        &[140.0, 150.0, 85.0, 105.0],
        &[150.0, 160.0, 105.0, 85.0],
    ])
    .expect("static matrix is square");
    TopologyBuilder::new("machine-b")
        .nodes(4, NodeSpec::new(7, 8.0, 28.0, 42.0))
        .symmetric_link(NodeId(0), NodeId(1), 21.0) // intra socket 0
        .symmetric_link(NodeId(2), NodeId(3), 21.0) // intra socket 1
        .symmetric_link(NodeId(0), NodeId(2), 16.0) // shared QPI
        .route_via(0, 3, &[2])
        .route_via(3, 0, &[2])
        .route_via(1, 2, &[0])
        .route_via(2, 1, &[0])
        .route_via(1, 3, &[0, 2])
        .route_via(3, 1, &[2, 0])
        .auto_routes()
        .path_caps(caps)
        .latencies(lat)
        .build()
        .expect("machine B is statically valid")
}

/// Machine T ("tiered"): a heterogeneous reference machine with two
/// CPU-less memory-expander nodes — the modern CXL/PMEM-style scenario
/// BWAP's formula covers but the paper's testbeds did not exercise.
///
/// * N1, N2 — worker nodes: 8 cores each, a small fast 2 GiB DRAM tier at
///   18 GB/s, joined by a 15 GB/s inter-socket link.
/// * N3, N4 — memory-only expanders: no cores, 32 GiB of slow
///   high-capacity memory (`cxl-expander` class: 0.55x bandwidth → ~9.9
///   GB/s, 2x media latency), each attached to both workers by 12 GB/s
///   links.
///
/// The asymmetry BWAP exploits: worker-local paths are fast but small and
/// saturable; expander paths are slower but add ~20 GB/s of aggregate
/// bandwidth and most of the machine's capacity. First-touch piles shared
/// pages onto one 18 GB/s controller; uniform-all over-weights the slow
/// tier; the canonical weights (Eq. 5) split traffic proportionally to
/// each tier's weakest worker path.
pub fn machine_tiered() -> MachineTopology {
    let expander = MemClass::new("cxl-expander", 0.55, 2.0);
    TopologyBuilder::new("machine-tiered")
        .nodes(2, NodeSpec::new(8, 2.0, 18.0, 28.8))
        .nodes(2, NodeSpec::memory_only(32.0, 18.0, expander))
        .symmetric_link(NodeId(0), NodeId(1), 15.0)
        .symmetric_link(NodeId(0), NodeId(2), 12.0)
        .symmetric_link(NodeId(1), NodeId(2), 12.0)
        .symmetric_link(NodeId(0), NodeId(3), 12.0)
        .symmetric_link(NodeId(1), NodeId(3), 12.0)
        .auto_routes()
        .default_path_caps()
        .hop_latencies(90.0, 50.0)
        .build()
        .expect("machine T is statically valid")
}

/// A 2-node fully symmetric machine: useful to test that on symmetric
/// hardware BWAP's canonical weights degenerate to uniform.
pub fn twin() -> MachineTopology {
    TopologyBuilder::new("twin")
        .nodes(2, NodeSpec::new(4, 4.0, 10.0, 16.0))
        .symmetric_link(NodeId(0), NodeId(1), 6.0)
        .auto_routes()
        .default_path_caps()
        .hop_latencies(90.0, 60.0)
        .build()
        .expect("twin is statically valid")
}

/// A 4-node fully connected symmetric machine.
pub fn symmetric_quad() -> MachineTopology {
    let mut b = TopologyBuilder::new("symmetric-quad").nodes(4, NodeSpec::new(4, 4.0, 10.0, 16.0));
    for a in 0..4u16 {
        for c in (a + 1)..4u16 {
            b = b.symmetric_link(NodeId(a), NodeId(c), 6.0);
        }
    }
    b.auto_routes()
        .default_path_caps()
        .hop_latencies(90.0, 60.0)
        .build()
        .expect("symmetric quad is statically valid")
}

enum LatClass {
    Local,
    OneHopNear,
    OneHopFar,
    TwoHop,
}

fn latency_from_classes(
    n: usize,
    class: impl Fn(usize, usize) -> LatClass,
    values: [f64; 4],
) -> BwMatrix {
    let mut m = BwMatrix::zeros(n);
    for s in 0..n {
        for d in 0..n {
            let v = match class(s, d) {
                LatClass::Local => values[0],
                LatClass::OneHopNear => values[1],
                LatClass::OneHopFar => values[2],
                LatClass::TwoHop => values[3],
            };
            m.set(NodeId(s as u16), NodeId(d as u16), v);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_matrix_matches_paper_spot_checks() {
        let m = fig1a_matrix();
        assert_eq!(m.get(NodeId(0), NodeId(0)), 9.2);
        assert_eq!(m.get(NodeId(4), NodeId(4)), 10.5);
        assert_eq!(m.get(NodeId(0), NodeId(1)), 5.5);
        assert_eq!(m.get(NodeId(7), NodeId(4)), 1.9);
        assert_eq!(m.get(NodeId(5), NodeId(2)), 1.9);
    }

    #[test]
    fn machine_a_path_caps_equal_fig1a() {
        let m = machine_a();
        assert_eq!(m.path_caps(), &fig1a_matrix());
    }

    #[test]
    fn machine_a_two_hop_pairs_have_two_hop_routes() {
        let m = machine_a();
        for (s, d) in
            [(1u16, 4u16), (4, 1), (1, 6), (6, 1), (2, 5), (5, 2), (2, 7), (7, 2), (5, 6), (6, 5)]
        {
            assert_eq!(
                m.routes().get(NodeId(s), NodeId(d)).hop_count(),
                2,
                "{s}->{d} should be 2 hops"
            );
        }
        // and a couple of direct pairs
        assert_eq!(m.routes().get(NodeId(0), NodeId(5)).hop_count(), 1);
        assert_eq!(m.routes().get(NodeId(3), NodeId(4)).hop_count(), 1);
    }

    #[test]
    fn machine_a_latencies_ordered() {
        let m = machine_a();
        let lat = m.latency_ns();
        assert!(lat.get(NodeId(0), NodeId(0)) < lat.get(NodeId(0), NodeId(1)));
        assert!(lat.get(NodeId(0), NodeId(1)) < lat.get(NodeId(0), NodeId(4)));
        assert!(lat.get(NodeId(0), NodeId(4)) < lat.get(NodeId(1), NodeId(4)));
    }

    #[test]
    fn machine_b_qpi_is_shared() {
        let m = machine_b();
        // all four cross-socket ordered pairs traverse link 2 (the QPI)
        use crate::link::LinkId;
        for (s, d) in [(0u16, 2u16), (0, 3), (1, 2), (1, 3), (2, 0), (3, 0), (2, 1), (3, 1)] {
            let r = m.routes().get(NodeId(s), NodeId(d));
            assert!(r.hops().iter().any(|h| h.link == LinkId(2)), "{s}->{d} must cross the QPI");
        }
    }

    #[test]
    fn machine_tiered_validates_and_splits_node_sets() {
        let m = machine_tiered();
        m.validate().unwrap();
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.worker_nodes().to_vec(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(m.memory_nodes(), m.all_nodes());
        assert_eq!(m.total_cores(), 16);
        assert!(m.is_heterogeneous());
        for m in [machine_a(), machine_b(), twin(), symmetric_quad()] {
            assert!(!m.is_heterogeneous(), "{} should be homogeneous", m.name());
            assert_eq!(m.worker_nodes(), m.all_nodes());
        }
    }

    #[test]
    fn machine_tiered_expander_paths_are_tier_scaled() {
        let m = machine_tiered();
        // Expander-served paths are capped by the scaled controller.
        assert!((m.path_bw(NodeId(2), NodeId(0)) - 9.9).abs() < 1e-9);
        assert!((m.path_bw(NodeId(3), NodeId(1)) - 9.9).abs() < 1e-9);
        // Worker-served paths keep DRAM speed.
        assert_eq!(m.path_bw(NodeId(0), NodeId(1)), 15.0);
        // Expander rows pay the 2x media latency on top of the hop.
        let lat = m.latency_ns();
        assert_eq!(lat.get(NodeId(0), NodeId(1)), 140.0);
        assert_eq!(lat.get(NodeId(2), NodeId(0)), 280.0);
    }

    #[test]
    fn machine_tiered_capacity_lives_in_the_slow_tier() {
        let m = machine_tiered();
        let worker_pages: u64 = m.worker_nodes().iter().map(|n| m.node(n).mem_pages).sum();
        let expander_pages: u64 =
            m.all_nodes().difference(m.worker_nodes()).iter().map(|n| m.node(n).mem_pages).sum();
        assert!(expander_pages >= 8 * worker_pages, "{expander_pages} vs {worker_pages}");
    }

    #[test]
    fn twin_and_quad_are_symmetric() {
        for m in [twin(), symmetric_quad()] {
            let caps = m.path_caps();
            let n = m.node_count();
            for s in 0..n as u16 {
                for d in 0..n as u16 {
                    assert_eq!(
                        caps.get(NodeId(s), NodeId(d)),
                        caps.get(NodeId(d), NodeId(s)),
                        "{} not symmetric at ({s},{d})",
                        m.name()
                    );
                }
            }
        }
    }
}
