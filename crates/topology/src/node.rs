//! Node identifiers, node sets, and per-node hardware specifications.

use std::fmt;

/// Identifier of a NUMA node within one machine. Nodes are numbered densely
/// from zero; the paper's `N1..N8` map to `NodeId(0)..NodeId(7)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index usable for vectors sized by node count.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Match the paper's 1-based naming in human-facing output.
        write!(f, "N{}", self.0 + 1)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// A set of NUMA nodes, stored as a 64-bit mask. Machines are limited to 64
/// nodes, far beyond the 8 of the paper's largest testbed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeSet(u64);

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// Set containing a single node.
    pub fn single(n: NodeId) -> Self {
        NodeSet(1u64 << n.0)
    }

    /// Set containing nodes `0..count`.
    pub fn first(count: usize) -> Self {
        assert!(count <= 64, "NodeSet supports at most 64 nodes");
        if count == 64 {
            NodeSet(u64::MAX)
        } else {
            NodeSet((1u64 << count) - 1)
        }
    }

    /// Build from an iterator of node ids.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = NodeSet::EMPTY;
        for n in iter {
            s.insert(n);
        }
        s
    }

    /// Insert a node.
    pub fn insert(&mut self, n: NodeId) {
        self.0 |= 1u64 << n.0;
    }

    /// Remove a node; returns whether it was present.
    pub fn remove(&mut self, n: NodeId) -> bool {
        let had = self.contains(n);
        self.0 &= !(1u64 << n.0);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.0 & (1u64 << n.0) != 0
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Union.
    pub fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersection(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub fn difference(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    /// Complement within a machine of `node_count` nodes.
    pub fn complement(self, node_count: usize) -> NodeSet {
        NodeSet(NodeSet::first(node_count).0 & !self.0)
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset(self, other: NodeSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterate over members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        let bits = self.0;
        (0..64u16).filter(move |i| bits & (1u64 << i) != 0).map(NodeId)
    }

    /// Collect members into a vector (ascending id order).
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }

    /// The lowest-numbered member, if any.
    pub fn min(&self) -> Option<NodeId> {
        if self.is_empty() {
            None
        } else {
            Some(NodeId(self.0.trailing_zeros() as u16))
        }
    }

    /// Raw mask (for hashing/caching keyed by worker set).
    pub fn mask(&self) -> u64 {
        self.0
    }
}

impl NodeSet {
    fn fmt_members(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for n in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_members(f)
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_members(f)
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        NodeSet::from_nodes(iter)
    }
}

/// Memory class (tier) of a node: distinguishes plain DRAM from slower,
/// often larger tiers — CXL/PCIe memory expanders, persistent memory, or
/// far-memory pools. Nothing in BWAP's decision logic (Eq. 2/5) requires a
/// memory node to have CPUs, so a machine may mix tiers freely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemClass {
    /// Human-readable tier name (`"dram"`, `"cxl-expander"`, ...).
    pub name: &'static str,
    /// Controller-bandwidth multiplier relative to the machine's baseline
    /// DRAM tier; applied by [`NodeSpec::tiered`] / [`NodeSpec::memory_only`].
    pub bw_scale: f64,
    /// Latency multiplier for accesses *served from* this node, relative
    /// to DRAM. [`crate::TopologyBuilder::hop_latencies`] scales the
    /// node's latency-matrix row by this factor.
    pub lat_scale: f64,
}

impl MemClass {
    /// Plain local DRAM: the baseline tier every pre-tier machine uses.
    pub const DRAM: MemClass = MemClass { name: "dram", bw_scale: 1.0, lat_scale: 1.0 };

    /// A named non-DRAM tier.
    pub fn new(name: &'static str, bw_scale: f64, lat_scale: f64) -> Self {
        MemClass { name, bw_scale, lat_scale }
    }

    /// Whether this is the baseline DRAM tier. Compares the full class —
    /// a custom tier merely *named* `"dram"` with non-unit scales still
    /// counts as heterogeneous.
    pub fn is_dram(&self) -> bool {
        *self == MemClass::DRAM
    }
}

/// Hardware description of one NUMA node. A node may be *memory-only*
/// (`cores == 0`): a CPU-less DRAM expander or slow high-capacity tier
/// that serves memory traffic but can never host threads.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Number of hardware threads (the paper pins one software thread per
    /// core, so cores == usable hardware threads). Zero for memory-only
    /// expander nodes.
    pub cores: u16,
    /// Local memory capacity in 4 KiB pages.
    pub mem_pages: u64,
    /// Peak local memory-controller bandwidth in GB/s (the diagonal of the
    /// machine's bandwidth matrix). All channels of the node are abstracted
    /// as one aggregate controller, as in the paper's system model.
    pub ctrl_bw: f64,
    /// Cap on the total bandwidth the node's cores can absorb from all
    /// sources combined (load/store unit + LFB limit), in GB/s. For
    /// memory-only nodes this bounds the write side of page migrations
    /// into the node (the DMA/migration engine) instead.
    pub ingress_bw: f64,
    /// Memory tier of the node's local memory.
    pub mem_class: MemClass,
}

impl NodeSpec {
    /// Convenience constructor with validation-friendly defaults (baseline
    /// DRAM tier).
    pub fn new(cores: u16, mem_gib: f64, ctrl_bw: f64, ingress_bw: f64) -> Self {
        NodeSpec {
            cores,
            mem_pages: ((mem_gib * (1u64 << 30) as f64) / crate::PAGE_SIZE as f64) as u64,
            ctrl_bw,
            ingress_bw,
            mem_class: MemClass::DRAM,
        }
    }

    /// A node on a non-DRAM tier: bandwidths are given for the baseline
    /// DRAM tier and scaled by the class's `bw_scale`.
    pub fn tiered(
        cores: u16,
        mem_gib: f64,
        base_ctrl_bw: f64,
        base_ingress_bw: f64,
        class: MemClass,
    ) -> Self {
        NodeSpec {
            mem_class: class,
            ctrl_bw: base_ctrl_bw * class.bw_scale,
            ingress_bw: base_ingress_bw * class.bw_scale,
            ..NodeSpec::new(cores, mem_gib, base_ctrl_bw, base_ingress_bw)
        }
    }

    /// A CPU-less memory expander: zero cores, ingress capped at the
    /// (tier-scaled) controller bandwidth since only migration writes can
    /// terminate there.
    pub fn memory_only(mem_gib: f64, base_ctrl_bw: f64, class: MemClass) -> Self {
        NodeSpec::tiered(0, mem_gib, base_ctrl_bw, base_ctrl_bw, class)
    }

    /// Whether the node can host threads.
    pub fn has_cores(&self) -> bool {
        self.cores > 0
    }

    /// Whether the node is a CPU-less memory expander.
    pub fn is_memory_only(&self) -> bool {
        self.cores == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodeset_basic_ops() {
        let mut s = NodeSet::EMPTY;
        assert!(s.is_empty());
        s.insert(NodeId(3));
        s.insert(NodeId(0));
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(3)));
        assert!(!s.contains(NodeId(1)));
        assert_eq!(s.to_vec(), vec![NodeId(0), NodeId(3)]);
        assert!(s.remove(NodeId(3)));
        assert!(!s.remove(NodeId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn nodeset_first_and_complement() {
        let s = NodeSet::first(4);
        assert_eq!(s.len(), 4);
        let w = NodeSet::from_nodes([NodeId(1), NodeId(2)]);
        let c = w.complement(4);
        assert_eq!(c.to_vec(), vec![NodeId(0), NodeId(3)]);
        assert_eq!(w.union(c), s);
        assert!(w.intersection(c).is_empty());
    }

    #[test]
    fn nodeset_subset_and_difference() {
        let a = NodeSet::from_nodes([NodeId(0), NodeId(1), NodeId(2)]);
        let b = NodeSet::from_nodes([NodeId(1)]);
        assert!(b.is_subset(a));
        assert!(!a.is_subset(b));
        assert_eq!(a.difference(b).to_vec(), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn nodeset_64_nodes() {
        let s = NodeSet::first(64);
        assert_eq!(s.len(), 64);
        assert!(s.contains(NodeId(63)));
    }

    #[test]
    fn nodeset_display_matches_paper_naming() {
        let s = NodeSet::from_nodes([NodeId(0), NodeId(2)]);
        assert_eq!(format!("{s}"), "{N1,N3}");
        assert_eq!(format!("{}", NodeId(7)), "N8");
    }

    #[test]
    fn nodeset_min() {
        assert_eq!(NodeSet::EMPTY.min(), None);
        let s = NodeSet::from_nodes([NodeId(5), NodeId(2)]);
        assert_eq!(s.min(), Some(NodeId(2)));
    }

    #[test]
    fn nodespec_page_math() {
        let spec = NodeSpec::new(8, 8.0, 9.2, 15.0);
        // 8 GiB / 4 KiB = 2 Mi pages
        assert_eq!(spec.mem_pages, 2 * 1024 * 1024);
        assert!(spec.has_cores());
        assert!(spec.mem_class.is_dram());
    }

    #[test]
    fn dram_named_tier_with_scaled_physics_is_not_dram() {
        assert!(MemClass::DRAM.is_dram());
        assert!(!MemClass::new("dram", 0.5, 2.0).is_dram());
        assert!(!MemClass::new("pmem", 1.0, 1.0).is_dram());
    }

    #[test]
    fn tiered_nodes_scale_bandwidth_by_class() {
        let slow = MemClass::new("expander", 0.5, 2.0);
        let spec = NodeSpec::tiered(4, 16.0, 20.0, 32.0, slow);
        assert_eq!(spec.ctrl_bw, 10.0);
        assert_eq!(spec.ingress_bw, 16.0);
        assert!(!spec.mem_class.is_dram());
        assert!(spec.has_cores());
    }

    #[test]
    fn memory_only_nodes_have_no_cores() {
        let spec = NodeSpec::memory_only(32.0, 20.0, MemClass::new("expander", 0.5, 2.0));
        assert!(spec.is_memory_only());
        assert!(!spec.has_cores());
        assert_eq!(spec.ctrl_bw, 10.0);
        // Ingress (migration writes) bounded by the tier's controller.
        assert_eq!(spec.ingress_bw, spec.ctrl_bw);
        assert_eq!(spec.mem_pages, 8 * 1024 * 1024);
    }
}
