//! Node identifiers, node sets, and per-node hardware specifications.

use std::fmt;

/// Identifier of a NUMA node within one machine. Nodes are numbered densely
/// from zero; the paper's `N1..N8` map to `NodeId(0)..NodeId(7)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index usable for vectors sized by node count.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Match the paper's 1-based naming in human-facing output.
        write!(f, "N{}", self.0 + 1)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// A set of NUMA nodes, stored as a 64-bit mask. Machines are limited to 64
/// nodes, far beyond the 8 of the paper's largest testbed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeSet(u64);

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// Set containing a single node.
    pub fn single(n: NodeId) -> Self {
        NodeSet(1u64 << n.0)
    }

    /// Set containing nodes `0..count`.
    pub fn first(count: usize) -> Self {
        assert!(count <= 64, "NodeSet supports at most 64 nodes");
        if count == 64 {
            NodeSet(u64::MAX)
        } else {
            NodeSet((1u64 << count) - 1)
        }
    }

    /// Build from an iterator of node ids.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = NodeSet::EMPTY;
        for n in iter {
            s.insert(n);
        }
        s
    }

    /// Insert a node.
    pub fn insert(&mut self, n: NodeId) {
        self.0 |= 1u64 << n.0;
    }

    /// Remove a node; returns whether it was present.
    pub fn remove(&mut self, n: NodeId) -> bool {
        let had = self.contains(n);
        self.0 &= !(1u64 << n.0);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.0 & (1u64 << n.0) != 0
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Union.
    pub fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersection(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub fn difference(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    /// Complement within a machine of `node_count` nodes.
    pub fn complement(self, node_count: usize) -> NodeSet {
        NodeSet(NodeSet::first(node_count).0 & !self.0)
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset(self, other: NodeSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterate over members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        let bits = self.0;
        (0..64u16).filter(move |i| bits & (1u64 << i) != 0).map(NodeId)
    }

    /// Collect members into a vector (ascending id order).
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }

    /// The lowest-numbered member, if any.
    pub fn min(&self) -> Option<NodeId> {
        if self.is_empty() {
            None
        } else {
            Some(NodeId(self.0.trailing_zeros() as u16))
        }
    }

    /// Raw mask (for hashing/caching keyed by worker set).
    pub fn mask(&self) -> u64 {
        self.0
    }
}

impl NodeSet {
    fn fmt_members(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for n in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_members(f)
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_members(f)
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        NodeSet::from_nodes(iter)
    }
}

/// Hardware description of one NUMA node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Number of hardware threads (the paper pins one software thread per
    /// core, so cores == usable hardware threads).
    pub cores: u16,
    /// Local memory capacity in 4 KiB pages.
    pub mem_pages: u64,
    /// Peak local memory-controller bandwidth in GB/s (the diagonal of the
    /// machine's bandwidth matrix). All channels of the node are abstracted
    /// as one aggregate controller, as in the paper's system model.
    pub ctrl_bw: f64,
    /// Cap on the total bandwidth the node's cores can absorb from all
    /// sources combined (load/store unit + LFB limit), in GB/s.
    pub ingress_bw: f64,
}

impl NodeSpec {
    /// Convenience constructor with validation-friendly defaults.
    pub fn new(cores: u16, mem_gib: f64, ctrl_bw: f64, ingress_bw: f64) -> Self {
        NodeSpec {
            cores,
            mem_pages: ((mem_gib * (1u64 << 30) as f64) / crate::PAGE_SIZE as f64) as u64,
            ctrl_bw,
            ingress_bw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodeset_basic_ops() {
        let mut s = NodeSet::EMPTY;
        assert!(s.is_empty());
        s.insert(NodeId(3));
        s.insert(NodeId(0));
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(3)));
        assert!(!s.contains(NodeId(1)));
        assert_eq!(s.to_vec(), vec![NodeId(0), NodeId(3)]);
        assert!(s.remove(NodeId(3)));
        assert!(!s.remove(NodeId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn nodeset_first_and_complement() {
        let s = NodeSet::first(4);
        assert_eq!(s.len(), 4);
        let w = NodeSet::from_nodes([NodeId(1), NodeId(2)]);
        let c = w.complement(4);
        assert_eq!(c.to_vec(), vec![NodeId(0), NodeId(3)]);
        assert_eq!(w.union(c), s);
        assert!(w.intersection(c).is_empty());
    }

    #[test]
    fn nodeset_subset_and_difference() {
        let a = NodeSet::from_nodes([NodeId(0), NodeId(1), NodeId(2)]);
        let b = NodeSet::from_nodes([NodeId(1)]);
        assert!(b.is_subset(a));
        assert!(!a.is_subset(b));
        assert_eq!(a.difference(b).to_vec(), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn nodeset_64_nodes() {
        let s = NodeSet::first(64);
        assert_eq!(s.len(), 64);
        assert!(s.contains(NodeId(63)));
    }

    #[test]
    fn nodeset_display_matches_paper_naming() {
        let s = NodeSet::from_nodes([NodeId(0), NodeId(2)]);
        assert_eq!(format!("{s}"), "{N1,N3}");
        assert_eq!(format!("{}", NodeId(7)), "N8");
    }

    #[test]
    fn nodeset_min() {
        assert_eq!(NodeSet::EMPTY.min(), None);
        let s = NodeSet::from_nodes([NodeId(5), NodeId(2)]);
        assert_eq!(s.min(), Some(NodeId(2)));
    }

    #[test]
    fn nodespec_page_math() {
        let spec = NodeSpec::new(8, 8.0, 9.2, 15.0);
        // 8 GiB / 4 KiB = 2 Mi pages
        assert_eq!(spec.mem_pages, 2 * 1024 * 1024);
    }
}
