//! Property tests over topology invariants.

use bwap_topology::{machines, NodeId, NodeSet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// NodeSet behaves like a set of small integers.
    #[test]
    fn nodeset_set_algebra(a in 0u64..256, b in 0u64..256) {
        let sa = NodeSet::from_nodes((0..8u16).filter(|i| a & (1 << i) != 0).map(NodeId));
        let sb = NodeSet::from_nodes((0..8u16).filter(|i| b & (1 << i) != 0).map(NodeId));
        prop_assert_eq!(sa.union(sb).len() + sa.intersection(sb).len(), sa.len() + sb.len());
        prop_assert!(sa.intersection(sb).is_subset(sa));
        prop_assert!(sa.difference(sb).intersection(sb).is_empty());
        prop_assert_eq!(
            sa.difference(sb).len() + sa.intersection(sb).len(),
            sa.len()
        );
        // complement within 8 nodes partitions the universe
        let c = sa.complement(8);
        prop_assert!(sa.intersection(c).is_empty());
        prop_assert_eq!(sa.union(c), NodeSet::first(8));
        // iteration ascends
        let v = sa.to_vec();
        prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    /// Every route of the reference machines is a connected path whose
    /// weakest link dominates the calibrated path cap.
    #[test]
    fn reference_routes_physical(machine_b in any::<bool>(), s in 0u16..8, d in 0u16..8) {
        let m = if machine_b { machines::machine_b() } else { machines::machine_a() };
        let n = m.node_count() as u16;
        let (s, d) = (s % n, d % n);
        let (src, dst) = (NodeId(s), NodeId(d));
        let route = m.routes().get(src, dst);
        prop_assert!(route.validate(src, dst, m.links()).is_ok());
        if s != d {
            let cap = m.path_bw(src, dst);
            prop_assert!(cap <= route.min_link_capacity(m.links()) + 1e-9);
            prop_assert!(cap <= m.node(src).ctrl_bw + 1e-9);
            prop_assert!(cap > 0.0);
        }
    }

    /// best_worker_set returns a set of the requested size whose aggregate
    /// inter-worker bandwidth is maximal among all candidates of that size.
    #[test]
    fn best_worker_set_is_argmax(k in 1usize..=4) {
        let m = machines::machine_b();
        let best = m.best_worker_set(k);
        prop_assert_eq!(best.len(), k);
        let score = m.aggregate_interworker_bw(best);
        // exhaustive check over all k-subsets of 4 nodes
        for mask in 1u64..16 {
            let set = NodeSet::from_nodes((0..4u16).filter(|i| mask & (1 << i) != 0).map(NodeId));
            if set.len() == k && k > 1 {
                prop_assert!(m.aggregate_interworker_bw(set) <= score + 1e-9);
            }
        }
    }
}
