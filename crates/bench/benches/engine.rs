//! Benchmarks of the simulation engine itself: epoch throughput, spawn
//! cost (page placement), and migration drain rate.

use bwap_topology::{machines, NodeSet};
use criterion::{criterion_group, criterion_main, Criterion};
use numasim::{MemPolicy, SimConfig, Simulator};

fn saturating_sim() -> Simulator {
    let m = machines::machine_a();
    let mut sim = Simulator::new(m.clone(), SimConfig::default());
    let spec = bwap_workloads::streamcluster();
    sim.spawn(
        spec.profile_for(&m),
        m.best_worker_set(2),
        None,
        MemPolicy::Interleave(m.all_nodes()),
    )
    .expect("spawn");
    let sw = bwap_workloads::swaptions();
    sim.spawn(
        sw.profile_for(&m),
        NodeSet::from_nodes([bwap_topology::NodeId(4)]),
        None,
        MemPolicy::FirstTouch,
    )
    .expect("spawn");
    sim
}

fn bench_epoch_step(c: &mut Criterion) {
    let mut sim = saturating_sim();
    c.bench_function("engine_step_2_procs_machine_a", |b| b.iter(|| sim.step()));
}

fn bench_run_one_second(c: &mut Criterion) {
    c.bench_function("engine_1s_sim_time", |b| {
        b.iter_batched(saturating_sim, |mut sim| sim.run_for(1.0), criterion::BatchSize::SmallInput)
    });
}

fn bench_spawn_with_placement(c: &mut Criterion) {
    let m = machines::machine_b();
    let spec = bwap_workloads::ocean_cp();
    c.bench_function("spawn_place_650k_pages", |b| {
        b.iter_batched(
            || Simulator::new(m.clone(), SimConfig::default()),
            |mut sim| {
                sim.spawn(
                    spec.profile_for(&m),
                    m.best_worker_set(2),
                    None,
                    MemPolicy::Interleave(m.all_nodes()),
                )
                .expect("spawn")
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_mbind_rebind(c: &mut Criterion) {
    let m = machines::machine_b();
    c.bench_function("mbind_rebind_160k_pages", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::new(m.clone(), SimConfig::default());
                let pid = sim
                    .spawn(
                        bwap_workloads::streamcluster().profile_for(&m),
                        m.best_worker_set(1),
                        None,
                        MemPolicy::FirstTouch,
                    )
                    .expect("spawn");
                (sim, pid)
            },
            |(mut sim, pid)| {
                let seg = sim.process(pid).expect("proc").shared_seg;
                let len = sim.process(pid).expect("proc").aspace.segment(seg).expect("seg").len();
                sim.mbind(pid, seg, 0, len, MemPolicy::Interleave(m.all_nodes()), true)
                    .expect("mbind")
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

/// OC.XL on the tiered machine: ~1.6M pages under capacity pressure, a
/// weighted-interleave rebind in flight — the epoch step exercises
/// extent-based migration demand, range completion and the reused
/// workspace at the scale the capacity campaigns run.
fn ocxl_sim() -> Simulator {
    let m = machines::machine_tiered();
    let mut sim = Simulator::new(m.clone(), SimConfig::default());
    let spec = bwap_workloads::ocean_cp_xl();
    let pid = sim
        .spawn(spec.profile_for(&m), m.worker_nodes(), None, MemPolicy::FirstTouch)
        .expect("spawn OC.XL");
    let weights =
        bwap::canonical_weights_on(&m, m.worker_nodes()).expect("canonical weights").to_vec();
    sim.apply_policy_all_segments(pid, &MemPolicy::WeightedInterleave(weights), true)
        .expect("weighted mbind");
    sim
}

fn bench_ocxl_step(c: &mut Criterion) {
    // Fresh sim per iteration: a long-lived one would drain its ~1.6M-page
    // queue during warm-up and the "migrating" step would measure an idle
    // epoch.
    c.bench_function("engine_step_ocxl_tiered_migrating", |b| {
        b.iter_batched(
            ocxl_sim,
            |mut sim| {
                sim.step();
                sim
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_ocxl_spawn_mbind(c: &mut Criterion) {
    c.bench_function("ocxl_spawn_1p6m_pages_weighted_rebind", |b| {
        b.iter_batched(ocxl_sim, std::mem::drop, criterion::BatchSize::SmallInput)
    });
}

criterion_group!(
    benches,
    bench_epoch_step,
    bench_run_one_second,
    bench_spawn_with_placement,
    bench_mbind_rebind,
    bench_ocxl_step,
    bench_ocxl_spawn_mbind
);
criterion_main!(benches);
