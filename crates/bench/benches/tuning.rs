//! Benchmarks of BWAP's decision logic: canonical weights, DWP
//! arithmetic, tuner stepping and bandwidth profiling.

use bwap::dwp::{DwpTuner, DwpTunerConfig};
use bwap::{apply_dwp, canonical_weights};
use bwap_runtime::profile_bandwidth;
use bwap_topology::{machines, NodeId, NodeSet};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_canonical_weights(c: &mut Criterion) {
    let m = machines::machine_a();
    let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
    c.bench_function("canonical_weights_eq5", |b| {
        b.iter(|| canonical_weights(std::hint::black_box(m.path_caps()), workers))
    });
}

fn bench_apply_dwp(c: &mut Criterion) {
    let m = machines::machine_a();
    let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
    let canonical = canonical_weights(m.path_caps(), workers).unwrap();
    c.bench_function("apply_dwp", |b| {
        b.iter(|| apply_dwp(std::hint::black_box(&canonical), workers, 0.4))
    });
}

fn bench_tuner_sampling(c: &mut Criterion) {
    let m = machines::machine_a();
    let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
    let canonical = canonical_weights(m.path_caps(), workers).unwrap();
    c.bench_function("dwp_tuner_1k_samples", |b| {
        b.iter_batched(
            || DwpTuner::new(canonical.clone(), workers, DwpTunerConfig::default()).unwrap(),
            |mut tuner| {
                for i in 0..1000u32 {
                    let _ = tuner.on_sample(100.0 + (i % 17) as f64);
                }
                tuner.dwp()
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_profile_bandwidth(c: &mut Criterion) {
    // The canonical tuner's installation-time profiling run (1.2 s of
    // simulated time on machine A).
    let m = machines::machine_a();
    let workers = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
    let mut group = c.benchmark_group("profiling");
    group.sample_size(10);
    group.bench_function("profile_bandwidth_machine_a", |b| {
        b.iter(|| profile_bandwidth(std::hint::black_box(&m), workers))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_canonical_weights,
    bench_apply_dwp,
    bench_tuner_sampling,
    bench_profile_bandwidth
);
criterion_main!(benches);
