//! Micro-benchmarks of the weighted max-min fair solver — the inner loop
//! of every simulation epoch.

use bwap_fabric::{solve_maxmin, Bundle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A synthetic contention problem: `nb` bundles over `nr` resources, each
/// bundle touching 4 resources deterministically.
fn problem(nb: usize, nr: usize) -> (Vec<f64>, Vec<Bundle>) {
    let capacities: Vec<f64> = (0..nr).map(|r| 5.0 + (r % 7) as f64).collect();
    let bundles: Vec<Bundle> = (0..nb)
        .map(|b| {
            let usage: Vec<(usize, f64)> =
                (0..4).map(|k| ((b * 3 + k * 5) % nr, 0.5 + (k as f64) * 0.25)).collect();
            Bundle::new(usage, if b % 3 == 0 { 1.0 } else { f64::INFINITY }, 1.0 + (b % 4) as f64)
        })
        .collect();
    (capacities, bundles)
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxmin_solve");
    for &nb in &[8usize, 32, 128, 512] {
        let (caps, bundles) = problem(nb, 120);
        group.bench_with_input(BenchmarkId::from_parameter(nb), &nb, |bench, _| {
            bench.iter(|| solve_maxmin(std::hint::black_box(&caps), std::hint::black_box(&bundles)))
        });
    }
    group.finish();
}

fn bench_epoch_sized_solve(c: &mut Criterion) {
    // The shape one epoch of machine A with two co-scheduled apps needs:
    // ~16 bundles over ~126 resources.
    let (caps, bundles) = problem(16, 126);
    c.bench_function("maxmin_epoch_sized", |b| {
        b.iter(|| solve_maxmin(std::hint::black_box(&caps), std::hint::black_box(&bundles)))
    });
}

criterion_group!(benches, bench_solver, bench_epoch_sized_solve);
criterion_main!(benches);
