//! End-to-end scenario benchmarks: how fast the simulator reproduces a
//! complete paper experiment (useful to size parameter sweeps).

use bwap::BwapConfig;
use bwap_runtime::{run_coscheduled, run_standalone, PlacementPolicy, ProfileBook};
use bwap_topology::machines;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_standalone_run(c: &mut Criterion) {
    let m = machines::machine_b();
    let spec = bwap_workloads::streamcluster().scaled_down(16.0);
    let workers = m.best_worker_set(2);
    let mut group = c.benchmark_group("scenario");
    group.sample_size(10);
    group.bench_function("standalone_sc_quick_uniform_workers", |b| {
        b.iter(|| {
            run_standalone(&m, &spec, workers, &PlacementPolicy::UniformWorkers).expect("run")
        })
    });
    group.finish();
}

fn bench_coscheduled_bwap_run(c: &mut Criterion) {
    let m = machines::machine_a();
    let spec = bwap_workloads::streamcluster().scaled_down(16.0);
    let workers = m.best_worker_set(2);
    // Pre-warm the canonical profile so the benchmark measures the run,
    // not the one-off installation profiling.
    let _ = ProfileBook::canonical_weights(&m, workers);
    let mut group = c.benchmark_group("scenario");
    group.sample_size(10);
    group.bench_function("coscheduled_sc_quick_bwap", |b| {
        b.iter(|| {
            run_coscheduled(&m, &spec, workers, &PlacementPolicy::Bwap(BwapConfig::default()))
                .expect("run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_standalone_run, bench_coscheduled_bwap_run);
criterion_main!(benches);
