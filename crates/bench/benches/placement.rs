//! Micro-benchmarks of placement plumbing: Algorithm 1 planning, the
//! kernel weighted-interleave target function, and plan realization.

use bwap::{realized_weights, user_level_plan, WeightDistribution};
use bwap_topology::NodeId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use numasim::MemPolicy;

fn weights(n: usize) -> WeightDistribution {
    WeightDistribution::from_raw((1..=n).map(|i| i as f64).collect()).unwrap()
}

fn bench_user_level_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_plan");
    for &n in &[4usize, 8, 16] {
        let w = weights(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| user_level_plan(std::hint::black_box(1 << 20), std::hint::black_box(&w)))
        });
    }
    group.finish();
}

fn bench_realized_weights(c: &mut Criterion) {
    let w = weights(8);
    c.bench_function("realized_weights_8n", |b| {
        b.iter(|| realized_weights(std::hint::black_box(1 << 20), std::hint::black_box(&w)))
    });
}

fn bench_weighted_interleave_target(c: &mut Criterion) {
    // Per-page placement decision of the kernel policy: the hot loop of
    // segment creation (one call per page).
    let policy = MemPolicy::WeightedInterleave(weights(8).to_vec());
    c.bench_function("weighted_target_node_1k_pages", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..1024u64 {
                acc += policy.target_node(std::hint::black_box(i), 1024, NodeId(0)).0 as u32;
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_user_level_plan,
    bench_realized_weights,
    bench_weighted_interleave_target
);
criterion_main!(benches);
