//! Parallel execution of independent scenario runs.
//!
//! Every evaluation run builds its own `Simulator`, so runs are perfectly
//! independent; the harness fans them out over the host's cores with
//! scoped threads and returns results in submission order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run all `jobs` (in parallel, bounded by available cores) and return
/// their results in the original order. A panicking job aborts the whole
/// batch.
pub fn run_parallel<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n_jobs = jobs.len();
    if n_jobs == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n_jobs);
    let job_slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let result_slots: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // std scoped threads: a panicking job propagates when the scope joins.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                let job = job_slots[i].lock().expect("job lock").take().expect("job runs once");
                let result = job();
                *result_slots[i].lock().expect("result lock") = Some(result);
            });
        }
    });
    result_slots
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<_> = (0..64).map(|i| move || i * 2).collect();
        let out = run_parallel(jobs);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch() {
        let out: Vec<i32> = run_parallel(Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn actually_parallel_under_load() {
        // Not a strict timing test — just exercise > worker-count jobs.
        let jobs: Vec<_> = (0..100)
            .map(|i| {
                move || {
                    let mut acc = 0u64;
                    for k in 0..10_000u64 {
                        acc = acc.wrapping_add(k ^ i);
                    }
                    acc
                }
            })
            .collect();
        assert_eq!(run_parallel(jobs).len(), 100);
    }
}
