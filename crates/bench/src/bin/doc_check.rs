//! CI gate for the markdown documentation: check every relative link and
//! anchor in `README.md` + `docs/*.md`, offline. Exits non-zero listing
//! each broken link. See `bwap_bench::doc_check` for the rules.

use bwap_bench::doc_check::{check_files, default_doc_set};
use std::path::PathBuf;

fn main() {
    // crates/bench -> workspace root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = default_doc_set(&root);
    println!("doc_check: {} markdown files", files.len());
    let errors = check_files(&files);
    for e in &errors {
        eprintln!("BROKEN LINK: {e}");
    }
    if errors.is_empty() {
        println!("doc_check: all links and anchors resolve");
    } else {
        eprintln!("doc_check: {} broken link(s)", errors.len());
        std::process::exit(1);
    }
}
