//! Figure 2: co-scheduled scenario on machine A — speedup of every policy
//! versus uniform-workers, for 1, 2 and 4 worker nodes (panels a, b, c).
//!
//! Usage: `cargo run --release -p bwap-bench --bin fig2 [-- --quick]`

use bwap_bench::{experiments, save_csv};
use bwap_topology::machines;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let machine = machines::machine_a();
    for (panel, workers) in [('a', 1usize), ('b', 2), ('c', 4)] {
        let (times, dwps) = experiments::cosched_panel(&machine, workers, quick);
        println!("== Fig. 2{panel} ==");
        println!("{times}");
        let speedups = times.normalized_to("uniform-workers");
        println!("{speedups}");
        print!("bwap DWP chosen: ");
        for (name, d) in &dwps {
            print!("{name}={:.0}%  ", d * 100.0);
        }
        println!("\n");
        let path = save_csv(&format!("fig2_{workers}w_speedup.csv"), &speedups.to_csv())
            .expect("write results");
        println!("wrote {}", path.display());
    }
}
