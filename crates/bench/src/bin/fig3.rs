//! Figure 3: (a, b) co-scheduled scenario on machine B with 1 and 2
//! workers; (c, d) stand-alone scenario at each benchmark's optimal worker
//! count on machines A and B. All normalized against uniform-workers.
//!
//! Usage: `cargo run --release -p bwap-bench --bin fig3 [-- --quick]`

use bwap_bench::{experiments, save_csv};
use bwap_topology::machines;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // Panels a, b: machine B co-scheduled.
    let machine_b = machines::machine_b();
    for (panel, workers) in [('a', 1usize), ('b', 2)] {
        let (times, dwps) = experiments::cosched_panel(&machine_b, workers, quick);
        println!("== Fig. 3{panel} ==");
        let speedups = times.normalized_to("uniform-workers");
        println!("{speedups}");
        print!("bwap DWP chosen: ");
        for (name, d) in &dwps {
            print!("{name}={:.0}%  ", d * 100.0);
        }
        println!("\n");
        let path = save_csv(&format!("fig3{panel}_speedup.csv"), &speedups.to_csv())
            .expect("write results");
        println!("wrote {}", path.display());
    }

    // Panels c, d: stand-alone at optimal worker counts.
    for (panel, machine) in [('c', machines::machine_a()), ('d', machine_b)] {
        let times = experiments::standalone_optimal(&machine, quick);
        println!("== Fig. 3{panel} ==");
        let speedups = times.normalized_to("uniform-workers");
        println!("{speedups}");
        let path = save_csv(&format!("fig3{panel}_speedup.csv"), &speedups.to_csv())
            .expect("write results");
        println!("wrote {}", path.display());
    }
}
