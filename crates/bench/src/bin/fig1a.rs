//! Figure 1a: node-to-node bandwidth matrix of machine A, measured by
//! single-flow probes, compared against the paper's published matrix.
//!
//! Usage: `cargo run --release -p bwap-bench --bin fig1a`

use bwap_bench::{experiments, save_csv};

fn main() {
    let (probed, err) = experiments::fig1a();
    println!("== Fig. 1a: probed node-to-node BW matrix (GB/s), machine A ==");
    println!("{probed}");
    println!("max relative error vs paper's Fig. 1a: {:.2e}", err);
    println!("amplitude (max/min): {:.2} (paper: 5.8x)", probed.amplitude());
    let path = save_csv("fig1a_matrix.csv", &probed.to_csv()).expect("write results");
    println!("wrote {}", path.display());
}
