//! Figure 1a: node-to-node bandwidth matrix of machine A, measured by
//! single-flow probes, compared against the paper's published matrix.
//!
//! A thin wrapper over the campaign engine: declare the spec, run it,
//! render. Artifacts: `results/fig1a_matrix.csv` + the campaign report.
//!
//! Usage: `cargo run --release -p bwap-bench --bin fig1a`

use bwap_bench::{experiments, save_csv};
use bwap_runtime::run_campaign;

fn main() {
    let report = run_campaign(&experiments::fig1a_spec());
    let (probed, err) = experiments::fig1a_from_report(&report);
    println!("== Fig. 1a: probed node-to-node BW matrix (GB/s), machine A ==");
    println!("{probed}");
    println!("max relative error vs paper's Fig. 1a: {:.2e}", err);
    println!("amplitude (max/min): {:.2} (paper: 5.8x)", probed.amplitude());
    let path = save_csv("fig1a_matrix.csv", &probed.to_csv()).expect("write results");
    println!("wrote {}", path.display());
    let path = report.write_json().expect("write report");
    println!("wrote {}", path.display());
}
