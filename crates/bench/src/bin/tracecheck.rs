//! Validate Chrome-trace files against the contract `docs/TRACING.md`
//! documents (the strict check Perfetto itself never performs).
//!
//! ```text
//! cargo run --release -p bwap-bench --bin tracecheck -- results/traces
//! cargo run --release -p bwap-bench --bin tracecheck -- trace-a.json trace-b.json
//! ```
//!
//! Directories are expanded to their `*.json` entries. Prints one stats
//! line per valid trace; exits non-zero on the first malformed one.

use std::path::{Path, PathBuf};

fn collect(arg: &str, files: &mut Vec<PathBuf>) {
    let p = Path::new(arg);
    if p.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(p)
            .unwrap_or_else(|e| panic!("read dir {arg}: {e}"))
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        entries.sort();
        files.extend(entries);
    } else {
        files.push(p.to_path_buf());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: tracecheck FILE.json|DIR ...");
        std::process::exit(2);
    }
    let mut files = Vec::new();
    for a in &args {
        collect(a, &mut files);
    }
    if files.is_empty() {
        eprintln!("no trace files found");
        std::process::exit(1);
    }
    let mut failed = 0usize;
    for f in &files {
        let text =
            std::fs::read_to_string(f).unwrap_or_else(|e| panic!("read {}: {e}", f.display()));
        match bwap_bench::tracecheck::validate(&text) {
            Ok(s) => println!(
                "{}: ok — {} events, {} slices, {} instants, {} counters, {} flows \
                 ({} open), {} tracks, {} dropped",
                f.display(),
                s.events,
                s.slices,
                s.instants,
                s.counters,
                s.flows,
                s.open_flows,
                s.tracks,
                s.dropped
            ),
            Err(e) => {
                failed += 1;
                eprintln!("{}: INVALID — {e}", f.display());
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} of {} trace(s) invalid", files.len());
        std::process::exit(1);
    }
}
