//! Validate Chrome-trace files against the contract `docs/TRACING.md`
//! documents (the strict check Perfetto itself never performs).
//!
//! ```text
//! cargo run --release -p bwap-bench --bin tracecheck -- results/traces
//! cargo run --release -p bwap-bench --bin tracecheck -- trace-a.json trace-b.json
//! cargo run --release -p bwap-bench --bin tracecheck -- --report results/fig_phases.json
//! ```
//!
//! Directories are expanded to their `*.json` entries. Prints one stats
//! line per valid trace; exits non-zero on the first malformed one.
//!
//! `--report` switches to report mode: every cell of the campaign report
//! must either link a valid trace file or be marked `cache_hit` (a cell
//! replayed from the on-disk cell cache never ran, so it legally has no
//! trace — see `docs/PERFORMANCE.md`).

use std::path::{Path, PathBuf};

fn collect(arg: &str, files: &mut Vec<PathBuf>) {
    let p = Path::new(arg);
    if p.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(p)
            .unwrap_or_else(|e| panic!("read dir {arg}: {e}"))
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        entries.sort();
        files.extend(entries);
    } else {
        files.push(p.to_path_buf());
    }
}

fn check_report(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    match bwap_bench::tracecheck::check_report(&text, |trace_path| {
        std::fs::read_to_string(trace_path).map_err(|e| format!("read {trace_path}: {e}"))
    }) {
        Ok(out) => println!(
            "{path}: ok — {} traced cell(s) validated, {} served from cache (no trace)",
            out.validated, out.cache_exempt
        ),
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: tracecheck FILE.json|DIR ... | tracecheck --report REPORT.json");
        std::process::exit(2);
    }
    if args[0] == "--report" {
        if args.len() != 2 {
            eprintln!("usage: tracecheck --report REPORT.json");
            std::process::exit(2);
        }
        check_report(&args[1]);
        return;
    }
    let mut files = Vec::new();
    for a in &args {
        collect(a, &mut files);
    }
    if files.is_empty() {
        eprintln!("no trace files found");
        std::process::exit(1);
    }
    let mut failed = 0usize;
    for f in &files {
        let text =
            std::fs::read_to_string(f).unwrap_or_else(|e| panic!("read {}: {e}", f.display()));
        match bwap_bench::tracecheck::validate(&text) {
            Ok(s) => println!(
                "{}: ok — {} events, {} slices, {} instants, {} counters, {} flows \
                 ({} open), {} tracks, {} dropped",
                f.display(),
                s.events,
                s.slices,
                s.instants,
                s.counters,
                s.flows,
                s.open_flows,
                s.tracks,
                s.dropped
            ),
            Err(e) => {
                failed += 1;
                eprintln!("{}: INVALID — {e}", f.display());
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} of {} trace(s) invalid", files.len());
        std::process::exit(1);
    }
}
