//! Run the paper's complete evaluation — every figure and table plus the
//! ablations — and drop all CSV artifacts into `results/`.
//!
//! Usage: `cargo run --release -p bwap-bench --bin paper [-- --quick]`

use bwap_bench::{experiments, save_csv};
use bwap_topology::machines;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let t0 = std::time::Instant::now();

    println!("#### Fig. 1a ####");
    let (probed, err) = experiments::fig1a();
    println!("{probed}");
    println!("max relative error vs paper: {err:.2e}; amplitude {:.2}\n", probed.amplitude());
    save_csv("fig1a_matrix.csv", &probed.to_csv()).expect("write");

    println!("#### Fig. 1b ####");
    let t = experiments::fig1b(quick, if quick { 40 } else { 180 });
    println!("{t}");
    save_csv("fig1b_normalized.csv", &t.to_csv()).expect("write");

    println!("#### Table I ####");
    let t = experiments::table1(quick);
    println!("{t}");
    save_csv("table1_measured.csv", &t.to_csv()).expect("write");

    println!("#### Fig. 2 (machine A, co-scheduled) ####");
    let ma = machines::machine_a();
    for workers in [1usize, 2, 4] {
        let (times, dwps) = experiments::cosched_panel(&ma, workers, quick);
        let speedups = times.normalized_to("uniform-workers");
        println!("{speedups}");
        print!("bwap DWP: ");
        for (name, d) in &dwps {
            print!("{name}={:.0}%  ", d * 100.0);
        }
        println!("\n");
        save_csv(&format!("fig2_{workers}w_speedup.csv"), &speedups.to_csv()).expect("write");
    }

    println!("#### Fig. 3a/3b (machine B, co-scheduled) ####");
    let mb = machines::machine_b();
    for (panel, workers) in [('a', 1usize), ('b', 2)] {
        let (times, _) = experiments::cosched_panel(&mb, workers, quick);
        let speedups = times.normalized_to("uniform-workers");
        println!("{speedups}");
        save_csv(&format!("fig3{panel}_speedup.csv"), &speedups.to_csv()).expect("write");
    }

    println!("#### Fig. 3c/3d (stand-alone, optimal workers) ####");
    for (panel, machine) in [('c', ma.clone()), ('d', mb.clone())] {
        let times = experiments::standalone_optimal(&machine, quick);
        let speedups = times.normalized_to("uniform-workers");
        println!("{speedups}");
        save_csv(&format!("fig3{panel}_speedup.csv"), &speedups.to_csv()).expect("write");
    }

    println!("#### Table II ####");
    let t = experiments::table2(quick);
    println!("{t}");
    save_csv("table2_dwp.csv", &t.to_csv()).expect("write");

    println!("#### Fig. 4 ####");
    for (i, (table, online_dwp, online_time)) in experiments::fig4(quick).into_iter().enumerate() {
        println!("{table}");
        println!(
            "online tuner: DWP {:.0}%, normalized exec time {:.3}\n",
            online_dwp * 100.0,
            online_time
        );
        save_csv(&format!("fig4_{}w.csv", 1 << i), &table.to_csv()).expect("write");
    }

    println!("#### Ablations ####");
    let t = experiments::ablation_interleave_mode(quick);
    println!("{t}");
    save_csv("ablation_interleave.csv", &t.to_csv()).expect("write");
    let t = experiments::ablation_tuner_overhead(quick);
    println!("{t}");
    save_csv("ablation_overhead.csv", &t.to_csv()).expect("write");
    let t = experiments::ablation_model(quick);
    println!("{t}");
    save_csv("ablation_model.csv", &t.to_csv()).expect("write");
    let t = experiments::ablation_step_size(quick);
    println!("{t}");
    save_csv("ablation_step.csv", &t.to_csv()).expect("write");
    let t = experiments::ablation_migration_budget(quick);
    println!("{t}");
    save_csv("ablation_migration.csv", &t.to_csv()).expect("write");

    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
