//! Ablations of BWAP's design choices and of the simulation model (see
//! DESIGN.md §6): kernel vs user-level interleaving, tuner overhead,
//! model components, step size, migration budget.
//!
//! Usage: `cargo run --release -p bwap-bench --bin ablations [-- --quick]`

use bwap_bench::{experiments, save_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    let t = experiments::ablation_interleave_mode(quick);
    println!("{t}");
    println!("(paper: enabling the kernel-level variant changed results by at most 3%)\n");
    save_csv("ablation_interleave.csv", &t.to_csv()).expect("write");

    let t = experiments::ablation_tuner_overhead(quick);
    println!("{t}");
    println!("(paper: maximum measured tuner overhead 4%)\n");
    save_csv("ablation_overhead.csv", &t.to_csv()).expect("write");

    let t = experiments::ablation_model(quick);
    println!("{t}");
    save_csv("ablation_model.csv", &t.to_csv()).expect("write");

    let t = experiments::ablation_step_size(quick);
    println!("{t}");
    save_csv("ablation_step.csv", &t.to_csv()).expect("write");

    let t = experiments::ablation_migration_budget(quick);
    println!("{t}");
    save_csv("ablation_migration.csv", &t.to_csv()).expect("write");
}
