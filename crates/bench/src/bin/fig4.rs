//! Figure 4: static-DWP sweep for Streamcluster on machine A (1 and 2
//! workers) — normalized execution time and stall rate per DWP, plus the
//! point the online tuner picks (the paper shows the tuner lands within
//! one step of the static optimum, and the stall-rate curve tracks the
//! execution-time curve).
//!
//! A thin wrapper over the campaign engine: the sweep is one campaign —
//! {SC} x {bwap} x {co-scheduled} x {1, 2 workers} x {DWP grid + online}
//! — fanned out across cores. Artifacts: `results/fig4_{1,2}w.csv` + the
//! campaign report.
//!
//! Usage: `cargo run --release -p bwap-bench --bin fig4 [-- --quick]`

use bwap_bench::{experiments, save_csv};
use bwap_runtime::run_campaign;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = run_campaign(&experiments::fig4_spec(quick));
    for (i, (table, online_dwp, online_time)) in
        experiments::fig4_from_report(&report).into_iter().enumerate()
    {
        println!("{table}");
        println!(
            "online tuner: chose DWP = {:.0}%, normalized exec time {:.3}\n",
            online_dwp * 100.0,
            online_time
        );
        let path =
            save_csv(&format!("fig4_{}w.csv", 1 << i), &table.to_csv()).expect("write results");
        println!("wrote {}", path.display());
    }
    let path = report.write_json().expect("write report");
    println!("wrote {}", path.display());
}
