//! Render a campaign report as a static HTML explorer page.
//!
//! ```text
//! cargo run --release -p bwap-bench --bin explorer -- results/fig4.campaign.json
//! ```
//!
//! Writes `<stem>.explorer.html` next to the report (override with
//! `--out PATH`): one self-contained page — no network, no external
//! JavaScript — showing the evaluation grid with per-row heat coloring
//! and, when the campaign ran with `--trace`, drill-down links to each
//! cell's Chrome-trace file. See `docs/TRACING.md`.

use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: explorer REPORT.campaign.json [--out PATH.html]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut report: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            p if report.is_none() => report = Some(PathBuf::from(p)),
            _ => usage(),
        }
    }
    let Some(report) = report else { usage() };
    let out = out.unwrap_or_else(|| {
        // fig4.campaign.json -> fig4.explorer.html (plain stem otherwise).
        let stem = report
            .file_name()
            .and_then(|n| n.to_str())
            .map(|n| n.strip_suffix(".campaign.json").unwrap_or(n.trim_end_matches(".json")))
            .unwrap_or("report");
        report.with_file_name(format!("{stem}.explorer.html"))
    });
    let text = std::fs::read_to_string(&report)
        .unwrap_or_else(|e| panic!("read {}: {e}", report.display()));
    let html_dir = out.parent().filter(|p| !p.as_os_str().is_empty()).map(PathBuf::from);
    let html = bwap_bench::explorer::render(&text, html_dir.as_deref())
        .unwrap_or_else(|e| panic!("{}: {e}", report.display()));
    std::fs::write(&out, html).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    println!("wrote {}", out.display());
}
