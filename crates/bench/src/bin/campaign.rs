//! Ad-hoc experiment campaigns from the command line: declare the matrix
//! as flags, let the engine fan it out, get a JSON report under
//! `results/`.
//!
//! ```text
//! cargo run --release -p bwap-bench --bin campaign -- \
//!     --machine b --workloads SC,OC --policies uniform-workers,bwap \
//!     --scenarios standalone,coscheduled --workers 1,2 \
//!     --dwps online,0.0,0.5 --seed 42 --threads 8 --quick
//! ```
//!
//! Every axis defaults to a sensible singleton; `--quick` scales the
//! workloads down ~8x for smoke runs. The summary table prints execution
//! times per cell; the full per-cell data (chosen DWPs, stall fractions,
//! migrations, traffic, per-cell seeds) is in the JSON report.
//!
//! `--spec fig1a|fig4|table1|fig_tiered` renders a canned experiment
//! campaign instead of an ad-hoc matrix (`fig_tiered` is the
//! heterogeneous-tier scenario on the CPU-less-expander machine), and
//! `--out DIR` redirects the report from `results/` — for CI artifact
//! collection and parallel local runs.
//!
//! `--trace DIR` additionally records every cell as a Chrome-trace file
//! `trace-<cell key>.json` in `DIR`, loadable in Perfetto or
//! `chrome://tracing` and linked from the report's `trace_path` fields
//! (see `docs/TRACING.md`). Tracing never changes results.

use bwap::BwapConfig;
use bwap_bench::ResultTable;
use bwap_runtime::{
    run_campaign_with, AdaptiveConfig, CampaignConfig, CampaignSpec, DwpPoint, EngineMode,
    PlacementPolicy, ScenarioKind,
};
use bwap_topology::{machines, MachineTopology};
use bwap_workloads::{PhasedWorkload, WorkloadSpec};

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--name NAME] [--machine a|b|tiered] [--workloads SC,OC,...|all]
                [--policies first-touch,uniform-workers,uniform-all,autonuma,bwap-uniform,bwap,bwap-adaptive]
                [--phased SC.FLIP,FT.SWING,OC.SWING] [--phase-periods 10,30]
                [--scenarios standalone,coscheduled] [--workers 1,2,...]
                [--dwps online,0.0,0.5,...] [--seed N] [--threads N]
                [--engine stepped|event] [--out DIR] [--trace DIR] [--probe] [--quick]
       campaign --spec fig1a|fig4|table1|fig_tiered|fig_phases [--seed N]
                [--threads N] [--engine stepped|event] [--out DIR] [--trace DIR] [--quick]

--spec renders a canned experiment campaign (its axes are fixed by the
spec); all other axis flags only apply to ad-hoc campaigns. --phased adds
canned phase-structured workloads; --phase-periods overrides their phase
durations (seconds). --engine selects the simulator's time engine (results
are bit-identical; `event` strides over quiescent intervals — see
docs/ARCHITECTURE.md). --trace writes one Chrome-trace file per cell into
DIR (Perfetto / chrome://tracing; see docs/TRACING.md)."
    );
    std::process::exit(2);
}

fn parse_machine(s: &str) -> MachineTopology {
    match s {
        "a" | "A" | "machine-a" => machines::machine_a(),
        "b" | "B" | "machine-b" => machines::machine_b(),
        "tiered" | "t" | "T" | "machine-tiered" => machines::machine_tiered(),
        other => {
            eprintln!("unknown machine {other:?} (expected a, b or tiered)");
            usage()
        }
    }
}

fn canned_spec(name: &str, quick: bool) -> bwap_runtime::CampaignSpec {
    use bwap_bench::experiments;
    match name {
        "fig1a" => experiments::fig1a_spec(),
        "fig4" => experiments::fig4_spec(quick),
        "table1" => experiments::table1_spec(quick),
        "fig_tiered" => experiments::fig_tiered_spec(quick),
        "fig_phases" => experiments::fig_phases_spec(quick),
        other => {
            eprintln!("unknown spec {other:?}");
            usage()
        }
    }
}

fn parse_workloads(s: &str, quick: bool) -> Vec<WorkloadSpec> {
    let base: Vec<WorkloadSpec> = if s == "all" {
        bwap_workloads::suite()
    } else {
        s.split(',')
            .map(|name| {
                bwap_workloads::by_name(name).unwrap_or_else(|| {
                    eprintln!("unknown workload {name:?}");
                    usage()
                })
            })
            .collect()
    };
    if quick {
        base.into_iter().map(|w| w.scaled_down(8.0)).collect()
    } else {
        base
    }
}

fn parse_policy(s: &str) -> PlacementPolicy {
    match s {
        "first-touch" => PlacementPolicy::FirstTouch,
        "uniform-workers" => PlacementPolicy::UniformWorkers,
        "uniform-all" => PlacementPolicy::UniformAll,
        "autonuma" => PlacementPolicy::AutoNuma,
        "bwap" => PlacementPolicy::Bwap(BwapConfig::default()),
        "bwap-uniform" => PlacementPolicy::Bwap(BwapConfig::bwap_uniform()),
        "bwap-adaptive" => PlacementPolicy::AdaptiveBwap(AdaptiveConfig::default()),
        other => {
            eprintln!("unknown policy {other:?}");
            usage()
        }
    }
}

fn parse_phased(s: &str, quick: bool) -> Vec<PhasedWorkload> {
    s.split(',')
        .map(|name| {
            let w = bwap_workloads::phased_by_name(name).unwrap_or_else(|| {
                eprintln!("unknown phased workload {name:?}");
                usage()
            });
            if quick {
                w.scaled_down(8.0)
            } else {
                w
            }
        })
        .collect()
}

fn parse_scenario(s: &str) -> ScenarioKind {
    match s {
        "standalone" => ScenarioKind::Standalone,
        "coscheduled" | "cosched" => ScenarioKind::Coscheduled,
        other => {
            eprintln!("unknown scenario {other:?}");
            usage()
        }
    }
}

fn parse_engine(s: &str) -> EngineMode {
    match s {
        "stepped" => EngineMode::Stepped,
        "event" | "event-driven" => EngineMode::EventDriven,
        other => {
            eprintln!("unknown engine {other:?} (expected stepped or event)");
            usage()
        }
    }
}

fn parse_dwp(s: &str) -> DwpPoint {
    if s == "online" || s == "as-configured" {
        return DwpPoint::AsConfigured;
    }
    match s.parse::<f64>() {
        Ok(d) if (0.0..=1.0).contains(&d) => DwpPoint::Static(d),
        _ => {
            eprintln!("bad DWP {s:?} (expected `online` or a value in [0, 1])");
            usage()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut name = "campaign".to_string();
    let mut machine = machines::machine_b();
    let mut workloads = parse_workloads("SC", quick);
    let mut phased: Vec<PhasedWorkload> = Vec::new();
    let mut phase_periods: Vec<f64> = Vec::new();
    let mut policies = vec![PlacementPolicy::UniformWorkers];
    let mut scenarios = vec![ScenarioKind::Standalone];
    let mut workers = vec![1usize];
    let mut dwps = vec![DwpPoint::AsConfigured];
    let mut seed = 0u64;
    let mut threads = None;
    let mut engine = EngineMode::default();
    let mut probe = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut spec_name: Option<String> = None;

    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| -> &str {
            match it.next() {
                Some(v) => v,
                None => {
                    eprintln!("{flag} needs a value");
                    usage()
                }
            }
        };
        match flag.as_str() {
            "--name" => name = value("--name").to_string(),
            "--machine" => machine = parse_machine(value("--machine")),
            "--workloads" => workloads = parse_workloads(value("--workloads"), quick),
            "--phased" => phased = parse_phased(value("--phased"), quick),
            "--phase-periods" => {
                phase_periods = value("--phase-periods")
                    .split(',')
                    .map(|t| match t.parse::<f64>() {
                        Ok(v) if v > 0.0 && v.is_finite() => v,
                        _ => {
                            eprintln!("bad phase period {t:?} (expected positive seconds)");
                            usage()
                        }
                    })
                    .collect()
            }
            "--policies" => policies = value("--policies").split(',').map(parse_policy).collect(),
            "--scenarios" => {
                scenarios = value("--scenarios").split(',').map(parse_scenario).collect()
            }
            "--workers" => {
                workers = value("--workers")
                    .split(',')
                    .map(|k| k.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--dwps" => dwps = value("--dwps").split(',').map(parse_dwp).collect(),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = Some(value("--threads").parse().unwrap_or_else(|_| usage())),
            "--engine" => engine = parse_engine(value("--engine")),
            "--out" => out = Some(std::path::PathBuf::from(value("--out"))),
            "--trace" => trace_dir = Some(std::path::PathBuf::from(value("--trace"))),
            "--spec" => spec_name = Some(value("--spec").to_string()),
            "--probe" => probe = true,
            "--quick" => {}
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    let spec = match spec_name {
        // Canned experiment specs come with their axes fixed; only the
        // seed and the time engine (which never changes results) are
        // overridable.
        Some(s) => canned_spec(&s, quick).seed(seed).engine_mode(engine),
        // An empty --phase-periods list falls back to native durations
        // inside the setter.
        None => CampaignSpec::new(&name, machine)
            .workloads(workloads)
            .phased_workloads(phased)
            .phase_periods(phase_periods)
            .policies(policies)
            .scenarios(scenarios)
            .worker_counts(workers)
            .dwp_grid(dwps)
            .seed(seed)
            .engine_mode(engine)
            .probe_bandwidth(probe),
    };
    let n_cells = spec.cells().len();
    println!("campaign {:?}: {n_cells} cells on {}", spec.name, spec.machine.name());

    let report = run_campaign_with(&spec, &CampaignConfig { threads, trace_dir });

    let mut table = ResultTable::new(
        &format!("exec time [s] per cell, campaign {:?}", report.campaign),
        vec!["exec time [s]".into()],
    );
    let mut failed = 0usize;
    for c in &report.cells {
        let label = &c.key;
        match &c.outcome {
            Ok(r) => table.push_row(label, vec![r.exec_time_s]),
            Err(e) => {
                failed += 1;
                eprintln!("cell {label}: ERROR: {e}");
            }
        }
    }
    if !table.rows.is_empty() {
        println!("{table}");
    }
    if let Some(m) = &report.bw_matrix {
        println!("probed bandwidth matrix (GB/s):\n{m}");
    }
    println!(
        "{} cells in {:.2}s on {} threads",
        report.cells.len(),
        report.wall_time_s,
        report.threads
    );
    let path = match &out {
        Some(dir) => report.write_json_in(dir).expect("write report"),
        None => report.write_json().expect("write report"),
    };
    println!("wrote {}", path.display());
    let traces = report.cells.iter().filter(|c| c.trace_path.is_some()).count();
    if traces > 0 {
        println!("wrote {traces} trace file(s)");
    }
    if failed > 0 {
        eprintln!("{failed} cell(s) failed");
        std::process::exit(1);
    }
}
