//! Ad-hoc experiment campaigns from the command line: declare the matrix
//! as flags, let the engine fan it out, get a JSON report under
//! `results/`.
//!
//! ```text
//! cargo run --release -p bwap-bench --bin campaign -- \
//!     --machine b --workloads SC,OC --policies uniform-workers,bwap \
//!     --scenarios standalone,coscheduled --workers 1,2 \
//!     --dwps online,0.0,0.5 --seed 42 --threads 8 --quick
//! ```
//!
//! Every axis defaults to a sensible singleton; `--quick` scales the
//! workloads down ~8x for smoke runs. The summary table prints execution
//! times per cell; the full per-cell data (chosen DWPs, stall fractions,
//! migrations, traffic, per-cell seeds) is in the JSON report.
//!
//! `--spec fig1a|fig4|table1|fig_tiered|fig_phases|fig_fleet|dwp_dedup` renders a
//! canned experiment campaign instead of an ad-hoc matrix (`fig_tiered`
//! is the heterogeneous-tier scenario on the CPU-less-expander machine),
//! and `--out DIR` redirects the report from `results/` — for CI artifact
//! collection and parallel local runs.
//!
//! `--trace DIR` additionally records every cell as a Chrome-trace file
//! `trace-<cell key>.json` in `DIR`, loadable in Perfetto or
//! `chrome://tracing` and linked from the report's `trace_path` fields
//! (see `docs/TRACING.md`). Tracing never changes results.
//!
//! `--cache-dir DIR` memoizes cell outcomes on disk by content hash: a
//! warm rerun (or a killed campaign restarted) replays every stored cell
//! and executes only the remainder, byte-identically. `--dedup off`
//! disables the exact intra-campaign deduplication (on by default; see
//! `docs/PERFORMANCE.md`). `--remote host:port,...` farms the deduped,
//! uncached cells out to `campaign_worker` processes and merges their
//! results through the same cache path; a failed worker degrades to local
//! execution. `--deterministic` additionally writes the volatile-free
//! report (`*.deterministic.json`) for byte-for-byte comparison in CI.

use bwap_bench::cli::SpecArgs;
use bwap_bench::worker::{coordinate, SupervisionConfig};
use bwap_bench::ResultTable;
use bwap_runtime::{run_campaign_with, CampaignConfig, CellCache, FaultPlan};

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--name NAME] [--machine a|b|tiered] [--workloads SC,OC,...|all]
                [--policies first-touch,uniform-workers,uniform-all,autonuma,bwap-uniform,bwap,bwap-adaptive]
                [--phased SC.FLIP,FT.SWING,OC.SWING] [--phase-periods 10,30]
                [--scenarios standalone,coscheduled] [--workers 1,2,...]
                [--dwps online,0.0,0.5,...] [--fleet b,tiered,...]
                [--schedulers round-robin,least-loaded,tier-aware]
                [--arrival-rates 0.5,2,...] [--fleet-jobs N]
                [--seed N] [--threads N]
                [--engine stepped|event] [--out DIR] [--trace DIR]
                [--cache-dir DIR] [--dedup on|off] [--remote host:port,...]
                [--faults SPEC] [--deterministic] [--probe] [--quick]
       campaign --spec fig1a|fig4|table1|fig_tiered|fig_phases|fig_fleet|dwp_dedup
                [--seed N]
                [--threads N] [--engine stepped|event] [--out DIR] [--trace DIR]
                [--cache-dir DIR] [--dedup on|off] [--remote host:port,...]
                [--faults SPEC] [--deterministic] [--quick]

--spec renders a canned experiment campaign (its axes are fixed by the
spec); all other axis flags only apply to ad-hoc campaigns. --phased adds
canned phase-structured workloads; --phase-periods overrides their phase
durations (seconds). --engine selects the simulator's time engine (results
are bit-identical; `event` strides over quiescent intervals — see
docs/ARCHITECTURE.md). --trace writes one Chrome-trace file per cell into
DIR (Perfetto / chrome://tracing; see docs/TRACING.md). --cache-dir
memoizes cell outcomes on disk (warm reruns and kill-and-resume replay
them byte-identically); --dedup off disables exact intra-campaign
deduplication; --remote farms uncached cells out to campaign_worker
processes under supervision — timeouts, bounded retries with backoff,
partial-batch salvage and worker quarantine (see docs/PERFORMANCE.md and
docs/ROBUSTNESS.md). --fleet appends a fleet axis: an open-loop Poisson
stream of jobs drawn from the plain workload catalog arrives at the listed
machine mix, swept over --schedulers and --arrival-rates (jobs/s), with
--fleet-jobs jobs per stream; fleet cells report slowdown-vs-solo tail
percentiles (see docs/FLEET.md). --faults injects a seeded, replayable fault schedule
(e.g. 'disconnect=0.5,cache-flip=0.25,seed=7'; seed defaults to the
campaign seed) for chaos runs — recoverable faults never change the
deterministic report."
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sa = SpecArgs::default();
    // `--quick` scales workload axes during parsing in the original CLI;
    // SpecArgs applies it at build time, so order no longer matters.
    let mut threads = None;
    let mut out: Option<std::path::PathBuf> = None;
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut dedup = true;
    let mut remote: Vec<String> = Vec::new();
    let mut deterministic = false;
    let mut faults_spec: Option<String> = None;

    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => {
                    eprintln!("{flag} needs a value");
                    usage()
                }
            }
        };
        match flag.as_str() {
            "--threads" => threads = Some(value("--threads").parse().unwrap_or_else(|_| usage())),
            "--out" => out = Some(std::path::PathBuf::from(value("--out"))),
            "--trace" => trace_dir = Some(std::path::PathBuf::from(value("--trace"))),
            "--cache-dir" => cache_dir = Some(std::path::PathBuf::from(value("--cache-dir"))),
            "--dedup" => {
                dedup = match value("--dedup").as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        eprintln!("bad --dedup {other:?} (expected on or off)");
                        usage()
                    }
                }
            }
            "--remote" => {
                remote = value("--remote").split(',').map(str::to_string).collect();
            }
            "--deterministic" => deterministic = true,
            "--faults" => faults_spec = Some(value("--faults")),
            other => {
                let mut take = || value(other);
                match sa.apply(other, &mut take) {
                    Ok(true) => {}
                    Ok(false) => {
                        eprintln!("unknown flag {other:?}");
                        usage()
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        usage()
                    }
                }
            }
        }
    }

    let spec = sa.build().unwrap_or_else(|e| {
        eprintln!("{e}");
        usage()
    });
    let n_cells = spec.cells().len();
    println!("campaign {:?}: {n_cells} cells on {}", spec.name, spec.machine.name());

    // The fault plan's seed defaults to the campaign seed, so a chaos run
    // is replayable from the campaign coordinates alone.
    let faults = faults_spec.map(|s| {
        FaultPlan::parse(&s, spec.seed).unwrap_or_else(|e| {
            eprintln!("{e}");
            usage()
        })
    });
    if let Some(plan) = &faults {
        println!("fault injection on (seed {}): chaos run, report must not change", plan.seed());
    }

    // Remote execution needs a cache to merge worker results through;
    // without an explicit --cache-dir it uses a run-private scratch cache.
    let mut scratch_cache: Option<std::path::PathBuf> = None;
    if !remote.is_empty() && cache_dir.is_none() {
        let dir = std::env::temp_dir().join(format!("bwap-campaign-remote-{}", std::process::id()));
        scratch_cache = Some(dir.clone());
        cache_dir = Some(dir);
    }
    if !remote.is_empty() {
        let dir = cache_dir.as_deref().expect("cache dir set");
        match CellCache::open_with(dir, faults.clone()) {
            Some(cache) => {
                let outcome = coordinate(
                    &spec,
                    &sa.to_args(),
                    &remote,
                    &cache,
                    dedup,
                    &SupervisionConfig::default(),
                    faults.as_ref(),
                );
                println!(
                    "remote: accepted {} cell(s) ({} salvaged from dying workers), \
                     {} batch failure(s), {} left for local execution",
                    outcome.accepted, outcome.salvaged, outcome.failed_batches, outcome.remaining
                );
                for addr in &outcome.quarantined {
                    eprintln!("worker {addr}: quarantined after repeated failures");
                }
            }
            None => {
                eprintln!("cache dir {} unusable; running everything locally", dir.display())
            }
        }
    }

    let cfg = CampaignConfig {
        threads,
        trace_dir,
        dedup,
        cache_dir: cache_dir.clone(),
        faults: faults.clone(),
    };
    let report = run_campaign_with(&spec, &cfg);
    println!(
        "executed {} of {} cells ({} served by dedup or cache)",
        report.executed_cells,
        report.cells.len(),
        report.cells.len() - report.executed_cells
    );

    let mut table = ResultTable::new(
        &format!("exec time [s] per cell, campaign {:?}", report.campaign),
        vec!["exec time [s]".into()],
    );
    let mut failed = 0usize;
    for c in &report.cells {
        let label = &c.key;
        match &c.outcome {
            Ok(r) => table.push_row(label, vec![r.exec_time_s]),
            Err(e) => {
                failed += 1;
                eprintln!("cell {label}: ERROR: {e}");
            }
        }
    }
    if !table.rows.is_empty() {
        println!("{table}");
    }
    if let Some(m) = &report.bw_matrix {
        println!("probed bandwidth matrix (GB/s):\n{m}");
    }
    println!(
        "{} cells in {:.2}s on {} threads",
        report.cells.len(),
        report.wall_time_s,
        report.threads
    );
    let path = match &out {
        Some(dir) => report.write_json_in(dir).expect("write report"),
        None => report.write_json().expect("write report"),
    };
    println!("wrote {}", path.display());
    if deterministic {
        let det_path = path.with_extension("deterministic.json");
        std::fs::write(&det_path, report.deterministic_json()).expect("write deterministic report");
        println!("wrote {}", det_path.display());
    }
    let traces = report.cells.iter().filter(|c| c.trace_path.is_some()).count();
    if traces > 0 {
        println!("wrote {traces} trace file(s)");
    }
    if let Some(dir) = scratch_cache {
        let _ = std::fs::remove_dir_all(dir);
    }
    if failed > 0 {
        eprintln!("{failed} cell(s) failed");
        std::process::exit(1);
    }
}
