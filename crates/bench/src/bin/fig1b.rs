//! Figure 1b: common placement policies versus the offline N-dimensional
//! hill-climbing search (machine A, 2 worker nodes, stand-alone).
//!
//! Usage: `cargo run --release -p bwap-bench --bin fig1b [-- --quick]`
//! Quick mode shrinks workloads and the search budget.

use bwap_bench::{experiments, save_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iterations = if quick { 40 } else { 180 };
    let table = experiments::fig1b(quick, iterations);
    println!("{table}");
    println!("(1.0 = matches the search; the paper reports first-touch far below,");
    println!(" uniform-workers/uniform-all at roughly 0.7-0.95 depending on benchmark)");
    let path = save_csv("fig1b_normalized.csv", &table.to_csv()).expect("write results");
    println!("wrote {}", path.display());
}
