//! Perf-smoke harness: times the hot paths the campaigns lean on and
//! records them in `BENCH_campaign.json` at the repo root, so the perf
//! trajectory is tracked in-tree PR over PR.
//!
//! Entries (spec -> wall-seconds, best of `RUNS`):
//!
//! * `fig1a_quick` — the fig1a probe campaign (engine + campaign engine).
//! * `fig_tiered_quick` — the heterogeneous-tier campaign at quick scale
//!   (includes the SC.XL/OC.XL capacity-pressure cells).
//! * `fig_tiered_quick_warm` — the same campaign replayed from a warm
//!   on-disk cell cache (`CampaignConfig::cache_dir`); pinned >= 10x
//!   faster than the cold run (see `docs/PERFORMANCE.md`).
//! * `dwp_dedup_quick_dedup_on` / `dwp_dedup_quick_dedup_off` — the
//!   overlap-heavy DWP-grid campaign with exact intra-sweep dedup on
//!   (default: 24 declared cells, 12 executed) and off (24 executed).
//! * `dwp_dedup_quick_supervised` — dedup-on again with a fault plan
//!   attached whose rules all fire at rate 0: the chaos/supervision
//!   machinery (per-cell fault decisions, executor panic isolation) is
//!   pinned to add no measurable overhead on a fault-free run (see
//!   `docs/ROBUSTNESS.md`).
//! * `ocxl_campaign_quick` — an OC.XL-only campaign cell matrix on
//!   `machine_tiered` (capacity spill + weighted interleave on ~1.6M
//!   pages).
//! * `ocxl_spawn_mbind_step` — the raw engine microbench, the paper's
//!   BWAP-init flow at capacity-pressure scale: spawn OC.XL first-touch on
//!   the tiered machine (~1.6M pages, spilling into the expander tier),
//!   weighted-interleave `mbind` over every segment, then 50 epochs of
//!   migration + demand solving.
//! * `fig_phases_quick` / `fig_phases_quick_traced` — the phase-structured
//!   campaign at quick scale, without and with per-cell trace recording:
//!   the pair bounds the tracing overhead in-tree (tracing-off must stay
//!   within noise of the pre-tracing baseline; see `docs/TRACING.md`).
//! * `fig_phases_quick_event` — the same campaign under
//!   `EngineMode::EventDriven`: results are pinned bit-identical by
//!   `tests/event_equiv.rs`, so the delta to `fig_phases_quick` is pure
//!   engine overhead/savings on a retune-heavy workload.
//! * `steady_phase_long_stepped` / `steady_phase_long_event` — the raw
//!   engine microbench for the event-driven clock's best case: one long
//!   steady phase (no migrations, no retunes) stepped epoch-by-epoch vs
//!   strided in one jump per run; the event run must be >= 5x faster and
//!   finish at the bit-identical clock and progress.
//! * `fleet_quick_stepped` / `fleet_quick_event` — a sparse open-loop
//!   fleet stream (`docs/FLEET.md`): short jobs separated by long idle
//!   gaps, exactly the regime where the event engine strides from one
//!   arrival to the next while the stepped engine burns an epoch solve
//!   every 5 simulated milliseconds of idle fleet. The event run must
//!   be at least 2x faster and finish at the bit-identical makespan
//!   (`tests/fleet.rs` pins the full campaign reports byte-identical).
//!
//! Usage: `cargo run --release -p bwap-bench --bin perf_smoke`
//! (`BWAP_BENCH_OUT` overrides the output path.)

use bwap_bench::experiments;
use bwap_runtime::{run_campaign, EngineMode, PlacementPolicy};
use bwap_topology::machines;
use bwap_topology::NodeSet;
use numasim::{AppProfile, MemPolicy, SimConfig, Simulator};
use std::time::Instant;

/// Timed repetitions per entry; the minimum is recorded.
const RUNS: usize = 3;

fn time_best(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The OC.XL engine microbench: spawn (first-touch placement under
/// capacity pressure — how BWAP launches), rebind (weighted-interleave
/// mbind over every segment — BWAP-init), step (migration demand +
/// completion + the epoch solve).
fn ocxl_spawn_mbind_step() {
    let m = machines::machine_tiered();
    let mut sim = Simulator::new(m.clone(), SimConfig::default());
    let spec = bwap_workloads::ocean_cp_xl();
    let pid = sim
        .spawn(spec.profile_for(&m), m.worker_nodes(), None, MemPolicy::FirstTouch)
        .expect("spawn OC.XL");
    let weights = bwap::canonical_weights_on(&m, m.worker_nodes())
        .expect("canonical weights on tiered machine")
        .to_vec();
    let queued = sim
        .apply_policy_all_segments(pid, &MemPolicy::WeightedInterleave(weights), true)
        .expect("weighted mbind");
    assert!(queued > 500_000, "rebind must queue real work, got {queued}");
    for _ in 0..50 {
        sim.step();
    }
    assert!(sim.migrated_pages(pid) > 0, "steps must drain migrations");
}

/// The long-steady-phase microbench: one process streaming a fixed amount
/// of work with nothing else happening — the regime where the stepped
/// engine burns an epoch solve every 5 ms of simulated time and the
/// event-driven engine strides from the fixed point straight to the
/// finish. Returns `(final clock, work done)` so the caller can pin the
/// two engines to bit-identical results.
fn steady_phase_long(mode: EngineMode) -> (f64, f64) {
    let m = machines::machine_b();
    let mut sim = Simulator::new(m, SimConfig { mode, ..SimConfig::default() });
    let profile = AppProfile {
        name: "steady-long".into(),
        read_gbps_per_thread: 2.0,
        write_gbps_per_thread: 0.0,
        private_frac: 0.0,
        latency_sensitivity: 0.0,
        serial_frac: 0.0,
        multinode_penalty: 0.0,
        shared_pages: 100_000,
        private_pages_per_thread: 16,
        total_traffic_gb: 1_400.0, // ~100 simulated seconds, 20k epochs
        open_loop: false,
    };
    let pid = sim
        .spawn(profile, NodeSet::single(bwap_topology::NodeId(0)), None, MemPolicy::FirstTouch)
        .expect("spawn steady-long");
    sim.run_until_finished(pid, 200.0).expect("steady-long finishes");
    (sim.clock(), sim.process(pid).expect("process").work_done_gb)
}

/// The sparse-fleet microbench: a seeded Poisson stream of short jobs at
/// a rate low enough that the fleet sits idle most of the simulated run —
/// the stepped engine pays full price for every idle epoch, the event
/// engine strides straight to the next arrival. Returns the makespan so
/// the caller can pin the two engines to bit-identical results.
fn fleet_sparse(mode: EngineMode) -> f64 {
    let catalog = vec![bwap_workloads::streamcluster().scaled_down(256.0)];
    // Mean inter-arrival 20 s vs job runtimes well under a second: the
    // stream is ~99% idle gap.
    let jobs = bwap_runtime::poisson_jobs(11, 0.05, 24, &catalog);
    let cfg = bwap_runtime::FleetConfig {
        machines: vec![machines::machine_b()],
        scheduler: bwap_runtime::SchedulerKind::RoundRobin,
        policy: PlacementPolicy::UniformWorkers,
        workers: 1,
        sim_cfg: SimConfig { mode, ..SimConfig::default() },
    };
    let out = bwap_runtime::run_fleet(&cfg, &jobs, None).expect("sparse fleet run");
    assert_eq!(out.jobs.len(), 24, "every job completes");
    out.makespan_s
}

fn ocxl_campaign_quick() {
    let spec = bwap_runtime::CampaignSpec::new("ocxl-perf", machines::machine_tiered())
        .workloads(vec![bwap_workloads::ocean_cp_xl().scaled_down_traffic(16.0)])
        .policies(vec![
            PlacementPolicy::FirstTouch,
            PlacementPolicy::UniformWorkers,
            PlacementPolicy::Bwap(bwap::BwapConfig::default()),
        ])
        .worker_counts(vec![2])
        .seed(7);
    run_campaign(&spec);
}

fn main() {
    let mut entries: Vec<(&str, f64)> = Vec::new();

    let t = time_best(1, || {
        run_campaign(&experiments::fig1a_spec());
    });
    entries.push(("fig1a_quick", t));
    println!("fig1a_quick: {t:.3} s");

    let t = time_best(1, || {
        run_campaign(&experiments::fig_tiered_spec(true));
    });
    entries.push(("fig_tiered_quick", t));
    println!("fig_tiered_quick: {t:.3} s");

    // Warm-cache rerun of the tiered campaign: a first run populates the
    // on-disk cell cache, then reruns replay every cell from it. The warm
    // time is the memoization payoff the cache exists for — pinned at
    // >= 10x over the cold campaign above. (fig1a is probe-only with zero
    // cells, so the tiered campaign is the cheapest canned spec with a
    // real cell matrix to measure this on.)
    let cache_dir = std::env::temp_dir().join("bwap-perf-smoke-cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cached_cfg =
        bwap_runtime::CampaignConfig { cache_dir: Some(cache_dir.clone()), ..Default::default() };
    bwap_runtime::run_campaign_with(&experiments::fig_tiered_spec(true), &cached_cfg);
    let t_warm = time_best(RUNS, || {
        let r = bwap_runtime::run_campaign_with(&experiments::fig_tiered_spec(true), &cached_cfg);
        assert_eq!(r.executed_cells, 0, "warm rerun must be served entirely from cache");
    });
    let _ = std::fs::remove_dir_all(&cache_dir);
    entries.push(("fig_tiered_quick_warm", t_warm));
    println!("fig_tiered_quick_warm: {t_warm:.3} s");
    let cache_speedup = t / t_warm;
    println!("fig_tiered warm-cache speedup (cold/warm): {cache_speedup:.1}x");
    assert!(
        cache_speedup >= 10.0,
        "a warm cache rerun must be >= 10x faster than cold, got {cache_speedup:.1}x"
    );

    // The exact-dedup pair: the dwp_dedup campaign declares 24 cells that
    // collapse onto 12 equivalence classes. Dedup-on must execute strictly
    // fewer cells, and the time delta is the memoization saving.
    let mut executed = (0usize, 0usize);
    let t_on = time_best(1, || {
        let r = bwap_runtime::run_campaign_with(
            &experiments::dwp_dedup_spec(true),
            &bwap_runtime::CampaignConfig::default(),
        );
        executed.0 = r.executed_cells;
    });
    entries.push(("dwp_dedup_quick_dedup_on", t_on));
    println!("dwp_dedup_quick_dedup_on: {t_on:.3} s");
    let t_off = time_best(1, || {
        let r = bwap_runtime::run_campaign_with(
            &experiments::dwp_dedup_spec(true),
            &bwap_runtime::CampaignConfig { dedup: false, ..Default::default() },
        );
        executed.1 = r.executed_cells;
    });
    entries.push(("dwp_dedup_quick_dedup_off", t_off));
    println!("dwp_dedup_quick_dedup_off: {t_off:.3} s");
    assert!(
        executed.0 < executed.1,
        "dedup must execute strictly fewer cells ({} vs {})",
        executed.0,
        executed.1
    );

    // Supervision overhead guard: the same dedup-on campaign with a fault
    // plan attached whose every rule fires at rate 0 — every cell still
    // consults the plan and runs under the executor's panic isolation,
    // but no fault ever fires. This must cost nothing measurable.
    let plan = bwap_runtime::FaultPlan::new(9)
        .with(bwap_runtime::FaultKind::CellPanic, 0.0)
        .with(bwap_runtime::FaultKind::CellDelay, 0.0)
        .with(bwap_runtime::FaultKind::CacheFlip, 0.0);
    let t_sup = time_best(1, || {
        let r = bwap_runtime::run_campaign_with(
            &experiments::dwp_dedup_spec(true),
            &bwap_runtime::CampaignConfig { faults: Some(plan.clone()), ..Default::default() },
        );
        assert_eq!(r.executed_cells, executed.0, "a rate-0 plan changes nothing");
    });
    entries.push(("dwp_dedup_quick_supervised", t_sup));
    println!("dwp_dedup_quick_supervised: {t_sup:.3} s");
    assert!(
        t_sup <= t_on * 1.5 + 0.05,
        "supervision must add no measurable overhead ({t_sup:.3}s vs {t_on:.3}s fault-free)"
    );

    let t = time_best(1, ocxl_campaign_quick);
    entries.push(("ocxl_campaign_quick", t));
    println!("ocxl_campaign_quick: {t:.3} s");

    let t = time_best(RUNS, ocxl_spawn_mbind_step);
    entries.push(("ocxl_spawn_mbind_step", t));
    println!("ocxl_spawn_mbind_step: {t:.3} s");

    let t = time_best(1, || {
        run_campaign(&experiments::fig_phases_spec(true));
    });
    entries.push(("fig_phases_quick", t));
    println!("fig_phases_quick: {t:.3} s");

    let trace_dir = std::env::temp_dir().join("bwap-perf-smoke-traces");
    let t = time_best(1, || {
        let cfg = bwap_runtime::CampaignConfig {
            trace_dir: Some(trace_dir.clone()),
            ..Default::default()
        };
        bwap_runtime::run_campaign_with(&experiments::fig_phases_spec(true), &cfg);
    });
    let _ = std::fs::remove_dir_all(&trace_dir);
    entries.push(("fig_phases_quick_traced", t));
    println!("fig_phases_quick_traced: {t:.3} s");

    let t = time_best(1, || {
        run_campaign(&experiments::fig_phases_spec(true).engine_mode(EngineMode::EventDriven));
    });
    entries.push(("fig_phases_quick_event", t));
    println!("fig_phases_quick_event: {t:.3} s");

    let stepped_result = steady_phase_long(EngineMode::Stepped);
    let t_stepped = time_best(RUNS, || {
        steady_phase_long(EngineMode::Stepped);
    });
    entries.push(("steady_phase_long_stepped", t_stepped));
    println!("steady_phase_long_stepped: {t_stepped:.3} s");

    let event_result = steady_phase_long(EngineMode::EventDriven);
    let t_event = time_best(RUNS, || {
        steady_phase_long(EngineMode::EventDriven);
    });
    entries.push(("steady_phase_long_event", t_event));
    println!("steady_phase_long_event: {t_event:.3} s");

    assert_eq!(
        stepped_result.0.to_bits(),
        event_result.0.to_bits(),
        "steady-phase clocks must be bit-identical across engines"
    );
    assert_eq!(
        stepped_result.1.to_bits(),
        event_result.1.to_bits(),
        "steady-phase progress must be bit-identical across engines"
    );
    let speedup = t_stepped / t_event;
    println!("steady_phase_long speedup (stepped/event): {speedup:.1}x");
    assert!(
        speedup >= 5.0,
        "the event engine must stride a long steady phase >= 5x faster, got {speedup:.1}x"
    );

    let fleet_stepped_makespan = fleet_sparse(EngineMode::Stepped);
    let t_fleet_stepped = time_best(RUNS, || {
        fleet_sparse(EngineMode::Stepped);
    });
    entries.push(("fleet_quick_stepped", t_fleet_stepped));
    println!("fleet_quick_stepped: {t_fleet_stepped:.3} s");

    let fleet_event_makespan = fleet_sparse(EngineMode::EventDriven);
    let t_fleet_event = time_best(RUNS, || {
        fleet_sparse(EngineMode::EventDriven);
    });
    entries.push(("fleet_quick_event", t_fleet_event));
    println!("fleet_quick_event: {t_fleet_event:.3} s");

    assert_eq!(
        fleet_stepped_makespan.to_bits(),
        fleet_event_makespan.to_bits(),
        "sparse-fleet makespan must be bit-identical across engines"
    );
    let fleet_speedup = t_fleet_stepped / t_fleet_event;
    println!("fleet_quick speedup (stepped/event): {fleet_speedup:.1}x");
    assert!(
        fleet_speedup >= 2.0,
        "the event engine must stride sparse arrivals >= 2x faster, got {fleet_speedup:.1}x"
    );

    let mut json = String::from("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        json.push_str(&format!("  \"{k}\": {v:.4}"));
        json.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
    }
    json.push_str("}\n");
    let out = std::env::var("BWAP_BENCH_OUT").unwrap_or_else(|_| "BENCH_campaign.json".into());
    std::fs::write(&out, &json).expect("write bench json");
    println!("wrote {out}");
}
