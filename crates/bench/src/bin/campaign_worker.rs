//! A remote campaign worker: listens on a TCP address and serves cell
//! executions to a distributed `campaign --remote` run.
//!
//! ```text
//! cargo run --release -p bwap-bench --bin campaign_worker -- \
//!     --listen 0.0.0.0:7431 --threads 8
//! ```
//!
//! The worker holds no state between requests: each request carries the
//! full spec argument vector, the worker rebuilds the spec through the
//! same CLI vocabulary as the coordinator, runs the requested cells, and
//! replies with cache-entry encodings that embed each cell's descriptor
//! (verified byte-for-byte by the coordinator). `--once` serves a single
//! connection and exits — CI loopback smoke runs use it so the worker
//! never outlives its test.

use bwap_bench::worker::serve;
use std::net::TcpListener;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: campaign_worker [--listen ADDR:PORT] [--threads N] [--once]
                       [--io-timeout SECS]

--listen     address to bind (default 127.0.0.1:7431); port 0 picks a free
             port, printed as `listening on ADDR` at startup
--threads    cap on concurrent cell executions (default: all cores)
--once       serve exactly one connection, then exit
--io-timeout per-read/per-write socket timeout in seconds (default 10):
             a silent or wedged peer never blocks the worker past this"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:7431".to_string();
    let mut threads: Option<usize> = None;
    let mut once = false;
    let mut io_timeout = Duration::from_secs(10);

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| -> &str {
            match it.next() {
                Some(v) => v,
                None => {
                    eprintln!("{flag} needs a value");
                    usage()
                }
            }
        };
        match flag.as_str() {
            "--listen" => listen = value("--listen").to_string(),
            "--threads" => threads = Some(value("--threads").parse().unwrap_or_else(|_| usage())),
            "--once" => once = true,
            "--io-timeout" => {
                io_timeout =
                    Duration::from_secs(value("--io-timeout").parse().unwrap_or_else(|_| usage()))
            }
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    let listener = TcpListener::bind(&listen).unwrap_or_else(|e| {
        eprintln!("cannot bind {listen}: {e}");
        std::process::exit(1);
    });
    // The bound address matters when port 0 asked the OS to pick: print
    // it so scripts (and the CI loopback step) can scrape it.
    match listener.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(_) => println!("listening on {listen}"),
    }
    if let Err(e) = serve(&listener, threads, once, io_timeout) {
        eprintln!("campaign_worker: {e}");
        std::process::exit(1);
    }
}
