//! Table I: memory-access characterization of the benchmark suite on
//! machine B (one full worker node), paper-vs-measured.
//!
//! A thin wrapper over the campaign engine: the characterization is one
//! campaign — {suite} x {first-touch} x {stand-alone} x {1 worker} —
//! and the table is computed from the cells' traffic counters.
//! Artifacts: `results/table1_measured.csv` + the campaign report.
//!
//! Usage: `cargo run --release -p bwap-bench --bin table1 [-- --quick]`

use bwap_bench::{experiments, save_csv};
use bwap_runtime::run_campaign;
use bwap_workloads::table1_reference;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = experiments::table1_spec(quick);
    let report = run_campaign(&spec);
    let measured = experiments::table1_from_report(&spec, &report);
    println!("{measured}");
    println!("== paper reference ==");
    println!(
        "{:<6} {:>11} {:>12} {:>10} {:>9}",
        "", "reads MB/s", "writes MB/s", "private %", "shared %"
    );
    for row in table1_reference() {
        println!(
            "{:<6} {:>11.0} {:>12.0} {:>10.1} {:>9.1}",
            row.name, row.reads_mbps, row.writes_mbps, row.private_pct, row.shared_pct
        );
    }
    let path = save_csv("table1_measured.csv", &measured.to_csv()).expect("write results");
    println!("wrote {}", path.display());
    let path = report.write_json().expect("write report");
    println!("wrote {}", path.display());
}
