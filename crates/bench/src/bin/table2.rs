//! Table II: the DWP value BWAP's iterative search settles on for every
//! benchmark and co-scheduled configuration on both machines.
//!
//! Usage: `cargo run --release -p bwap-bench --bin table2 [-- --quick]`

use bwap_bench::{experiments, save_csv};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let table = experiments::table2(quick);
    println!("{table}");
    println!("(Paper Table II for comparison, %: SC 48/0/23.8 on A, 100/100 on B;");
    println!(" OC 14.1/0/0 A, 0/0 B; ON 14.1/16/0 A, 0/0 B; SP.B 0/0/0 A,");
    println!(" 15.2/22.2 B; FT.C 0/16.3/0 A, 30.3/0 B)");
    let path = save_csv("table2_dwp.csv", &table.to_csv()).expect("write results");
    println!("wrote {}", path.display());
}
