//! Implementations of every experiment in the paper's evaluation, shared
//! by the per-figure binaries and the all-in-one `paper` binary.
//!
//! The scenario-matrix experiments (Fig. 1a, Fig. 2/3, Fig. 4, Tables
//! I/II) are declared as [`CampaignSpec`]s and executed by the campaign
//! engine (`bwap-runtime::campaign`), which fans the cells out across
//! threads; the `*_spec` functions expose the declarations so binaries
//! can also write the machine-readable campaign reports. Each function
//! returns [`ResultTable`]s ready for printing and CSV export. `quick`
//! scales workloads down ~8x for fast smoke runs.

use crate::report::ResultTable;
use bwap::{BwapConfig, DwpTunerConfig};
use bwap_runtime::{
    run_campaign, run_coscheduled, run_coscheduled_with, run_parallel, AdaptiveConfig,
    CampaignReport, CampaignSpec, DwpPoint, FleetAxis, MachineKind, PlacementPolicy, RunResult,
    ScenarioKind, SchedulerKind,
};
use bwap_search::{hill_climb, HillClimbConfig, SimEvaluator};
use bwap_topology::{machines, MachineTopology};
use bwap_workloads::WorkloadSpec;
use numasim::SimConfig;

/// Scale factor applied to workloads in quick mode.
const QUICK_FACTOR: f64 = 8.0;

fn suite(quick: bool) -> Vec<WorkloadSpec> {
    bwap_workloads::suite()
        .into_iter()
        .map(|w| if quick { w.scaled_down(QUICK_FACTOR) } else { w })
        .collect()
}

fn streamcluster(quick: bool) -> WorkloadSpec {
    if quick {
        bwap_workloads::streamcluster().scaled_down(QUICK_FACTOR)
    } else {
        bwap_workloads::streamcluster()
    }
}

/// The cell result at the given coordinates; panics with the cell's own
/// error message if the run failed (experiment cells are expected to
/// succeed — a failure is a harness bug).
fn cell(
    report: &CampaignReport,
    workload: &str,
    policy: &str,
    scenario: ScenarioKind,
    workers: usize,
    static_dwp: Option<f64>,
) -> RunResult {
    let c = report
        .find(workload, policy, scenario, workers, static_dwp)
        .unwrap_or_else(|| panic!("no cell {workload}/{policy}/{}/{workers}w", scenario.label()));
    match &c.outcome {
        Ok(r) => r.clone(),
        Err(e) => panic!("cell {} failed: {e}", c.key),
    }
}

/// Fig. 1a campaign: no scenario cells, just the installation-time
/// bandwidth probe of machine A.
pub fn fig1a_spec() -> CampaignSpec {
    CampaignSpec::new("fig1a", machines::machine_a()).probe_bandwidth(true)
}

/// Fig. 1a: the machine-A node-to-node bandwidth matrix, measured by
/// single-flow probes, plus its deviation from the paper's published
/// matrix (zero by calibration).
pub fn fig1a() -> (bwap_topology::BwMatrix, f64) {
    fig1a_from_report(&run_campaign(&fig1a_spec()))
}

/// Extract Fig. 1a's matrix and error figure from a campaign report.
pub fn fig1a_from_report(report: &CampaignReport) -> (bwap_topology::BwMatrix, f64) {
    let probed = report.bw_matrix.clone().expect("fig1a spec requests the probe");
    let err = probed.max_rel_error(&machines::fig1a_matrix()).expect("same dimensions");
    (probed, err)
}

/// Fig. 1b: first-touch / uniform-workers / uniform-all on machine A with
/// 2 worker nodes, normalized against the offline N-dimensional
/// hill-climbing search (top-10 average). Returns the normalized table
/// (values < 1 mean slower than the search's placement, as in the paper).
pub fn fig1b(quick: bool, search_iterations: usize) -> ResultTable {
    let m = machines::machine_a();
    let workers = m.best_worker_set(2);
    let apps = suite(quick);
    let jobs: Vec<_> = apps
        .iter()
        .map(|app| {
            let m = m.clone();
            let app = app.clone();
            move || {
                let policies = [
                    PlacementPolicy::FirstTouch,
                    PlacementPolicy::UniformWorkers,
                    PlacementPolicy::UniformAll,
                ];
                let mut times: Vec<f64> = policies
                    .iter()
                    .map(|p| {
                        bwap_runtime::run_standalone(&m, &app, workers, p)
                            .expect("scenario")
                            .exec_time_s
                    })
                    .collect();
                // Offline search, starting from uniform-workers as in §II.
                // Proposals are evaluated 4 per round through the shared
                // parallel executor (SimEvaluator::evaluate_batch).
                let start = bwap::WeightDistribution::uniform_over(workers, m.node_count())
                    .expect("workers valid");
                let mut evaluator = SimEvaluator::new(m.clone(), app.clone(), workers);
                let cfg = HillClimbConfig {
                    iterations: search_iterations,
                    ..HillClimbConfig::batched(4)
                };
                let outcome = hill_climb(&mut evaluator, start, &cfg);
                times.push(outcome.top_k_mean_time);
                times
            }
        })
        .collect();
    let rows = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Fig. 1b: normalized execution time vs n-dim search (machine A, 2 workers)",
        vec![
            "first-touch".into(),
            "uniform-workers".into(),
            "uniform-all".into(),
            "n-dim-search".into(),
        ],
    );
    for (app, times) in apps.iter().zip(rows) {
        // Paper plots hillclimb/time: 1.0 = as good as the search.
        let reference = times[3];
        t.push_row(app.name, times.iter().map(|x| reference / x).collect());
    }
    t
}

/// Table I campaign: every benchmark stand-alone under first-touch on one
/// full machine-B worker node — the characterization runs.
pub fn table1_spec(quick: bool) -> CampaignSpec {
    CampaignSpec::new("table1", machines::machine_b())
        .workloads(suite(quick))
        .policies(vec![PlacementPolicy::FirstTouch])
}

/// Table I: memory-access characterization measured on machine B with one
/// full worker node. Columns: reads MB/s, writes MB/s, private %, shared %.
pub fn table1(quick: bool) -> ResultTable {
    let spec = table1_spec(quick);
    table1_from_report(&spec, &run_campaign(&spec))
}

/// Build Table I from its campaign report.
pub fn table1_from_report(spec: &CampaignSpec, report: &CampaignReport) -> ResultTable {
    let mut t = ResultTable::new(
        "Table I: characterization (machine B, 1 full worker node)",
        vec!["reads MB/s".into(), "writes MB/s".into(), "private %".into(), "shared %".into()],
    );
    t.precision = 1;
    for app in &spec.workloads {
        let r = cell(report, app.name, "first-touch", ScenarioKind::Standalone, 1, None);
        let writes = r.traffic_bytes - r.read_bytes;
        t.push_row(
            app.name,
            vec![
                r.read_bytes / r.exec_time_s / 1e6,
                writes / r.exec_time_s / 1e6,
                app.private_frac * 100.0,
                (1.0 - app.private_frac) * 100.0,
            ],
        );
    }
    t
}

/// Campaign behind one co-scheduled panel (Fig. 2 / Fig. 3a/b): every
/// evaluation policy x every benchmark at a fixed worker count.
pub fn cosched_panel_spec(machine: &MachineTopology, workers: usize, quick: bool) -> CampaignSpec {
    CampaignSpec::new(&format!("cosched_{}_{}w", machine.name(), workers), machine.clone())
        .workloads(suite(quick))
        .policies(PlacementPolicy::evaluation_set())
        .scenarios(vec![ScenarioKind::Coscheduled])
        .worker_counts(vec![workers])
}

/// One co-scheduled panel: every policy x every benchmark at a fixed
/// worker count. Returns `(exec-time table, chosen DWP per app)`.
pub fn cosched_panel(
    machine: &MachineTopology,
    workers: usize,
    quick: bool,
) -> (ResultTable, Vec<(String, f64)>) {
    let spec = cosched_panel_spec(machine, workers, quick);
    let report = run_campaign(&spec);
    let mut table = ResultTable::new(
        &format!("exec time [s], {}, {} worker(s), co-scheduled", machine.name(), workers),
        spec.policies.iter().map(|p| p.label()).collect(),
    );
    let mut dwps = Vec::new();
    for app in &spec.workloads {
        let row: Vec<f64> = spec
            .policies
            .iter()
            .map(|p| {
                cell(&report, app.name, &p.label(), ScenarioKind::Coscheduled, workers, None)
                    .exec_time_s
            })
            .collect();
        table.push_row(app.name, row);
        let bwap = cell(&report, app.name, "bwap", ScenarioKind::Coscheduled, workers, None);
        if let Some(d) = bwap.chosen_dwp {
            dwps.push((app.name.to_string(), d));
        }
    }
    (table, dwps)
}

/// Fig. 3c/d: stand-alone scenario at each application's optimal worker
/// count. The optimum is determined per application under uniform-workers
/// (the incumbent policy), then every policy runs at that count. Returns
/// the exec-time table; row labels carry the chosen worker count.
pub fn standalone_optimal(machine: &MachineTopology, quick: bool) -> ResultTable {
    let candidates: Vec<usize> =
        (0..=machine.node_count().trailing_zeros()).map(|p| 1usize << p).collect();
    let policies = PlacementPolicy::evaluation_set();
    let apps = suite(quick);
    // Stage 1: optimal worker count per app — one campaign sweeping the
    // worker-count axis under the incumbent policy.
    let sweep_spec =
        CampaignSpec::new(&format!("standalone_sweep_{}", machine.name()), machine.clone())
            .workloads(apps.clone())
            .policies(vec![PlacementPolicy::UniformWorkers])
            .worker_counts(candidates.clone());
    let sweep = run_campaign(&sweep_spec);
    let optima: Vec<usize> = apps
        .iter()
        .map(|app| {
            candidates
                .iter()
                .map(|&k| {
                    (
                        k,
                        cell(
                            &sweep,
                            app.name,
                            "uniform-workers",
                            ScenarioKind::Standalone,
                            k,
                            None,
                        ),
                    )
                })
                .min_by(|a, b| a.1.exec_time_s.partial_cmp(&b.1.exec_time_s).unwrap())
                .expect("non-empty candidate set")
                .0
        })
        .collect();
    // Stage 2: all policies at the per-app optimum. The worker count now
    // depends on the app, so this is a ragged matrix — one job per
    // (app, policy) pair on the same executor.
    let machine_ref = &machine;
    let jobs: Vec<_> = apps
        .iter()
        .zip(&optima)
        .flat_map(|(app, &k)| {
            policies.iter().map(move |policy| {
                let machine = (*machine_ref).clone();
                let app = app.clone();
                let policy = policy.clone();
                move || {
                    let workers = machine.best_worker_set(k);
                    bwap_runtime::run_standalone(&machine, &app, workers, &policy)
                        .expect("scenario")
                }
            })
        })
        .collect();
    let results: Vec<RunResult> = run_parallel(jobs);
    let mut table = ResultTable::new(
        &format!("exec time [s], {}, stand-alone at optimal workers", machine.name()),
        policies.iter().map(|p| p.label()).collect(),
    );
    for (ai, (app, &k)) in apps.iter().zip(&optima).enumerate() {
        let row: Vec<f64> =
            (0..policies.len()).map(|pi| results[ai * policies.len() + pi].exec_time_s).collect();
        table.push_row(&format!("{} {}W", app.name, k), row);
    }
    table
}

/// Table II campaigns: the co-scheduled BWAP DWP search on both machines,
/// all worker counts (each spec's `worker_counts` axis is the machine's
/// column set).
pub fn table2_specs(quick: bool) -> Vec<CampaignSpec> {
    vec![
        CampaignSpec::new("table2_machine-a", machines::machine_a())
            .workloads(suite(quick))
            .policies(vec![PlacementPolicy::Bwap(BwapConfig::default())])
            .scenarios(vec![ScenarioKind::Coscheduled])
            .worker_counts(vec![1, 2, 4]),
        CampaignSpec::new("table2_machine-b", machines::machine_b())
            .workloads(suite(quick))
            .policies(vec![PlacementPolicy::Bwap(BwapConfig::default())])
            .scenarios(vec![ScenarioKind::Coscheduled])
            .worker_counts(vec![1, 2]),
    ]
}

/// Table II: DWP chosen by the iterative search, co-scheduled scenario,
/// all worker counts on both machines. Values in percent.
pub fn table2(quick: bool) -> ResultTable {
    let apps = suite(quick);
    let reports: Vec<(CampaignReport, Vec<usize>)> = table2_specs(quick)
        .into_iter()
        .map(|spec| {
            let counts = spec.worker_counts.clone();
            (run_campaign(&spec), counts)
        })
        .collect();
    let mut t = ResultTable::new(
        "Table II: DWP chosen by BWAP's iterative search (co-scheduled), %",
        vec!["A 1W".into(), "A 2W".into(), "A 4W".into(), "B 1W".into(), "B 2W".into()],
    );
    t.precision = 1;
    for app in &apps {
        let mut row = Vec::new();
        for (report, counts) in &reports {
            for &k in counts {
                let r = cell(report, app.name, "bwap", ScenarioKind::Coscheduled, k, None);
                row.push(r.chosen_dwp.expect("bwap reports dwp") * 100.0);
            }
        }
        t.push_row(app.name, row);
    }
    t
}

/// The Fig. 4 static-DWP grid: 0 %, 10 %, ..., 100 %.
pub fn fig4_dwps() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

/// Fig. 4 campaign: Streamcluster co-scheduled on machine A at 1 and 2
/// workers, swept over the static-DWP grid plus the online tuner.
pub fn fig4_spec(quick: bool) -> CampaignSpec {
    let grid: Vec<DwpPoint> = fig4_dwps()
        .into_iter()
        .map(DwpPoint::Static)
        .chain(std::iter::once(DwpPoint::AsConfigured))
        .collect();
    CampaignSpec::new("fig4", machines::machine_a())
        .workloads(vec![streamcluster(quick)])
        .policies(vec![PlacementPolicy::Bwap(BwapConfig::default())])
        .scenarios(vec![ScenarioKind::Coscheduled])
        .worker_counts(vec![1, 2])
        .dwp_grid(grid)
}

/// A DWP-grid campaign with deliberate axis overlap: the policy set pairs
/// the online tuner with a pre-fixed `static_dwp(0.5)` variant, and the
/// grid revisits the same static points. After the per-cell override is
/// folded in (`bwap_runtime::effective_policy`), every
/// `static_dwp(0.5) x Static(d)` cell collapses onto the matching
/// `default x Static(d)` cell and `static_dwp(0.5) x online` collapses
/// onto `default x Static(0.5)` — 24 declared cells but only 12 distinct
/// simulations. Exactly the shape the exact-dedup pass exists for;
/// `perf_smoke` runs it with dedup on and off.
pub fn dwp_dedup_spec(quick: bool) -> CampaignSpec {
    let grid: Vec<DwpPoint> = fig4_dwps()
        .into_iter()
        .map(DwpPoint::Static)
        .chain(std::iter::once(DwpPoint::AsConfigured))
        .collect();
    CampaignSpec::new("dwp_dedup", machines::machine_a())
        .workloads(vec![streamcluster(quick)])
        .policies(vec![
            PlacementPolicy::Bwap(BwapConfig::default()),
            PlacementPolicy::Bwap(BwapConfig::static_dwp(0.5)),
        ])
        .scenarios(vec![ScenarioKind::Coscheduled])
        .worker_counts(vec![1])
        .dwp_grid(grid)
}

/// Fig. 4: static-DWP sweep for Streamcluster on machine A (1 and 2
/// workers, co-scheduled), plus the point the online tuner picks.
/// Returns one table per worker count with columns: exec time, stall
/// fraction (both normalized to the DWP=0 point as in the paper's
/// normalized axes), and the online tuner's `(dwp, exec time)`.
pub fn fig4(quick: bool) -> Vec<(ResultTable, f64, f64)> {
    fig4_from_report(&run_campaign(&fig4_spec(quick)))
}

/// Build Fig. 4's tables from its campaign report.
pub fn fig4_from_report(report: &CampaignReport) -> Vec<(ResultTable, f64, f64)> {
    let mut out = Vec::new();
    for k in [1usize, 2] {
        let points: Vec<RunResult> = fig4_dwps()
            .into_iter()
            .map(|d| cell(report, "SC", "bwap", ScenarioKind::Coscheduled, k, Some(d)))
            .collect();
        let online = cell(report, "SC", "bwap", ScenarioKind::Coscheduled, k, None);
        let (t0, s0) = (points[0].exec_time_s, points[0].stall_frac);
        let mut table = ResultTable::new(
            &format!("Fig. 4: SC on machine A, {k} worker(s): normalized vs DWP"),
            vec!["norm exec time".into(), "norm stall rate".into()],
        );
        for (dwp, p) in fig4_dwps().iter().zip(&points) {
            table.push_row(
                &format!("DWP={:3.0}%", dwp * 100.0),
                vec![p.exec_time_s / t0, p.stall_frac / s0],
            );
        }
        out.push((table, online.chosen_dwp.unwrap_or(0.0), online.exec_time_s / t0));
    }
    out
}

/// The tiered campaign's policy set: the incumbents versus BWAP on a
/// machine with CPU-less expander nodes.
fn tiered_policies() -> Vec<PlacementPolicy> {
    vec![
        PlacementPolicy::FirstTouch,
        PlacementPolicy::UniformWorkers,
        PlacementPolicy::UniformAll,
        PlacementPolicy::Bwap(BwapConfig::default()),
    ]
}

/// Fig. T campaign: the heterogeneous-tier scenario on `machine_tiered`
/// (2 worker nodes + 2 CPU-less expanders). Bandwidth-bound workloads and
/// their capacity-pressure variants, stand-alone, at 1 and 2 workers.
/// Quick mode scales traffic only for the capacity variants — shrinking
/// their pages would remove the capacity pressure they exist to exert.
pub fn fig_tiered_spec(quick: bool) -> CampaignSpec {
    let mut apps = vec![streamcluster(quick), {
        let oc = bwap_workloads::ocean_cp();
        if quick {
            oc.scaled_down(QUICK_FACTOR)
        } else {
            oc
        }
    }];
    for w in bwap_workloads::capacity_suite() {
        apps.push(if quick { w.scaled_down_traffic(QUICK_FACTOR) } else { w });
    }
    CampaignSpec::new("fig_tiered", machines::machine_tiered())
        .workloads(apps)
        .policies(tiered_policies())
        .worker_counts(vec![1, 2])
}

/// Fig. T: exec times on the tiered machine, plus the speedup table
/// normalized to first-touch (the Linux default an operator would get).
pub fn fig_tiered(quick: bool) -> (ResultTable, ResultTable) {
    let spec = fig_tiered_spec(quick);
    let report = run_campaign(&spec);
    fig_tiered_from_report(&spec, &report)
}

/// Build Fig. T's tables from its campaign report.
pub fn fig_tiered_from_report(
    spec: &CampaignSpec,
    report: &CampaignReport,
) -> (ResultTable, ResultTable) {
    let mut times = ResultTable::new(
        "Fig. T: exec time [s], machine-tiered (2 workers + 2 CPU-less expanders), stand-alone",
        spec.policies.iter().map(|p| p.label()).collect(),
    );
    for app in &spec.workloads {
        for &k in &spec.worker_counts {
            let row: Vec<f64> = spec
                .policies
                .iter()
                .map(|p| {
                    cell(report, app.name, &p.label(), ScenarioKind::Standalone, k, None)
                        .exec_time_s
                })
                .collect();
            times.push_row(&format!("{} {}W", app.name, k), row);
        }
    }
    let speedups = times.normalized_to("first-touch");
    (times, speedups)
}

/// Phase-cycle period of the `fig_phases` campaign, seconds (one full
/// pass through each workload's timeline).
pub fn fig_phases_period(quick: bool) -> f64 {
    if quick {
        6.0
    } else {
        40.0
    }
}

/// Tuner cadence for the phase campaign. Both the one-shot and the
/// adaptive tuner use it (a fair comparison needs identical search
/// parameters): sampling is much faster than the paper's default so a
/// full re-convergence costs a small fraction of one phase, the regime
/// the §VI future-work scenario assumes.
fn phases_tuner(quick: bool) -> DwpTunerConfig {
    if quick {
        DwpTunerConfig {
            samples_per_iteration: 4,
            trim: 1,
            sample_interval_s: 0.02,
            step: 0.2,
            ..DwpTunerConfig::default()
        }
    } else {
        DwpTunerConfig {
            samples_per_iteration: 6,
            trim: 1,
            sample_interval_s: 0.1,
            step: 0.2,
            ..DwpTunerConfig::default()
        }
    }
}

/// Fig. P campaign: phase-structured workloads on machine B — the
/// SC bandwidth flip and the Ocean footprint swing, cycled at
/// [`fig_phases_period`] — under first-touch, one-shot ("static") BWAP
/// and adaptive BWAP. The flip alternates between a placement that wants
/// pages spread (controller-saturating streaming) and one that wants
/// them worker-local (latency-bound point queries), so no single static
/// placement wins both phases: the adaptive watchdog's home turf.
/// `tests/phases.rs` pins adaptive ≥ static ≥ first-touch on the flip.
pub fn fig_phases_spec(quick: bool) -> CampaignSpec {
    let scale = if quick { QUICK_FACTOR } else { 1.0 };
    let workloads = vec![
        bwap_workloads::sc_bandwidth_flip().scaled_down(scale),
        bwap_workloads::oc_footprint_swing().scaled_down(scale),
    ];
    let static_bwap = BwapConfig { tuner: phases_tuner(quick), ..BwapConfig::default() };
    let adaptive = AdaptiveConfig {
        bwap: static_bwap.clone(),
        // A long phased run re-tunes at every boundary; leave headroom
        // over the default cap without disabling the guard.
        max_retunes: 32,
        ..AdaptiveConfig::default()
    };
    CampaignSpec::new("fig_phases", machines::machine_b())
        .phased_workloads(workloads)
        .phase_periods(vec![fig_phases_period(quick)])
        .policies(vec![
            PlacementPolicy::FirstTouch,
            PlacementPolicy::Bwap(static_bwap),
            PlacementPolicy::AdaptiveBwap(adaptive),
        ])
        .worker_counts(vec![1])
}

/// Fig. P: exec time per policy on the phase-flipping workloads, the
/// speedup table normalized to first-touch, and per-workload adaptive
/// observables `(retunes, phase switches)`.
pub fn fig_phases(quick: bool) -> (ResultTable, ResultTable, Vec<(String, u64, u64)>) {
    let spec = fig_phases_spec(quick);
    let report = run_campaign(&spec);
    fig_phases_from_report(&spec, &report)
}

/// Build Fig. P's tables from its campaign report.
pub fn fig_phases_from_report(
    spec: &CampaignSpec,
    report: &CampaignReport,
) -> (ResultTable, ResultTable, Vec<(String, u64, u64)>) {
    let mut times = ResultTable::new(
        "Fig. P: exec time [s], machine B, phase-structured workloads, stand-alone",
        spec.policies.iter().map(|p| p.label()).collect(),
    );
    let mut adaptive_stats = Vec::new();
    for w in &spec.phased_workloads {
        let row: Vec<f64> = spec
            .policies
            .iter()
            .map(|p| {
                cell(report, &w.name, &p.label(), ScenarioKind::Standalone, 1, None).exec_time_s
            })
            .collect();
        times.push_row(&w.name, row);
        let a = cell(report, &w.name, "bwap-adaptive", ScenarioKind::Standalone, 1, None);
        adaptive_stats.push((
            w.name.clone(),
            a.retunes.unwrap_or(0),
            a.phase_switches.unwrap_or(0),
        ));
    }
    let speedups = times.normalized_to("first-touch");
    (times, speedups, adaptive_stats)
}

/// Fig. F campaign: fleet-scale serving. An open-loop Poisson stream of
/// jobs drawn from a two-app catalog arrives at a heterogeneous two
/// machine fleet (one machine B, one tiered machine with CPU-less
/// expanders); every cluster scheduler is swept at each arrival rate and
/// each fleet cell reports slowdown-vs-solo tail percentiles. The plain
/// workload axis doubles as the fleet's job catalog, so the report also
/// carries each app's machine-local solo run for context.
pub fn fig_fleet_spec(quick: bool) -> CampaignSpec {
    let catalog = vec![streamcluster(quick), {
        let oc = bwap_workloads::ocean_cp();
        if quick {
            oc.scaled_down(QUICK_FACTOR)
        } else {
            oc
        }
    }];
    let (rates, jobs) = if quick { (vec![0.5, 2.0], 4) } else { (vec![0.25, 1.0, 4.0], 16) };
    CampaignSpec::new("fig_fleet", machines::machine_b())
        .workloads(catalog)
        .policies(vec![PlacementPolicy::UniformWorkers])
        .worker_counts(vec![1])
        .fleet(FleetAxis {
            machines: vec![MachineKind::B, MachineKind::Tiered],
            schedulers: SchedulerKind::all().to_vec(),
            arrival_rates: rates,
            jobs,
            trace: None,
        })
        .seed(7)
}

/// Fig. F: the slowdown-vs-solo tail table — one row per
/// (scheduler, arrival rate) fleet cell, columns p50/p95/p99 plus
/// makespan and job count.
pub fn fig_fleet(quick: bool) -> ResultTable {
    let spec = fig_fleet_spec(quick);
    let report = run_campaign(&spec);
    fig_fleet_from_report(&spec, &report)
}

/// Build Fig. F's tail table from its campaign report.
pub fn fig_fleet_from_report(spec: &CampaignSpec, report: &CampaignReport) -> ResultTable {
    let mut t = ResultTable::new(
        "Fig. F: fleet slowdown-vs-solo tails (machine B + tiered, open-loop arrivals)",
        vec!["p50".into(), "p95".into(), "p99".into(), "makespan [s]".into(), "jobs".into()],
    );
    t.precision = 2;
    let axis = spec.fleet.as_ref().expect("fig_fleet has a fleet axis");
    for sched in &axis.schedulers {
        for &rate in &axis.arrival_rates {
            let c = report
                .cells
                .iter()
                .find(|c| {
                    c.scheduler.as_deref() == Some(sched.label()) && c.arrival_rate_hz == Some(rate)
                })
                .unwrap_or_else(|| panic!("no fleet cell {}/{rate}", sched.label()));
            let r = match &c.outcome {
                Ok(r) => r,
                Err(e) => panic!("cell {} failed: {e}", c.key),
            };
            t.push_row(
                &format!("{} @ {rate}/s", sched.label()),
                vec![
                    r.slowdown_p50.unwrap_or(f64::NAN),
                    r.slowdown_p95.unwrap_or(f64::NAN),
                    r.slowdown_p99.unwrap_or(f64::NAN),
                    r.exec_time_s,
                    r.jobs.unwrap_or(0) as f64,
                ],
            );
        }
    }
    t
}

/// Ablation 1: kernel-level vs user-level weighted interleaving, full
/// BWAP, co-scheduled 2 workers on both machines. Values: exec-time ratio
/// user/kernel (paper reports the gap is at most ~3%).
pub fn ablation_interleave_mode(quick: bool) -> ResultTable {
    let apps = suite(quick);
    let machines_ = [machines::machine_a(), machines::machine_b()];
    let jobs: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            machines_.iter().map(move |m| {
                let m = m.clone();
                let app = app.clone();
                move || {
                    let workers = m.best_worker_set(2);
                    let kernel = run_coscheduled(
                        &m,
                        &app,
                        workers,
                        &PlacementPolicy::Bwap(BwapConfig::kernel_mode()),
                    )
                    .expect("scenario");
                    let user = run_coscheduled(
                        &m,
                        &app,
                        workers,
                        &PlacementPolicy::Bwap(BwapConfig::default()),
                    )
                    .expect("scenario");
                    user.exec_time_s / kernel.exec_time_s
                }
            })
        })
        .collect();
    let ratios = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Ablation: user-level (Algorithm 1) / kernel-level exec-time ratio",
        vec!["machine A".into(), "machine B".into()],
    );
    for (ai, app) in apps.iter().enumerate() {
        t.push_row(app.name, ratios[ai * 2..ai * 2 + 2].to_vec());
    }
    t
}

/// Ablation 2: online-tuner overhead and accuracy — BWAP with the online
/// search versus the *best* static DWP found by a full sweep (the paper's
/// accuracy/overhead analysis, §IV-B: tuner within one step of optimum,
/// <= 4 % overhead).
pub fn ablation_tuner_overhead(quick: bool) -> ResultTable {
    let m = machines::machine_a();
    let workers = m.best_worker_set(2);
    let apps = suite(quick);
    let dwps = fig4_dwps();
    let jobs: Vec<_> = apps
        .iter()
        .map(|app| {
            let m = m.clone();
            let app = app.clone();
            let dwps = dwps.clone();
            move || {
                let online = run_coscheduled(
                    &m,
                    &app,
                    workers,
                    &PlacementPolicy::Bwap(BwapConfig::default()),
                )
                .expect("scenario");
                let sweep = bwap_runtime::dwp_sweep(&m, &app, workers, &dwps, true).expect("sweep");
                let best = sweep
                    .iter()
                    .min_by(|a, b| a.exec_time_s.partial_cmp(&b.exec_time_s).unwrap())
                    .expect("non-empty");
                [
                    online.exec_time_s,
                    best.exec_time_s,
                    (online.exec_time_s / best.exec_time_s - 1.0) * 100.0,
                    online.chosen_dwp.expect("bwap") * 100.0,
                    best.dwp * 100.0,
                ]
            }
        })
        .collect();
    let rows = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Ablation: DWP tuner vs best static (machine A, 2 workers, co-scheduled)",
        vec![
            "online [s]".into(),
            "best static [s]".into(),
            "overhead %".into(),
            "chosen DWP %".into(),
            "best DWP %".into(),
        ],
    );
    t.precision = 2;
    for (app, vals) in apps.iter().zip(rows) {
        t.push_row(app.name, vals.to_vec());
    }
    t
}

/// Ablation 3: model components — write amplification and loaded-latency
/// inflation switched off, effect on the headline comparison (bwap vs
/// uniform-workers speedup, SC machine A 2W co-scheduled).
pub fn ablation_model(quick: bool) -> ResultTable {
    let m = machines::machine_a();
    let workers = m.best_worker_set(2);
    let spec = streamcluster(quick);
    let variants: Vec<(&str, SimConfig)> = vec![
        ("full model", SimConfig::default()),
        (
            "no write amplification",
            SimConfig {
                ctrl_model: bwap_fabric::ControllerModel::symmetric(),
                ..SimConfig::default()
            },
        ),
        ("no loaded latency", SimConfig { latency_inflation: (0.0, 4.0), ..SimConfig::default() }),
    ];
    let jobs: Vec<_> = variants
        .iter()
        .map(|(_, cfg)| {
            let m = m.clone();
            let spec = spec.clone();
            let cfg = cfg.clone();
            move || {
                let uw = run_coscheduled_with(
                    &m,
                    &spec,
                    workers,
                    &PlacementPolicy::UniformWorkers,
                    cfg.clone(),
                )
                .expect("scenario");
                let bw = run_coscheduled_with(
                    &m,
                    &spec,
                    workers,
                    &PlacementPolicy::Bwap(BwapConfig::default()),
                    cfg,
                )
                .expect("scenario");
                let ft = run_coscheduled_with(
                    &m,
                    &spec,
                    workers,
                    &PlacementPolicy::FirstTouch,
                    SimConfig::default(),
                )
                .expect("scenario");
                [uw.exec_time_s / bw.exec_time_s, uw.exec_time_s / ft.exec_time_s]
            }
        })
        .collect();
    let rows = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Ablation: model components (SC, machine A, 2W): speedups vs uniform-workers",
        vec!["bwap speedup".into(), "first-touch speedup".into()],
    );
    for ((label, _), vals) in variants.iter().zip(rows) {
        t.push_row(label, vals.to_vec());
    }
    t
}

/// Ablation 4: hill-climb step-size sensitivity (SC machine A 1W).
pub fn ablation_step_size(quick: bool) -> ResultTable {
    let m = machines::machine_a();
    let workers = m.best_worker_set(1);
    let spec = streamcluster(quick);
    let steps = [0.05, 0.10, 0.20];
    let jobs: Vec<_> = steps
        .iter()
        .map(|&step| {
            let m = m.clone();
            let spec = spec.clone();
            move || {
                let mut cfg = BwapConfig::default();
                cfg.tuner.step = step;
                let r = run_coscheduled(&m, &spec, workers, &PlacementPolicy::Bwap(cfg))
                    .expect("scenario");
                [r.chosen_dwp.unwrap_or(0.0) * 100.0, r.exec_time_s]
            }
        })
        .collect();
    let rows = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Ablation: DWP step size (SC, machine A, 1W, co-scheduled)",
        vec!["chosen DWP %".into(), "exec time [s]".into()],
    );
    for (step, vals) in steps.iter().zip(rows) {
        t.push_row(&format!("x = {:.0}%", step * 100.0), vals.to_vec());
    }
    t
}

/// Ablation 5: migration-bandwidth sensitivity of the tuner (SC machine A
/// 1W): convergence cost at different kernel page-copy budgets.
pub fn ablation_migration_budget(quick: bool) -> ResultTable {
    let m = machines::machine_a();
    let workers = m.best_worker_set(1);
    let spec = streamcluster(quick);
    let budgets = [0.5, 2.0, 8.0];
    let jobs: Vec<_> = budgets
        .iter()
        .map(|&gbps| {
            let m = m.clone();
            let spec = spec.clone();
            move || {
                let cfg = SimConfig { migration_gbps: gbps, ..SimConfig::default() };
                let r = run_coscheduled_with(
                    &m,
                    &spec,
                    workers,
                    &PlacementPolicy::Bwap(BwapConfig::default()),
                    cfg,
                )
                .expect("scenario");
                [r.exec_time_s, r.migrated_pages as f64, r.chosen_dwp.unwrap_or(0.0) * 100.0]
            }
        })
        .collect();
    let rows = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Ablation: migration budget (SC, machine A, 1W, co-scheduled)",
        vec!["exec time [s]".into(), "pages migrated".into(), "chosen DWP %".into()],
    );
    t.precision = 1;
    for (gbps, vals) in budgets.iter().zip(rows) {
        t.push_row(&format!("{gbps} GB/s"), vals.to_vec());
    }
    t
}
