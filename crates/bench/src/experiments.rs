//! Implementations of every experiment in the paper's evaluation, shared
//! by the per-figure binaries and the all-in-one `paper` binary.
//!
//! Each function returns [`ResultTable`]s ready for printing and CSV
//! export. `quick` scales workloads down ~8x for fast smoke runs.

use crate::report::ResultTable;
use crate::runner::run_parallel;
use bwap::BwapConfig;
use bwap_fabric::probe_matrix;
use bwap_runtime::{
    dwp_sweep, run_coscheduled, run_coscheduled_with, run_standalone, sweep_worker_counts,
    PlacementPolicy, ProfileBook, RunResult,
};
use bwap_search::{hill_climb, HillClimbConfig, SimEvaluator};
use bwap_topology::{machines, MachineTopology};
use bwap_workloads::WorkloadSpec;
use numasim::{MemPolicy, SimConfig, Simulator};

/// Scale factor applied to workloads in quick mode.
const QUICK_FACTOR: f64 = 8.0;

fn suite(quick: bool) -> Vec<WorkloadSpec> {
    bwap_workloads::suite()
        .into_iter()
        .map(|w| if quick { w.scaled_down(QUICK_FACTOR) } else { w })
        .collect()
}

/// Fig. 1a: the machine-A node-to-node bandwidth matrix, measured by
/// single-flow probes, plus its deviation from the paper's published
/// matrix (zero by calibration).
pub fn fig1a() -> (bwap_topology::BwMatrix, f64) {
    let m = machines::machine_a();
    let probed = probe_matrix(&m);
    let err = probed.max_rel_error(&machines::fig1a_matrix()).expect("same dimensions");
    (probed, err)
}

/// Fig. 1b: first-touch / uniform-workers / uniform-all on machine A with
/// 2 worker nodes, normalized against the offline N-dimensional
/// hill-climbing search (top-10 average). Returns the normalized table
/// (values < 1 mean slower than the search's placement, as in the paper).
pub fn fig1b(quick: bool, search_iterations: usize) -> ResultTable {
    let m = machines::machine_a();
    let workers = m.best_worker_set(2);
    let apps = suite(quick);
    let jobs: Vec<_> = apps
        .iter()
        .map(|app| {
            let m = m.clone();
            let app = app.clone();
            move || {
                let policies = [
                    PlacementPolicy::FirstTouch,
                    PlacementPolicy::UniformWorkers,
                    PlacementPolicy::UniformAll,
                ];
                let mut times: Vec<f64> = policies
                    .iter()
                    .map(|p| run_standalone(&m, &app, workers, p).expect("scenario").exec_time_s)
                    .collect();
                // Offline search, starting from uniform-workers as in §II.
                let start = bwap::WeightDistribution::uniform_over(workers, m.node_count())
                    .expect("workers valid");
                let mut evaluator = SimEvaluator::new(m.clone(), app.clone(), workers);
                let cfg =
                    HillClimbConfig { iterations: search_iterations, ..HillClimbConfig::default() };
                let outcome = hill_climb(&mut evaluator, start, &cfg);
                times.push(outcome.top_k_mean_time);
                times
            }
        })
        .collect();
    let rows = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Fig. 1b: normalized execution time vs n-dim search (machine A, 2 workers)",
        vec![
            "first-touch".into(),
            "uniform-workers".into(),
            "uniform-all".into(),
            "n-dim-search".into(),
        ],
    );
    for (app, times) in apps.iter().zip(rows) {
        // Paper plots hillclimb/time: 1.0 = as good as the search.
        let reference = times[3];
        t.push_row(app.name, times.iter().map(|x| reference / x).collect());
    }
    t
}

/// Table I: memory-access characterization measured on machine B with one
/// full worker node. Columns: reads MB/s, writes MB/s, private %, shared %.
pub fn table1(quick: bool) -> ResultTable {
    let m = machines::machine_b();
    let workers = m.best_worker_set(1);
    let apps = suite(quick);
    let jobs: Vec<_> = apps
        .iter()
        .map(|app| {
            let m = m.clone();
            let app = app.clone();
            move || {
                let mut sim = Simulator::new(m.clone(), SimConfig::default());
                let pid = sim
                    .spawn(app.profile_for(&m), workers, None, MemPolicy::FirstTouch)
                    .expect("spawn");
                let t = sim.run_until_finished(pid, 3600.0).expect("finishes");
                let pc = sim.counters().process(pid);
                let reads: f64 = (0..m.node_count())
                    .flat_map(|s| (0..m.node_count()).map(move |d| (s, d)))
                    .map(|(s, d)| sim.counters().flow_read_bytes(pid, s, d))
                    .sum();
                let writes = pc.traffic_bytes - reads;
                [
                    reads / t / 1e6,
                    writes / t / 1e6,
                    app.private_frac * 100.0,
                    (1.0 - app.private_frac) * 100.0,
                ]
            }
        })
        .collect();
    let rows = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Table I: characterization (machine B, 1 full worker node)",
        vec!["reads MB/s".into(), "writes MB/s".into(), "private %".into(), "shared %".into()],
    );
    t.precision = 1;
    for (app, vals) in apps.iter().zip(rows) {
        t.push_row(app.name, vals.to_vec());
    }
    t
}

/// One co-scheduled panel: every policy x every benchmark at a fixed
/// worker count. Returns `(exec-time table, chosen DWP per app)`.
pub fn cosched_panel(
    machine: &MachineTopology,
    workers: usize,
    quick: bool,
) -> (ResultTable, Vec<(String, f64)>) {
    let worker_set = machine.best_worker_set(workers);
    let _ = ProfileBook::canonical_weights(machine, worker_set);
    let policies = PlacementPolicy::evaluation_set();
    let apps = suite(quick);
    let machine_ref = &machine;
    let jobs: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            policies.iter().map(move |policy| {
                let machine = (*machine_ref).clone();
                let app = app.clone();
                let policy = policy.clone();
                move || run_coscheduled(&machine, &app, worker_set, &policy).expect("scenario")
            })
        })
        .collect();
    let results = run_parallel(jobs);
    let mut table = ResultTable::new(
        &format!("exec time [s], {}, {} worker(s), co-scheduled", machine.name(), workers),
        policies.iter().map(|p| p.label()).collect(),
    );
    let mut dwps = Vec::new();
    for (ai, app) in apps.iter().enumerate() {
        let row: Vec<f64> =
            (0..policies.len()).map(|pi| results[ai * policies.len() + pi].exec_time_s).collect();
        table.push_row(app.name, row);
        if let Some(d) = results[ai * policies.len() + policies.len() - 1].chosen_dwp {
            dwps.push((app.name.to_string(), d));
        }
    }
    (table, dwps)
}

/// Fig. 3c/d: stand-alone scenario at each application's optimal worker
/// count. The optimum is determined per application under uniform-workers
/// (the incumbent policy), then every policy runs at that count. Returns
/// the exec-time table; row labels carry the chosen worker count.
pub fn standalone_optimal(machine: &MachineTopology, quick: bool) -> ResultTable {
    let candidates: Vec<usize> =
        (0..=machine.node_count().trailing_zeros()).map(|p| 1usize << p).collect();
    let policies = PlacementPolicy::evaluation_set();
    let apps = suite(quick);
    let machine_ref = &machine;
    let candidates_ref = &candidates;
    // Stage 1: optimal worker count per app (parallel over apps).
    let optima: Vec<usize> = run_parallel(
        apps.iter()
            .map(|app| {
                let machine = (*machine_ref).clone();
                let app = app.clone();
                move || {
                    let runs = sweep_worker_counts(
                        &machine,
                        &app,
                        &PlacementPolicy::UniformWorkers,
                        candidates_ref,
                    )
                    .expect("sweep");
                    runs.iter()
                        .min_by(|a, b| a.exec_time_s.partial_cmp(&b.exec_time_s).unwrap())
                        .expect("non-empty")
                        .workers
                }
            })
            .collect(),
    );
    // Stage 2: all policies at the per-app optimum.
    let jobs: Vec<_> = apps
        .iter()
        .zip(&optima)
        .flat_map(|(app, &k)| {
            policies.iter().map(move |policy| {
                let machine = (*machine_ref).clone();
                let app = app.clone();
                let policy = policy.clone();
                move || {
                    let workers = machine.best_worker_set(k);
                    run_standalone(&machine, &app, workers, &policy).expect("scenario")
                }
            })
        })
        .collect();
    let results: Vec<RunResult> = run_parallel(jobs);
    let mut table = ResultTable::new(
        &format!("exec time [s], {}, stand-alone at optimal workers", machine.name()),
        policies.iter().map(|p| p.label()).collect(),
    );
    for (ai, (app, &k)) in apps.iter().zip(&optima).enumerate() {
        let row: Vec<f64> =
            (0..policies.len()).map(|pi| results[ai * policies.len() + pi].exec_time_s).collect();
        table.push_row(&format!("{} {}W", app.name, k), row);
    }
    table
}

/// Table II: DWP chosen by the iterative search, co-scheduled scenario,
/// all worker counts on both machines. Values in percent.
pub fn table2(quick: bool) -> ResultTable {
    let configs: Vec<(MachineTopology, usize)> = vec![
        (machines::machine_a(), 1),
        (machines::machine_a(), 2),
        (machines::machine_a(), 4),
        (machines::machine_b(), 1),
        (machines::machine_b(), 2),
    ];
    let apps = suite(quick);
    let jobs: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            configs.iter().map(move |(machine, k)| {
                let machine = machine.clone();
                let app = app.clone();
                let k = *k;
                move || {
                    let workers = machine.best_worker_set(k);
                    let policy = PlacementPolicy::Bwap(BwapConfig::default());
                    run_coscheduled(&machine, &app, workers, &policy)
                        .expect("scenario")
                        .chosen_dwp
                        .expect("bwap reports dwp")
                        * 100.0
                }
            })
        })
        .collect();
    let values = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Table II: DWP chosen by BWAP's iterative search (co-scheduled), %",
        vec!["A 1W".into(), "A 2W".into(), "A 4W".into(), "B 1W".into(), "B 2W".into()],
    );
    t.precision = 1;
    for (ai, app) in apps.iter().enumerate() {
        t.push_row(app.name, values[ai * configs.len()..(ai + 1) * configs.len()].to_vec());
    }
    t
}

/// Fig. 4: static-DWP sweep for Streamcluster on machine A (1 and 2
/// workers, co-scheduled), plus the point the online tuner picks.
/// Returns one table per worker count with columns: exec time, stall
/// fraction (both normalized to the DWP=0 point as in the paper's
/// normalized axes), and the online tuner's `(dwp, exec time)`.
pub fn fig4(quick: bool) -> Vec<(ResultTable, f64, f64)> {
    let m = machines::machine_a();
    let spec = if quick {
        bwap_workloads::streamcluster().scaled_down(QUICK_FACTOR)
    } else {
        bwap_workloads::streamcluster()
    };
    let dwps: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let mut out = Vec::new();
    for k in [1usize, 2] {
        let workers = m.best_worker_set(k);
        let points = dwp_sweep(&m, &spec, workers, &dwps, true).expect("sweep");
        let online =
            run_coscheduled(&m, &spec, workers, &PlacementPolicy::Bwap(BwapConfig::default()))
                .expect("scenario");
        let (t0, s0) = (points[0].exec_time_s, points[0].stall_frac);
        let mut table = ResultTable::new(
            &format!("Fig. 4: SC on machine A, {k} worker(s): normalized vs DWP"),
            vec!["norm exec time".into(), "norm stall rate".into()],
        );
        for p in &points {
            table.push_row(
                &format!("DWP={:3.0}%", p.dwp * 100.0),
                vec![p.exec_time_s / t0, p.stall_frac / s0],
            );
        }
        out.push((table, online.chosen_dwp.unwrap_or(0.0), online.exec_time_s / t0));
    }
    out
}

/// Ablation 1: kernel-level vs user-level weighted interleaving, full
/// BWAP, co-scheduled 2 workers on both machines. Values: exec-time ratio
/// user/kernel (paper reports the gap is at most ~3%).
pub fn ablation_interleave_mode(quick: bool) -> ResultTable {
    let apps = suite(quick);
    let machines_ = [machines::machine_a(), machines::machine_b()];
    let jobs: Vec<_> = apps
        .iter()
        .flat_map(|app| {
            machines_.iter().map(move |m| {
                let m = m.clone();
                let app = app.clone();
                move || {
                    let workers = m.best_worker_set(2);
                    let kernel = run_coscheduled(
                        &m,
                        &app,
                        workers,
                        &PlacementPolicy::Bwap(BwapConfig::kernel_mode()),
                    )
                    .expect("scenario");
                    let user = run_coscheduled(
                        &m,
                        &app,
                        workers,
                        &PlacementPolicy::Bwap(BwapConfig::default()),
                    )
                    .expect("scenario");
                    user.exec_time_s / kernel.exec_time_s
                }
            })
        })
        .collect();
    let ratios = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Ablation: user-level (Algorithm 1) / kernel-level exec-time ratio",
        vec!["machine A".into(), "machine B".into()],
    );
    for (ai, app) in apps.iter().enumerate() {
        t.push_row(app.name, ratios[ai * 2..ai * 2 + 2].to_vec());
    }
    t
}

/// Ablation 2: online-tuner overhead and accuracy — BWAP with the online
/// search versus the *best* static DWP found by a full sweep (the paper's
/// accuracy/overhead analysis, §IV-B: tuner within one step of optimum,
/// <= 4 % overhead).
pub fn ablation_tuner_overhead(quick: bool) -> ResultTable {
    let m = machines::machine_a();
    let workers = m.best_worker_set(2);
    let apps = suite(quick);
    let dwps: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let jobs: Vec<_> = apps
        .iter()
        .map(|app| {
            let m = m.clone();
            let app = app.clone();
            let dwps = dwps.clone();
            move || {
                let online = run_coscheduled(
                    &m,
                    &app,
                    workers,
                    &PlacementPolicy::Bwap(BwapConfig::default()),
                )
                .expect("scenario");
                let sweep = bwap_runtime::dwp_sweep(&m, &app, workers, &dwps, true).expect("sweep");
                let best = sweep
                    .iter()
                    .min_by(|a, b| a.exec_time_s.partial_cmp(&b.exec_time_s).unwrap())
                    .expect("non-empty");
                [
                    online.exec_time_s,
                    best.exec_time_s,
                    (online.exec_time_s / best.exec_time_s - 1.0) * 100.0,
                    online.chosen_dwp.expect("bwap") * 100.0,
                    best.dwp * 100.0,
                ]
            }
        })
        .collect();
    let rows = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Ablation: DWP tuner vs best static (machine A, 2 workers, co-scheduled)",
        vec![
            "online [s]".into(),
            "best static [s]".into(),
            "overhead %".into(),
            "chosen DWP %".into(),
            "best DWP %".into(),
        ],
    );
    t.precision = 2;
    for (app, vals) in apps.iter().zip(rows) {
        t.push_row(app.name, vals.to_vec());
    }
    t
}

/// Ablation 3: model components — write amplification and loaded-latency
/// inflation switched off, effect on the headline comparison (bwap vs
/// uniform-workers speedup, SC machine A 2W co-scheduled).
pub fn ablation_model(quick: bool) -> ResultTable {
    let m = machines::machine_a();
    let workers = m.best_worker_set(2);
    let spec = if quick {
        bwap_workloads::streamcluster().scaled_down(QUICK_FACTOR)
    } else {
        bwap_workloads::streamcluster()
    };
    let variants: Vec<(&str, SimConfig)> = vec![
        ("full model", SimConfig::default()),
        (
            "no write amplification",
            SimConfig {
                ctrl_model: bwap_fabric::ControllerModel::symmetric(),
                ..SimConfig::default()
            },
        ),
        ("no loaded latency", SimConfig { latency_inflation: (0.0, 4.0), ..SimConfig::default() }),
    ];
    let jobs: Vec<_> = variants
        .iter()
        .map(|(_, cfg)| {
            let m = m.clone();
            let spec = spec.clone();
            let cfg = cfg.clone();
            move || {
                let uw = run_coscheduled_with(
                    &m,
                    &spec,
                    workers,
                    &PlacementPolicy::UniformWorkers,
                    cfg.clone(),
                )
                .expect("scenario");
                let bw = run_coscheduled_with(
                    &m,
                    &spec,
                    workers,
                    &PlacementPolicy::Bwap(BwapConfig::default()),
                    cfg,
                )
                .expect("scenario");
                let ft = run_coscheduled_with(
                    &m,
                    &spec,
                    workers,
                    &PlacementPolicy::FirstTouch,
                    SimConfig::default(),
                )
                .expect("scenario");
                [uw.exec_time_s / bw.exec_time_s, uw.exec_time_s / ft.exec_time_s]
            }
        })
        .collect();
    let rows = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Ablation: model components (SC, machine A, 2W): speedups vs uniform-workers",
        vec!["bwap speedup".into(), "first-touch speedup".into()],
    );
    for ((label, _), vals) in variants.iter().zip(rows) {
        t.push_row(label, vals.to_vec());
    }
    t
}

/// Ablation 4: hill-climb step-size sensitivity (SC machine A 1W).
pub fn ablation_step_size(quick: bool) -> ResultTable {
    let m = machines::machine_a();
    let workers = m.best_worker_set(1);
    let spec = if quick {
        bwap_workloads::streamcluster().scaled_down(QUICK_FACTOR)
    } else {
        bwap_workloads::streamcluster()
    };
    let steps = [0.05, 0.10, 0.20];
    let jobs: Vec<_> = steps
        .iter()
        .map(|&step| {
            let m = m.clone();
            let spec = spec.clone();
            move || {
                let mut cfg = BwapConfig::default();
                cfg.tuner.step = step;
                let r = run_coscheduled(&m, &spec, workers, &PlacementPolicy::Bwap(cfg))
                    .expect("scenario");
                [r.chosen_dwp.unwrap_or(0.0) * 100.0, r.exec_time_s]
            }
        })
        .collect();
    let rows = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Ablation: DWP step size (SC, machine A, 1W, co-scheduled)",
        vec!["chosen DWP %".into(), "exec time [s]".into()],
    );
    for (step, vals) in steps.iter().zip(rows) {
        t.push_row(&format!("x = {:.0}%", step * 100.0), vals.to_vec());
    }
    t
}

/// Ablation 5: migration-bandwidth sensitivity of the tuner (SC machine A
/// 1W): convergence cost at different kernel page-copy budgets.
pub fn ablation_migration_budget(quick: bool) -> ResultTable {
    let m = machines::machine_a();
    let workers = m.best_worker_set(1);
    let spec = if quick {
        bwap_workloads::streamcluster().scaled_down(QUICK_FACTOR)
    } else {
        bwap_workloads::streamcluster()
    };
    let budgets = [0.5, 2.0, 8.0];
    let jobs: Vec<_> = budgets
        .iter()
        .map(|&gbps| {
            let m = m.clone();
            let spec = spec.clone();
            move || {
                let cfg = SimConfig { migration_gbps: gbps, ..SimConfig::default() };
                let r = run_coscheduled_with(
                    &m,
                    &spec,
                    workers,
                    &PlacementPolicy::Bwap(BwapConfig::default()),
                    cfg,
                )
                .expect("scenario");
                [r.exec_time_s, r.migrated_pages as f64, r.chosen_dwp.unwrap_or(0.0) * 100.0]
            }
        })
        .collect();
    let rows = run_parallel(jobs);
    let mut t = ResultTable::new(
        "Ablation: migration budget (SC, machine A, 1W, co-scheduled)",
        vec!["exec time [s]".into(), "pages migrated".into(), "chosen DWP %".into()],
    );
    t.precision = 1;
    for (gbps, vals) in budgets.iter().zip(rows) {
        t.push_row(&format!("{gbps} GB/s"), vals.to_vec());
    }
    t
}
