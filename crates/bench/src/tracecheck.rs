//! Offline validator for the Chrome `trace_event` files the simulator
//! emits (see `docs/TRACING.md` for the event vocabulary).
//!
//! Perfetto and `chrome://tracing` are forgiving loaders — they render
//! almost anything without complaint — so CI needs a strict contract
//! check instead: [`validate`] parses a trace with the workspace's own
//! JSON parser ([`bwap_workloads::json`]) and verifies the structural
//! invariants the emitter promises:
//!
//! * object form with a `traceEvents` array;
//! * every event carries `name`, `cat`, `ph`, `ts`, `pid`, `tid`, with a
//!   known `ph` code and a non-negative integer `ts`;
//! * timestamps are non-decreasing in emission order (the engine stamps
//!   everything with the simulated clock, which only moves forward);
//! * `B`/`E` duration slices match up per track, innermost first;
//! * every `f` flow end pairs with an earlier `s` of the same `id`.
//!
//! Ring-buffer eviction can orphan the closing half of a slice or flow at
//! the very start of the retained window; those two checks are therefore
//! only enforced when the trace reports `dropped_events` = 0 (complete
//! traces — the common case for campaign cells — are matched exactly).

use bwap_workloads::json::Json;

/// Summary counts of a validated trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// `B`/`E` slice pairs (counted by `B`).
    pub slices: usize,
    /// Instant events.
    pub instants: usize,
    /// Counter samples.
    pub counters: usize,
    /// Completed `s`→`f` flows.
    pub flows: usize,
    /// Flows still open at the end of the trace.
    pub open_flows: usize,
    /// Ids of the flows still open at the end, in start order (the
    /// debugging handle for differential trace comparisons).
    pub open_flow_ids: Vec<u64>,
    /// Distinct tracks (Chrome `pid`s).
    pub tracks: usize,
    /// Events the emitting ring buffer evicted (`otherData`).
    pub dropped: u64,
}

fn field<'a>(ev: &'a Json, key: &str, idx: usize) -> Result<&'a Json, String> {
    ev.get(key).ok_or_else(|| format!("event {idx}: missing \"{key}\""))
}

fn num(ev: &Json, key: &str, idx: usize) -> Result<f64, String> {
    field(ev, key, idx)?.as_f64().ok_or_else(|| format!("event {idx}: \"{key}\" is not a number"))
}

/// Validate one trace document; returns its [`TraceStats`] or the first
/// contract violation found.
pub fn validate(text: &str) -> Result<TraceStats, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    if doc.as_object().is_none() {
        return Err("top level is not an object (array-form traces are not emitted here)".into());
    }
    let dropped: u64 = doc
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(Json::as_str)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let events =
        doc.get("traceEvents").and_then(Json::as_array).ok_or("missing \"traceEvents\" array")?;

    let mut stats = TraceStats { events: events.len(), dropped, ..TraceStats::default() };
    let mut last_ts = f64::NEG_INFINITY;
    let mut tracks: Vec<u64> = Vec::new();
    // Per-track stack of open slice names.
    let mut slice_stacks: Vec<(u64, Vec<String>)> = Vec::new();
    let mut open_flow_ids: Vec<u64> = Vec::new();
    // Flow ends with no matching start. In a complete trace these are a
    // contract violation; collected (not failed fast) so the error names
    // every orphaned id — the thing one actually needs when diffing the
    // traces of two engine modes.
    let mut orphan_flow_ids: Vec<u64> = Vec::new();

    for (idx, ev) in events.iter().enumerate() {
        if ev.as_object().is_none() {
            return Err(format!("event {idx}: not an object"));
        }
        let name = field(ev, "name", idx)?
            .as_str()
            .ok_or_else(|| format!("event {idx}: \"name\" is not a string"))?;
        field(ev, "cat", idx)?;
        field(ev, "tid", idx)?;
        let ph = field(ev, "ph", idx)?
            .as_str()
            .ok_or_else(|| format!("event {idx}: \"ph\" is not a string"))?;
        let ts = num(ev, "ts", idx)?;
        if ts < 0.0 || ts.fract() != 0.0 {
            return Err(format!("event {idx}: ts {ts} is not a non-negative integer"));
        }
        if ts < last_ts {
            return Err(format!("event {idx} ({name}): ts {ts} regresses below {last_ts}"));
        }
        last_ts = ts;
        let track = num(ev, "pid", idx)? as u64;
        if !tracks.contains(&track) {
            tracks.push(track);
        }
        let stack = match slice_stacks.iter_mut().find(|(t, _)| *t == track) {
            Some((_, s)) => s,
            None => {
                slice_stacks.push((track, Vec::new()));
                &mut slice_stacks.last_mut().expect("just pushed").1
            }
        };
        match ph {
            "B" => {
                stats.slices += 1;
                stack.push(name.to_string());
            }
            "E" => match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(format!(
                        "event {idx}: E \"{name}\" closes innermost open slice \"{open}\""
                    ));
                }
                None if dropped > 0 => {} // orphaned by ring eviction
                None => {
                    return Err(format!("event {idx}: E \"{name}\" with no open slice"));
                }
            },
            "i" => stats.instants += 1,
            "C" => {
                stats.counters += 1;
                if field(ev, "args", idx)?.as_object().map_or(true, |a| a.is_empty()) {
                    return Err(format!("event {idx}: counter \"{name}\" has no series"));
                }
            }
            "s" => {
                let id = num(ev, "id", idx)? as u64;
                if open_flow_ids.contains(&id) {
                    return Err(format!("event {idx}: flow id {id} started twice"));
                }
                open_flow_ids.push(id);
            }
            "f" => {
                let id = num(ev, "id", idx)? as u64;
                match open_flow_ids.iter().position(|&o| o == id) {
                    Some(pos) => {
                        open_flow_ids.swap_remove(pos);
                        stats.flows += 1;
                    }
                    // Ring eviction can drop an `s` while its `f`
                    // survives; only a trace reporting drops may claim
                    // that excuse.
                    None if dropped > 0 => stats.flows += 1,
                    None => orphan_flow_ids.push(id),
                }
            }
            "M" => {}
            other => return Err(format!("event {idx}: unknown ph {other:?}")),
        }
    }
    if !orphan_flow_ids.is_empty() {
        let ids: Vec<String> = orphan_flow_ids.iter().map(u64::to_string).collect();
        return Err(format!(
            "{} flow end(s) without a start (dropped_events = 0): orphaned flow ids [{}]",
            orphan_flow_ids.len(),
            ids.join(", ")
        ));
    }
    // Slices and flows still open at the end are legal (a trace is a
    // window onto the run), but a complete well-formed engine trace
    // closes every epoch it opens; report them for the caller to judge.
    stats.open_flows = open_flow_ids.len();
    stats.open_flow_ids = open_flow_ids;
    stats.tracks = tracks.len();
    Ok(stats)
}

/// Counts from a report-mode check ([`check_report`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReportCheck {
    /// Cells whose linked trace file validated.
    pub validated: usize,
    /// Cells legitimately without a trace: their result was replayed from
    /// the cell cache, so no simulation ran and no trace was emitted.
    pub cache_exempt: usize,
}

/// Report mode: walk a campaign report's cells and validate every linked
/// trace file. A cell without a `trace_path` is tolerated if (and only
/// if) `cache_hit` marks it as served from the cell cache — memoization
/// means a traced, cached campaign legally has trace files only for the
/// cells it actually executed. `read` maps a recorded trace path to its
/// contents (the binary passes the filesystem; tests pass a map).
pub fn check_report(
    report_text: &str,
    mut read: impl FnMut(&str) -> Result<String, String>,
) -> Result<ReportCheck, String> {
    let doc = Json::parse(report_text).map_err(|e| e.to_string())?;
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("not a campaign report (missing \"cells\" array)")?;
    let mut out = ReportCheck::default();
    for (i, cell) in cells.iter().enumerate() {
        let key = cell.get("key").and_then(Json::as_str).unwrap_or("?");
        match cell.get("trace_path").and_then(Json::as_str) {
            Some(path) => {
                let text = read(path).map_err(|e| format!("cell {key}: {e}"))?;
                validate(&text).map_err(|e| format!("cell {key}: {path}: {e}"))?;
                out.validated += 1;
            }
            None => {
                let cache_hit = cell.get("cache_hit").and_then(Json::as_bool).unwrap_or(false);
                if !cache_hit {
                    return Err(format!(
                        "cell {i} ({key}): no trace_path and not a cache hit — traced \
                         campaigns must trace every executed cell"
                    ));
                }
                out.cache_exempt += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numasim::{MemPolicy, SimConfig, Simulator, TraceSink};

    fn wrap(events: &str) -> String {
        format!(
            "{{\"displayTimeUnit\": \"ms\", \"otherData\": {{\"dropped_events\": \"0\"}}, \
             \"traceEvents\": [{events}]}}"
        )
    }

    fn ev(ph: &str, ts: u64, extra: &str) -> String {
        format!("{{\"name\": \"x\", \"cat\": \"sim\", \"ph\": \"{ph}\", \"ts\": {ts}, \"pid\": 0, \"tid\": 0{extra}}}")
    }

    #[test]
    fn accepts_a_real_engine_trace() {
        let m = bwap_topology::machines::machine_b();
        let mut sim = Simulator::new(m.clone(), SimConfig::default());
        sim.set_trace_sink(TraceSink::default());
        let spec = bwap_workloads::streamcluster().scaled_down(32.0);
        let pid = sim
            .spawn(spec.profile_for(&m), m.best_worker_set(2), None, MemPolicy::FirstTouch)
            .unwrap();
        sim.run_until_finished(pid, 600.0).unwrap();
        let sink = sim.take_trace_sink().unwrap();
        let stats = validate(&sink.to_chrome_json()).unwrap_or_else(|e| panic!("{e}"));
        assert!(stats.slices > 0, "epochs recorded");
        assert_eq!(stats.dropped, 0);
        assert!(stats.tracks >= 2, "engine + process tracks");
    }

    #[test]
    fn rejects_ts_regression() {
        let t = wrap(&[ev("i", 5, ", \"s\": \"t\""), ev("i", 4, ", \"s\": \"t\"")].join(", "));
        assert!(validate(&t).unwrap_err().contains("regresses"));
    }

    #[test]
    fn rejects_unbalanced_slices_and_unpaired_flows() {
        let t = wrap(&ev("E", 1, ""));
        assert!(validate(&t).unwrap_err().contains("no open slice"));
        let t = wrap(&ev("f", 1, ", \"id\": 3"));
        assert!(validate(&t).unwrap_err().contains("without a start"));
        // With drops reported, both orphans are tolerated.
        let tolerant = wrap(&[ev("E", 1, ""), ev("f", 2, ", \"id\": 3")].join(", "))
            .replace("\"dropped_events\": \"0\"", "\"dropped_events\": \"9\"");
        assert!(validate(&tolerant).is_ok());
    }

    #[test]
    fn rejects_missing_fields_and_unknown_ph() {
        assert!(validate(&wrap("{\"cat\": \"sim\"}")).unwrap_err().contains("missing \"name\""));
        assert!(validate(&wrap(&ev("Z", 0, ""))).unwrap_err().contains("unknown ph"));
        assert!(validate("[1, 2]").unwrap_err().contains("not an object"));
    }

    #[test]
    fn counts_completed_flows() {
        let t = wrap(
            &[ev("s", 1, ", \"id\": 0"), ev("s", 2, ", \"id\": 1"), ev("f", 3, ", \"id\": 0")]
                .join(", "),
        );
        let stats = validate(&t).unwrap();
        assert_eq!(stats.flows, 1);
        assert_eq!(stats.open_flows, 1);
        assert_eq!(stats.open_flow_ids, vec![1]);
    }

    #[test]
    fn report_mode_tolerates_cache_served_cells_only() {
        let trace = wrap(&[ev("B", 1, ""), ev("E", 2, "")].join(", "));
        let report = |cells: &str| {
            format!("{{\"schema_version\": 2, \"campaign\": \"t\", \"cells\": [{cells}]}}")
        };
        let read = |path: &str| -> Result<String, String> {
            if path == "traces/ok.json" {
                Ok(trace.clone())
            } else {
                Err(format!("no such trace {path}"))
            }
        };

        // Traced executed cell + cache-served untraced cell: both fine.
        let mixed = report(
            "{\"key\": \"a\", \"trace_path\": \"traces/ok.json\"}, \
             {\"key\": \"b\", \"cache_hit\": true}",
        );
        let out = check_report(&mixed, read).expect("mixed report passes");
        assert_eq!(out, ReportCheck { validated: 1, cache_exempt: 1 });

        // An untraced cell that did NOT come from the cache is a failure.
        let bad = report("{\"key\": \"c\"}");
        let err = check_report(&bad, read).unwrap_err();
        assert!(err.contains("not a cache hit"), "{err}");

        // A traced cell whose file is invalid fails with the cell key.
        let invalid = report("{\"key\": \"d\", \"trace_path\": \"traces/ok.json\"}");
        let err = check_report(&invalid, |_| Ok(wrap(&ev("E", 1, "")))).unwrap_err();
        assert!(err.contains("cell d"), "{err}");

        assert!(check_report("{}", read).unwrap_err().contains("cells"));
    }

    #[test]
    fn orphan_flow_errors_name_every_offending_id() {
        let t = wrap(
            &[
                ev("s", 1, ", \"id\": 5"),
                ev("f", 2, ", \"id\": 3"),
                ev("f", 3, ", \"id\": 5"),
                ev("f", 4, ", \"id\": 7"),
            ]
            .join(", "),
        );
        let err = validate(&t).unwrap_err();
        assert!(err.contains("without a start"), "{err}");
        assert!(err.contains("[3, 7]"), "every orphan id is named: {err}");
        assert!(!err.contains("5"), "the paired flow is not blamed: {err}");
    }
}
