//! Shared campaign-spec CLI vocabulary.
//!
//! The `campaign` binary and the remote `campaign_worker` binary must
//! agree *exactly* on how a flag vocabulary becomes a [`CampaignSpec`] —
//! a coordinator ships its spec to workers as the canonical argument
//! list ([`SpecArgs::to_args`]), and both sides rebuild the spec through
//! the same [`SpecArgs::build`]. Since cell descriptors are computed
//! from the built spec on both ends and verified byte-for-byte when
//! results come back, any drift between coordinator and worker builds is
//! detected, not silently merged.
//!
//! [`SpecArgs`] holds the axes in their raw textual form; parsing errors
//! are `Err(String)` so binaries decide between `usage()` and an RPC
//! error reply.

use bwap::BwapConfig;
use bwap_runtime::{
    AdaptiveConfig, CampaignSpec, DwpPoint, EngineMode, PlacementPolicy, ScenarioKind,
};
use bwap_topology::{machines, MachineTopology};
use bwap_workloads::{PhasedWorkload, WorkloadSpec};

/// The spec-defining subset of the campaign CLI, in textual form.
/// Executor knobs (threads, trace/cache/output directories, remote
/// workers) are deliberately *not* here: they never change results and
/// never travel to workers.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecArgs {
    /// `--name` (ad-hoc campaigns).
    pub name: String,
    /// `--machine` (`a`, `b`, `tiered`).
    pub machine: String,
    /// `--workloads` (comma list or `all`).
    pub workloads: String,
    /// `--phased` (comma list), empty = none.
    pub phased: String,
    /// `--phase-periods` (comma list of seconds), empty = native.
    pub phase_periods: String,
    /// `--policies` (comma list).
    pub policies: String,
    /// `--scenarios` (comma list).
    pub scenarios: String,
    /// `--workers` (comma list of counts).
    pub workers: String,
    /// `--dwps` (comma list of `online` / values).
    pub dwps: String,
    /// `--seed`.
    pub seed: u64,
    /// `--engine` (`stepped` / `event`).
    pub engine: String,
    /// `--probe`.
    pub probe: bool,
    /// `--quick` (scales workloads down ~8x).
    pub quick: bool,
    /// `--spec` — a canned experiment campaign; when set, all axis flags
    /// are ignored (the canned spec fixes them) except seed/engine/quick.
    pub spec: String,
}

impl Default for SpecArgs {
    fn default() -> Self {
        SpecArgs {
            name: "campaign".into(),
            machine: "b".into(),
            workloads: "SC".into(),
            phased: String::new(),
            phase_periods: String::new(),
            policies: "uniform-workers".into(),
            scenarios: "standalone".into(),
            workers: "1".into(),
            dwps: "online".into(),
            seed: 0,
            engine: "stepped".into(),
            probe: false,
            quick: false,
            spec: String::new(),
        }
    }
}

impl SpecArgs {
    /// Consume one spec-defining flag. Returns `Ok(true)` if the flag was
    /// recognized (value consumed), `Ok(false)` if it belongs to the
    /// caller (an executor knob), `Err` on a malformed value.
    pub fn apply(&mut self, flag: &str, value: &mut dyn FnMut() -> String) -> Result<bool, String> {
        match flag {
            "--name" => self.name = value(),
            "--machine" => self.machine = value(),
            "--workloads" => self.workloads = value(),
            "--phased" => self.phased = value(),
            "--phase-periods" => self.phase_periods = value(),
            "--policies" => self.policies = value(),
            "--scenarios" => self.scenarios = value(),
            "--workers" => self.workers = value(),
            "--dwps" => self.dwps = value(),
            "--seed" => {
                self.seed = value().parse().map_err(|_| "bad --seed (expected u64)".to_string())?
            }
            "--engine" => self.engine = value(),
            "--spec" => self.spec = value(),
            "--probe" => self.probe = true,
            "--quick" => self.quick = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The canonical argument vector rebuilding this spec — what the
    /// coordinator ships to remote workers. `parse` of the result is
    /// `self` exactly.
    pub fn to_args(&self) -> Vec<String> {
        let mut a = Vec::new();
        let mut push = |flag: &str, v: &str| {
            a.push(flag.to_string());
            a.push(v.to_string());
        };
        if !self.spec.is_empty() {
            push("--spec", &self.spec);
        } else {
            push("--name", &self.name);
            push("--machine", &self.machine);
            push("--workloads", &self.workloads);
            if !self.phased.is_empty() {
                push("--phased", &self.phased);
            }
            if !self.phase_periods.is_empty() {
                push("--phase-periods", &self.phase_periods);
            }
            push("--policies", &self.policies);
            push("--scenarios", &self.scenarios);
            push("--workers", &self.workers);
            push("--dwps", &self.dwps);
        }
        push("--seed", &self.seed.to_string());
        push("--engine", &self.engine);
        if self.probe {
            a.push("--probe".into());
        }
        if self.quick {
            a.push("--quick".into());
        }
        a
    }

    /// Parse a pure spec argument vector (no executor knobs allowed) —
    /// the worker side of [`SpecArgs::to_args`].
    pub fn parse(args: &[String]) -> Result<SpecArgs, String> {
        let mut sa = SpecArgs::default();
        let mut i = 0usize;
        while i < args.len() {
            let flag = args[i].clone();
            i += 1;
            let mut missing = false;
            {
                let mut value = || {
                    if i < args.len() {
                        i += 1;
                        args[i - 1].clone()
                    } else {
                        missing = true;
                        String::new()
                    }
                };
                if !sa.apply(&flag, &mut value)? {
                    return Err(format!("unknown spec flag {flag:?}"));
                }
            }
            if missing {
                return Err(format!("{flag} needs a value"));
            }
        }
        Ok(sa)
    }

    /// Build the [`CampaignSpec`] these arguments describe.
    pub fn build(&self) -> Result<CampaignSpec, String> {
        let engine = parse_engine(&self.engine)?;
        if !self.spec.is_empty() {
            return Ok(canned_spec(&self.spec, self.quick)?.seed(self.seed).engine_mode(engine));
        }
        let phase_periods: Vec<f64> = if self.phase_periods.is_empty() {
            Vec::new()
        } else {
            self.phase_periods
                .split(',')
                .map(|t| match t.parse::<f64>() {
                    Ok(v) if v > 0.0 && v.is_finite() => Ok(v),
                    _ => Err(format!("bad phase period {t:?} (expected positive seconds)")),
                })
                .collect::<Result<_, String>>()?
        };
        let workers: Vec<usize> = self
            .workers
            .split(',')
            .map(|k| k.parse().map_err(|_| format!("bad worker count {k:?}")))
            .collect::<Result<_, String>>()?;
        Ok(CampaignSpec::new(&self.name, parse_machine(&self.machine)?)
            .workloads(parse_workloads(&self.workloads, self.quick)?)
            .phased_workloads(if self.phased.is_empty() {
                Vec::new()
            } else {
                parse_phased(&self.phased, self.quick)?
            })
            .phase_periods(phase_periods)
            .policies(self.policies.split(',').map(parse_policy).collect::<Result<_, String>>()?)
            .scenarios(
                self.scenarios.split(',').map(parse_scenario).collect::<Result<_, String>>()?,
            )
            .worker_counts(workers)
            .dwp_grid(self.dwps.split(',').map(parse_dwp).collect::<Result<_, String>>()?)
            .seed(self.seed)
            .engine_mode(engine)
            .probe_bandwidth(self.probe))
    }
}

/// Machine flag values (`a`, `b`, `tiered` and long forms).
pub fn parse_machine(s: &str) -> Result<MachineTopology, String> {
    match s {
        "a" | "A" | "machine-a" => Ok(machines::machine_a()),
        "b" | "B" | "machine-b" => Ok(machines::machine_b()),
        "tiered" | "t" | "T" | "machine-tiered" => Ok(machines::machine_tiered()),
        other => Err(format!("unknown machine {other:?} (expected a, b or tiered)")),
    }
}

/// A canned experiment campaign by name.
pub fn canned_spec(name: &str, quick: bool) -> Result<CampaignSpec, String> {
    use crate::experiments;
    match name {
        "fig1a" => Ok(experiments::fig1a_spec()),
        "fig4" => Ok(experiments::fig4_spec(quick)),
        "table1" => Ok(experiments::table1_spec(quick)),
        "fig_tiered" => Ok(experiments::fig_tiered_spec(quick)),
        "fig_phases" => Ok(experiments::fig_phases_spec(quick)),
        "dwp_dedup" => Ok(experiments::dwp_dedup_spec(quick)),
        other => Err(format!("unknown spec {other:?}")),
    }
}

/// Workload list (`all` or comma names), with the `--quick` scaling.
pub fn parse_workloads(s: &str, quick: bool) -> Result<Vec<WorkloadSpec>, String> {
    let base: Vec<WorkloadSpec> = if s == "all" {
        bwap_workloads::suite()
    } else {
        s.split(',')
            .map(|name| {
                bwap_workloads::by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))
            })
            .collect::<Result<_, String>>()?
    };
    Ok(if quick { base.into_iter().map(|w| w.scaled_down(8.0)).collect() } else { base })
}

/// One policy label.
pub fn parse_policy(s: &str) -> Result<PlacementPolicy, String> {
    match s {
        "first-touch" => Ok(PlacementPolicy::FirstTouch),
        "uniform-workers" => Ok(PlacementPolicy::UniformWorkers),
        "uniform-all" => Ok(PlacementPolicy::UniformAll),
        "autonuma" => Ok(PlacementPolicy::AutoNuma),
        "bwap" => Ok(PlacementPolicy::Bwap(BwapConfig::default())),
        "bwap-uniform" => Ok(PlacementPolicy::Bwap(BwapConfig::bwap_uniform())),
        "bwap-adaptive" => Ok(PlacementPolicy::AdaptiveBwap(AdaptiveConfig::default())),
        other => Err(format!("unknown policy {other:?}")),
    }
}

/// Canned phased workloads (comma names), with the `--quick` scaling.
pub fn parse_phased(s: &str, quick: bool) -> Result<Vec<PhasedWorkload>, String> {
    s.split(',')
        .map(|name| {
            let w = bwap_workloads::phased_by_name(name)
                .ok_or_else(|| format!("unknown phased workload {name:?}"))?;
            Ok(if quick { w.scaled_down(8.0) } else { w })
        })
        .collect()
}

/// One scenario label.
pub fn parse_scenario(s: &str) -> Result<ScenarioKind, String> {
    match s {
        "standalone" => Ok(ScenarioKind::Standalone),
        "coscheduled" | "cosched" => Ok(ScenarioKind::Coscheduled),
        other => Err(format!("unknown scenario {other:?}")),
    }
}

/// Engine-mode flag values.
pub fn parse_engine(s: &str) -> Result<EngineMode, String> {
    match s {
        "stepped" => Ok(EngineMode::Stepped),
        "event" | "event-driven" => Ok(EngineMode::EventDriven),
        other => Err(format!("unknown engine {other:?} (expected stepped or event)")),
    }
}

/// One DWP-grid point (`online` or a value in `[0, 1]`).
pub fn parse_dwp(s: &str) -> Result<DwpPoint, String> {
    if s == "online" || s == "as-configured" {
        return Ok(DwpPoint::AsConfigured);
    }
    match s.parse::<f64>() {
        Ok(d) if (0.0..=1.0).contains(&d) => Ok(DwpPoint::Static(d)),
        _ => Err(format!("bad DWP {s:?} (expected `online` or a value in [0, 1])")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_args_round_trips() {
        let sa = SpecArgs {
            workloads: "SC,OC".into(),
            policies: "bwap,first-touch".into(),
            dwps: "online,0.5".into(),
            seed: 42,
            quick: true,
            ..Default::default()
        };
        let back = SpecArgs::parse(&sa.to_args()).expect("round trip");
        assert_eq!(sa, back);
        // Canned specs round-trip too, dropping the ignored axis flags.
        let canned = SpecArgs { spec: "fig_phases".into(), quick: true, ..Default::default() };
        let back = SpecArgs::parse(&canned.to_args()).expect("round trip");
        assert_eq!(back.spec, "fig_phases");
        assert!(back.quick);
    }

    #[test]
    fn built_specs_agree_between_coordinator_and_worker() {
        let sa = SpecArgs {
            workloads: "SC".into(),
            policies: "bwap".into(),
            workers: "1,2".into(),
            quick: true,
            ..Default::default()
        };
        let a = sa.build().expect("build");
        let b = SpecArgs::parse(&sa.to_args()).expect("parse").build().expect("rebuild");
        let (ca, cb) = (a.cells(), b.cells());
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.seed, y.seed);
            assert_eq!(
                bwap_runtime::cell_descriptor(&a, x).text(),
                bwap_runtime::cell_descriptor(&b, y).text()
            );
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(parse_machine("z").is_err());
        assert!(parse_policy("nope").is_err());
        assert!(parse_dwp("1.5").is_err());
        assert!(parse_engine("warp").is_err());
        assert!(SpecArgs::parse(&["--bogus".to_string()]).is_err());
        assert!(SpecArgs::parse(&["--seed".to_string()]).is_err());
        let sa = SpecArgs { workloads: "NOPE".into(), ..Default::default() };
        assert!(sa.build().is_err());
    }
}
