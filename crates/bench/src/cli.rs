//! Shared campaign-spec CLI vocabulary.
//!
//! The `campaign` binary and the remote `campaign_worker` binary must
//! agree *exactly* on how a flag vocabulary becomes a [`CampaignSpec`] —
//! a coordinator ships its spec to workers as the canonical argument
//! list ([`SpecArgs::to_args`]), and both sides rebuild the spec through
//! the same [`SpecArgs::build`]. Since cell descriptors are computed
//! from the built spec on both ends and verified byte-for-byte when
//! results come back, any drift between coordinator and worker builds is
//! detected, not silently merged.
//!
//! [`SpecArgs`] holds the axes in their raw textual form; parsing errors
//! are `Err(String)` so binaries decide between `usage()` and an RPC
//! error reply.

use bwap::BwapConfig;
use bwap_runtime::{
    AdaptiveConfig, CampaignSpec, DwpPoint, EngineMode, FleetAxis, MachineKind, PlacementPolicy,
    ScenarioKind, SchedulerKind,
};
use bwap_topology::{machines, MachineTopology};
use bwap_workloads::{PhasedWorkload, WorkloadSpec};

/// The spec-defining subset of the campaign CLI, in textual form.
/// Executor knobs (threads, trace/cache/output directories, remote
/// workers) are deliberately *not* here: they never change results and
/// never travel to workers.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecArgs {
    /// `--name` (ad-hoc campaigns).
    pub name: String,
    /// `--machine` (`a`, `b`, `tiered`).
    pub machine: String,
    /// `--workloads` (comma list or `all`).
    pub workloads: String,
    /// `--phased` (comma list), empty = none.
    pub phased: String,
    /// `--phase-periods` (comma list of seconds), empty = native.
    pub phase_periods: String,
    /// `--policies` (comma list).
    pub policies: String,
    /// `--scenarios` (comma list).
    pub scenarios: String,
    /// `--workers` (comma list of counts).
    pub workers: String,
    /// `--dwps` (comma list of `online` / values).
    pub dwps: String,
    /// `--fleet` (comma list of machine kinds, e.g. `b,tiered`), empty =
    /// no fleet axis. The plain workload axis doubles as the job catalog.
    pub fleet: String,
    /// `--schedulers` (comma list), empty = every scheduler. Requires
    /// `--fleet`.
    pub schedulers: String,
    /// `--arrival-rates` (comma list of jobs/s), empty = `1`. Requires
    /// `--fleet`.
    pub arrival_rates: String,
    /// `--fleet-jobs` (jobs per Poisson stream), empty = `8`. Requires
    /// `--fleet`.
    pub fleet_jobs: String,
    /// `--seed`.
    pub seed: u64,
    /// `--engine` (`stepped` / `event`).
    pub engine: String,
    /// `--probe`.
    pub probe: bool,
    /// `--quick` (scales workloads down ~8x).
    pub quick: bool,
    /// `--spec` — a canned experiment campaign; when set, all axis flags
    /// are ignored (the canned spec fixes them) except seed/engine/quick.
    pub spec: String,
}

impl Default for SpecArgs {
    fn default() -> Self {
        SpecArgs {
            name: "campaign".into(),
            machine: "b".into(),
            workloads: "SC".into(),
            phased: String::new(),
            phase_periods: String::new(),
            policies: "uniform-workers".into(),
            scenarios: "standalone".into(),
            workers: "1".into(),
            dwps: "online".into(),
            fleet: String::new(),
            schedulers: String::new(),
            arrival_rates: String::new(),
            fleet_jobs: String::new(),
            seed: 0,
            engine: "stepped".into(),
            probe: false,
            quick: false,
            spec: String::new(),
        }
    }
}

impl SpecArgs {
    /// Consume one spec-defining flag. Returns `Ok(true)` if the flag was
    /// recognized (value consumed), `Ok(false)` if it belongs to the
    /// caller (an executor knob), `Err` on a malformed value.
    pub fn apply(&mut self, flag: &str, value: &mut dyn FnMut() -> String) -> Result<bool, String> {
        match flag {
            "--name" => self.name = value(),
            "--machine" => self.machine = value(),
            "--workloads" => self.workloads = value(),
            "--phased" => self.phased = value(),
            "--phase-periods" => self.phase_periods = value(),
            "--policies" => self.policies = value(),
            "--scenarios" => self.scenarios = value(),
            "--workers" => self.workers = value(),
            "--dwps" => self.dwps = value(),
            "--fleet" => self.fleet = value(),
            "--schedulers" => self.schedulers = value(),
            "--arrival-rates" => self.arrival_rates = value(),
            "--fleet-jobs" => self.fleet_jobs = value(),
            "--seed" => {
                self.seed = value().parse().map_err(|_| "bad --seed (expected u64)".to_string())?
            }
            "--engine" => self.engine = value(),
            "--spec" => self.spec = value(),
            "--probe" => self.probe = true,
            "--quick" => self.quick = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The canonical argument vector rebuilding this spec — what the
    /// coordinator ships to remote workers. `parse` of the result is
    /// `self` exactly.
    pub fn to_args(&self) -> Vec<String> {
        let mut a = Vec::new();
        let mut push = |flag: &str, v: &str| {
            a.push(flag.to_string());
            a.push(v.to_string());
        };
        if !self.spec.is_empty() {
            push("--spec", &self.spec);
        } else {
            push("--name", &self.name);
            push("--machine", &self.machine);
            push("--workloads", &self.workloads);
            if !self.phased.is_empty() {
                push("--phased", &self.phased);
            }
            if !self.phase_periods.is_empty() {
                push("--phase-periods", &self.phase_periods);
            }
            push("--policies", &self.policies);
            push("--scenarios", &self.scenarios);
            push("--workers", &self.workers);
            push("--dwps", &self.dwps);
            if !self.fleet.is_empty() {
                push("--fleet", &self.fleet);
            }
            if !self.schedulers.is_empty() {
                push("--schedulers", &self.schedulers);
            }
            if !self.arrival_rates.is_empty() {
                push("--arrival-rates", &self.arrival_rates);
            }
            if !self.fleet_jobs.is_empty() {
                push("--fleet-jobs", &self.fleet_jobs);
            }
        }
        push("--seed", &self.seed.to_string());
        push("--engine", &self.engine);
        if self.probe {
            a.push("--probe".into());
        }
        if self.quick {
            a.push("--quick".into());
        }
        a
    }

    /// Parse a pure spec argument vector (no executor knobs allowed) —
    /// the worker side of [`SpecArgs::to_args`].
    pub fn parse(args: &[String]) -> Result<SpecArgs, String> {
        let mut sa = SpecArgs::default();
        let mut i = 0usize;
        while i < args.len() {
            let flag = args[i].clone();
            i += 1;
            let mut missing = false;
            {
                let mut value = || {
                    if i < args.len() {
                        i += 1;
                        args[i - 1].clone()
                    } else {
                        missing = true;
                        String::new()
                    }
                };
                if !sa.apply(&flag, &mut value)? {
                    return Err(format!("unknown spec flag {flag:?}"));
                }
            }
            if missing {
                return Err(format!("{flag} needs a value"));
            }
        }
        Ok(sa)
    }

    /// Build the [`CampaignSpec`] these arguments describe.
    pub fn build(&self) -> Result<CampaignSpec, String> {
        let engine = parse_engine(&self.engine)?;
        if !self.spec.is_empty() {
            return Ok(canned_spec(&self.spec, self.quick)?.seed(self.seed).engine_mode(engine));
        }
        let phase_periods: Vec<f64> = if self.phase_periods.is_empty() {
            Vec::new()
        } else {
            self.phase_periods
                .split(',')
                .map(|t| match t.parse::<f64>() {
                    Ok(v) if v > 0.0 && v.is_finite() => Ok(v),
                    _ => Err(format!("bad phase period {t:?} (expected positive seconds)")),
                })
                .collect::<Result<_, String>>()?
        };
        let workers: Vec<usize> = self
            .workers
            .split(',')
            .map(|k| k.parse().map_err(|_| format!("bad worker count {k:?}")))
            .collect::<Result<_, String>>()?;
        let fleet = self.parse_fleet_axis()?;
        let mut spec = CampaignSpec::new(&self.name, parse_machine(&self.machine)?)
            .workloads(parse_workloads(&self.workloads, self.quick)?)
            .phased_workloads(if self.phased.is_empty() {
                Vec::new()
            } else {
                parse_phased(&self.phased, self.quick)?
            })
            .phase_periods(phase_periods)
            .policies(self.policies.split(',').map(parse_policy).collect::<Result<_, String>>()?)
            .scenarios(
                self.scenarios.split(',').map(parse_scenario).collect::<Result<_, String>>()?,
            )
            .worker_counts(workers)
            .dwp_grid(self.dwps.split(',').map(parse_dwp).collect::<Result<_, String>>()?)
            .seed(self.seed)
            .engine_mode(engine)
            .probe_bandwidth(self.probe);
        if let Some(axis) = fleet {
            spec = spec.fleet(axis);
        }
        Ok(spec)
    }

    /// The fleet axis the fleet flags describe, if any. Fleet-only flags
    /// without `--fleet` are an error (they would be silently ignored).
    fn parse_fleet_axis(&self) -> Result<Option<FleetAxis>, String> {
        if self.fleet.is_empty() {
            for (flag, v) in [
                ("--schedulers", &self.schedulers),
                ("--arrival-rates", &self.arrival_rates),
                ("--fleet-jobs", &self.fleet_jobs),
            ] {
                if !v.is_empty() {
                    return Err(format!("{flag} requires --fleet"));
                }
            }
            return Ok(None);
        }
        let machines: Vec<MachineKind> = self
            .fleet
            .split(',')
            .map(|m| {
                MachineKind::parse(m)
                    .ok_or_else(|| format!("unknown fleet machine {m:?} (expected b or tiered)"))
            })
            .collect::<Result<_, String>>()?;
        let schedulers: Vec<SchedulerKind> = if self.schedulers.is_empty() {
            SchedulerKind::all().to_vec()
        } else {
            self.schedulers
                .split(',')
                .map(|s| SchedulerKind::parse(s).ok_or_else(|| format!("unknown scheduler {s:?}")))
                .collect::<Result<_, String>>()?
        };
        let arrival_rates: Vec<f64> = if self.arrival_rates.is_empty() {
            vec![1.0]
        } else {
            self.arrival_rates
                .split(',')
                .map(|r| match r.parse::<f64>() {
                    Ok(v) if v > 0.0 && v.is_finite() => Ok(v),
                    _ => Err(format!("bad arrival rate {r:?} (expected positive jobs/s)")),
                })
                .collect::<Result<_, String>>()?
        };
        let jobs: usize = if self.fleet_jobs.is_empty() {
            8
        } else {
            match self.fleet_jobs.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    return Err(format!(
                        "bad --fleet-jobs {:?} (expected a positive count)",
                        self.fleet_jobs
                    ))
                }
            }
        };
        Ok(Some(FleetAxis { machines, schedulers, arrival_rates, jobs, trace: None }))
    }
}

/// Machine flag values (`a`, `b`, `tiered` and long forms).
pub fn parse_machine(s: &str) -> Result<MachineTopology, String> {
    match s {
        "a" | "A" | "machine-a" => Ok(machines::machine_a()),
        "b" | "B" | "machine-b" => Ok(machines::machine_b()),
        "tiered" | "t" | "T" | "machine-tiered" => Ok(machines::machine_tiered()),
        other => Err(format!("unknown machine {other:?} (expected a, b or tiered)")),
    }
}

/// A canned experiment campaign by name.
pub fn canned_spec(name: &str, quick: bool) -> Result<CampaignSpec, String> {
    use crate::experiments;
    match name {
        "fig1a" => Ok(experiments::fig1a_spec()),
        "fig4" => Ok(experiments::fig4_spec(quick)),
        "table1" => Ok(experiments::table1_spec(quick)),
        "fig_tiered" => Ok(experiments::fig_tiered_spec(quick)),
        "fig_phases" => Ok(experiments::fig_phases_spec(quick)),
        "fig_fleet" => Ok(experiments::fig_fleet_spec(quick)),
        "dwp_dedup" => Ok(experiments::dwp_dedup_spec(quick)),
        other => Err(format!("unknown spec {other:?}")),
    }
}

/// Workload list (`all` or comma names), with the `--quick` scaling.
pub fn parse_workloads(s: &str, quick: bool) -> Result<Vec<WorkloadSpec>, String> {
    let base: Vec<WorkloadSpec> = if s == "all" {
        bwap_workloads::suite()
    } else {
        s.split(',')
            .map(|name| {
                bwap_workloads::by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))
            })
            .collect::<Result<_, String>>()?
    };
    Ok(if quick { base.into_iter().map(|w| w.scaled_down(8.0)).collect() } else { base })
}

/// One policy label.
pub fn parse_policy(s: &str) -> Result<PlacementPolicy, String> {
    match s {
        "first-touch" => Ok(PlacementPolicy::FirstTouch),
        "uniform-workers" => Ok(PlacementPolicy::UniformWorkers),
        "uniform-all" => Ok(PlacementPolicy::UniformAll),
        "autonuma" => Ok(PlacementPolicy::AutoNuma),
        "bwap" => Ok(PlacementPolicy::Bwap(BwapConfig::default())),
        "bwap-uniform" => Ok(PlacementPolicy::Bwap(BwapConfig::bwap_uniform())),
        "bwap-adaptive" => Ok(PlacementPolicy::AdaptiveBwap(AdaptiveConfig::default())),
        other => Err(format!("unknown policy {other:?}")),
    }
}

/// Canned phased workloads (comma names), with the `--quick` scaling.
pub fn parse_phased(s: &str, quick: bool) -> Result<Vec<PhasedWorkload>, String> {
    s.split(',')
        .map(|name| {
            let w = bwap_workloads::phased_by_name(name)
                .ok_or_else(|| format!("unknown phased workload {name:?}"))?;
            Ok(if quick { w.scaled_down(8.0) } else { w })
        })
        .collect()
}

/// One scenario label.
pub fn parse_scenario(s: &str) -> Result<ScenarioKind, String> {
    match s {
        "standalone" => Ok(ScenarioKind::Standalone),
        "coscheduled" | "cosched" => Ok(ScenarioKind::Coscheduled),
        other => Err(format!("unknown scenario {other:?}")),
    }
}

/// Engine-mode flag values.
pub fn parse_engine(s: &str) -> Result<EngineMode, String> {
    match s {
        "stepped" => Ok(EngineMode::Stepped),
        "event" | "event-driven" => Ok(EngineMode::EventDriven),
        other => Err(format!("unknown engine {other:?} (expected stepped or event)")),
    }
}

/// One DWP-grid point (`online` or a value in `[0, 1]`).
pub fn parse_dwp(s: &str) -> Result<DwpPoint, String> {
    if s == "online" || s == "as-configured" {
        return Ok(DwpPoint::AsConfigured);
    }
    match s.parse::<f64>() {
        Ok(d) if (0.0..=1.0).contains(&d) => Ok(DwpPoint::Static(d)),
        _ => Err(format!("bad DWP {s:?} (expected `online` or a value in [0, 1])")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_args_round_trips() {
        let sa = SpecArgs {
            workloads: "SC,OC".into(),
            policies: "bwap,first-touch".into(),
            dwps: "online,0.5".into(),
            seed: 42,
            quick: true,
            ..Default::default()
        };
        let back = SpecArgs::parse(&sa.to_args()).expect("round trip");
        assert_eq!(sa, back);
        // Canned specs round-trip too, dropping the ignored axis flags.
        let canned = SpecArgs { spec: "fig_phases".into(), quick: true, ..Default::default() };
        let back = SpecArgs::parse(&canned.to_args()).expect("round trip");
        assert_eq!(back.spec, "fig_phases");
        assert!(back.quick);
    }

    /// Every spec-defining flag added since the worker protocol landed —
    /// `--engine`, the phase axes, and the whole fleet vocabulary — must
    /// survive the coordinator-to-worker round trip verbatim: `parse`
    /// of `to_args` is identity on the raw textual form.
    #[test]
    fn to_args_round_trips_every_flag_since_the_worker_protocol() {
        let sa = SpecArgs {
            name: "everything".into(),
            machine: "tiered".into(),
            workloads: "SC,OC".into(),
            phased: "phased-stream".into(),
            phase_periods: "0.5,2".into(),
            policies: "bwap,first-touch".into(),
            scenarios: "standalone,coscheduled".into(),
            workers: "1,2".into(),
            dwps: "online,0.25".into(),
            fleet: "b,tiered".into(),
            schedulers: "round-robin,tier-aware".into(),
            arrival_rates: "0.5,2".into(),
            fleet_jobs: "6".into(),
            seed: 1234,
            engine: "event".into(),
            probe: true,
            quick: true,
            spec: String::new(),
        };
        let back = SpecArgs::parse(&sa.to_args()).expect("round trip");
        assert_eq!(sa, back);
        // And a second hop is a fixpoint: to_args is canonical.
        assert_eq!(sa.to_args(), back.to_args());
        // Empty fleet flags stay absent from the canonical vector rather
        // than round-tripping as empty strings.
        let plain = SpecArgs::default();
        let args = plain.to_args();
        for fleet_flag in ["--fleet", "--schedulers", "--arrival-rates", "--fleet-jobs"] {
            assert!(!args.contains(&fleet_flag.to_string()), "{fleet_flag} leaked into {args:?}");
        }
        assert_eq!(SpecArgs::parse(&args).expect("round trip"), plain);
    }

    /// Executor knobs never travel to workers: the pure spec vocabulary
    /// rejects them outright instead of silently absorbing them.
    #[test]
    fn executor_knobs_are_rejected_by_the_spec_vocabulary() {
        for knob in [
            "--threads",
            "--out",
            "--trace",
            "--cache-dir",
            "--dedup",
            "--remote",
            "--deterministic",
            "--faults",
        ] {
            let err = SpecArgs::parse(&[knob.to_string(), "x".to_string()])
                .expect_err("executor knob must not parse as spec");
            assert!(err.contains("unknown spec flag"), "{knob}: {err}");
        }
    }

    /// The fleet axis flags: defaults, validation, and the guard against
    /// fleet-only flags without `--fleet`.
    #[test]
    fn fleet_flags_build_validate_and_default() {
        // Defaults: every scheduler, one job/s, eight jobs.
        let sa = SpecArgs { fleet: "b".into(), quick: true, ..Default::default() };
        let spec = sa.build().expect("fleet spec");
        let axis = spec.fleet.as_ref().expect("axis present");
        assert_eq!(axis.machines, vec![MachineKind::B]);
        assert_eq!(axis.schedulers, SchedulerKind::all().to_vec());
        assert_eq!(axis.arrival_rates, vec![1.0]);
        assert_eq!(axis.jobs, 8);
        // Explicit values parse into the axis.
        let sa = SpecArgs {
            fleet: "b,tiered".into(),
            schedulers: "least-loaded".into(),
            arrival_rates: "0.25,4".into(),
            fleet_jobs: "3".into(),
            quick: true,
            ..Default::default()
        };
        let axis = sa.build().expect("fleet spec").fleet.expect("axis");
        assert_eq!(axis.machines, vec![MachineKind::B, MachineKind::Tiered]);
        assert_eq!(axis.schedulers, vec![SchedulerKind::LeastLoaded]);
        assert_eq!(axis.arrival_rates, vec![0.25, 4.0]);
        assert_eq!(axis.jobs, 3);
        // Fleet-dependent flags without --fleet are errors, not no-ops.
        for (field, value) in
            [("schedulers", "round-robin"), ("arrival_rates", "1"), ("fleet_jobs", "4")]
        {
            let mut sa = SpecArgs::default();
            match field {
                "schedulers" => sa.schedulers = value.into(),
                "arrival_rates" => sa.arrival_rates = value.into(),
                _ => sa.fleet_jobs = value.into(),
            }
            let err = sa.build().expect_err("fleet-only flag without --fleet");
            assert!(err.contains("requires --fleet"), "{field}: {err}");
        }
        // Malformed axis values are typed errors.
        for (sa, needle) in [
            (SpecArgs { fleet: "z".into(), ..Default::default() }, "unknown fleet machine"),
            (
                SpecArgs { fleet: "b".into(), schedulers: "fifo".into(), ..Default::default() },
                "unknown scheduler",
            ),
            (
                SpecArgs { fleet: "b".into(), arrival_rates: "-1".into(), ..Default::default() },
                "bad arrival rate",
            ),
            (
                SpecArgs { fleet: "b".into(), arrival_rates: "inf".into(), ..Default::default() },
                "bad arrival rate",
            ),
            (
                SpecArgs { fleet: "b".into(), fleet_jobs: "0".into(), ..Default::default() },
                "bad --fleet-jobs",
            ),
        ] {
            let err = sa.build().expect_err("malformed fleet axis");
            assert!(err.contains(needle), "{err}");
        }
    }

    /// A fleet spec built on the coordinator and rebuilt on a worker from
    /// the canonical argument vector enumerates identical cells —
    /// including the fleet cells and their resolved descriptors.
    #[test]
    fn fleet_specs_agree_between_coordinator_and_worker() {
        let sa = SpecArgs {
            fleet: "b".into(),
            schedulers: "round-robin".into(),
            arrival_rates: "2".into(),
            fleet_jobs: "2".into(),
            quick: true,
            ..Default::default()
        };
        let a = sa.build().expect("build");
        let b = SpecArgs::parse(&sa.to_args()).expect("parse").build().expect("rebuild");
        let (ca, cb) = (a.cells(), b.cells());
        assert_eq!(ca.len(), cb.len());
        assert!(ca.iter().any(|c| c.scheduler.is_some()), "fleet cells enumerated");
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(x.key, y.key);
            assert_eq!(
                bwap_runtime::cell_descriptor(&a, x).text(),
                bwap_runtime::cell_descriptor(&b, y).text()
            );
        }
    }

    #[test]
    fn built_specs_agree_between_coordinator_and_worker() {
        let sa = SpecArgs {
            workloads: "SC".into(),
            policies: "bwap".into(),
            workers: "1,2".into(),
            quick: true,
            ..Default::default()
        };
        let a = sa.build().expect("build");
        let b = SpecArgs::parse(&sa.to_args()).expect("parse").build().expect("rebuild");
        let (ca, cb) = (a.cells(), b.cells());
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.seed, y.seed);
            assert_eq!(
                bwap_runtime::cell_descriptor(&a, x).text(),
                bwap_runtime::cell_descriptor(&b, y).text()
            );
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(parse_machine("z").is_err());
        assert!(parse_policy("nope").is_err());
        assert!(parse_dwp("1.5").is_err());
        assert!(parse_engine("warp").is_err());
        assert!(SpecArgs::parse(&["--bogus".to_string()]).is_err());
        assert!(SpecArgs::parse(&["--seed".to_string()]).is_err());
        let sa = SpecArgs { workloads: "NOPE".into(), ..Default::default() };
        assert!(sa.build().is_err());
    }
}
