//! Remote campaign workers: a supervised length-prefixed TCP protocol
//! for serving cells to a distributed campaign.
//!
//! The coordinator (`campaign --remote host:port,...`) never ships code
//! or binary state — it ships the *spec argument vector* (the
//! [`crate::cli::SpecArgs`] round-trip) plus the cell ids it wants, and
//! the worker rebuilds the identical [`bwap_runtime::CampaignSpec`] from
//! the shared CLI vocabulary and runs those cells. Results travel back as
//! cell-cache entry encodings ([`bwap_runtime::campaign::cache`]): each
//! one embeds the worker's full cell descriptor, which the coordinator
//! verifies byte-for-byte against its own before accepting — version skew
//! between coordinator and worker builds degrades to local re-execution,
//! never to silently merged foreign results.
//!
//! Framing: every message is one frame — a big-endian `u32` byte length
//! followed by that many bytes of UTF-8 text, each frame starting with
//! the protocol magic. v2 streams responses *per cell* so a worker that
//! dies mid-batch still delivers everything it finished (the
//! coordinator's salvage path):
//!
//! ```text
//! request:   bwap-campaign-rpc v2
//!            args <spec args joined with US (0x1f)>
//!            cells <id> <id> ...
//! response:  one frame per finished cell, then a terminator —
//!            bwap-campaign-rpc v2          bwap-campaign-rpc v2
//!            cell <id> <entry byte len>    done <n>   (or: err <message>)
//!            <entry bytes>
//! ```
//!
//! Supervision (see `docs/ROBUSTNESS.md`): the coordinator runs batches
//! under per-connection read/write timeouts and a per-batch deadline
//! ([`SupervisionConfig`]), retries failed workers a bounded number of
//! rounds with deterministic exponential backoff, salvages the
//! descriptor-verified cells a dying worker returned and re-shards only
//! the remainder, and quarantines a worker after repeated consecutive
//! failures. Whatever remains after the last round falls back to local
//! execution — a fault schedule can slow a campaign down, never change
//! its report. A seeded [`FaultPlan`] injects transport chaos on the
//! coordinator side (connect refusal, mid-batch disconnect, frame
//! corruption/truncation, latency, hangs), keyed by `worker#attempt` so
//! every retry re-draws its fate deterministically.

use crate::cli::SpecArgs;
use bwap_runtime::campaign::cache::{decode_entry, encode_entry};
use bwap_runtime::campaign::executor::effective_workers;
use bwap_runtime::campaign::CellSpec;
use bwap_runtime::{cell_descriptor, run_cell_for, CampaignSpec, CellCache, FaultKind, FaultPlan};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// First line of every request and response frame. v2 replaced the
/// monolithic response of v1 with per-cell streaming frames; a v1 peer
/// fails the magic check and degrades to local execution.
pub const PROTOCOL_MAGIC: &str = "bwap-campaign-rpc v2";

/// Unit separator joining spec args inside the request (no spec flag or
/// value can contain it — they come from a command line).
const ARG_SEP: char = '\x1f';

/// Upper bound on a frame we are willing to buffer (a single cell entry
/// is far below this; anything larger is a protocol error).
pub const MAX_FRAME: usize = 64 << 20;

/// Coordinator-side supervision knobs. The defaults suit real
/// deployments; tests shrink the timeouts to keep chaos runs fast.
#[derive(Debug, Clone)]
pub struct SupervisionConfig {
    /// Per-read/per-write socket timeout on both sides of the protocol.
    pub io_timeout: Duration,
    /// Deadline for one whole batch fetch (connect to `done`).
    pub batch_deadline: Duration,
    /// Bounded retry rounds: after this many dispatch rounds, whatever is
    /// still pending falls back to local execution.
    pub max_rounds: usize,
    /// Base of the deterministic exponential backoff a previously-failed
    /// worker waits before its next attempt
    /// (`backoff_base * 2^min(consecutive_failures - 1, 6)`).
    pub backoff_base: Duration,
    /// Consecutive failures after which a worker is quarantined for the
    /// rest of the campaign.
    pub quarantine_after: usize,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            io_timeout: Duration::from_secs(10),
            batch_deadline: Duration::from_secs(120),
            max_rounds: 4,
            backoff_base: Duration::from_millis(25),
            quarantine_after: 2,
        }
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "oversized frame"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Build a request frame payload.
pub fn encode_request(spec_args: &[String], cell_ids: &[usize]) -> String {
    let ids: Vec<String> = cell_ids.iter().map(|id| id.to_string()).collect();
    format!(
        "{PROTOCOL_MAGIC}\nargs {}\ncells {}\n",
        spec_args.join(&ARG_SEP.to_string()),
        ids.join(" ")
    )
}

/// Parse a request frame payload into `(spec args, cell ids)`.
pub fn decode_request(text: &str) -> Result<(Vec<String>, Vec<usize>), String> {
    let mut lines = text.lines();
    let first = lines.next().unwrap_or("");
    if first != PROTOCOL_MAGIC {
        // Echo only a prefix: a garbage frame can be MAX_FRAME long, and
        // the error travels back inside a frame of its own.
        let shown: String = first.chars().take(48).collect();
        return Err(format!("bad protocol magic {shown:?}"));
    }
    let args_line = lines.next().and_then(|l| l.strip_prefix("args ")).ok_or("missing args")?;
    let cells_line = lines.next().and_then(|l| l.strip_prefix("cells ")).ok_or("missing cells")?;
    let args: Vec<String> = if args_line.is_empty() {
        Vec::new()
    } else {
        args_line.split(ARG_SEP).map(str::to_string).collect()
    };
    let ids = cells_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|_| format!("bad cell id {t:?}")))
        .collect::<Result<Vec<usize>, String>>()?;
    Ok((args, ids))
}

/// One frame of a v2 response stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseFrame {
    /// One finished cell: id + its cache-entry encoding.
    Cell(usize, String),
    /// Clean end of stream, carrying the number of cell frames sent.
    Done(usize),
    /// Worker-side failure; terminates the stream.
    Err(String),
}

/// Build a per-cell response frame payload.
pub fn encode_cell_frame(id: usize, entry: &str) -> String {
    format!("{PROTOCOL_MAGIC}\ncell {id} {}\n{entry}", entry.len())
}

/// Build the end-of-stream terminator payload.
pub fn encode_done(n: usize) -> String {
    format!("{PROTOCOL_MAGIC}\ndone {n}\n")
}

/// Build an error frame payload.
pub fn encode_error(message: &str) -> String {
    format!("{PROTOCOL_MAGIC}\nerr {}\n", message.replace('\n', " "))
}

/// Parse one response frame payload.
pub fn decode_response_frame(text: &str) -> Result<ResponseFrame, String> {
    let rest = text
        .strip_prefix(PROTOCOL_MAGIC)
        .and_then(|r| r.strip_prefix('\n'))
        .ok_or("bad protocol magic")?;
    let (line, tail) = rest.split_once('\n').ok_or("truncated frame")?;
    if let Some(msg) = line.strip_prefix("err ") {
        return Ok(ResponseFrame::Err(msg.to_string()));
    }
    if let Some(n) = line.strip_prefix("done ") {
        return n.parse().map(ResponseFrame::Done).map_err(|_| format!("bad done count {n:?}"));
    }
    let mut parts = line.split(' ');
    if parts.next() != Some("cell") {
        return Err(format!("bad frame header {line:?}"));
    }
    let id: usize = parts.next().and_then(|v| v.parse().ok()).ok_or("bad cell id in frame")?;
    let len: usize = parts.next().and_then(|v| v.parse().ok()).ok_or("bad cell length")?;
    if tail.len() != len || !tail.is_char_boundary(len) {
        return Err("cell entry length mismatch".into());
    }
    Ok(ResponseFrame::Cell(id, tail.to_string()))
}

/// Parse a request payload and rebuild the spec it names, validating the
/// requested cell ids. The worker-side front half of connection
/// handling, separated from socket I/O so tests can drive it directly.
pub fn parse_request_spec(text: &str) -> Result<(CampaignSpec, Vec<CellSpec>, Vec<usize>), String> {
    let (args, ids) = decode_request(text)?;
    let spec = SpecArgs::parse(&args)?.build()?;
    let cells = spec.cells();
    for &id in &ids {
        if id >= cells.len() {
            return Err(format!("cell id {id} out of range (spec has {} cells)", cells.len()));
        }
    }
    Ok((spec, cells, ids))
}

/// Best-effort text of a panic payload (mirrors the executor's isolation:
/// a panicking cell becomes an error entry, never a dead worker).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run the requested cells and stream one frame per finished cell,
/// followed by the `done` terminator. Cells run under `catch_unwind`, so
/// a panicking cell becomes an error entry in the stream while the rest
/// complete. A dead peer stops the writes but the remaining cells still
/// finish (their results are simply dropped).
fn stream_cells(
    stream: &mut TcpStream,
    spec: &CampaignSpec,
    cells: &[CellSpec],
    ids: &[usize],
    threads: Option<usize>,
) -> std::io::Result<()> {
    let workers = effective_workers(threads, ids.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, String)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&id) = ids.get(i) else { break };
                let cell = &cells[id];
                let desc = cell_descriptor(spec, cell);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_cell_for(spec, cell).map_err(|e| e.to_string())
                }))
                .unwrap_or_else(|p| Err(format!("cell panicked: {}", panic_text(p.as_ref()))));
                if tx.send((id, encode_entry(&desc, &outcome))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut sent = 0usize;
        let mut io: std::io::Result<()> = Ok(());
        for (id, entry) in rx {
            // Keep draining after a write failure so the executor threads
            // never block on a full channel; their work is just dropped.
            if io.is_ok() {
                io = write_frame(stream, encode_cell_frame(id, &entry).as_bytes());
                if io.is_ok() {
                    sent += 1;
                }
            }
        }
        io.and_then(|()| write_frame(stream, encode_done(sent).as_bytes()))
    })
}

/// Serve one request on an accepted connection. Protocol errors get a
/// clean `err` frame back where the transport still allows one; spec
/// errors always do.
fn handle(
    stream: &mut TcpStream,
    threads: Option<usize>,
    io_timeout: Duration,
) -> std::io::Result<()> {
    // A silent or stuck peer must not wedge the worker: both directions
    // time out.
    stream.set_read_timeout(Some(io_timeout)).ok();
    stream.set_write_timeout(Some(io_timeout)).ok();
    let payload = match read_frame(stream) {
        Ok(p) => p,
        Err(e) => {
            if e.kind() == std::io::ErrorKind::InvalidData {
                let _ =
                    write_frame(stream, encode_error(&format!("protocol error: {e}")).as_bytes());
            }
            return Err(e);
        }
    };
    let text = match std::str::from_utf8(&payload) {
        Ok(t) => t,
        Err(_) => return write_frame(stream, encode_error("request is not UTF-8").as_bytes()),
    };
    match parse_request_spec(text) {
        Ok((spec, cells, ids)) => stream_cells(stream, &spec, &cells, &ids, threads),
        Err(e) => write_frame(stream, encode_error(&e).as_bytes()),
    }
}

/// Accept loop for the `campaign_worker` binary. With `once`, serve a
/// single connection sequentially and return (CI smoke runs use this);
/// otherwise each connection gets its own thread, so one hung peer never
/// blocks the next coordinator attempt. Per-connection failures are
/// reported and do not take the worker down.
pub fn serve(
    listener: &TcpListener,
    threads: Option<usize>,
    once: bool,
    io_timeout: Duration,
) -> std::io::Result<()> {
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            match stream {
                Ok(mut s) => {
                    if once {
                        if let Err(e) = handle(&mut s, threads, io_timeout) {
                            eprintln!("campaign_worker: connection failed: {e}");
                        }
                        break;
                    }
                    scope.spawn(move || {
                        if let Err(e) = handle(&mut s, threads, io_timeout) {
                            eprintln!("campaign_worker: connection failed: {e}");
                        }
                    });
                }
                Err(e) => {
                    eprintln!("campaign_worker: accept failed: {e}");
                    if once {
                        break;
                    }
                }
            }
        }
    });
    Ok(())
}

/// What one batch fetch produced: every decodable entry received before
/// the stream ended (cleanly or not), plus the failure if there was one.
/// A failed batch with entries is the salvage path: the coordinator
/// keeps the verified cells and re-shards only the remainder.
#[derive(Debug, Default)]
pub struct BatchOutcome {
    /// Decodable `(cell id, entry)` pairs received, in arrival order.
    pub entries: Vec<(usize, String)>,
    /// Why the stream ended early, if it did.
    pub error: Option<String>,
}

impl BatchOutcome {
    fn fail(entries: Vec<(usize, String)>, error: String) -> BatchOutcome {
        BatchOutcome { entries, error: Some(error) }
    }
}

/// Coordinator side: stream `cell_ids` of the spec described by
/// `spec_args` from the worker at `addr`, under `sup`'s timeouts and
/// batch deadline. Never panics and never blocks past the deadline; any
/// transport, protocol or injected failure ends the batch with whatever
/// was salvaged so far. `attempt` keys the fault schedule so every retry
/// re-draws its fate.
pub fn fetch_batch(
    addr: &str,
    spec_args: &[String],
    cell_ids: &[usize],
    sup: &SupervisionConfig,
    faults: Option<&FaultPlan>,
    attempt: usize,
) -> BatchOutcome {
    let fkey = format!("{addr}#{attempt}");
    let fault = |k: FaultKind| faults.and_then(|p| p.decide(k, &fkey));
    let roll = |k: FaultKind, key: &str, n: u64| faults.map_or(0, |p| p.roll(k, key, n));
    if fault(FaultKind::ConnectRefuse).is_some() {
        return BatchOutcome::fail(Vec::new(), format!("{addr}: injected connect refusal"));
    }
    let Some(sock) = addr.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
        return BatchOutcome::fail(Vec::new(), format!("{addr}: cannot resolve address"));
    };
    let mut stream = match TcpStream::connect_timeout(&sock, sup.io_timeout) {
        Ok(s) => s,
        Err(e) => return BatchOutcome::fail(Vec::new(), format!("connect {addr}: {e}")),
    };
    stream.set_read_timeout(Some(sup.io_timeout)).ok();
    stream.set_write_timeout(Some(sup.io_timeout)).ok();
    let deadline = Instant::now() + sup.batch_deadline;
    if fault(FaultKind::Hang).is_none() {
        let req = encode_request(spec_args, cell_ids);
        if let Err(e) = write_frame(&mut stream, req.as_bytes()) {
            return BatchOutcome::fail(Vec::new(), format!("send to {addr}: {e}"));
        }
    }
    // else: injected hang — connected, but the request never goes out;
    // the read timeout below is what saves us, exactly as it would
    // against a genuinely wedged worker.
    if let Some(f) = fault(FaultKind::Latency) {
        std::thread::sleep(Duration::from_millis(f.param_ms).min(sup.io_timeout));
    }
    let n = cell_ids.len() as u64;
    let cut = fault(FaultKind::Disconnect).map(|_| roll(FaultKind::Disconnect, &fkey, n));
    let corrupt = fault(FaultKind::CorruptFrame).map(|_| roll(FaultKind::CorruptFrame, &fkey, n));
    let trunc = fault(FaultKind::TruncateFrame).map(|_| roll(FaultKind::TruncateFrame, &fkey, n));

    let mut entries: Vec<(usize, String)> = Vec::new();
    let mut frame_idx = 0u64;
    loop {
        if cut == Some(frame_idx) {
            // Injected mid-batch kill: everything already received stays
            // salvaged; the stream just dies here.
            return BatchOutcome::fail(entries, format!("{addr}: injected mid-batch disconnect"));
        }
        let Some(remaining) =
            deadline.checked_duration_since(Instant::now()).filter(|r| !r.is_zero())
        else {
            return BatchOutcome::fail(entries, format!("{addr}: batch deadline exceeded"));
        };
        stream.set_read_timeout(Some(sup.io_timeout.min(remaining))).ok();
        let mut payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(e) => return BatchOutcome::fail(entries, format!("receive from {addr}: {e}")),
        };
        if corrupt == Some(frame_idx) && !payload.is_empty() {
            let i = roll(FaultKind::CorruptFrame, &format!("{fkey}/byte"), payload.len() as u64);
            payload[i as usize] ^= 0x04;
        }
        if trunc == Some(frame_idx) {
            payload.truncate(payload.len() / 2);
        }
        let text = match std::str::from_utf8(&payload) {
            Ok(t) => t,
            Err(_) => return BatchOutcome::fail(entries, format!("{addr}: frame is not UTF-8")),
        };
        match decode_response_frame(text) {
            Ok(ResponseFrame::Cell(id, entry)) => {
                if decode_entry(&entry).is_none() {
                    return BatchOutcome::fail(
                        entries,
                        format!("{addr}: cell {id} entry is malformed"),
                    );
                }
                entries.push((id, entry));
                if entries.len() > cell_ids.len() {
                    return BatchOutcome::fail(entries, format!("{addr}: more frames than cells"));
                }
            }
            Ok(ResponseFrame::Done(sent)) => {
                if sent != entries.len() {
                    let msg = format!("{addr}: done count {sent} != {} received", entries.len());
                    return BatchOutcome::fail(entries, msg);
                }
                return BatchOutcome { entries, error: None };
            }
            Ok(ResponseFrame::Err(msg)) => {
                return BatchOutcome::fail(entries, format!("worker {addr} error: {msg}"));
            }
            Err(e) => return BatchOutcome::fail(entries, format!("{addr}: {e}")),
        }
        frame_idx += 1;
    }
}

/// What a supervised remote campaign round-trip did, for operator output
/// and tests.
#[derive(Debug, Default)]
pub struct CoordinatorOutcome {
    /// Descriptor-verified entries stored into the cache.
    pub accepted: usize,
    /// Subset of `accepted` that came from batches which then failed —
    /// the cells salvaged from dying workers.
    pub salvaged: usize,
    /// Batch fetches that ended in an error (before or after salvage).
    pub failed_batches: usize,
    /// Workers quarantined after repeated consecutive failures.
    pub quarantined: Vec<String>,
    /// Cells still unserved after the last round — the local-execution
    /// fallback picks these up.
    pub remaining: usize,
}

/// The supervised coordinator loop behind `campaign --remote`: shard the
/// pending (deduped, uncached) cells round-robin across healthy workers,
/// fetch every shard concurrently, verify each returned entry's embedded
/// descriptor byte-for-byte before storing it in `cache`, then re-shard
/// whatever is left across the workers that are still healthy — with
/// deterministic exponential backoff per failed worker and quarantine
/// after [`SupervisionConfig::quarantine_after`] consecutive failures.
/// Anything unserved when the rounds run out stays pending; the caller's
/// local `run_campaign_with` executes it, so the campaign completes under
/// any fault schedule.
pub fn coordinate(
    spec: &CampaignSpec,
    spec_args: &[String],
    workers: &[String],
    cache: &CellCache,
    dedup: bool,
    sup: &SupervisionConfig,
    faults: Option<&FaultPlan>,
) -> CoordinatorOutcome {
    let cells = spec.cells();
    let descs: Vec<_> = cells.iter().map(|c| cell_descriptor(spec, c)).collect();
    // One representative per descriptor class (all of them when dedup is
    // off — then equal cells are fetched redundantly, exactly as they
    // would execute redundantly locally), minus what the cache holds.
    let mut seen = std::collections::HashSet::new();
    let mut pending: Vec<usize> = cells
        .iter()
        .map(|c| c.id)
        .filter(|&id| !dedup || seen.insert(descs[id].text().to_string()))
        .filter(|&id| cache.load(&descs[id]).is_none())
        .collect();
    let mut outcome = CoordinatorOutcome::default();
    if workers.is_empty() || pending.is_empty() {
        outcome.remaining = pending.len();
        return outcome;
    }
    let mut fails = vec![0usize; workers.len()];
    let mut attempts = vec![0usize; workers.len()];
    for _round in 0..sup.max_rounds {
        if pending.is_empty() {
            break;
        }
        let healthy: Vec<usize> =
            (0..workers.len()).filter(|&w| fails[w] < sup.quarantine_after).collect();
        if healthy.is_empty() {
            break;
        }
        let shards: Vec<(usize, Vec<usize>)> = healthy
            .iter()
            .enumerate()
            .map(|(si, &w)| {
                (w, pending.iter().copied().skip(si).step_by(healthy.len()).collect::<Vec<_>>())
            })
            .filter(|(_, ids)| !ids.is_empty())
            .collect();
        let batches: Vec<(usize, BatchOutcome)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|(w, ids)| {
                    let w = *w;
                    attempts[w] += 1;
                    let attempt = attempts[w];
                    // Deterministic exponential backoff: a worker that just
                    // failed waits before its retry; the sleeps overlap
                    // because each shard fetch runs in its own thread.
                    let backoff = match fails[w] {
                        0 => Duration::ZERO,
                        f => sup.backoff_base * 2u32.pow((f - 1).min(6) as u32),
                    };
                    let addr = workers[w].clone();
                    scope.spawn(move || {
                        std::thread::sleep(backoff);
                        (w, fetch_batch(&addr, spec_args, ids, sup, faults, attempt))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("fetch thread")).collect()
        });
        for (w, batch) in batches {
            let mut accepted_here = 0usize;
            for (id, entry) in &batch.entries {
                // The worker's embedded descriptor must equal ours
                // byte-for-byte — a skewed worker build cannot inject
                // results for a cell it computed differently.
                match decode_entry(entry) {
                    Some((desc_text, cell_outcome)) if desc_text == descs[*id].text() => {
                        cache.store(&descs[*id], &cell_outcome);
                        accepted_here += 1;
                    }
                    _ => eprintln!(
                        "worker {}: cell {id} descriptor mismatch; will re-shard",
                        workers[w]
                    ),
                }
            }
            outcome.accepted += accepted_here;
            match &batch.error {
                Some(e) => {
                    outcome.salvaged += accepted_here;
                    outcome.failed_batches += 1;
                    fails[w] += 1;
                    eprintln!(
                        "worker {}: {e} ({accepted_here} cell(s) salvaged, failure {} of {})",
                        workers[w], fails[w], sup.quarantine_after
                    );
                }
                None => fails[w] = 0,
            }
        }
        pending.retain(|&id| cache.load(&descs[id]).is_none());
    }
    outcome.quarantined = (0..workers.len())
        .filter(|&w| fails[w] >= sup.quarantine_after)
        .map(|w| workers[w].clone())
        .collect();
    outcome.remaining = pending.len();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let args = vec!["--spec".to_string(), "fig_phases".to_string(), "--quick".to_string()];
        let ids = vec![0usize, 3, 17];
        let (a, i) = decode_request(&encode_request(&args, &ids)).expect("round trip");
        assert_eq!(a, args);
        assert_eq!(i, ids);
        assert!(decode_request("not-a-protocol\n").is_err());
        assert!(decode_request("bwap-campaign-rpc v1\nargs \ncells 0\n").is_err(), "v1 is skew");
    }

    #[test]
    fn response_frames_round_trip_and_propagate_errors() {
        let cell = decode_response_frame(&encode_cell_frame(7, "entry\nbytes")).expect("cell");
        assert_eq!(cell, ResponseFrame::Cell(7, "entry\nbytes".to_string()));
        assert_eq!(decode_response_frame(&encode_done(3)).expect("done"), ResponseFrame::Done(3));
        let err = decode_response_frame(&encode_error("no such\nspec")).expect("err");
        assert_eq!(err, ResponseFrame::Err("no such spec".to_string()));
        assert!(decode_response_frame("garbage").is_err());
        // A length that disagrees with the actual tail is a clean error.
        assert!(decode_response_frame(&format!("{PROTOCOL_MAGIC}\ncell 0 99\nshort")).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frames").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).expect("frame 1"), b"hello frames");
        assert_eq!(read_frame(&mut r).expect("frame 2"), b"");
        assert!(read_frame(&mut r).is_err(), "EOF is an error, not an empty frame");
    }

    #[test]
    fn parse_request_spec_runs_the_shared_vocabulary() {
        let sa = crate::cli::SpecArgs { quick: true, ..Default::default() };
        let req = encode_request(&sa.to_args(), &[0]);
        let (spec, cells, ids) = parse_request_spec(&req).expect("parses");
        assert!(!cells.is_empty());
        assert_eq!(ids, vec![0]);
        assert_eq!(spec.cells().len(), cells.len());
    }

    #[test]
    fn parse_request_spec_rejects_bad_specs_and_ids() {
        let req = encode_request(&["--bogus".to_string()], &[0]);
        assert!(parse_request_spec(&req).is_err());
        let sa = crate::cli::SpecArgs { quick: true, ..Default::default() };
        let req = encode_request(&sa.to_args(), &[999]);
        let err = parse_request_spec(&req).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn injected_connect_refusal_fails_before_touching_the_network() {
        let plan = FaultPlan::new(1).with(FaultKind::ConnectRefuse, 1.0);
        // A worker address that would hang if dialled: the fault must fire
        // first, instantly.
        let out =
            fetch_batch("203.0.113.1:9", &[], &[0], &SupervisionConfig::default(), Some(&plan), 0);
        let e = out.error.expect("refused");
        assert!(e.contains("injected connect refusal"), "{e}");
        assert!(out.entries.is_empty());
    }
}
