//! Remote campaign workers: a minimal length-prefixed TCP protocol for
//! serving cells to a distributed campaign.
//!
//! The coordinator (`campaign --remote host:port,...`) never ships code
//! or binary state — it ships the *spec argument vector* (the
//! [`crate::cli::SpecArgs`] round-trip) plus the cell ids it wants, and
//! the worker rebuilds the identical [`bwap_runtime::CampaignSpec`] from the shared CLI
//! vocabulary and runs those cells. Results travel back as cell-cache
//! entry encodings ([`bwap_runtime::campaign::cache`]): each one embeds
//! the worker's full cell descriptor, which the coordinator verifies
//! byte-for-byte against its own before accepting — version skew between
//! coordinator and worker builds degrades to local re-execution, never to
//! silently merged foreign results.
//!
//! Framing: every message is one frame — a big-endian `u32` byte length
//! followed by that many bytes of UTF-8 text. Requests and responses are
//! line-oriented inside the frame:
//!
//! ```text
//! request:  bwap-campaign-rpc v1
//!           args <spec args joined with US (0x1f)>
//!           cells <id> <id> ...
//! response: bwap-campaign-rpc v1
//!           ok <n>                      (or: err <message>)
//!           cell <id> <entry byte len>
//!           <entry bytes> ...repeated n times
//! ```

use crate::cli::SpecArgs;
use bwap_runtime::campaign::cache::{decode_entry, encode_entry};
use bwap_runtime::{cell_descriptor, run_cell_for, run_parallel_with};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

/// First line of every request and response frame.
pub const PROTOCOL_MAGIC: &str = "bwap-campaign-rpc v1";

/// Unit separator joining spec args inside the request (no spec flag or
/// value can contain it — they come from a command line).
const ARG_SEP: char = '\x1f';

/// Upper bound on a frame we are willing to buffer (a whole campaign
/// response is far below this; anything larger is a protocol error).
const MAX_FRAME: usize = 64 << 20;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "oversized frame"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Build a request frame payload.
pub fn encode_request(spec_args: &[String], cell_ids: &[usize]) -> String {
    let ids: Vec<String> = cell_ids.iter().map(|id| id.to_string()).collect();
    format!(
        "{PROTOCOL_MAGIC}\nargs {}\ncells {}\n",
        spec_args.join(&ARG_SEP.to_string()),
        ids.join(" ")
    )
}

/// Parse a request frame payload into `(spec args, cell ids)`.
pub fn decode_request(text: &str) -> Result<(Vec<String>, Vec<usize>), String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(PROTOCOL_MAGIC) => {}
        other => return Err(format!("bad protocol magic {other:?}")),
    }
    let args_line = lines.next().and_then(|l| l.strip_prefix("args ")).ok_or("missing args")?;
    let cells_line = lines.next().and_then(|l| l.strip_prefix("cells ")).ok_or("missing cells")?;
    let args: Vec<String> = if args_line.is_empty() {
        Vec::new()
    } else {
        args_line.split(ARG_SEP).map(str::to_string).collect()
    };
    let ids = cells_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|_| format!("bad cell id {t:?}")))
        .collect::<Result<Vec<usize>, String>>()?;
    Ok((args, ids))
}

/// Build a success-response payload from `(id, entry text)` pairs.
pub fn encode_response(entries: &[(usize, String)]) -> String {
    let mut s = format!("{PROTOCOL_MAGIC}\nok {}\n", entries.len());
    for (id, entry) in entries {
        s.push_str(&format!("cell {id} {}\n", entry.len()));
        s.push_str(entry);
    }
    s
}

/// Build an error-response payload.
pub fn encode_error(message: &str) -> String {
    format!("{PROTOCOL_MAGIC}\nerr {}\n", message.replace('\n', " "))
}

/// Parse a response payload into `(id, entry text)` pairs.
pub fn decode_response(text: &str) -> Result<Vec<(usize, String)>, String> {
    let rest = text
        .strip_prefix(PROTOCOL_MAGIC)
        .and_then(|r| r.strip_prefix('\n'))
        .ok_or("bad protocol magic")?;
    let (status, mut rest) = rest.split_once('\n').ok_or("truncated response")?;
    if let Some(msg) = status.strip_prefix("err ") {
        return Err(format!("worker error: {msg}"));
    }
    let n: usize =
        status.strip_prefix("ok ").and_then(|v| v.parse().ok()).ok_or("bad status line")?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let (header, tail) = rest.split_once('\n').ok_or("truncated cell header")?;
        let mut parts = header.split(' ');
        if parts.next() != Some("cell") {
            return Err(format!("bad cell header {header:?}"));
        }
        let id: usize =
            parts.next().and_then(|v| v.parse().ok()).ok_or("bad cell id in response")?;
        let len: usize =
            parts.next().and_then(|v| v.parse().ok()).ok_or("bad cell length in response")?;
        if tail.len() < len || !tail.is_char_boundary(len) {
            return Err("truncated cell entry".into());
        }
        let (entry, next) = tail.split_at(len);
        entries.push((id, entry.to_string()));
        rest = next;
    }
    Ok(entries)
}

/// Serve one request on an accepted connection: rebuild the spec, run the
/// requested cells (bounded by `threads`), reply with their cache-entry
/// encodings. Protocol or spec errors become an `err` response.
fn handle(stream: &mut TcpStream, threads: Option<usize>) -> std::io::Result<()> {
    let payload = read_frame(stream)?;
    let reply = match std::str::from_utf8(&payload) {
        Ok(text) => match serve_request(text, threads) {
            Ok(ok) => ok,
            Err(e) => encode_error(&e),
        },
        Err(_) => encode_error("request is not UTF-8"),
    };
    write_frame(stream, reply.as_bytes())
}

/// The worker-side computation, separated from socket I/O so tests can
/// drive it directly: parse a request payload, run the cells, encode the
/// response payload.
pub fn serve_request(text: &str, threads: Option<usize>) -> Result<String, String> {
    let (args, ids) = decode_request(text)?;
    let spec = SpecArgs::parse(&args)?.build()?;
    let cells = spec.cells();
    for &id in &ids {
        if id >= cells.len() {
            return Err(format!("cell id {id} out of range (spec has {} cells)", cells.len()));
        }
    }
    let jobs: Vec<_> = ids
        .iter()
        .map(|&id| {
            let spec = &spec;
            let cell = cells[id].clone();
            move || {
                let desc = cell_descriptor(spec, &cell);
                let outcome = run_cell_for(spec, &cell).map_err(|e| e.to_string());
                encode_entry(&desc, &outcome)
            }
        })
        .collect();
    let entries: Vec<(usize, String)> =
        ids.iter().copied().zip(run_parallel_with(threads, jobs)).collect();
    Ok(encode_response(&entries))
}

/// Accept loop for the `campaign_worker` binary. With `once`, serve a
/// single connection and return (CI smoke runs use this); otherwise serve
/// until the process is killed. Per-connection failures are reported and
/// do not take the worker down.
pub fn serve(listener: &TcpListener, threads: Option<usize>, once: bool) -> std::io::Result<()> {
    for stream in listener.incoming() {
        match stream {
            Ok(mut s) => {
                if let Err(e) = handle(&mut s, threads) {
                    eprintln!("campaign_worker: connection failed: {e}");
                }
            }
            Err(e) => eprintln!("campaign_worker: accept failed: {e}"),
        }
        if once {
            break;
        }
    }
    Ok(())
}

/// Coordinator side: send `cell_ids` of the spec described by `spec_args`
/// to the worker at `addr`, returning verified-decodable `(id, entry)`
/// pairs. Any transport or protocol failure is an `Err`; the caller falls
/// back to local execution for the affected cells.
pub fn fetch_cells(
    addr: &str,
    spec_args: &[String],
    cell_ids: &[usize],
) -> Result<Vec<(usize, String)>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    write_frame(&mut stream, encode_request(spec_args, cell_ids).as_bytes())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let payload = read_frame(&mut stream).map_err(|e| format!("receive from {addr}: {e}"))?;
    let text = String::from_utf8(payload).map_err(|_| format!("{addr}: response not UTF-8"))?;
    let entries = decode_response(&text)?;
    // Entries must at least decode; descriptor verification against the
    // local spec happens in the coordinator, which owns the descriptors.
    for (id, entry) in &entries {
        if decode_entry(entry).is_none() {
            return Err(format!("{addr}: cell {id} entry is malformed"));
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let args = vec!["--spec".to_string(), "fig_phases".to_string(), "--quick".to_string()];
        let ids = vec![0usize, 3, 17];
        let (a, i) = decode_request(&encode_request(&args, &ids)).expect("round trip");
        assert_eq!(a, args);
        assert_eq!(i, ids);
        assert!(decode_request("not-a-protocol\n").is_err());
    }

    #[test]
    fn response_round_trips_and_propagates_errors() {
        let entries = vec![(2usize, "payload\nwith\nnewlines".to_string()), (5, String::new())];
        let back = decode_response(&encode_response(&entries)).expect("round trip");
        assert_eq!(back, entries);
        let err = decode_response(&encode_error("no such spec")).unwrap_err();
        assert!(err.contains("no such spec"), "{err}");
        assert!(decode_response("garbage").is_err());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frames").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).expect("frame 1"), b"hello frames");
        assert_eq!(read_frame(&mut r).expect("frame 2"), b"");
        assert!(read_frame(&mut r).is_err(), "EOF is an error, not an empty frame");
    }

    #[test]
    fn serve_request_runs_cells_and_embeds_descriptors() {
        let sa = crate::cli::SpecArgs { quick: true, ..Default::default() };
        let spec = sa.build().expect("spec");
        let cells = spec.cells();
        assert!(!cells.is_empty());
        let req = encode_request(&sa.to_args(), &[0]);
        let resp = serve_request(&req, Some(1)).expect("served");
        let entries = decode_response(&resp).expect("decodes");
        assert_eq!(entries.len(), 1);
        let (id, entry) = &entries[0];
        assert_eq!(*id, 0);
        let (desc_text, outcome) = decode_entry(entry).expect("entry decodes");
        assert_eq!(desc_text, cell_descriptor(&spec, &cells[0]).text());
        assert!(outcome.is_ok());
    }

    #[test]
    fn serve_request_rejects_bad_specs_and_ids() {
        let req = encode_request(&["--bogus".to_string()], &[0]);
        assert!(serve_request(&req, Some(1)).is_err());
        let sa = crate::cli::SpecArgs { quick: true, ..Default::default() };
        let req = encode_request(&sa.to_args(), &[999]);
        let err = serve_request(&req, Some(1)).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }
}
