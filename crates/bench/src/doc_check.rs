//! Offline markdown link-and-anchor checker for the repo's documentation.
//!
//! The docs cross-link heavily (README → `docs/*.md` → section anchors),
//! and a broken relative link or a renamed heading rots silently: the CI
//! rustdoc gate only covers `///` docs, not the markdown book. This
//! checker walks a set of markdown files, extracts every inline link, and
//! verifies — **without any network access** — that:
//!
//! * relative link targets exist on disk (files or directories);
//! * `#fragment` anchors (same-file or cross-file) resolve to a heading
//!   in the target document, using GitHub's slug rules (lowercase,
//!   punctuation stripped, spaces to hyphens);
//! * `http(s)`/`mailto` links are *skipped*, never fetched.
//!
//! Fenced code blocks and inline code spans are ignored, so JSON examples
//! containing brackets do not trip the scanner. The `doc_check` binary
//! runs the default set (`README.md` + `docs/*.md`) and exits non-zero on
//! the first broken link; `tests/docs_links.rs` runs the same check under
//! tier-1 so the docs cannot rot between CI runs either.

use std::fmt;
use std::path::{Path, PathBuf};

/// One broken link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkError {
    /// File containing the link.
    pub file: PathBuf,
    /// 1-based line of the link.
    pub line: usize,
    /// The link target as written.
    pub target: String,
    /// What is wrong with it.
    pub reason: String,
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.target, self.reason)
    }
}

/// The default documentation set: `README.md` plus every `docs/*.md`,
/// relative to `root`.
pub fn default_doc_set(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![root.join("README.md")];
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        let mut docs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "md"))
            .collect();
        docs.sort();
        files.extend(docs);
    }
    files
}

/// Check every markdown file in `files`; returns all broken links (empty
/// = documentation is sound).
pub fn check_files(files: &[PathBuf]) -> Vec<LinkError> {
    let mut errors = Vec::new();
    for file in files {
        let Ok(text) = std::fs::read_to_string(file) else {
            errors.push(LinkError {
                file: file.clone(),
                line: 0,
                target: String::new(),
                reason: "file does not exist".into(),
            });
            continue;
        };
        for (line_no, target) in extract_links(&text) {
            if let Some(reason) = check_target(file, &target) {
                errors.push(LinkError { file: file.clone(), line: line_no, target, reason });
            }
        }
    }
    errors
}

/// Why `target`, linked from `file`, is broken — or `None` if it is fine.
fn check_target(file: &Path, target: &str) -> Option<String> {
    if target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
    {
        return None; // external: never fetched, never checked
    }
    let (path_part, anchor) = match target.split_once('#') {
        Some((p, a)) => (p, Some(a)),
        None => (target, None),
    };
    let doc = if path_part.is_empty() {
        file.to_path_buf()
    } else {
        let resolved = file.parent().unwrap_or(Path::new(".")).join(path_part);
        if !resolved.exists() {
            return Some(format!("target {} does not exist", resolved.display()));
        }
        resolved
    };
    let anchor = anchor?;
    if doc.is_dir() || doc.extension().map_or(true, |x| x != "md") {
        return Some(format!("anchor #{anchor} into a non-markdown target"));
    }
    let text = match std::fs::read_to_string(&doc) {
        Ok(t) => t,
        // An unreadable anchor target must fail loudly, not pass as
        // "resolved" — silent rot is exactly what this gate prevents.
        Err(e) => return Some(format!("cannot read anchor target {}: {e}", doc.display())),
    };
    let slugs = heading_slugs(&text);
    if slugs.iter().any(|s| s == anchor) {
        None
    } else {
        Some(format!("no heading for anchor #{anchor} in {}", doc.display()))
    }
}

/// `(line, target)` of every inline markdown link outside code.
fn extract_links(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        out.extend(line_links(&strip_inline_code(line)).into_iter().map(|t| (i + 1, t)));
    }
    out
}

/// Replace `inline code` spans with spaces so their contents never parse
/// as links.
fn strip_inline_code(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_code = false;
    for c in line.chars() {
        if c == '`' {
            in_code = !in_code;
            out.push(' ');
        } else if in_code {
            out.push(' ');
        } else {
            out.push(c);
        }
    }
    out
}

/// Targets of `[text](target)` links in one line, images included.
/// Scans for the `](` seam rather than pairing brackets, so nested
/// image links `[![alt](img)](target)` yield *both* targets — bracket
/// pairing would consume the inner image and silently skip the outer
/// link.
fn line_links(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(seam) = rest.find("](") {
        let target_start = seam + 2;
        let Some(end) = rest[target_start..].find(')') else { break };
        let raw = &rest[target_start..target_start + end];
        // Badge-style links may carry a title: strip it.
        let target = raw.split_whitespace().next().unwrap_or("");
        if !target.is_empty() {
            out.push(target.to_string());
        }
        // Continue right after the seam: the inner image's closing `)`
        // may itself be followed by the outer link's `](`.
        rest = &rest[target_start..];
    }
    out
}

/// GitHub-style anchor slugs of every markdown heading in `text`:
/// lowercase, underscores kept, other punctuation stripped, spaces to
/// hyphens, and the n-th repeat of a base slug suffixed `-n` as GitHub
/// does.
fn heading_slugs(text: &str) -> Vec<String> {
    let mut base_counts: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    let mut slugs = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !trimmed.starts_with('#') {
            continue;
        }
        let title = trimmed.trim_start_matches('#').trim();
        let mut slug = String::with_capacity(title.len());
        for c in title.chars() {
            match c {
                c if c.is_alphanumeric() => slug.extend(c.to_lowercase()),
                '_' => slug.push('_'),
                ' ' | '-' => slug.push('-'),
                _ => {}
            }
        }
        let seen = base_counts.entry(slug.clone()).or_insert(0);
        if *seen > 0 {
            slugs.push(format!("{slug}-{seen}"));
        } else {
            slugs.push(slug);
        }
        *seen += 1;
    }
    slugs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, name: &str, text: &str) -> PathBuf {
        let p = dir.join(name);
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(&p, text).unwrap();
        p
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bwap-doc-check-{tag}"));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn good_links_pass() {
        let d = tmpdir("good");
        let b = write(&d, "docs/B.md", "# Title Here\n\n## Sub-Section 2\ntext\n");
        let a = write(
            &d,
            "README.md",
            "[b](docs/B.md) [anchor](docs/B.md#sub-section-2) [self](#intro)\n\n# Intro\n\
             [ext](https://example.com/nope) `[not](a-link.md)`\n\
             ```\n[fenced](ignored.md)\n```\n",
        );
        assert_eq!(check_files(&[a, b]), vec![]);
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn missing_files_and_anchors_are_reported() {
        let d = tmpdir("bad");
        let b = write(&d, "docs/B.md", "# Only Heading\n");
        let a = write(&d, "README.md", "[gone](docs/C.md)\n[bad](docs/B.md#nope)\n");
        let errs = check_files(&[a.clone(), b]);
        assert_eq!(errs.len(), 2);
        assert!(errs[0].reason.contains("does not exist"), "{}", errs[0]);
        assert_eq!(errs[0].line, 1);
        assert!(errs[1].reason.contains("#nope"), "{}", errs[1]);
        assert_eq!(errs[1].line, 2);
        // Unreadable input is an error too, not a silent pass.
        let ghost = d.join("MISSING.md");
        assert_eq!(check_files(&[ghost])[0].reason, "file does not exist");
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn slugs_follow_github_rules() {
        let slugs = heading_slugs("# A B\n## C.d `e` (f)\n### Already-Hyphened\n");
        assert_eq!(slugs, vec!["a-b", "cd-e-f", "already-hyphened"]);
        // Underscores survive; duplicate headings get -1/-2 suffixes.
        let slugs = heading_slugs("# `schema_version: 2`\n## Setup\n## Setup\n## Setup\n");
        assert_eq!(slugs, vec!["schema_version-2", "setup", "setup-1", "setup-2"]);
    }

    #[test]
    fn nested_image_links_check_both_targets() {
        let d = tmpdir("nested");
        write(&d, "img.svg", "x");
        let a = write(&d, "README.md", "[![alt](img.svg)](docs/GONE.md)\n");
        let errs = check_files(&[a]);
        // The inner image resolves; the *outer* link is the broken one —
        // bracket-pairing scanners miss it entirely.
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].target.contains("GONE.md"), "{}", errs[0]);
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn duplicate_heading_anchors_resolve() {
        let d = tmpdir("dups");
        let b = write(&d, "B.md", "## Setup\ntext\n## Setup\n");
        let a = write(&d, "README.md", "[first](B.md#setup) [second](B.md#setup-1)\n");
        assert_eq!(check_files(&[a, b]), vec![]);
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn default_set_contains_readme_and_docs() {
        let d = tmpdir("set");
        write(&d, "README.md", "x");
        write(&d, "docs/A.md", "x");
        write(&d, "docs/B.md", "x");
        write(&d, "docs/skip.txt", "x");
        let files = default_doc_set(&d);
        let names: Vec<String> =
            files.iter().map(|p| p.file_name().unwrap().to_string_lossy().into_owned()).collect();
        assert_eq!(names, vec!["README.md", "A.md", "B.md"]);
        let _ = std::fs::remove_dir_all(d);
    }
}
