//! Result tables: ASCII rendering for the terminal, CSV for artifacts.

use std::fmt;

/// A labelled numeric table: one row per workload/config, one column per
/// policy/series.
#[derive(Debug, Clone)]
pub struct ResultTable {
    /// Table caption.
    pub title: String,
    /// Column headers (after the row-label column).
    pub columns: Vec<String>,
    /// `(row label, values)` — values align with `columns`.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Printf-style precision for cells.
    pub precision: usize,
}

impl ResultTable {
    /// Empty table.
    pub fn new(title: &str, columns: Vec<String>) -> Self {
        ResultTable { title: title.to_string(), columns, rows: Vec::new(), precision: 3 }
    }

    /// Append a row; must match the column count.
    pub fn push_row(&mut self, label: &str, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.to_string(), values));
    }

    /// Cell lookup by labels.
    pub fn get(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        let (_, values) = self.rows.iter().find(|(l, _)| l == row)?;
        values.get(c).copied()
    }

    /// Divide every cell by the row's value in `reference` — turning
    /// execution times into speedups versus a baseline policy, as the
    /// paper's Fig. 2/3 do against uniform-workers.
    pub fn normalized_to(&self, reference: &str) -> ResultTable {
        let ref_idx = self
            .columns
            .iter()
            .position(|c| c == reference)
            .unwrap_or_else(|| panic!("no column {reference}"));
        let mut out = self.clone();
        out.title = format!("{} (normalized: {} = 1)", self.title, reference);
        for (_, values) in &mut out.rows {
            let r = values[ref_idx];
            for v in values.iter_mut() {
                *v = if r != 0.0 { r / *v } else { f64::NAN };
            }
        }
        out
    }

    /// CSV rendering (header + rows).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        s.push_str("label");
        for c in &self.columns {
            s.push(',');
            s.push_str(c);
        }
        s.push('\n');
        for (label, values) in &self.rows {
            s.push_str(label);
            for v in values {
                s.push_str(&format!(",{:.*}", self.precision, v));
            }
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for ResultTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let label_w =
            self.rows.iter().map(|(l, _)| l.len()).chain(std::iter::once(5)).max().unwrap();
        let col_w =
            self.columns.iter().map(|c| c.len().max(self.precision + 4)).collect::<Vec<_>>();
        write!(f, "{:<label_w$}", "")?;
        for (c, w) in self.columns.iter().zip(&col_w) {
            write!(f, "  {c:>w$}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:<label_w$}")?;
            for (v, w) in values.iter().zip(&col_w) {
                write!(f, "  {:>w$.p$}", v, w = w, p = self.precision)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ResultTable {
        let mut t = ResultTable::new("times", vec!["ft".into(), "uw".into(), "bwap".into()]);
        t.push_row("SC", vec![20.0, 10.0, 8.0]);
        t.push_row("OC", vec![30.0, 15.0, 15.0]);
        t
    }

    #[test]
    fn get_and_csv() {
        let t = table();
        assert_eq!(t.get("SC", "bwap"), Some(8.0));
        assert_eq!(t.get("SC", "nope"), None);
        let csv = t.to_csv();
        assert!(csv.starts_with("label,ft,uw,bwap\n"));
        assert!(csv.contains("SC,20.000,10.000,8.000"));
    }

    #[test]
    fn normalization_matches_speedup_semantics() {
        let n = table().normalized_to("uw");
        // speedup of bwap on SC = 10/8 = 1.25
        assert!((n.get("SC", "bwap").unwrap() - 1.25).abs() < 1e-12);
        assert!((n.get("SC", "uw").unwrap() - 1.0).abs() < 1e-12);
        // first-touch slower: 0.5
        assert!((n.get("SC", "ft").unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_contains_all_cells() {
        let s = format!("{}", table());
        assert!(s.contains("SC"));
        assert!(s.contains("bwap"));
        assert!(s.contains("8.000"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = ResultTable::new("x", vec!["a".into()]);
        t.push_row("r", vec![1.0, 2.0]);
    }
}
