//! Experiment harness: shared reporting and parallel-execution utilities
//! for the per-figure/table binaries (see `src/bin/`).

pub mod experiments;
pub mod report;
pub mod runner;

pub use report::ResultTable;
pub use runner::run_parallel;

use std::path::PathBuf;

/// Directory where binaries drop CSV artifacts (`results/` at the repo
/// root, overridable with `BWAP_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BWAP_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // The harness binaries run from the workspace root via `cargo run`.
    PathBuf::from("results")
}

/// Write a CSV artifact, creating the results directory if needed.
/// Returns the path written.
pub fn save_csv(name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_csv_roundtrip() {
        let dir = std::env::temp_dir().join("bwap-bench-test");
        std::env::set_var("BWAP_RESULTS_DIR", &dir);
        let p = save_csv("probe.csv", "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(p).unwrap(), "a,b\n1,2\n");
        std::env::remove_var("BWAP_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
