//! Experiment harness: the paper's figures, tables and ablations on top
//! of the campaign engine.
//!
//! * [`experiments`] — every evaluation experiment, declared as
//!   `CampaignSpec`s where the experiment is a scenario matrix and
//!   rendered into [`ResultTable`]s.
//! * [`report`] — ASCII/CSV result tables.
//! * [`doc_check`] — the offline markdown link-and-anchor checker behind
//!   the `doc_check` CI gate and `tests/docs_links.rs`.
//! * [`explorer`] — the static-HTML campaign explorer (the `explorer`
//!   binary renders a report's evaluation grid with drill-down links to
//!   per-cell Chrome-trace files).
//! * [`tracecheck`] — the strict `trace_event` contract validator behind
//!   the `tracecheck` binary and `tests/tracing.rs`.
//! * [`cli`] — the shared campaign-spec flag vocabulary, round-trippable
//!   to an argument vector so coordinators can ship specs to workers.
//! * [`worker`] — the length-prefixed TCP protocol behind the
//!   `campaign_worker` binary and `campaign --remote`.
//! * The per-figure binaries in `src/bin/` are thin wrappers: declare a
//!   spec, run the campaign, print the tables, save the artifacts. The
//!   `campaign` binary runs ad-hoc specs straight from the command line
//!   (`--trace DIR` records per-cell Chrome traces, `docs/TRACING.md`).
//!
//! # Examples
//!
//! Tables render for terminals and normalize into the paper's speedup
//! semantics without re-running anything:
//!
//! ```
//! use bwap_bench::ResultTable;
//!
//! let mut times = ResultTable::new(
//!     "exec time [s]",
//!     vec!["uniform-workers".into(), "bwap".into()],
//! );
//! times.push_row("SC", vec![10.0, 8.0]);
//!
//! // Fig. 2/3 plot speedups versus the incumbent policy:
//! let speedups = times.normalized_to("uniform-workers");
//! assert_eq!(speedups.get("SC", "bwap"), Some(1.25));
//! assert!(speedups.to_csv().starts_with("label,uniform-workers,bwap"));
//! ```

pub mod cli;
pub mod doc_check;
pub mod experiments;
pub mod explorer;
pub mod report;
pub mod tracecheck;
pub mod worker;

pub use bwap_runtime::{run_parallel, run_parallel_with};
pub use report::ResultTable;

use std::path::PathBuf;

/// Directory where binaries drop artifacts (`results/` at the repo root,
/// overridable with `BWAP_RESULTS_DIR`) — shared with the campaign
/// engine's JSON reports.
pub fn results_dir() -> PathBuf {
    bwap_runtime::campaign::results_dir()
}

/// Write a CSV artifact, creating the results directory if needed.
/// Returns the path written.
pub fn save_csv(name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_csv_roundtrip() {
        let dir = std::env::temp_dir().join("bwap-bench-test");
        std::env::set_var("BWAP_RESULTS_DIR", &dir);
        let p = save_csv("probe.csv", "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(p).unwrap(), "a,b\n1,2\n");
        std::env::remove_var("BWAP_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
