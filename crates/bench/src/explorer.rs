//! Static campaign explorer: render a campaign report as a single
//! self-contained HTML page.
//!
//! [`render`] takes the JSON text of a schema-v2 campaign report (full
//! artifact or deterministic serialization — the volatile fields are
//! optional) and produces one HTML document with no network access, no
//! external JavaScript and no external CSS: the whole evaluation grid as
//! tables, one per (scenario, worker-count) group, rows keyed by
//! workload (and phase period), columns by policy (and static DWP). Each
//! cell shows the execution time with an inline heat bar scaled to the
//! row's spread; failed cells carry the error inline. When the report
//! was produced with a trace directory (`campaign --trace`), cells link
//! to their Chrome-trace files for drill-down (`docs/TRACING.md`
//! explains how to open them).
//!
//! The `explorer` binary wraps this: it writes `<stem>.explorer.html`
//! next to the report so the relative trace links keep working when the
//! directory is copied or served as CI artifacts.

use bwap_workloads::json::Json;
use std::path::Path;

/// One parsed cell, reduced to what the grid renders.
struct Cell {
    key: String,
    workload: String,
    policy: String,
    scenario: String,
    workers: u64,
    static_dwp: Option<f64>,
    phase_period: Option<f64>,
    scheduler: Option<String>,
    arrival_rate_hz: Option<f64>,
    exec_time_s: Option<f64>,
    jobs: Option<u64>,
    slowdown_p50: Option<f64>,
    slowdown_p95: Option<f64>,
    slowdown_p99: Option<f64>,
    error: Option<String>,
    trace_path: Option<String>,
    dedup_class: Option<String>,
    cache_hit: bool,
}

fn str_of(v: Option<&Json>) -> String {
    v.and_then(Json::as_str).unwrap_or("?").to_string()
}

fn parse_cells(cells: &[Json]) -> Result<Vec<Cell>, String> {
    cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if c.as_object().is_none() {
                return Err(format!("cell {i}: not an object"));
            }
            Ok(Cell {
                key: str_of(c.get("key")),
                workload: str_of(c.get("workload")),
                policy: str_of(c.get("policy")),
                scenario: str_of(c.get("scenario")),
                workers: c.get("workers").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                static_dwp: c.get("static_dwp").and_then(Json::as_f64),
                phase_period: c.get("phase_period_s").and_then(Json::as_f64),
                scheduler: c.get("scheduler").and_then(Json::as_str).map(str::to_string),
                arrival_rate_hz: c.get("arrival_rate_hz").and_then(Json::as_f64),
                exec_time_s: c
                    .get("result")
                    .and_then(|r| r.get("exec_time_s"))
                    .and_then(Json::as_f64),
                jobs: c
                    .get("result")
                    .and_then(|r| r.get("jobs"))
                    .and_then(Json::as_f64)
                    .map(|n| n as u64),
                slowdown_p50: c
                    .get("result")
                    .and_then(|r| r.get("slowdown_p50"))
                    .and_then(Json::as_f64),
                slowdown_p95: c
                    .get("result")
                    .and_then(|r| r.get("slowdown_p95"))
                    .and_then(Json::as_f64),
                slowdown_p99: c
                    .get("result")
                    .and_then(|r| r.get("slowdown_p99"))
                    .and_then(Json::as_f64),
                error: c.get("error").and_then(Json::as_str).map(str::to_string),
                trace_path: c.get("trace_path").and_then(Json::as_str).map(str::to_string),
                dedup_class: c.get("dedup_class").and_then(Json::as_str).map(str::to_string),
                cache_hit: c.get("cache_hit").and_then(Json::as_bool).unwrap_or(false),
            })
        })
        .collect()
}

/// HTML-escape text content and attribute values.
fn esc(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '&' => "&amp;".to_string(),
            '<' => "&lt;".to_string(),
            '>' => "&gt;".to_string(),
            '"' => "&quot;".to_string(),
            c => c.to_string(),
        })
        .collect()
}

/// Column label: policy plus the static-DWP point when pinned.
fn column_label(c: &Cell) -> String {
    match c.static_dwp {
        Some(d) => format!("{} (dwp={d})", c.policy),
        None => c.policy.clone(),
    }
}

/// Row label: workload plus the phase period when swept. Fleet cells
/// (scheduler set) key rows by their (scheduler, arrival rate)
/// coordinates instead — their workload is always the catalog mix.
fn row_label(c: &Cell) -> String {
    if let Some(sched) = &c.scheduler {
        return match c.arrival_rate_hz {
            Some(r) => format!("{} · {sched} @ {r}/s", c.workload),
            None => format!("{} · {sched} @ trace", c.workload),
        };
    }
    match c.phase_period {
        Some(t) => format!("{} (T={t}s)", c.workload),
        None => c.workload.clone(),
    }
}

/// Trace href relative to where the HTML lands: paths inside `html_dir`
/// are relativized so links survive copying the directory; anything else
/// is linked as recorded.
fn trace_href(trace_path: &str, html_dir: Option<&Path>) -> String {
    match html_dir {
        Some(dir) => Path::new(trace_path)
            .strip_prefix(dir)
            .map(|p| p.display().to_string())
            .unwrap_or_else(|_| trace_path.to_string()),
        None => trace_path.to_string(),
    }
}

/// Heat color for a cell: green (row minimum) to red (row maximum).
fn heat(t: f64, lo: f64, hi: f64) -> String {
    let frac = if hi > lo { (t - lo) / (hi - lo) } else { 0.0 };
    let r = (120.0 + 135.0 * frac) as u8;
    let g = (200.0 - 110.0 * frac) as u8;
    format!("rgb({r},{g},120)")
}

/// Render the explorer page for a report. `html_dir` is the directory
/// the HTML will be written into (used to relativize trace links);
/// `None` keeps trace paths as recorded.
pub fn render(report_text: &str, html_dir: Option<&Path>) -> Result<String, String> {
    let doc = Json::parse(report_text).map_err(|e| e.to_string())?;
    if doc.as_object().is_none() {
        return Err("report is not a JSON object".into());
    }
    let campaign = str_of(doc.get("campaign"));
    let machine = str_of(doc.get("machine"));
    let schema = doc.get("schema_version").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let seed = doc.get("seed").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let cells =
        parse_cells(doc.get("cells").and_then(Json::as_array).ok_or("missing \"cells\" array")?)?;

    let mut html = String::with_capacity(4096 + cells.len() * 256);
    html.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    html.push_str(&format!("<title>campaign {}</title>\n", esc(&campaign)));
    html.push_str(
        "<style>\n\
         body { font-family: system-ui, sans-serif; margin: 2em; max-width: 72em; }\n\
         table { border-collapse: collapse; margin: 1em 0 2em; }\n\
         th, td { border: 1px solid #ccc; padding: 0.35em 0.7em; text-align: right; }\n\
         th { background: #f3f3f3; }\n\
         td.rowhead, th.rowhead { text-align: left; }\n\
         td.err { background: #f8d0d0; text-align: left; font-size: 0.85em; }\n\
         sup.badge { font-size: 0.7em; color: #333; background: #e6e6fa; border-radius: 3px;\n\
                     padding: 0 0.25em; margin-left: 0.25em; cursor: help; }\n\
         a { color: inherit; }\n\
         .meta { color: #555; }\n\
         </style>\n</head>\n<body>\n",
    );
    html.push_str(&format!("<h1>campaign <code>{}</code></h1>\n", esc(&campaign)));
    let mut meta = format!(
        "<p class=\"meta\">machine {} · schema v{schema} · seed {seed} · {} cells",
        esc(&machine),
        cells.len()
    );
    if let Some(w) = doc.get("wall_time_s").and_then(Json::as_f64) {
        meta.push_str(&format!(" · {w:.2}s wall"));
    }
    if let Some(t) = doc.get("threads").and_then(Json::as_f64) {
        meta.push_str(&format!(" on {} threads", t as u64));
    }
    meta.push_str("</p>\n");
    html.push_str(&meta);
    let traced = cells.iter().filter(|c| c.trace_path.is_some()).count();
    if traced > 0 {
        html.push_str(&format!(
            "<p class=\"meta\">{traced} cell(s) link to Chrome-trace files — open them at \
             <code>ui.perfetto.dev</code> or <code>chrome://tracing</code> \
             (see docs/TRACING.md).</p>\n"
        ));
    }
    let shared = cells.iter().filter(|c| c.dedup_class.is_some()).count();
    let hits = cells.iter().filter(|c| c.cache_hit).count();
    if shared > 0 || hits > 0 {
        html.push_str(&format!(
            "<p class=\"meta\">{shared} cell(s) in shared dedup classes · {hits} cell(s) served \
             from the on-disk cell cache (see docs/PERFORMANCE.md).</p>\n"
        ));
    }

    // Installation-time probe output (fig1a-style campaigns may carry
    // only this, with zero cells).
    if let Some(rows) = doc.get("bw_matrix_gbps").and_then(Json::as_array) {
        html.push_str("<h2>probed bandwidth matrix (GB/s)</h2>\n<table>\n<tr><th></th>");
        for d in 0..rows.len() {
            html.push_str(&format!("<th>to {d}</th>"));
        }
        html.push_str("</tr>\n");
        for (s, row) in rows.iter().enumerate() {
            html.push_str(&format!("<tr><td class=\"rowhead\">from {s}</td>"));
            for v in row.as_array().unwrap_or(&[]) {
                match v.as_f64() {
                    Some(x) => html.push_str(&format!("<td>{x}</td>")),
                    None => html.push_str("<td></td>"),
                }
            }
            html.push_str("</tr>\n");
        }
        html.push_str("</table>\n");
    }

    // Group axes, in first-seen (= enumeration) order.
    let mut groups: Vec<(String, u64)> = Vec::new();
    for c in &cells {
        let g = (c.scenario.clone(), c.workers);
        if !groups.contains(&g) {
            groups.push(g);
        }
    }
    for (scenario, workers) in groups {
        let group: Vec<&Cell> =
            cells.iter().filter(|c| c.scenario == scenario && c.workers == workers).collect();
        let mut cols: Vec<String> = Vec::new();
        let mut rows: Vec<String> = Vec::new();
        for c in &group {
            let col = column_label(c);
            if !cols.contains(&col) {
                cols.push(col);
            }
            let row = row_label(c);
            if !rows.contains(&row) {
                rows.push(row);
            }
        }
        html.push_str(&format!(
            "<h2>{} · {workers} worker{}</h2>\n<table>\n<tr><th class=\"rowhead\">workload</th>",
            esc(&scenario),
            if workers == 1 { "" } else { "s" }
        ));
        for col in &cols {
            html.push_str(&format!("<th>{}</th>", esc(col)));
        }
        html.push_str("</tr>\n");
        for row in &rows {
            html.push_str(&format!("<tr><td class=\"rowhead\">{}</td>", esc(row)));
            let row_cells: Vec<&&Cell> = group.iter().filter(|c| row_label(c) == *row).collect();
            let times: Vec<f64> = row_cells.iter().filter_map(|c| c.exec_time_s).collect();
            let lo = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for col in &cols {
                match row_cells.iter().find(|c| column_label(c) == *col) {
                    Some(c) => match c.exec_time_s {
                        Some(t) => {
                            let body = format!("{t:.3}s");
                            let mut link = match &c.trace_path {
                                Some(p) => format!(
                                    "<a href=\"{}\" title=\"{}\">{body}</a>",
                                    esc(&trace_href(p, html_dir)),
                                    esc(&c.key)
                                ),
                                None => format!("<span title=\"{}\">{body}</span>", esc(&c.key)),
                            };
                            // Memoization provenance (volatile fields of
                            // the full artifact): which dedup class the
                            // cell shared, and whether the on-disk cache
                            // served it.
                            if let Some(class) = &c.dedup_class {
                                link.push_str(&format!(
                                    "<sup class=\"badge\" title=\"dedup class {}\">=</sup>",
                                    esc(class)
                                ));
                            }
                            if c.cache_hit {
                                link.push_str(
                                    "<sup class=\"badge\" title=\"served from the cell cache\">\
                                     cache</sup>",
                                );
                            }
                            html.push_str(&format!(
                                "<td style=\"background: {}\">{link}</td>",
                                heat(t, lo, hi)
                            ));
                        }
                        None => html.push_str(&format!(
                            "<td class=\"err\">{}</td>",
                            esc(c.error.as_deref().unwrap_or("failed"))
                        )),
                    },
                    None => html.push_str("<td></td>"),
                }
            }
            html.push_str("</tr>\n");
        }
        html.push_str("</table>\n");
    }

    // Fleet cells additionally get a tail-latency table: the
    // slowdown-vs-solo percentiles the open-loop serving campaign exists
    // to measure (docs/FLEET.md).
    let fleet: Vec<&Cell> = cells.iter().filter(|c| c.scheduler.is_some()).collect();
    if fleet.iter().any(|c| c.slowdown_p50.is_some()) {
        html.push_str(
            "<h2>fleet slowdown-vs-solo tails</h2>\n<table>\n\
             <tr><th class=\"rowhead\">fleet cell</th><th>p50</th><th>p95</th><th>p99</th>\
             <th>jobs</th><th>makespan</th></tr>\n",
        );
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.3}"),
            None => String::new(),
        };
        for c in &fleet {
            html.push_str(&format!(
                "<tr><td class=\"rowhead\"><span title=\"{}\">{}</span></td>\
                 <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                esc(&c.key),
                esc(&format!("{} · {}", row_label(c), c.policy)),
                fmt(c.slowdown_p50),
                fmt(c.slowdown_p95),
                fmt(c.slowdown_p99),
                c.jobs.map(|n| n.to_string()).unwrap_or_default(),
                fmt(c.exec_time_s),
            ));
        }
        html.push_str("</table>\n");
    }
    html.push_str("</body>\n</html>\n");
    Ok(html)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden(name: &str) -> String {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
        std::fs::read_to_string(root.join(name)).expect("golden report exists")
    }

    #[test]
    fn renders_golden_reports_without_volatile_fields() {
        for name in ["fig1a.json", "fig4_quick.json", "table1_quick.json"] {
            let html = render(&golden(name), None).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(html.starts_with("<!DOCTYPE html>"), "{name}");
            assert!(html.contains("<table>"), "{name} renders a grid");
            // Self-contained: nothing fetched from anywhere.
            assert!(!html.contains("<script"), "{name}");
            assert!(!html.contains("http://"), "{name}");
            assert!(!html.contains("https://"), "{name}");
        }
    }

    #[test]
    fn links_traced_cells_and_escapes_errors() {
        let report = r#"{
  "schema_version": 2,
  "campaign": "unit <x>",
  "machine": "machine-b",
  "seed": 1,
  "bw_matrix_gbps": null,
  "cells": [
    {"id": 0, "key": "k0", "workload": "SC", "policy": "bwap", "scenario": "standalone",
     "workers": 1, "static_dwp": null, "seed": 2,
     "trace_path": "results/traces/trace-k0.json",
     "result": {"exec_time_s": 10.5}, "error": null},
    {"id": 1, "key": "k1", "workload": "SC", "policy": "first-touch", "scenario": "standalone",
     "workers": 1, "static_dwp": null, "seed": 3,
     "result": null, "error": "boom <tag>"}
  ]
}"#;
        let html = render(report, Some(Path::new("results"))).unwrap();
        assert!(html.contains("href=\"traces/trace-k0.json\""), "trace link relativized");
        assert!(html.contains("boom &lt;tag&gt;"), "error escaped");
        assert!(html.contains("campaign <code>unit &lt;x&gt;</code>"));
        assert!(html.contains("10.500s"));
    }

    #[test]
    fn renders_memoization_provenance_badges() {
        let report = r#"{
  "schema_version": 2,
  "campaign": "memo",
  "machine": "machine-a",
  "seed": 0,
  "bw_matrix_gbps": null,
  "cells": [
    {"id": 0, "key": "k0", "workload": "SC", "policy": "bwap", "scenario": "coscheduled",
     "workers": 1, "static_dwp": 0.5, "seed": 2, "dedup_class": "00aabbccddeeff11",
     "cache_hit": true, "result": {"exec_time_s": 4.25}, "error": null},
    {"id": 1, "key": "k1", "workload": "SC", "policy": "bwap-static(50%)", "scenario": "coscheduled",
     "workers": 1, "static_dwp": null, "seed": 3, "dedup_class": "00aabbccddeeff11",
     "result": {"exec_time_s": 4.25}, "error": null}
  ]
}"#;
        let html = render(report, None).unwrap();
        assert!(html.contains("title=\"dedup class 00aabbccddeeff11\""), "dedup badge");
        assert!(html.contains("served from the cell cache"), "cache badge");
        assert!(
            html.contains("2 cell(s) in shared dedup classes · 1 cell(s) served"),
            "summary line"
        );
        // A deterministic report (no provenance fields) renders no badges.
        let plain = golden("fig4_quick.json");
        let html = render(&plain, None).unwrap();
        assert!(!html.contains("class=\"badge\""));
        assert!(!html.contains("shared dedup classes"));
    }

    #[test]
    fn renders_fleet_tail_table() {
        let report = r#"{
  "schema_version": 2,
  "campaign": "fleet",
  "machine": "machine-b",
  "seed": 7,
  "bw_matrix_gbps": null,
  "cells": [
    {"id": 0, "key": "SC|uniform-workers|standalone|1w", "workload": "SC",
     "policy": "uniform-workers", "scenario": "standalone", "workers": 1,
     "static_dwp": null, "seed": 2, "result": {"exec_time_s": 1.5}, "error": null},
    {"id": 1, "key": "fleet:b+tiered|p0:uniform-workers|sched=least-loaded|rate=2|1w",
     "workload": "mix", "policy": "uniform-workers", "scenario": "fleet", "workers": 1,
     "static_dwp": null, "scheduler": "least-loaded", "arrival_rate_hz": 2, "seed": 3,
     "result": {"exec_time_s": 4.5, "jobs": 4, "job_slowdowns": [1, 1.25, 2, 3],
                "slowdown_p50": 1.25, "slowdown_p95": 3, "slowdown_p99": 3},
     "error": null}
  ]
}"#;
        let html = render(report, None).unwrap();
        assert!(html.contains("fleet slowdown-vs-solo tails"), "tail table present");
        assert!(html.contains("mix · least-loaded @ 2/s"), "fleet row keyed by coordinates");
        assert!(html.contains("<td>1.250</td>"), "p50 rendered");
        assert!(html.contains("<td>4</td>"), "job count rendered");
        // Reports without fleet cells render no tail table.
        let plain = golden("fig4_quick.json");
        let html = render(&plain, None).unwrap();
        assert!(!html.contains("fleet slowdown"));
    }

    #[test]
    fn rejects_non_reports() {
        assert!(render("[]", None).is_err());
        assert!(render("{\"campaign\": \"x\"}", None).unwrap_err().contains("cells"));
        assert!(render("not json", None).is_err());
    }
}
