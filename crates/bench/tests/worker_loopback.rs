//! End-to-end loopback test of the distributed campaign path: a real
//! `campaign_worker` serve loop on 127.0.0.1, a coordinator that ships
//! the spec args and cell ids over TCP, verifies the returned descriptors
//! and merges through the cell cache — and a report byte-identical to a
//! purely local run.

use bwap_bench::cli::SpecArgs;
use bwap_bench::worker::{fetch_cells, serve};
use bwap_runtime::campaign::cache::decode_entry;
use bwap_runtime::{cell_descriptor, run_campaign_with, CampaignConfig, CellCache};
use std::net::TcpListener;
use std::path::PathBuf;

fn spec_args() -> SpecArgs {
    SpecArgs {
        name: "loopback".into(),
        workloads: "SC".into(),
        policies: "uniform-workers,bwap".into(),
        dwps: "online,0.5".into(),
        seed: 3,
        quick: true,
        ..Default::default()
    }
}

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bwap-loopback-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn remote_worker_results_merge_into_a_byte_identical_report() {
    let sa = spec_args();
    let spec = sa.build().expect("spec");
    let cells = spec.cells();
    assert!(cells.len() >= 3, "needs a real matrix, got {}", cells.len());

    // The worker: a real TCP serve loop on an OS-assigned port, one
    // connection (exactly how the CI smoke step runs the binary).
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || serve(&listener, Some(2), true).expect("serve"));

    // The coordinator: request every deduped cell, verify each returned
    // entry embeds our exact descriptor, merge through the cache.
    let descs: Vec<_> = cells.iter().map(|c| cell_descriptor(&spec, c)).collect();
    let mut seen = std::collections::HashSet::new();
    let pending: Vec<usize> =
        cells.iter().map(|c| c.id).filter(|&id| seen.insert(descs[id].text())).collect();
    let entries = fetch_cells(&addr, &sa.to_args(), &pending).expect("fetch");
    server.join().expect("server thread");
    assert_eq!(entries.len(), pending.len());

    let cache_dir = tmp("merge");
    let cache = CellCache::open(&cache_dir).expect("cache");
    for (id, entry) in &entries {
        let (desc_text, outcome) = decode_entry(entry).expect("entry decodes");
        assert_eq!(desc_text, descs[*id].text(), "worker descriptor must match ours");
        cache.store(&descs[*id], &outcome);
    }

    // Replaying through the cache executes nothing locally and produces
    // the same bytes as an all-local run.
    let remote_cfg = CampaignConfig { cache_dir: Some(cache_dir.clone()), ..Default::default() };
    let remote = run_campaign_with(&spec, &remote_cfg);
    assert_eq!(remote.executed_cells, 0, "every cell came from the remote worker");
    assert!(remote.cells.iter().all(|c| c.cache_hit));

    let local = run_campaign_with(&spec, &CampaignConfig::default());
    assert_eq!(
        local.deterministic_json(),
        remote.deterministic_json(),
        "remote execution must be result-indistinguishable from local"
    );
    let _ = std::fs::remove_dir_all(cache_dir);
}

#[test]
fn unreachable_workers_fail_cleanly_for_local_fallback() {
    let sa = spec_args();
    // Port 1 on loopback is essentially never listening; the coordinator
    // must get a clean error (its cue to run the cells locally), not a
    // panic or a hang.
    let err = fetch_cells("127.0.0.1:1", &sa.to_args(), &[0]).unwrap_err();
    assert!(err.contains("connect"), "{err}");
}
