//! End-to-end loopback tests of the distributed campaign path: a real
//! `campaign_worker` serve loop on 127.0.0.1, a supervised coordinator
//! that ships the spec args and cell ids over TCP, verifies the returned
//! descriptors and merges through the cell cache — and a report
//! byte-identical to a purely local run. Plus the protocol's edge frames
//! and the supervision paths (salvage, retry, quarantine) under injected
//! faults.

use bwap_bench::cli::SpecArgs;
use bwap_bench::worker::{
    coordinate, fetch_batch, serve, write_frame, SupervisionConfig, MAX_FRAME, PROTOCOL_MAGIC,
};
use bwap_runtime::campaign::cache::decode_entry;
use bwap_runtime::{
    cell_descriptor, run_campaign_with, CampaignConfig, CellCache, FaultKind, FaultPlan,
};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn spec_args() -> SpecArgs {
    SpecArgs {
        name: "loopback".into(),
        workloads: "SC".into(),
        policies: "uniform-workers,bwap".into(),
        dwps: "online,0.5".into(),
        seed: 3,
        quick: true,
        ..Default::default()
    }
}

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bwap-loopback-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Tight supervision for tests: chaos runs finish in seconds, not the
/// production timescales.
fn quick_sup() -> SupervisionConfig {
    SupervisionConfig {
        io_timeout: Duration::from_secs(5),
        batch_deadline: Duration::from_secs(60),
        max_rounds: 4,
        backoff_base: Duration::from_millis(5),
        quarantine_after: 2,
    }
}

/// Spawn a worker serve loop on an OS-assigned loopback port. The serve
/// thread lives until the process exits (accept has no shutdown channel);
/// tests just stop talking to it.
fn spawn_worker() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        let _ = serve(&listener, Some(2), false, Duration::from_secs(5));
    });
    addr
}

#[test]
fn remote_worker_results_merge_into_a_byte_identical_report() {
    let sa = spec_args();
    let spec = sa.build().expect("spec");
    assert!(spec.cells().len() >= 3, "needs a real matrix, got {}", spec.cells().len());

    let addr = spawn_worker();
    let cache_dir = tmp("merge");
    let cache = CellCache::open(&cache_dir).expect("cache");
    let outcome = coordinate(&spec, &sa.to_args(), &[addr], &cache, true, &quick_sup(), None);
    assert_eq!(outcome.remaining, 0, "every cell served remotely");
    assert!(outcome.accepted > 0);
    assert_eq!(outcome.failed_batches, 0);
    assert!(outcome.quarantined.is_empty());

    // Replaying through the cache executes nothing locally and produces
    // the same bytes as an all-local run.
    let remote_cfg = CampaignConfig { cache_dir: Some(cache_dir.clone()), ..Default::default() };
    let remote = run_campaign_with(&spec, &remote_cfg);
    assert_eq!(remote.executed_cells, 0, "every cell came from the remote worker");
    assert!(remote.cells.iter().all(|c| c.cache_hit));

    let local = run_campaign_with(&spec, &CampaignConfig::default());
    assert_eq!(
        local.deterministic_json(),
        remote.deterministic_json(),
        "remote execution must be result-indistinguishable from local"
    );
    let _ = std::fs::remove_dir_all(cache_dir);
}

#[test]
fn unreachable_workers_fail_cleanly_for_local_fallback() {
    let sa = spec_args();
    // Port 1 on loopback is essentially never listening; the coordinator
    // must get a clean error (its cue to run the cells locally), not a
    // panic or a hang.
    let out = fetch_batch("127.0.0.1:1", &sa.to_args(), &[0], &quick_sup(), None, 0);
    let err = out.error.expect("refused");
    assert!(err.contains("connect"), "{err}");
    assert!(out.entries.is_empty());
}

#[test]
fn mid_batch_disconnect_salvages_finished_cells_and_reshards_the_rest() {
    let sa = spec_args();
    let spec = sa.build().expect("spec");
    let addr = spawn_worker();
    let cache_dir = tmp("salvage");
    let cache = CellCache::open(&cache_dir).expect("cache");
    // Every batch dies mid-stream — completion is carried entirely by
    // salvage + re-sharding across rounds.
    let plan = FaultPlan::new(11).with(FaultKind::Disconnect, 1.0);
    let sup = SupervisionConfig { max_rounds: 8, quarantine_after: 100, ..quick_sup() };
    let outcome = coordinate(&spec, &sa.to_args(), &[addr], &cache, true, &sup, Some(&plan));
    assert!(outcome.failed_batches > 0, "disconnect at rate 1.0 must fail batches");
    assert!(outcome.salvaged > 0, "frames received before the kill must be kept");
    // Salvage must lose nothing that was verified: accepted cells are in
    // the cache, and the campaign completes byte-identically through the
    // local fallback for whatever is left.
    let cfg = CampaignConfig { cache_dir: Some(cache_dir.clone()), ..Default::default() };
    let merged = run_campaign_with(&spec, &cfg);
    let local = run_campaign_with(&spec, &CampaignConfig::default());
    assert_eq!(local.deterministic_json(), merged.deterministic_json());
    let _ = std::fs::remove_dir_all(cache_dir);
}

#[test]
fn failing_workers_are_quarantined_and_healthy_ones_finish_the_job() {
    let sa = spec_args();
    let spec = sa.build().expect("spec");
    let good = spawn_worker();
    // The bad worker is an address that refuses every connect.
    let bad = "127.0.0.1:1".to_string();
    let cache_dir = tmp("quarantine");
    let cache = CellCache::open(&cache_dir).expect("cache");
    let outcome =
        coordinate(&spec, &sa.to_args(), &[bad.clone(), good], &cache, true, &quick_sup(), None);
    assert_eq!(outcome.remaining, 0, "the healthy worker absorbs the bad one's shards");
    assert_eq!(outcome.quarantined, vec![bad]);
    let _ = std::fs::remove_dir_all(cache_dir);
}

// ---- protocol edge frames -------------------------------------------------

/// Open a raw connection to a fresh worker, run `send` against it, and
/// return the worker's first response frame payload (or the IO error).
fn raw_exchange(send: impl FnOnce(&mut TcpStream)) -> std::io::Result<Vec<u8>> {
    let addr = spawn_worker();
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    send(&mut stream);
    bwap_bench::worker::read_frame(&mut stream)
}

#[test]
fn zero_length_frame_gets_a_clean_protocol_error() {
    let payload = raw_exchange(|s| {
        write_frame(s, b"").expect("send empty frame");
    })
    .expect("worker replies");
    let text = String::from_utf8(payload).expect("utf8");
    assert!(text.starts_with(PROTOCOL_MAGIC), "{text}");
    assert!(text.contains("err "), "an empty request is an error, not a crash: {text}");
}

#[test]
fn oversized_frame_claim_gets_a_clean_protocol_error() {
    // Claim MAX_FRAME + 1 bytes without sending them: the worker must
    // reject the length up front (it never tries to buffer it) and still
    // answer with a clean error frame.
    let claim = (MAX_FRAME as u32) + 1;
    let payload = raw_exchange(|s| {
        s.write_all(&claim.to_be_bytes()).expect("send length prefix");
        s.flush().expect("flush");
    })
    .expect("worker replies");
    let text = String::from_utf8(payload).expect("utf8");
    assert!(text.contains("err ") && text.contains("protocol error"), "{text}");
}

#[test]
fn exactly_max_frame_is_read_not_rejected() {
    // A frame of exactly MAX_FRAME bytes is legal at the framing layer —
    // the worker reads it fully and rejects it one layer up (it is not a
    // valid request), answering with a clean error frame rather than
    // cutting the connection on a length check.
    let body = vec![b'x'; MAX_FRAME];
    let payload = raw_exchange(move |s| {
        write_frame(s, &body).expect("send max frame");
    })
    .expect("worker replies");
    let text = String::from_utf8(payload).expect("utf8");
    assert!(text.contains("err "), "{text}");
    assert!(!text.contains("oversized"), "MAX_FRAME exactly is not oversized: {text}");
}

#[test]
fn eof_mid_length_prefix_closes_cleanly() {
    // Send half a length prefix and hang up. The worker can't answer
    // anyone — the peer is gone — but it must treat the dangling read as
    // a clean connection failure: the next connection is served normally.
    let addr = spawn_worker();
    {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.write_all(&[0u8, 0]).expect("half a prefix");
        // Dropping the stream closes it mid-prefix.
    }
    // The same worker must still be alive and serving.
    let sa = spec_args();
    let out = fetch_batch(&addr, &sa.to_args(), &[0], &quick_sup(), None, 0);
    assert!(out.error.is_none(), "{:?}", out.error);
    assert_eq!(out.entries.len(), 1);
    assert!(decode_entry(&out.entries[0].1).is_some());
}

#[test]
fn worker_descriptors_match_the_coordinator_bytes() {
    let sa = spec_args();
    let spec = sa.build().expect("spec");
    let cells = spec.cells();
    let addr = spawn_worker();
    let out = fetch_batch(&addr, &sa.to_args(), &[0, 1], &quick_sup(), None, 0);
    assert!(out.error.is_none(), "{:?}", out.error);
    assert_eq!(out.entries.len(), 2);
    for (id, entry) in &out.entries {
        let (desc_text, outcome) = decode_entry(entry).expect("entry decodes");
        assert_eq!(desc_text, cell_descriptor(&spec, &cells[*id]).text());
        assert!(outcome.is_ok());
    }
}
