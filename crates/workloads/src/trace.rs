//! The JSON phase-trace format: phased workloads as data files.
//!
//! A *phase trace* describes a [`crate::PhasedWorkload`] without
//! writing Rust: each phase names a base workload from the Table-I
//! catalogue ([`crate::by_name`]) and optionally overrides individual
//! demand axes. The workspace is offline and serde-free, so the loader
//! ships its own minimal JSON reader; every malformed input maps to a
//! typed [`TraceError`] naming exactly what is wrong.
//!
//! # Format
//!
//! ```json
//! {
//!   "name": "sc-flip",
//!   "total_traffic_gb": 600.0,
//!   "phases": [
//!     {"workload": "SC", "duration_s": 10.0,
//!      "override": {"reads_mbps": 42000.0, "latency_sensitivity": 0.02}},
//!     {"workload": "SC", "duration_s": 10.0}
//!   ]
//! }
//! ```
//!
//! * `name` — workload name used in reports.
//! * `total_traffic_gb` — the workload-level traffic budget shared by all
//!   phases (positive).
//! * `phases[]` — at least one phase; `workload` is a catalogue name
//!   (`SC`, `OC`, `ON`, `SP.B`, `FT.C`, …), `duration_s` a positive
//!   number, and `override` an optional object setting any of:
//!   `reads_mbps`, `writes_mbps`, `private_frac`, `latency_sensitivity`,
//!   `serial_frac`, `multinode_penalty`. Page counts cannot be overridden
//!   — the memory layout is fixed at spawn from phase 0's workload.
//!
//! # Examples
//!
//! ```
//! let json = r#"{
//!   "name": "flip", "total_traffic_gb": 300.0,
//!   "phases": [
//!     {"workload": "SC", "duration_s": 5.0,
//!      "override": {"reads_mbps": 42000.0}},
//!     {"workload": "SC", "duration_s": 5.0}
//!   ]
//! }"#;
//! let w = bwap_workloads::trace::parse_phase_trace(json)?;
//! assert_eq!(w.name, "flip");
//! assert_eq!(w.phases[0].spec.reads_mbps, 42000.0);
//! # Ok::<(), bwap_workloads::trace::TraceError>(())
//! ```

use crate::json::{Json, JsonError};
use crate::phased::{Phase, PhaseError, PhasedWorkload};
use std::fmt;

/// Why a phase-trace document was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The document is not valid JSON.
    Json {
        /// Byte offset of the failure.
        offset: usize,
        /// What the reader expected there.
        message: String,
    },
    /// A required field is missing.
    MissingField {
        /// Which object lacks it (`"trace"` or `"phases[i]"`).
        context: String,
        /// The absent field.
        field: &'static str,
    },
    /// A field holds the wrong JSON type.
    WrongType {
        /// Which object/field.
        context: String,
        /// What the format requires.
        expected: &'static str,
    },
    /// A phase names a workload the catalogue does not have.
    UnknownWorkload {
        /// Phase index.
        phase: usize,
        /// The unknown name.
        name: String,
    },
    /// An `override` object sets an axis that does not exist (or cannot
    /// be overridden, like page counts).
    UnknownOverride {
        /// Phase index.
        phase: usize,
        /// The rejected key.
        key: String,
    },
    /// The assembled workload failed [`PhasedWorkload::new`] validation.
    Invalid(PhaseError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Json { offset, message } => {
                write!(f, "invalid JSON at byte {offset}: {message}")
            }
            TraceError::MissingField { context, field } => {
                write!(f, "{context}: missing field {field:?}")
            }
            TraceError::WrongType { context, expected } => {
                write!(f, "{context}: expected {expected}")
            }
            TraceError::UnknownWorkload { phase, name } => {
                write!(f, "phases[{phase}]: unknown workload {name:?}")
            }
            TraceError::UnknownOverride { phase, key } => {
                write!(f, "phases[{phase}]: unknown override axis {key:?}")
            }
            TraceError::Invalid(e) => write!(f, "invalid phased workload: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<PhaseError> for TraceError {
    fn from(e: PhaseError) -> Self {
        TraceError::Invalid(e)
    }
}

impl From<JsonError> for TraceError {
    fn from(e: JsonError) -> Self {
        TraceError::Json { offset: e.offset, message: e.message }
    }
}

/// Parse a phase-trace JSON document into a validated [`PhasedWorkload`].
pub fn parse_phase_trace(json: &str) -> Result<PhasedWorkload, TraceError> {
    let doc = Json::parse(json)?;
    let top = object(&doc, "trace")?;
    let name = string(get(top, "trace", "name")?, "trace.name")?;
    let total = number(get(top, "trace", "total_traffic_gb")?, "trace.total_traffic_gb")?;
    let phases_json = array(get(top, "trace", "phases")?, "trace.phases")?;
    let mut phases = Vec::with_capacity(phases_json.len());
    for (i, p) in phases_json.iter().enumerate() {
        let ctx = format!("phases[{i}]");
        let obj = object(p, &ctx)?;
        let wname = string(get(obj, &ctx, "workload")?, &format!("{ctx}.workload"))?;
        let mut spec = crate::by_name(wname)
            .ok_or_else(|| TraceError::UnknownWorkload { phase: i, name: wname.to_string() })?;
        let duration_s = number(get(obj, &ctx, "duration_s")?, &format!("{ctx}.duration_s"))?;
        if let Some(over) = obj.iter().find(|(k, _)| k == "override") {
            for (key, value) in object(&over.1, &format!("{ctx}.override"))? {
                let v = number(value, &format!("{ctx}.override.{key}"))?;
                match key.as_str() {
                    "reads_mbps" => spec.reads_mbps = v,
                    "writes_mbps" => spec.writes_mbps = v,
                    "private_frac" => spec.private_frac = v,
                    "latency_sensitivity" => spec.latency_sensitivity = v,
                    "serial_frac" => spec.serial_frac = v,
                    "multinode_penalty" => spec.multinode_penalty = v,
                    other => {
                        return Err(TraceError::UnknownOverride {
                            phase: i,
                            key: other.to_string(),
                        })
                    }
                }
            }
        }
        phases.push(Phase::new(spec, duration_s));
    }
    Ok(PhasedWorkload::new(name, phases, total)?)
}

/// Load a phase trace from a file (convenience around
/// [`parse_phase_trace`]). I/O failures surface as a JSON error at byte 0
/// carrying the OS message.
pub fn load_phase_trace(path: &std::path::Path) -> Result<PhasedWorkload, TraceError> {
    let text = std::fs::read_to_string(path).map_err(|e| TraceError::Json {
        offset: 0,
        message: format!("cannot read {}: {e}", path.display()),
    })?;
    parse_phase_trace(&text)
}

/// Contextual accessors: [`crate::json`] answers "what is this
/// value?", these turn a mismatch into a [`TraceError`] naming the
/// offending field.
fn object<'a>(v: &'a Json, ctx: &str) -> Result<&'a [(String, Json)], TraceError> {
    v.as_object()
        .ok_or_else(|| TraceError::WrongType { context: ctx.to_string(), expected: "an object" })
}

fn array<'a>(v: &'a Json, ctx: &str) -> Result<&'a [Json], TraceError> {
    v.as_array()
        .ok_or_else(|| TraceError::WrongType { context: ctx.to_string(), expected: "an array" })
}

fn string<'a>(v: &'a Json, ctx: &str) -> Result<&'a str, TraceError> {
    v.as_str()
        .ok_or_else(|| TraceError::WrongType { context: ctx.to_string(), expected: "a string" })
}

fn number(v: &Json, ctx: &str) -> Result<f64, TraceError> {
    v.as_f64()
        .ok_or_else(|| TraceError::WrongType { context: ctx.to_string(), expected: "a number" })
}

fn get<'a>(
    obj: &'a [(String, Json)],
    context: &str,
    field: &'static str,
) -> Result<&'a Json, TraceError> {
    obj.iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .ok_or_else(|| TraceError::MissingField { context: context.to_string(), field })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
      "name": "sc-flip",
      "total_traffic_gb": 600.0,
      "phases": [
        {"workload": "SC", "duration_s": 10.0,
         "override": {"reads_mbps": 42000.0, "latency_sensitivity": 0.02}},
        {"workload": "SC", "duration_s": 10.0}
      ]
    }"#;

    #[test]
    fn parses_the_worked_example() {
        let w = parse_phase_trace(GOOD).unwrap();
        assert_eq!(w.name, "sc-flip");
        assert_eq!(w.total_traffic_gb, 600.0);
        assert_eq!(w.phases.len(), 2);
        assert_eq!(w.phases[0].spec.reads_mbps, 42_000.0);
        assert_eq!(w.phases[0].spec.latency_sensitivity, 0.02);
        // Unoverridden axes come from the catalogue entry.
        assert_eq!(w.phases[1].spec.reads_mbps, crate::apps::streamcluster().reads_mbps);
    }

    #[test]
    fn load_from_file_roundtrips() {
        let dir = std::env::temp_dir().join("bwap-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flip.json");
        std::fs::write(&path, GOOD).unwrap();
        let w = load_phase_trace(&path).unwrap();
        assert_eq!(w.name, "sc-flip");
        assert!(load_phase_trace(&dir.join("missing.json")).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn malformed_json_reports_offset() {
        let err = parse_phase_trace("{\"name\": ").unwrap_err();
        assert!(matches!(err, TraceError::Json { .. }), "{err}");
        let err = parse_phase_trace("{} trailing").unwrap_err();
        assert!(err.to_string().contains("end of document"), "{err}");
    }

    #[test]
    fn missing_fields_are_named() {
        let err = parse_phase_trace(r#"{"total_traffic_gb": 1, "phases": []}"#).unwrap_err();
        assert_eq!(err, TraceError::MissingField { context: "trace".into(), field: "name" });
        let err = parse_phase_trace(
            r#"{"name": "x", "total_traffic_gb": 1,
                "phases": [{"duration_s": 1}]}"#,
        )
        .unwrap_err();
        assert_eq!(
            err,
            TraceError::MissingField { context: "phases[0]".into(), field: "workload" }
        );
    }

    #[test]
    fn wrong_types_are_rejected() {
        let err =
            parse_phase_trace(r#"{"name": 3, "total_traffic_gb": 1, "phases": []}"#).unwrap_err();
        assert!(
            matches!(err, TraceError::WrongType { ref context, .. } if context == "trace.name")
        );
        let err =
            parse_phase_trace(r#"{"name": "x", "total_traffic_gb": 1, "phases": 9}"#).unwrap_err();
        assert!(
            matches!(err, TraceError::WrongType { ref context, .. } if context == "trace.phases")
        );
    }

    #[test]
    fn unknown_workload_and_override_axes_are_rejected() {
        let err = parse_phase_trace(
            r#"{"name": "x", "total_traffic_gb": 1,
                "phases": [{"workload": "NOPE", "duration_s": 1}]}"#,
        )
        .unwrap_err();
        assert_eq!(err, TraceError::UnknownWorkload { phase: 0, name: "NOPE".into() });
        let err = parse_phase_trace(
            r#"{"name": "x", "total_traffic_gb": 1,
                "phases": [{"workload": "SC", "duration_s": 1,
                            "override": {"shared_pages": 5}}]}"#,
        )
        .unwrap_err();
        assert_eq!(err, TraceError::UnknownOverride { phase: 0, key: "shared_pages".into() });
    }

    #[test]
    fn semantic_validation_flows_through() {
        let err =
            parse_phase_trace(r#"{"name": "x", "total_traffic_gb": 1, "phases": []}"#).unwrap_err();
        assert_eq!(err, TraceError::Invalid(PhaseError::NoPhases));
        let err = parse_phase_trace(
            r#"{"name": "x", "total_traffic_gb": 1,
                "phases": [{"workload": "SC", "duration_s": -2}]}"#,
        )
        .unwrap_err();
        assert!(matches!(err, TraceError::Invalid(PhaseError::BadDuration { phase: 0, .. })));
    }
}
